// Quickstart: stochastic values and a first structural prediction.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Walks through the library's core ideas in order:
//   1. stochastic values and the Table-2 arithmetic,
//   2. a tiny structural model with a stochastic parameter,
//   3. checking a "measured" run against the predicted range.
#include <iostream>

#include "model/expr.hpp"
#include "stoch/arithmetic.hpp"
#include "stoch/stochastic_value.hpp"

int main() {
  using sspred::stoch::Dependence;
  using sspred::stoch::StochasticValue;
  namespace model = sspred::model;

  // 1. A stochastic value is a mean ± two standard deviations. The paper's
  //    bandwidth example: 8 Mbit/s ± 2 Mbit/s.
  const StochasticValue bandwidth(8.0, 2.0);
  std::cout << "bandwidth            = " << bandwidth << " Mbit/s\n";
  std::cout << "  range              = [" << bandwidth.lower() << ", "
            << bandwidth.upper() << "]\n";

  // Percentage form works too: a CPU load of 0.48 ± 10%.
  const StochasticValue load = StochasticValue::from_percent(0.48, 10.0);
  std::cout << "cpu availability     = " << load << "\n";

  // 2. The Table-2 calculus. Latency and bandwidth on a shared segment are
  //    causally related -> conservative rules; quantities from different
  //    resources are unrelated -> RSS rules.
  const StochasticValue latency(0.012, 0.004);  // seconds
  const StochasticValue message_time =
      add(StochasticValue(latency), sspred::stoch::div(
                                        StochasticValue(1.0),  // 1 Mbit
                                        bandwidth, Dependence::kUnrelated),
          Dependence::kRelated);
  std::cout << "1 Mbit message time  = " << message_time << " s\n";

  // 3. A miniature structural model: 40 iterations of (compute / load).
  //    Parameters are named and bound at evaluation time, so the same
  //    model serves point and stochastic predictions.
  const model::ExprPtr iteration = model::quotient(
      model::constant(StochasticValue(0.9)),  // dedicated seconds per iter
      model::param("load"), Dependence::kUnrelated);
  const model::ExprPtr run =
      model::iterate(iteration, 40, Dependence::kRelated);

  model::Environment env;
  env.bind("load", load);
  const StochasticValue predicted = run->evaluate(env);
  const double point = run->evaluate_point(env);

  std::cout << "\nstructural model     : " << run->to_string() << "\n";
  std::cout << "point prediction     = " << point << " s\n";
  std::cout << "stochastic prediction= " << predicted << " s\n";

  // 4. Score a measured run against the prediction.
  const double measured = 79.0;
  std::cout << "\nmeasured run         = " << measured << " s -> "
            << (predicted.contains(measured) ? "inside" : "OUTSIDE")
            << " the predicted range";
  if (!predicted.contains(measured)) {
    std::cout << " (off by " << predicted.out_of_range_distance(measured)
              << " s)";
  }
  std::cout << "\n\nA point prediction would have been wrong by "
            << 100.0 * std::abs(point - measured) / measured
            << "%; the stochastic range tells you whether that was "
               "surprising.\n";
  return 0;
}
