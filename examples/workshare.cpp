// Work sharing with stochastic unit times — the paper's §1.2 scenario.
//
// Two production machines both average 12 s per unit of work, but machine
// A swings ±5% and machine B ±30%. This example allocates a batch of work
// under three strategies and shows, via Monte-Carlo, why the right answer
// depends on the penalty for a bad prediction.
//
// Run: ./build/examples/workshare [units]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "sched/workshare.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace sspred;

  std::size_t units = 300;
  if (argc > 1) units = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));

  const std::vector<sched::MachineProfile> machines{
      {"A (slow, quiet)", stoch::StochasticValue::from_percent(12.0, 5.0)},
      {"B (fast, busy)", stoch::StochasticValue::from_percent(12.0, 30.0)},
  };
  std::cout << "unit times: A = " << machines[0].unit_time
            << " s, B = " << machines[1].unit_time << " s, " << units
            << " units to place\n\n";

  support::Rng rng(1);
  support::Table table({"strategy", "A units", "B units", "predicted",
                        "MC mean", "MC p95"});
  for (const auto& [name, strategy] :
       std::vector<std::pair<std::string, sched::Strategy>>{
           {"mean-balance", sched::Strategy::kMeanBalance},
           {"conservative", sched::Strategy::kConservative},
           {"optimistic", sched::Strategy::kOptimistic}}) {
    const auto alloc = sched::allocate(units, machines, strategy);
    const auto predicted = sched::predicted_makespan(alloc, machines);
    const auto mc = sched::simulate_makespan(alloc, machines, rng);
    table.add_row({name, std::to_string(alloc.units[0]),
                   std::to_string(alloc.units[1]), predicted.to_string(0),
                   support::fmt(mc.mean, 0), support::fmt(mc.p95, 0)});
  }
  std::cout << table.render();

  std::cout << "\nIf mispredictions are penalized, prefer the conservative "
               "split (lower p95);\nif not, the optimistic split bets on "
               "machine B's good days.\n";
  return 0;
}
