// sspred_cli — command-line front end for the library.
//
//   sspred_cli platforms
//   sspred_cli trace   --platform platform2 --host 0 --duration 2000
//                      [--interval 1] [--seed 7] [--out trace.csv]
//   sspred_cli predict --platform platform1 --n 1600 --iters 20
//                      --loads 0.48:0.05,0.92:0.03,0.92:0.03,0.92:0.03
//                      [--bwavail 0.525:0.06] [--breakdown]
//   sspred_cli series  --platform platform2 --n 1000 --iters 15
//                      [--trials 8] [--source nws|sample|mix] [--seed 1]
//   sspred_cli plan    --platform platform1 --n 1000 --iters 15
//                      --loads ... [--metric mean|p95|upper]
//   sspred_cli serve   --platform platform2 --n 1000 --iters 15
//                      [--requests R] [--workers W] [--shards S] [--mc-every M]
//                      [--precision F] [--max-trials T]
//                      [--seed N] [--no-cache] [--no-coalesce] [--no-fuse]
//                      [--metrics-json FILE]
//   sspred_cli calibrate --platform platform2 --n 1000 --iters 15
//                      [--trials T] [--seed N] [--source nws|sample|mix]
//                      [--window W] [--drift-lambda L]
//   sspred_cli cluster --platform platform2 --n 1000 --iters 15
//                      [--nodes 3] [--replicas 2] [--requests R]
//                      [--faults crash@100:1,restart@300:1] [--seed N]
//   sspred_cli learn   --platform platform2 --n 1000 --iters 15
//                      [--trials T] [--seed N] [--source nws|sample|mix]
//                      [--drift-at K] [--drift-scale S]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "calib/drift.hpp"
#include "calib/ledger.hpp"
#include "calib/recalibrate.hpp"
#include "dserve/fault.hpp"
#include "dserve/frontend.hpp"
#include "learn/arbiter.hpp"
#include "learn/bank.hpp"
#include "machine/load_trace.hpp"
#include "nws/service.hpp"
#include "predict/experiment.hpp"
#include "predict/host_selection.hpp"
#include "serve/epoch.hpp"
#include "serve/service.hpp"
#include "stoch/metrics.hpp"
#include "support/clock.hpp"
#include "support/table.hpp"

namespace {

using namespace sspred;

[[noreturn]] void usage(const std::string& why = "") {
  if (!why.empty()) std::cerr << "error: " << why << "\n\n";
  std::cerr <<
      "usage: sspred_cli <command> [options]\n"
      "  platforms                         list the shipped platforms\n"
      "  trace    --platform P --host I --duration S [--interval S]\n"
      "           [--seed N] [--out FILE]  generate & save a load trace\n"
      "  predict  --platform P --n N --iters K --loads m:sd,...\n"
      "           [--bwavail m:sd] [--breakdown]\n"
      "  series   --platform P --n N --iters K [--trials T]\n"
      "           [--source nws|sample|mix] [--seed N]\n"
      "  plan     --platform P --n N --iters K --loads m:sd,...\n"
      "           [--metric mean|p95|upper]\n"
      "  serve    --platform P --n N --iters K [--requests R]\n"
      "           [--workers W] [--shards S] [--mc-every M] [--seed N]\n"
      "           [--precision F] [--max-trials T]  adaptive MC: stop at\n"
      "           CI half-width <= F * |mean|, clamped to T trials\n"
      "           [--no-cache] [--no-coalesce] [--no-fuse]\n"
      "           [--metrics-json FILE]\n"
      "           run the prediction service over generated load traces\n"
      "  calibrate --platform P --n N --iters K [--trials T] [--seed N]\n"
      "           [--source nws|sample|mix] [--window W]\n"
      "           [--drift-lambda L]\n"
      "           replay a load trace through predict->simulate->report\n"
      "           and print a calibration report\n"
      "  cluster  --platform P --n N --iters K [--nodes N] [--replicas R]\n"
      "           [--requests R] [--faults PLAN] [--seed N]\n"
      "           run the multi-node serving tier with optional fault\n"
      "           injection (PLAN e.g. crash@100:1,restart@300:1)\n"
      "  learn    --platform P --n N --iters K [--trials T] [--seed N]\n"
      "           [--source nws|sample|mix] [--drift-at K]\n"
      "           [--drift-scale S]\n"
      "           closed predict->observe loop with the learned-predictor\n"
      "           bank; injects a runtime drift at trial K and prints the\n"
      "           per-model arbitration table\n";
  std::exit(2);
}

/// Simple --key value option map.
std::map<std::string, std::string> parse_options(int argc, char** argv,
                                                 int first) {
  std::map<std::string, std::string> opts;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("unexpected argument: " + key);
    key = key.substr(2);
    if (key == "breakdown" || key == "no-cache" || key == "no-coalesce" ||
        key == "no-fuse") {
      opts[key] = "1";
      continue;
    }
    if (i + 1 >= argc) usage("missing value for --" + key);
    opts[key] = argv[++i];
  }
  return opts;
}

std::string get(const std::map<std::string, std::string>& opts,
                const std::string& key, const std::string& fallback = "") {
  const auto it = opts.find(key);
  if (it != opts.end()) return it->second;
  if (fallback.empty()) usage("missing required option --" + key);
  return fallback;
}

cluster::PlatformSpec platform_by_name(const std::string& name) {
  if (name == "platform1") return cluster::platform1();
  if (name == "platform2") return cluster::platform2();
  if (name.rfind("dedicated", 0) == 0) {
    std::size_t hosts = 4;
    if (name.size() > 9) hosts = std::strtoul(name.c_str() + 9, nullptr, 10);
    return cluster::dedicated_platform(hosts);
  }
  usage("unknown platform '" + name +
        "' (use platform1, platform2, dedicated<N>)");
}

/// Parses "0.48:0.05,0.92:0.03,..." into stochastic values.
std::vector<stoch::StochasticValue> parse_loads(const std::string& text) {
  std::vector<stoch::StochasticValue> loads;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto colon = item.find(':');
    const double mean = std::stod(item.substr(0, colon));
    const double half =
        colon == std::string::npos ? 0.0 : std::stod(item.substr(colon + 1));
    loads.emplace_back(mean, half);
  }
  return loads;
}

stoch::StochasticValue parse_sv(const std::string& text) {
  const auto loads = parse_loads(text);
  if (loads.size() != 1) usage("expected one mean:halfwidth value");
  return loads.front();
}

int cmd_platforms() {
  for (const char* name : {"platform1", "platform2", "dedicated4"}) {
    const auto spec = platform_by_name(name);
    std::printf("%s (%zu hosts, %s fabric)\n", name, spec.hosts.size(),
                spec.fabric == cluster::FabricKind::kSharedSegment
                    ? "shared 10 Mbit"
                    : "switched");
    for (const auto& h : spec.hosts) {
      std::printf("  %-10s %.1e s/element, %.1fM elements of memory, "
                  "%zu load modes\n",
                  h.machine.name.c_str(), h.machine.bm_seconds_per_element,
                  h.machine.memory_elements / 1e6, h.load.modes.size());
    }
  }
  return 0;
}

int cmd_trace(const std::map<std::string, std::string>& opts) {
  const auto spec = platform_by_name(get(opts, "platform"));
  const auto host = std::strtoul(get(opts, "host", "0").c_str(), nullptr, 10);
  if (host >= spec.hosts.size()) usage("host index out of range");
  const double duration = std::stod(get(opts, "duration"));
  const double interval = std::stod(get(opts, "interval", "1"));
  const auto seed = std::strtoull(get(opts, "seed", "1").c_str(), nullptr, 10);
  const std::string out = get(opts, "out", "trace.csv");

  const auto count = static_cast<std::size_t>(duration / interval) + 1;
  const auto trace = machine::LoadTrace::generate(spec.hosts[host].load,
                                                  count, interval, seed);
  trace.save_csv(out);
  const auto sv = stoch::StochasticValue::from_sample(
      std::vector<double>(trace.samples().begin(), trace.samples().end()));
  std::printf("wrote %zu samples to %s (load %s)\n", count, out.c_str(),
              sv.to_string(3).c_str());
  return 0;
}

int cmd_predict(const std::map<std::string, std::string>& opts) {
  const auto spec = platform_by_name(get(opts, "platform"));
  sor::SorConfig cfg;
  cfg.n = std::strtoul(get(opts, "n").c_str(), nullptr, 10);
  cfg.iterations = std::strtoul(get(opts, "iters").c_str(), nullptr, 10);
  const auto loads = parse_loads(get(opts, "loads"));
  if (loads.size() != spec.hosts.size()) {
    usage("need one load per host (" + std::to_string(spec.hosts.size()) +
          ")");
  }
  const auto bwavail = parse_sv(get(opts, "bwavail", "1:0"));

  const predict::SorStructuralModel model(spec, cfg);
  // Bind by slot into the compiled program (model/ir.hpp) — prediction
  // and breakdown share one slot environment.
  const auto env = model.make_slot_env(loads, bwavail);
  const auto prediction = model.predict(env);
  std::printf("prediction: %s s  (point: %.2f s)\n",
              prediction.to_string(2).c_str(), model.predict_point(env));

  if (opts.contains("breakdown")) {
    const auto b = model.breakdown(env);
    support::Table t({"component", "per phase (s)"});
    for (std::size_t p = 0; p < b.comp_per_host.size(); ++p) {
      t.add_row({"compute " + spec.hosts[p].machine.name +
                     (p == b.dominant_host ? " (dominant)" : ""),
                 b.comp_per_host[p].to_string(3)});
    }
    t.add_row({"communication", b.comm_per_phase.to_string(3)});
    t.add_row({"one iteration", b.per_iteration.to_string(3)});
    std::cout << t.render();
  }
  return 0;
}

int cmd_series(const std::map<std::string, std::string>& opts) {
  predict::SeriesConfig cfg;
  cfg.platform = platform_by_name(get(opts, "platform"));
  cfg.sor.n = std::strtoul(get(opts, "n").c_str(), nullptr, 10);
  cfg.sor.iterations = std::strtoul(get(opts, "iters").c_str(), nullptr, 10);
  cfg.sor.real_numerics = false;
  cfg.trials = std::strtoul(get(opts, "trials", "8").c_str(), nullptr, 10);
  cfg.seed = std::strtoull(get(opts, "seed", "20260707").c_str(), nullptr, 10);
  cfg.bwavail = stoch::StochasticValue::from_mean_sd(0.525, 0.06);
  const std::string source = get(opts, "source", "nws");
  if (source == "nws") {
    cfg.load_source = predict::LoadParameterSource::kNwsForecast;
  } else if (source == "sample") {
    cfg.load_source = predict::LoadParameterSource::kRecentSample;
  } else if (source == "mix") {
    cfg.load_source = predict::LoadParameterSource::kModalMix;
  } else {
    usage("unknown --source (nws|sample|mix)");
  }

  const auto outcomes = predict::run_series(cfg);
  support::Table t({"t (s)", "prediction (s)", "actual (s)", "captured"});
  std::size_t captured = 0;
  for (const auto& o : outcomes) {
    const bool in = o.predicted.contains(o.actual);
    if (in) ++captured;
    t.add_row({support::fmt(o.start_time, 0), o.predicted.to_string(1),
               support::fmt(o.actual, 1), in ? "yes" : "no"});
  }
  std::cout << t.render();
  const auto s = predict::score(outcomes);
  const auto ci = stoch::wilson_interval(captured, outcomes.size());
  std::printf(
      "\ncapture %.0f%% (95%% CI %.0f..%.0f%%), max range err %.1f%%, "
      "max point err %.1f%%\n",
      s.capture_fraction * 100.0, ci.lower * 100.0, ci.upper * 100.0,
      s.max_range_error * 100.0, s.max_mean_error * 100.0);
  return 0;
}

int cmd_plan(const std::map<std::string, std::string>& opts) {
  const auto spec = platform_by_name(get(opts, "platform"));
  sor::SorConfig cfg;
  cfg.n = std::strtoul(get(opts, "n").c_str(), nullptr, 10);
  cfg.iterations = std::strtoul(get(opts, "iters").c_str(), nullptr, 10);
  const auto loads = parse_loads(get(opts, "loads"));
  if (loads.size() != spec.hosts.size()) usage("need one load per host");
  const std::string metric_name = get(opts, "metric", "mean");
  predict::PlanMetric metric = predict::PlanMetric::kExpectedTime;
  if (metric_name == "p95") {
    metric = predict::PlanMetric::kP95Time;
  } else if (metric_name == "upper") {
    metric = predict::PlanMetric::kUpperBound;
  } else if (metric_name != "mean") {
    usage("unknown --metric (mean|p95|upper)");
  }

  const auto plans = predict::rank_host_subsets(
      spec, cfg, loads, stoch::StochasticValue(0.525, 0.12), metric);
  support::Table t({"rank", "hosts", "rows", "prediction (s)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, plans.size()); ++i) {
    std::string hosts;
    std::string rows;
    for (std::size_t k = 0; k < plans[i].hosts.size(); ++k) {
      if (k > 0) {
        hosts += "+";
        rows += "/";
      }
      hosts += spec.hosts[plans[i].hosts[k]].machine.name;
      rows += std::to_string(plans[i].rows[k]);
    }
    t.add_row({std::to_string(i + 1), hosts, rows,
               plans[i].predicted.to_string(1)});
  }
  std::cout << t.render();
  return 0;
}

// Serve driver: generate a load trace per host, feed it through the NWS
// service, and loop requests against the prediction service while a
// fresh bindings epoch is published each step.
int cmd_serve(const std::map<std::string, std::string>& opts) {
  const auto spec = platform_by_name(get(opts, "platform", "platform2"));
  serve::ModelSpec model_spec;
  model_spec.app = serve::ModelSpec::App::kSor;
  model_spec.platform = spec;
  model_spec.config.n = std::strtoul(get(opts, "n", "1000").c_str(), nullptr, 10);
  model_spec.config.iterations =
      std::strtoul(get(opts, "iters", "15").c_str(), nullptr, 10);
  const auto requests =
      std::strtoul(get(opts, "requests", "200").c_str(), nullptr, 10);
  const auto workers =
      std::strtoul(get(opts, "workers", "4").c_str(), nullptr, 10);
  const auto shards =
      std::strtoul(get(opts, "shards", "1").c_str(), nullptr, 10);
  const auto mc_every =
      std::strtoul(get(opts, "mc-every", "10").c_str(), nullptr, 10);
  const auto seed = std::strtoull(get(opts, "seed", "1").c_str(), nullptr, 10);
  const double precision =
      std::strtod(get(opts, "precision", "0").c_str(), nullptr);
  const auto max_trials =
      std::strtoul(get(opts, "max-trials", "2000").c_str(), nullptr, 10);

  // Per-host load traces stand in for live CPU sensors; the first
  // kWarmup samples only prime the forecasters.
  constexpr std::size_t kWarmup = 32;
  const std::size_t steps = requests + kWarmup;
  nws::Service nws_service;
  std::vector<std::string> resources;
  std::vector<machine::LoadTrace> traces;
  for (std::size_t h = 0; h < spec.hosts.size(); ++h) {
    resources.push_back("cpu/" + std::to_string(h) + "/" +
                        spec.hosts[h].machine.name);
    traces.push_back(machine::LoadTrace::generate(spec.hosts[h].load, steps,
                                                  1.0, seed + h));
    for (std::size_t t = 0; t < kWarmup; ++t) {
      nws_service.observe(resources[h], traces[h].samples()[t]);
    }
  }

  serve::NwsBridge bridge(nws_service, resources);
  serve::ServiceOptions service_options;
  service_options.workers = workers;
  service_options.shards = shards;
  service_options.enable_cache = !opts.contains("no-cache");
  service_options.enable_coalescing = !opts.contains("no-coalesce");
  service_options.enable_fusion = !opts.contains("no-fuse");
  serve::PredictionService service(service_options);
  service.register_model("sor", model_spec);

  support::RealClock wall;
  const double t0 = wall.now();
  std::vector<std::future<serve::PredictResult>> futures;
  for (std::size_t i = 0; i < requests; ++i) {
    for (std::size_t h = 0; h < spec.hosts.size(); ++h) {
      nws_service.observe(resources[h], traces[h].samples()[kWarmup + i]);
    }
    service.publish_epoch(bridge.publish());
    serve::PredictRequest request;
    request.model_id = "sor";
    request.resources = resources;
    if (mc_every > 0 && i % mc_every == 0) {
      request.mode = serve::Mode::kMonteCarlo;
      request.seed = seed * 1000 + i;
      request.trials = max_trials;
      if (precision > 0.0) {
        request.precision = precision;
        request.precision_relative = true;
      }
    }
    futures.push_back(service.submit(std::move(request)));
  }

  std::size_t ok = 0;
  std::size_t errors = 0;
  std::size_t rejected = 0;
  stoch::StochasticValue last(0.0);
  serve::PredictResult last_mc;
  bool saw_mc = false;
  for (auto& f : futures) {
    const auto result = f.get();
    switch (result.status) {
      case serve::PredictResult::Status::kOk:
        ++ok;
        last = result.value;
        if (result.mc_trials > 0) {
          last_mc = result;
          saw_mc = true;
        }
        break;
      case serve::PredictResult::Status::kError:
        if (errors++ == 0) std::printf("first error: %s\n",
                                       result.error.c_str());
        break;
      case serve::PredictResult::Status::kRejected:
        ++rejected;
        break;
    }
  }
  service.drain();  // workers idle before the snapshot: gauges read 0
  const double elapsed = wall.now() - t0;
  std::printf("served %zu requests in %.3f s (%.0f req/s): "
              "%zu ok, %zu error, %zu shed\n",
              requests, elapsed, double(requests) / elapsed, ok, errors,
              rejected);
  if (ok > 0) std::printf("last prediction: %s s\n", last.to_string(2).c_str());
  if (saw_mc) {
    std::printf("last mc: %zu trials, CI half-width %.4g%s\n",
                last_mc.mc_trials, last_mc.mc_ci_halfwidth,
                last_mc.precision_met ? "" : " (precision NOT met at clamp)");
  }
  std::printf("\n%s", service.metrics().render().c_str());
  if (const auto it = opts.find("metrics-json"); it != opts.end()) {
    const std::string json = service.metrics().render_json();
    if (it->second == "-") {
      std::printf("%s", json.c_str());
    } else {
      std::ofstream out(it->second);
      if (!out) {
        std::cerr << "error: cannot write " << it->second << "\n";
        return 1;
      }
      out << json;
      std::printf("wrote metrics snapshot to %s\n", it->second.c_str());
    }
  }
  return errors == 0 ? 0 : 1;
}

// Cluster driver: the multi-node serving tier (src/dserve/) over the
// same NWS-fed epoch stream as `serve`. Requests consistent-hash onto an
// R-way replica set of ServingNodes; an optional --faults plan (see
// dserve/fault.hpp for the grammar) crashes, slows, or partitions nodes
// mid-stream while the frontend fails over and, on heartbeat, pushes
// stale nodes back to the published epoch.
int cmd_cluster(const std::map<std::string, std::string>& opts) {
  const auto spec = platform_by_name(get(opts, "platform", "platform2"));
  serve::ModelSpec model_spec;
  model_spec.app = serve::ModelSpec::App::kSor;
  model_spec.platform = spec;
  model_spec.config.n = std::strtoul(get(opts, "n", "1000").c_str(), nullptr, 10);
  model_spec.config.iterations =
      std::strtoul(get(opts, "iters", "15").c_str(), nullptr, 10);
  const auto requests =
      std::strtoul(get(opts, "requests", "200").c_str(), nullptr, 10);
  const auto seed = std::strtoull(get(opts, "seed", "1").c_str(), nullptr, 10);

  dserve::ClusterOptions cluster_options;
  cluster_options.nodes =
      std::strtoul(get(opts, "nodes", "3").c_str(), nullptr, 10);
  cluster_options.replicas =
      std::strtoul(get(opts, "replicas", "2").c_str(), nullptr, 10);
  dserve::FaultPlan plan;
  if (const auto it = opts.find("faults"); it != opts.end()) {
    plan = dserve::FaultPlan::parse(it->second);
  }

  constexpr std::size_t kWarmup = 32;
  const std::size_t steps = requests + kWarmup;
  nws::Service nws_service;
  std::vector<std::string> resources;
  std::vector<machine::LoadTrace> traces;
  for (std::size_t h = 0; h < spec.hosts.size(); ++h) {
    resources.push_back("cpu/" + std::to_string(h) + "/" +
                        spec.hosts[h].machine.name);
    traces.push_back(machine::LoadTrace::generate(spec.hosts[h].load, steps,
                                                  1.0, seed + h));
    for (std::size_t t = 0; t < kWarmup; ++t) {
      nws_service.observe(resources[h], traces[h].samples()[t]);
    }
  }
  serve::NwsBridge bridge(nws_service, resources);

  dserve::ClusterFrontend cluster(cluster_options, std::move(plan));
  cluster.register_model("sor", model_spec);
  cluster.publish_epoch(bridge.publish());
  std::printf("replica set for 'sor' (primary first):");
  for (const auto n : cluster.replica_set("sor")) std::printf(" %zu", n);
  std::printf("  — point --faults at the primary to see failover\n");

  support::RealClock wall;
  const double t0 = wall.now();
  std::size_t ok = 0;
  std::size_t errors = 0;
  std::size_t rejected = 0;
  std::size_t failed_over = 0;
  stoch::StochasticValue last(0.0);
  for (std::size_t i = 0; i < requests; ++i) {
    for (std::size_t h = 0; h < spec.hosts.size(); ++h) {
      nws_service.observe(resources[h], traces[h].samples()[kWarmup + i]);
    }
    cluster.publish_epoch(bridge.publish());
    // Heartbeats run on their own cadence in a real deployment; here a
    // tick every 32 requests keeps membership and epochs converging
    // while the stream is the only clock.
    if (i % 32 == 31) (void)cluster.heartbeat_tick();
    serve::PredictRequest request;
    request.model_id = "sor";
    request.resources = resources;
    const auto served = cluster.predict(std::move(request));
    if (served.attempts > 1) ++failed_over;
    switch (served.result.status) {
      case serve::PredictResult::Status::kOk:
        ++ok;
        last = served.result.value;
        break;
      case serve::PredictResult::Status::kError:
        if (errors++ == 0) std::printf("first error: %s\n",
                                       served.result.error.c_str());
        break;
      case serve::PredictResult::Status::kRejected:
        ++rejected;
        break;
    }
  }
  const std::size_t rebalanced = cluster.heartbeat_tick();
  const double elapsed = wall.now() - t0;

  std::printf("cluster served %zu requests in %.3f s (%.0f req/s): "
              "%zu ok, %zu error, %zu shed, %zu failed over\n",
              requests, elapsed, double(requests) / elapsed, ok, errors,
              rejected, failed_over);
  if (ok > 0) std::printf("last prediction: %s s\n", last.to_string(2).c_str());
  std::printf("final heartbeat rebalanced %zu node(s)\n", rebalanced);
  std::printf("\nnode  state    ewma   epoch  served\n");
  for (std::size_t n = 0; n < cluster.nodes(); ++n) {
    const auto health = cluster.membership().health(n);
    const char* state = health.state == dserve::NodeState::kUp ? "up"
                        : health.state == dserve::NodeState::kSuspect
                            ? "suspect"
                            : "down";
    std::printf("%4zu  %-7s  %.3f  %5llu  %6llu\n", n, state,
                health.success_ewma,
                (unsigned long long)cluster.node(n).epoch_version(),
                (unsigned long long)health.successes);
  }
  std::printf("\n%s", cluster.metrics().render().c_str());
  return errors == 0 && ok + rejected == requests ? 0 : 1;
}

// Calibration driver: predict->simulate->report. The experiment harness
// replays per-host load traces through the simulator (predict::run_series);
// each trial's prediction is re-served through a ledger-equipped
// PredictionService, the observed (simulated) runtime is fed back via
// report_observation, and drift detection plus conformal recalibration
// run online over the resulting residual stream.
int cmd_calibrate(const std::map<std::string, std::string>& opts) {
  predict::SeriesConfig cfg;
  cfg.platform = platform_by_name(get(opts, "platform", "platform2"));
  cfg.sor.n = std::strtoul(get(opts, "n", "1000").c_str(), nullptr, 10);
  cfg.sor.iterations =
      std::strtoul(get(opts, "iters", "15").c_str(), nullptr, 10);
  cfg.sor.real_numerics = false;
  cfg.trials = std::strtoul(get(opts, "trials", "16").c_str(), nullptr, 10);
  cfg.seed = std::strtoull(get(opts, "seed", "20260707").c_str(), nullptr, 10);
  cfg.bwavail = stoch::StochasticValue::from_mean_sd(0.525, 0.06);
  const std::string source = get(opts, "source", "nws");
  if (source == "nws") {
    cfg.load_source = predict::LoadParameterSource::kNwsForecast;
  } else if (source == "sample") {
    cfg.load_source = predict::LoadParameterSource::kRecentSample;
  } else if (source == "mix") {
    cfg.load_source = predict::LoadParameterSource::kModalMix;
  } else {
    usage("unknown --source (nws|sample|mix)");
  }
  const auto window =
      std::strtoul(get(opts, "window", "64").c_str(), nullptr, 10);
  const double drift_lambda = std::stod(get(opts, "drift-lambda", "12"));

  const auto outcomes = predict::run_series(cfg);

  calib::LedgerOptions ledger_options;
  ledger_options.coverage_window = window;
  auto ledger = std::make_shared<calib::AccuracyLedger>(ledger_options);

  serve::ServiceOptions service_options;
  service_options.workers = 2;
  service_options.ledger = ledger;
  serve::PredictionService service(service_options);
  serve::ModelSpec model_spec;
  model_spec.app = serve::ModelSpec::App::kSor;
  model_spec.platform = cfg.platform;
  model_spec.config = cfg.sor;
  service.register_model("sor", model_spec);

  // Drift alarms are stamped in the series' virtual time.
  auto virtual_clock = std::make_shared<support::FakeClock>();
  calib::DriftMonitorOptions drift_options;
  drift_options.page_hinkley.lambda = drift_lambda;
  drift_options.coverage.window = std::max<std::size_t>(window / 4, 8);
  calib::DriftMonitor drift(drift_options, virtual_clock);

  calib::RecalibratorOptions recal_options;
  recal_options.window = window;
  recal_options.min_samples = std::min<std::size_t>(window / 4 + 2, 20);
  calib::ConformalRecalibrator recal(recal_options);

  support::Table t({"t (s)", "predicted (s)", "recalibrated (s)",
                    "actual (s)", "raw", "cal", "scale"});
  std::size_t raw_inside = 0;
  std::size_t cal_inside = 0;
  for (const auto& o : outcomes) {
    serve::PredictRequest request;
    request.model_id = "sor";
    request.loads = o.load_params;
    request.bwavail = cfg.bwavail;
    const auto result = service.submit(std::move(request)).get();
    if (!result.ok()) {
      std::cerr << "error: " << result.error << "\n";
      return 1;
    }
    // Apply the scale learned from the trials seen so far (online loop),
    // then report the observation so the ledger and window move on.
    const auto scaled = recal.apply("sor", result.value);
    const bool in_raw = result.value.contains(o.actual);
    const bool in_cal = scaled.contains(o.actual);
    if (in_raw) ++raw_inside;
    if (in_cal) ++cal_inside;
    virtual_clock->set(o.start_time);
    if (!result.value.is_point()) {
      drift.update("sor", (o.actual - result.value.mean()) / result.value.sd(),
                   in_raw);
    }
    service.report_observation(result.request_id, o.actual);
    recal.record("sor", result.value, o.actual);
    t.add_row({support::fmt(o.start_time, 0), result.value.to_string(1),
               scaled.to_string(1), support::fmt(o.actual, 1),
               in_raw ? "yes" : "no", in_cal ? "yes" : "no",
               support::fmt(recal.scale("sor"), 2)});
  }
  std::cout << t.render();

  const auto s = ledger->snapshot("sor");
  std::printf("\ncalibration report (%zu observations, nominal %.0f%%)\n",
              std::size_t(s.count), s.nominal_coverage * 100.0);
  std::printf("  coverage          raw %.1f%% | recalibrated %.1f%% | "
              "rolling(%zu) %.1f%%\n",
              100.0 * double(raw_inside) / double(outcomes.size()),
              100.0 * double(cal_inside) / double(outcomes.size()),
              std::size_t(s.rolling_count), s.rolling_coverage * 100.0);
  std::printf("  sharpness         mean halfwidth %.3f s\n", s.sharpness);
  std::printf("  proper scores     CRPS %.4f | pinball %.4f\n", s.mean_crps,
              s.mean_pinball);
  std::printf("  residuals         z mean %+.3f sd %.3f | |z| q%.0f %.3f "
              "(2.0 when calibrated)\n",
              s.z_mean, s.z_sd, s.nominal_coverage * 100.0, s.abs_z_quantile);
  std::printf("  conformal scale   %.3f (window %zu)\n", recal.scale("sor"),
              std::size_t(recal.count("sor")));
  const auto alarms = drift.alarms();
  if (alarms.empty()) {
    std::printf("  drift             none detected\n");
  } else {
    for (const auto& a : alarms) {
      std::printf("  drift             %s alarm at trial %zu (t=%.0f s)\n",
                  a.detector.c_str(), std::size_t(a.observation), a.time);
    }
  }
  service.drain();  // workers idle before the snapshot: gauges read 0
  std::printf("\n%s", service.metrics().render().c_str());
  return 0;
}

// Learning driver: the calibrate loop with the learned-predictor bank
// enabled. An unmodeled runtime drift (observed runtimes scaled by
// --drift-scale from trial --drift-at on) makes the structural model go
// stale; the RLS bank tracks the drifted stream and the arbiter flips
// the serving source once the learned candidate's rolling CRPS wins
// with hysteresis. Prints the per-model arbitration table, the bank
// snapshot and the learn/ metrics subtree.
int cmd_learn(const std::map<std::string, std::string>& opts) {
  predict::SeriesConfig cfg;
  cfg.platform = platform_by_name(get(opts, "platform", "platform2"));
  cfg.sor.n = std::strtoul(get(opts, "n", "1000").c_str(), nullptr, 10);
  cfg.sor.iterations =
      std::strtoul(get(opts, "iters", "15").c_str(), nullptr, 10);
  cfg.sor.real_numerics = false;
  cfg.trials = std::strtoul(get(opts, "trials", "128").c_str(), nullptr, 10);
  cfg.seed = std::strtoull(get(opts, "seed", "20260808").c_str(), nullptr, 10);
  cfg.bwavail = stoch::StochasticValue::from_mean_sd(0.525, 0.06);
  const std::string source = get(opts, "source", "nws");
  if (source == "nws") {
    cfg.load_source = predict::LoadParameterSource::kNwsForecast;
  } else if (source == "sample") {
    cfg.load_source = predict::LoadParameterSource::kRecentSample;
  } else if (source == "mix") {
    cfg.load_source = predict::LoadParameterSource::kModalMix;
  } else {
    usage("unknown --source (nws|sample|mix)");
  }
  const auto drift_at = std::strtoul(
      get(opts, "drift-at", std::to_string(cfg.trials / 2)).c_str(), nullptr,
      10);
  const double drift_scale = std::stod(get(opts, "drift-scale", "1.4"));

  const auto outcomes = predict::run_series(cfg);

  auto ledger = std::make_shared<calib::AccuracyLedger>();

  serve::ServiceOptions service_options;
  service_options.workers = 2;
  service_options.ledger = ledger;
  service_options.enable_learning = true;
  serve::PredictionService service(service_options);
  serve::ModelSpec model_spec;
  model_spec.app = serve::ModelSpec::App::kSor;
  model_spec.platform = cfg.platform;
  model_spec.config = cfg.sor;
  service.register_model("sor", model_spec);

  // Sequential submit->get->report loop: learning state is read at
  // execute time and trained at report time, so the stream is
  // deterministic for a fixed seed.
  learn::Source serving = learn::Source::kStructural;
  std::vector<std::size_t> flip_trials;
  std::size_t trial = 0;
  for (const auto& o : outcomes) {
    serve::PredictRequest request;
    request.model_id = "sor";
    request.loads = o.load_params;
    request.bwavail = cfg.bwavail;
    const auto result = service.submit(std::move(request)).get();
    if (!result.ok()) {
      std::cerr << "error: " << result.error << "\n";
      return 1;
    }
    const double observed =
        trial >= drift_at ? o.actual * drift_scale : o.actual;
    service.report_observation(result.request_id, observed);
    const auto now = service.arbiter()->source("sor");
    if (now != serving) {
      flip_trials.push_back(trial);
      serving = now;
    }
    ++trial;
  }
  service.drain();

  std::printf("learned-predictor arbitration (%zu trials, drift x%.2f at "
              "trial %zu)\n\n",
              outcomes.size(), drift_scale, std::size_t(drift_at));
  support::Table t({"model", "serving", "obs", "flips", "blend_w",
                    "crps[S]", "crps[L]", "crps[B]", "cov[S]", "cov[L]",
                    "cov[B]"});
  for (const auto& row : service.arbiter()->table()) {
    t.add_row({row.model_id, learn::source_name(row.serving),
               std::to_string(row.observations), std::to_string(row.flips),
               support::fmt(row.blend_weight, 2),
               support::fmt(row.structural.rolling_crps, 4),
               support::fmt(row.learned.rolling_crps, 4),
               support::fmt(row.blended.rolling_crps, 4),
               support::fmt_pct(row.structural.rolling_coverage),
               support::fmt_pct(row.learned.rolling_coverage),
               support::fmt_pct(row.blended.rolling_coverage)});
  }
  std::cout << t.render();

  if (flip_trials.empty()) {
    std::printf("\nserving source never left structural\n");
  } else {
    std::printf("\nserving-source flips at trial(s):");
    for (const std::size_t f : flip_trials) std::printf(" %zu", f);
    std::printf("\n");
  }

  std::printf("\npredictor bank\n");
  support::Table b({"structure key", "obs", "innovation sd", "dim"});
  for (const auto& row : service.bank()->snapshot()) {
    const std::string key = row.structure_key.size() > 40
                                ? row.structure_key.substr(0, 37) + "..."
                                : row.structure_key;
    b.add_row({key, std::to_string(row.observations),
               support::fmt(row.innovation_sd, 4),
               std::to_string(row.coefficients.size())});
  }
  std::cout << b.render();

  const auto s = ledger->snapshot("sor");
  std::printf("\nserved stream: rolling coverage %.1f%% over %zu | "
              "rolling CRPS %.4f\n",
              s.rolling_coverage * 100.0, std::size_t(s.rolling_count),
              s.rolling_crps);
  std::printf("\n%s", service.metrics().render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const auto opts = parse_options(argc, argv, 2);
  try {
    if (command == "platforms") return cmd_platforms();
    if (command == "trace") return cmd_trace(opts);
    if (command == "predict") return cmd_predict(opts);
    if (command == "series") return cmd_series(opts);
    if (command == "plan") return cmd_plan(opts);
    if (command == "serve") return cmd_serve(opts);
    if (command == "calibrate") return cmd_calibrate(opts);
    if (command == "cluster") return cmd_cluster(opts);
    if (command == "learn") return cmd_learn(opts);
    usage("unknown command: " + command);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
