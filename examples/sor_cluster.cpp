// Full pipeline on a production cluster: platform -> NWS stochastic load
// -> structural prediction -> real distributed SOR run -> scoring.
//
// This is the paper's §3 experiment as a ten-line user program.
//
// Run: ./build/examples/sor_cluster [N] [iterations] [trials]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "predict/experiment.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace sspred;

  predict::SeriesConfig cfg;
  cfg.platform = cluster::platform2();  // bursty 4-host production cluster
  cfg.sor.n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;
  cfg.sor.iterations = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 15;
  cfg.trials = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;
  cfg.sor.real_numerics = true;  // actually solve the PDE
  cfg.load_source = predict::LoadParameterSource::kNwsForecast;
  cfg.bwavail = stoch::StochasticValue::from_mean_sd(0.525, 0.06);

  std::cout << "platform: " << cfg.platform.name << " ("
            << cfg.platform.hosts.size() << " hosts, shared 10 Mbit "
            << "ethernet)\nproblem: " << cfg.sor.n << "x" << cfg.sor.n
            << " Red-Black SOR, " << cfg.sor.iterations << " iterations, "
            << cfg.trials << " trials\n\n";

  const auto outcomes = predict::run_series(cfg);

  support::Table t({"trial start", "stochastic prediction", "actual",
                    "captured?"});
  for (const auto& o : outcomes) {
    t.add_row({support::fmt(o.start_time, 0) + " s",
               o.predicted.to_string(1) + " s",
               support::fmt(o.actual, 1) + " s",
               o.predicted.contains(o.actual) ? "yes" : "no"});
  }
  std::cout << t.render();

  const auto s = predict::score(outcomes);
  std::printf(
      "\ncapture: %.0f%%   max out-of-range error: %.1f%%   max point-value "
      "error: %.1f%%\n",
      s.capture_fraction * 100.0, s.max_range_error * 100.0,
      s.max_mean_error * 100.0);
  std::cout << "\nThe stochastic range brackets production behaviour that a "
               "single point\nvalue misrepresents — the paper's headline "
               "result.\n";
  return 0;
}
