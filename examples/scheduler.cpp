// Application-level scheduling end-to-end: measure the cluster with the
// NWS clone, rank host subsets by stochastic predictions, run the chosen
// plan — and check the prediction held.
//
// Run: ./build/examples/scheduler [N]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "nws/sensor.hpp"
#include "nws/service.hpp"
#include "predict/host_selection.hpp"
#include "sor/distributed.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace sspred;

  sor::SorConfig cfg;
  cfg.n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1000;
  cfg.iterations = 15;

  const auto spec = cluster::platform1();
  sim::Engine engine;
  cluster::Platform platform(engine, spec, 2026);

  // 1. Watch the cluster for five minutes.
  nws::Service service;
  nws::attach_cpu_sensors(engine, platform, service, 5.0, 300.0);
  engine.run();
  std::vector<stoch::StochasticValue> loads;
  std::cout << "NWS view of the cluster after 300 s:\n";
  for (std::size_t p = 0; p < platform.size(); ++p) {
    const auto fc = service.forecast(nws::cpu_resource(platform.machine(p)));
    loads.push_back(fc.sv());
    std::printf("  %-10s load %s (forecaster: %s)\n",
                platform.machine(p).spec().name.c_str(),
                fc.sv().to_string(3).c_str(), fc.forecaster.c_str());
  }

  // 2. Rank the host subsets.
  const auto plans = predict::rank_host_subsets(
      spec, cfg, loads, {0.525, 0.12}, predict::PlanMetric::kExpectedTime);
  std::cout << "\ntop plans for a " << cfg.n << "x" << cfg.n << " SOR ("
            << cfg.iterations << " iterations):\n";
  support::Table t({"hosts", "rows", "prediction (s)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(4, plans.size()); ++i) {
    std::string hosts;
    std::string rows;
    for (std::size_t k = 0; k < plans[i].hosts.size(); ++k) {
      if (k > 0) {
        hosts += "+";
        rows += "/";
      }
      hosts += spec.hosts[plans[i].hosts[k]].machine.name;
      rows += std::to_string(plans[i].rows[k]);
    }
    t.add_row({hosts, rows, plans[i].predicted.to_string(1)});
  }
  std::cout << t.render();

  // 3. Execute the winner on its subset of the cluster and score it.
  const auto& best = plans.front();
  cfg.rows_per_rank.assign(best.rows.begin(), best.rows.end());
  sim::Engine run_engine;
  cluster::Platform run_platform(run_engine, best.subset_spec(spec), 2026);
  const auto result = sor::run_distributed_sor(run_engine, run_platform, cfg);

  std::cout << "\nexecuted the top plan: actual "
            << support::fmt(result.total_time, 1) << " s, predicted "
            << best.predicted.to_string(1) << " s -> "
            << (best.predicted.contains(result.total_time)
                    ? "inside the predicted range"
                    : "outside the predicted range")
            << "\n(residual after " << cfg.iterations
            << " iterations: " << support::fmt(result.residual, 2)
            << " — a scheduling demo, not a converged solve)\n";
  return 0;
}
