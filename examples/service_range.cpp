// Service ranges instead of hard QoS guarantees (paper §1.2).
//
// A stochastic execution-time prediction is a distribution, so instead of
// promising one number you can promise a band with a confidence — and
// price deadlines by the probability of missing them.
//
// Run: ./build/examples/service_range
#include <cstdio>
#include <iostream>

#include "predict/sor_model.hpp"
#include "stoch/service_range.hpp"
#include "support/table.hpp"

int main() {
  using namespace sspred;

  // A production prediction for an SOR run on Platform 1.
  const auto spec = cluster::platform1();
  sor::SorConfig cfg;
  cfg.n = 1600;
  cfg.iterations = 20;
  const predict::SorStructuralModel model(spec, cfg);
  const std::vector<stoch::StochasticValue> loads{
      stoch::StochasticValue(0.48, 0.05), stoch::StochasticValue(0.92, 0.03),
      stoch::StochasticValue(0.92, 0.03), stoch::StochasticValue(0.92, 0.03)};
  const stoch::StochasticValue prediction =
      model.predict(model.make_env(loads, {0.525, 0.12}));

  std::cout << "prediction: " << prediction << " s\n\n";

  support::Table bands({"confidence", "service range (s)"});
  for (double c : {0.80, 0.90, 0.95, 0.99}) {
    const auto r = stoch::service_range(prediction, c);
    bands.add_row({support::fmt_pct(c, 0),
                   support::fmt(r.lower, 1) + " .. " + support::fmt(r.upper, 1)});
  }
  std::cout << bands.render() << "\n";

  support::Table deadlines({"deadline (s)", "P(miss)"});
  for (double mult : {1.0, 1.05, 1.10, 1.20}) {
    const double d = prediction.mean() * mult;
    deadlines.add_row(
        {support::fmt(d, 1),
         support::fmt_pct(stoch::probability_above(prediction, d), 1)});
  }
  std::cout << deadlines.render();

  const double safe = stoch::deadline_for(prediction, 0.95);
  std::cout << "\nTo be on time 95% of runs, budget "
            << support::fmt(safe, 1) << " s ("
            << support::fmt_pct(safe / prediction.mean() - 1.0, 1)
            << " above the mean). Poor performance is tolerated the small\n"
               "percentage of the time the paper's service-range idea "
               "anticipates.\n";
  return 0;
}
