// Using the NWS clone directly: sensors sample a bursty machine inside the
// simulation; the forecaster bank postcasts the history, picks its best
// predictor dynamically, and reports stochastic load values over time.
//
// Run: ./build/examples/nws_forecast
#include <cstdio>
#include <iostream>

#include "nws/sensor.hpp"
#include "nws/service.hpp"
#include "support/table.hpp"

int main() {
  using namespace sspred;

  sim::Engine engine;
  cluster::Platform platform(engine, cluster::platform2(), 99);
  machine::Machine& host = platform.machine(0);
  nws::Service service;

  std::cout << "monitoring " << host.spec().name
            << " (bursty 4-modal load), NWS sampling every 5 s\n\n";

  support::Table t({"virtual time", "current load", "forecast (stochastic)",
                    "winning forecaster"});
  // Sense for 5 minutes, forecast, repeat — the NWS usage loop.
  for (int round = 1; round <= 6; ++round) {
    const double until = 300.0 * round;
    engine.spawn(nws::cpu_sensor(engine, host, service, 5.0, until));
    engine.run();
    const auto fc = service.forecast(nws::cpu_resource(host));
    t.add_row({support::fmt(engine.now(), 0) + " s",
               support::fmt(host.availability(engine.now()), 2),
               fc.sv().to_string(3), fc.forecaster});
  }
  std::cout << t.render();

  std::cout << "\nThe forecast's ± term is the postcast RMSE of the winning "
               "forecaster —\nexactly the 'quality of information' the "
               "paper feeds into its predictions.\n";
  return 0;
}
