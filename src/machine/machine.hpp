// Machine model: a heterogeneous workstation with a CPU-availability trace.
//
// Speeds are expressed as the benchmark time to process one data element
// on the dedicated machine — the paper's BM(Elt_p) model parameter — so a
// computation of `n` elements costs n * bm_seconds_per_element dedicated
// seconds, stretched by the availability trace in production.
#pragma once

#include <string>

#include "machine/load_trace.hpp"
#include "support/units.hpp"

namespace sspred::machine {

/// Static machine description (the 1997-era workstation zoo).
struct MachineSpec {
  std::string name;
  /// Dedicated benchmark time per data element (BM(Elt_p)), seconds.
  double bm_seconds_per_element = 1e-6;
  /// Sustained operation rate (CPU_p in the paper's op-count component
  /// model Comp = NumElt·Op/CPU). Consistent with the benchmark form when
  /// ops_per_second == ops_per_element / bm_seconds_per_element.
  double ops_per_second = 6.0e6;
  /// Data elements that fit in main memory. Working sets beyond this
  /// thrash: per-element cost inflates (paper Fig. 9 holds "for problem
  /// sizes which fit within main memory" — this models why).
  double memory_elements = 64.0e6;
  /// Slope of the thrashing penalty: slowdown = 1 + slope·(ws/mem - 1)
  /// for working sets beyond memory, capped at 16x.
  double thrash_slope = 4.0;

  /// Thrashing multiplier for a resident working set of `working_set`
  /// data elements.
  [[nodiscard]] double slowdown_factor(double working_set) const noexcept;
};

/// Reference specs used by the shipped platforms. Rough relative speeds of
/// the paper's machines (Sparc-2 slowest ... UltraSparc fastest).
[[nodiscard]] MachineSpec sparc2_spec(std::string name = "sparc2");
[[nodiscard]] MachineSpec sparc5_spec(std::string name = "sparc5");
[[nodiscard]] MachineSpec sparc10_spec(std::string name = "sparc10");
[[nodiscard]] MachineSpec ultrasparc_spec(std::string name = "ultra");

/// A machine instance: spec + availability trace for one simulated run.
class Machine {
 public:
  Machine(MachineSpec spec, LoadTrace trace);

  [[nodiscard]] const MachineSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const LoadTrace& trace() const noexcept { return trace_; }

  /// CPU fraction available at virtual time t.
  [[nodiscard]] double availability(support::Seconds t) const noexcept {
    return trace_.at(t);
  }

  /// Virtual completion time of `dedicated_seconds` of work started at t.
  [[nodiscard]] support::Seconds finish_time(
      support::Seconds t, support::Seconds dedicated_seconds) const {
    return trace_.finish_time(t, dedicated_seconds);
  }

  /// Dedicated cost of processing `elements` data elements.
  [[nodiscard]] support::Seconds element_work(double elements) const noexcept {
    return elements * spec_.bm_seconds_per_element;
  }

  /// Thrashing multiplier for a resident working set of `working_set`
  /// data elements: 1.0 while it fits in memory, growing linearly (capped
  /// at 16x) beyond it.
  [[nodiscard]] double slowdown_factor(double working_set) const noexcept {
    return spec_.slowdown_factor(working_set);
  }

  /// Dedicated cost of `elements` updates while `working_set` elements
  /// are resident.
  [[nodiscard]] support::Seconds element_work(double elements,
                                              double working_set) const noexcept {
    return element_work(elements) * slowdown_factor(working_set);
  }

  /// Replaces the availability trace (e.g. a fresh trace per trial).
  void set_trace(LoadTrace trace) { trace_ = std::move(trace); }

 private:
  MachineSpec spec_;
  LoadTrace trace_;
};

}  // namespace sspred::machine
