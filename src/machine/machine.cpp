#include "machine/machine.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sspred::machine {

namespace {
MachineSpec make_spec(std::string name, double sec_per_elem,
                      double memory_elements) {
  MachineSpec spec;
  spec.name = std::move(name);
  spec.bm_seconds_per_element = sec_per_elem;
  spec.memory_elements = memory_elements;
  // A red/black stencil update is ~6 operations; the op-count and
  // benchmark component models then agree.
  spec.ops_per_second = 6.0 / sec_per_elem;
  return spec;
}
}  // namespace

// Dedicated per-element stencil-update benchmark times, calibrated so a
// quarter strip of a 1000-2000 grid takes seconds per iteration on the
// slow machines — the regime of the paper's Fig. 9/12 run times (1997-era
// Sparcs were MFLOP-class, and a stencil update is several flops plus
// memory traffic).
// Memory capacities (in resident data elements) follow the machines'
// era RAM sizes; a strip's working set is two arrays of (rows+2)x(n+2).
MachineSpec sparc2_spec(std::string name) {
  return make_spec(std::move(name), 4.0e-6, 3.0e6);
}
MachineSpec sparc5_spec(std::string name) {
  return make_spec(std::move(name), 1.6e-6, 4.0e6);
}
MachineSpec sparc10_spec(std::string name) {
  return make_spec(std::move(name), 1.0e-6, 6.0e6);
}
MachineSpec ultrasparc_spec(std::string name) {
  return make_spec(std::move(name), 4.0e-7, 12.0e6);
}

double MachineSpec::slowdown_factor(double working_set) const noexcept {
  if (working_set <= memory_elements) return 1.0;
  const double excess = working_set / memory_elements - 1.0;
  return std::min(1.0 + thrash_slope * excess, 16.0);
}

Machine::Machine(MachineSpec spec, LoadTrace trace)
    : spec_(std::move(spec)), trace_(std::move(trace)) {
  SSPRED_REQUIRE(spec_.bm_seconds_per_element > 0.0,
                 "benchmark time per element must be positive");
  SSPRED_REQUIRE(spec_.memory_elements > 0.0,
                 "memory capacity must be positive");
}

}  // namespace sspred::machine
