// Piecewise-constant CPU-availability traces.
//
// A LoadTrace holds the fraction of CPU available to the application
// (0..1] sampled at a fixed interval — the quantity the paper's load
// figures plot and its computation component models divide by. Traces are
// pre-generated per machine per run, which keeps the simulation
// deterministic and lets the same run be both measured (by the NWS clone)
// and re-executed (by the SOR app).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stats/modal_sampler.hpp"
#include "support/units.hpp"

namespace sspred::machine {

class LoadTrace {
 public:
  /// Trace with samples[i] in effect over [i*dt, (i+1)*dt). Values must be
  /// in (0, 1]; the last value persists beyond the trace end.
  LoadTrace(support::Seconds dt, std::vector<double> samples);

  /// Dedicated machine: availability identically `level` (default 1.0).
  [[nodiscard]] static LoadTrace constant(double level = 1.0);

  /// Generates `count` samples from a modal process.
  [[nodiscard]] static LoadTrace generate(const stats::ModalProcessSpec& spec,
                                          std::size_t count,
                                          support::Seconds dt,
                                          std::uint64_t seed);

  /// Failure injection: returns a copy whose availability collapses to
  /// `residual` (default: nearly frozen) over [t0, t1) — a machine
  /// seizure, a runaway job, a paging storm. Samples outside the window
  /// are untouched.
  [[nodiscard]] LoadTrace with_freeze(support::Seconds t0, support::Seconds t1,
                                      double residual = 0.02) const;

  /// Persists the trace as CSV (header `t,availability`) for external
  /// analysis or replay. Throws support::Error on I/O failure.
  void save_csv(const std::string& path) const;

  /// Loads a trace previously written by save_csv. The sample interval is
  /// recovered from the first two timestamps.
  [[nodiscard]] static LoadTrace load_csv(const std::string& path);

  /// Availability at time t (t < 0 uses the first sample).
  [[nodiscard]] double at(support::Seconds t) const noexcept;

  /// Mean availability over [t0, t1] (exact integral of the step function).
  [[nodiscard]] double average(support::Seconds t0, support::Seconds t1) const;

  /// Virtual time at which `work` dedicated-seconds of computation finish
  /// when started at `start`: solves  ∫_start^T avail(t) dt = work.
  [[nodiscard]] support::Seconds finish_time(support::Seconds start,
                                             support::Seconds work) const;

  [[nodiscard]] support::Seconds sample_interval() const noexcept { return dt_; }
  [[nodiscard]] support::Seconds duration() const noexcept {
    return dt_ * static_cast<double>(samples_.size());
  }
  [[nodiscard]] std::span<const double> samples() const noexcept {
    return samples_;
  }

 private:
  support::Seconds dt_;
  std::vector<double> samples_;
};

}  // namespace sspred::machine
