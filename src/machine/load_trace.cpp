#include "machine/load_trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "support/csv.hpp"
#include "support/error.hpp"

namespace sspred::machine {

LoadTrace::LoadTrace(support::Seconds dt, std::vector<double> samples)
    : dt_(dt), samples_(std::move(samples)) {
  SSPRED_REQUIRE(dt > 0.0, "trace interval must be positive");
  SSPRED_REQUIRE(!samples_.empty(), "trace needs at least one sample");
  for (double s : samples_) {
    SSPRED_REQUIRE(s > 0.0 && s <= 1.0, "availability must be in (0, 1]");
  }
}

LoadTrace LoadTrace::constant(double level) {
  return LoadTrace(1.0, std::vector<double>{level});
}

LoadTrace LoadTrace::generate(const stats::ModalProcessSpec& spec,
                              std::size_t count, support::Seconds dt,
                              std::uint64_t seed) {
  stats::ModalProcess process(spec, seed);
  std::vector<double> samples = stats::generate_samples(process, count, dt);
  // The generator clamps to [spec.lo, spec.hi]; enforce the (0,1] contract.
  for (double& s : samples) s = std::clamp(s, 1e-3, 1.0);
  return LoadTrace(dt, std::move(samples));
}

LoadTrace LoadTrace::with_freeze(support::Seconds t0, support::Seconds t1,
                                 double residual) const {
  SSPRED_REQUIRE(t1 > t0 && t0 >= 0.0, "freeze window must be non-empty");
  SSPRED_REQUIRE(residual > 0.0 && residual <= 1.0,
                 "freeze residual must be in (0,1]");
  std::vector<double> samples(samples_.begin(), samples_.end());
  const auto first = static_cast<std::size_t>(t0 / dt_);
  const auto last = static_cast<std::size_t>(t1 / dt_);
  for (std::size_t i = first; i < std::min(last, samples.size()); ++i) {
    samples[i] = std::min(samples[i], residual);
  }
  return LoadTrace(dt_, std::move(samples));
}

void LoadTrace::save_csv(const std::string& path) const {
  support::CsvWriter writer(path, {"t", "availability"});
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    writer.write_row({static_cast<double>(i) * dt_, samples_[i]});
  }
}

LoadTrace LoadTrace::load_csv(const std::string& path) {
  std::ifstream in(path);
  SSPRED_REQUIRE(in.good(), "cannot open trace file: " + path);
  std::string line;
  SSPRED_REQUIRE(static_cast<bool>(std::getline(in, line)),
                 "trace file is empty: " + path);
  SSPRED_REQUIRE(line == "t,availability",
                 "unexpected trace header in " + path);
  std::vector<double> times;
  std::vector<double> samples;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto comma = line.find(',');
    SSPRED_REQUIRE(comma != std::string::npos,
                   "malformed trace row in " + path);
    times.push_back(std::stod(line.substr(0, comma)));
    samples.push_back(std::stod(line.substr(comma + 1)));
  }
  SSPRED_REQUIRE(samples.size() >= 1, "trace file has no samples: " + path);
  const support::Seconds dt =
      times.size() >= 2 ? times[1] - times[0] : 1.0;
  return LoadTrace(dt, std::move(samples));
}

double LoadTrace::at(support::Seconds t) const noexcept {
  if (t < 0.0) return samples_.front();
  const auto idx = static_cast<std::size_t>(t / dt_);
  return idx < samples_.size() ? samples_[idx] : samples_.back();
}

double LoadTrace::average(support::Seconds t0, support::Seconds t1) const {
  SSPRED_REQUIRE(t1 > t0, "average needs a non-empty interval");
  // Integrate the step function exactly, segment by segment.
  double integral = 0.0;
  support::Seconds t = t0;
  while (t < t1) {
    const auto idx = static_cast<std::size_t>(std::max(t, 0.0) / dt_);
    const support::Seconds seg_end =
        idx < samples_.size() ? dt_ * static_cast<double>(idx + 1)
                              : t1;  // last value persists to t1
    const support::Seconds step_end = std::min(t1, seg_end);
    integral += at(t) * (step_end - t);
    t = step_end;
  }
  return integral / (t1 - t0);
}

support::Seconds LoadTrace::finish_time(support::Seconds start,
                                        support::Seconds work) const {
  SSPRED_REQUIRE(work >= 0.0, "work must be non-negative");
  SSPRED_REQUIRE(start >= 0.0, "start must be non-negative");
  if (work == 0.0) return start;
  support::Seconds t = start;
  double remaining = work;
  for (;;) {
    const auto idx = static_cast<std::size_t>(t / dt_);
    const double avail = idx < samples_.size() ? samples_[idx] : samples_.back();
    if (idx >= samples_.size()) {
      // Beyond the trace: constant availability forever.
      return t + remaining / avail;
    }
    const support::Seconds seg_end = dt_ * static_cast<double>(idx + 1);
    const double capacity = avail * (seg_end - t);
    if (capacity >= remaining) return t + remaining / avail;
    remaining -= capacity;
    t = seg_end;
  }
}

}  // namespace sspred::machine
