// Fault injection for the simulated cluster.
//
// The paper's production environments lose machines, slow down, and come
// back; the serving tier must degrade predictably under exactly those
// faults. This header gives the cluster a deterministic fault model:
//
//   FaultPlan  — a schedule of fault events keyed by the frontend's
//                request-step counter (NOT wall-clock), so a fixed plan
//                against a fixed request stream reproduces the same
//                failure history on every run — the property the
//                failover-determinism tests pin.
//   FaultyLink — a Transport decorator that injects LINK faults (drop
//                the next N frames, add a fixed delay per frame) between
//                the frontend and one node. NODE faults (crash, restart,
//                slowdown) act on the ServingNode itself; the frontend
//                applies both kinds from the plan.
//
// Plans parse from a compact spec (the `bench/loadgen --faults` flag):
//
//   crash@100:1            crash node 1 at step 100
//   restart@300:1          restart node 1 (fresh state) at step 300
//   slow@50:2:0.002        from step 50, node 2 serves 2ms slower
//   drop@10:0:5            at step 10, node 0's link eats the next 5 frames
//   delay@20:1:0.001       from step 20, node 1's link adds 1ms per frame
//
// joined with commas: "crash@100:1,restart@300:1".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dserve/transport.hpp"

namespace sspred::dserve {

struct FaultEvent {
  enum class Kind {
    kCrash,    ///< node fail-stops (new frames unanswered; state lost)
    kRestart,  ///< node comes back empty (no epoch, cold caches)
    kSlow,     ///< node adds `param` seconds of service time per frame
    kDrop,     ///< link swallows the next `param` frames
    kDelay,    ///< link adds `param` seconds of latency per frame
  };
  Kind kind = Kind::kCrash;
  std::uint64_t step = 0;  ///< frontend request step the event fires at
  std::size_t node = 0;
  double param = 0.0;
};

/// An ordered, consumable schedule of fault events. Not thread-safe by
/// itself; the frontend serializes take_due() under its fault mutex.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the comma-joined spec grammar above. Throws support::Error
  /// naming the offending token on any malformation.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  void add(FaultEvent event);

  /// Removes and returns every not-yet-fired event with step <= `step`,
  /// in schedule order.
  [[nodiscard]] std::vector<FaultEvent> take_due(std::uint64_t step);

  [[nodiscard]] bool empty() const noexcept { return next_ >= events_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return events_.size() - next_;
  }
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }

 private:
  std::vector<FaultEvent> events_;  ///< sorted by (step, insertion)
  std::size_t next_ = 0;            ///< first unfired event
};

/// Transport decorator injecting link faults between the frontend and
/// one node. Thread-safe: faults are armed from the fault-application
/// path while client threads stream calls through.
class FaultyLink final : public Transport {
 public:
  /// `inner` must outlive the link.
  explicit FaultyLink(Transport& inner) : inner_(inner) {}

  [[nodiscard]] std::optional<std::vector<std::uint8_t>> call(
      const std::vector<std::uint8_t>& frame) override;

  /// Arms the link to swallow the next `frames` calls (cumulative).
  void drop_next(std::uint64_t frames) noexcept {
    drop_remaining_.fetch_add(frames, std::memory_order_relaxed);
  }
  /// Fixed extra latency added to every subsequent call (0: none).
  void set_delay(double seconds) noexcept;

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t delayed() const noexcept {
    return delayed_.load(std::memory_order_relaxed);
  }

 private:
  Transport& inner_;
  std::atomic<std::int64_t> drop_remaining_{0};
  std::atomic<std::int64_t> delay_ns_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> delayed_{0};
};

}  // namespace sspred::dserve
