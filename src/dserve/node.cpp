#include "dserve/node.hpp"

#include <chrono>
#include <thread>

#include "serve/wire.hpp"
#include "support/error.hpp"

namespace sspred::dserve {

ServingNode::ServingNode(std::size_t index, serve::ServiceOptions options,
                         std::shared_ptr<support::Clock> clock)
    : index_(index),
      options_(std::move(options)),
      clock_(std::move(clock)),
      frames_served_(metrics_.counter("node_frames_served")),
      heartbeats_served_(metrics_.counter("node_heartbeats_served")),
      epoch_installs_(metrics_.counter("node_epoch_installs")),
      bad_frames_(metrics_.counter("node_bad_frames")),
      crashes_(metrics_.counter("node_crashes")),
      restarts_(metrics_.counter("node_restarts")) {
  if (clock_) options_.clock = clock_;
  service_ = std::make_unique<serve::PredictionService>(options_);
  metrics_.add_child("", &service_->metrics());
}

ServingNode::~ServingNode() {
  metrics_.clear_children();  // before the service (and its registry) dies
}

void ServingNode::register_model(const std::string& id,
                                 serve::ModelSpec spec) {
  const std::unique_lock lock(mutex_);
  manifest_.emplace_back(id, spec);
  if (service_) service_->register_model(id, std::move(spec));
}

std::optional<std::vector<std::uint8_t>> ServingNode::handle_frame(
    const std::vector<std::uint8_t>& frame) {
  const std::shared_lock lock(mutex_);
  if (crashed_ || !service_) return std::nullopt;
  if (frame.size() < 4) {
    bad_frames_.increment();
    return std::nullopt;
  }
  const std::uint8_t* payload = frame.data() + 4;
  const std::size_t size = frame.size() - 4;
  try {
    switch (serve::frame_type(payload, size)) {
      case serve::WireType::kRequest:
        return serve_request(payload, size);
      case serve::WireType::kHeartbeat:
        return serve_heartbeat(payload, size);
      case serve::WireType::kEpochPublish:
        return serve_epoch(payload, size);
      default:
        // Responses/acks flow node -> frontend; receiving one is a
        // protocol violation, not a crash.
        bad_frames_.increment();
        return std::nullopt;
    }
  } catch (const support::Error&) {
    bad_frames_.increment();
    return std::nullopt;
  }
}

std::vector<std::uint8_t> ServingNode::serve_request(
    const std::uint8_t* payload, std::size_t size) {
  auto decoded = serve::decode_request(payload, size);
  const std::int64_t slowdown = slowdown_ns_.load(std::memory_order_relaxed);
  if (slowdown > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(slowdown));
  }
  frames_served_.increment();
  const auto result = service_->submit(std::move(decoded.request)).get();
  return serve::encode_response(result, decoded.client_tag);
}

std::vector<std::uint8_t> ServingNode::serve_heartbeat(
    const std::uint8_t* payload, std::size_t size) {
  const std::uint64_t tag = serve::decode_heartbeat(payload, size);
  heartbeats_served_.increment();
  serve::HeartbeatAck ack;
  ack.client_tag = tag;
  const serve::EpochPtr epoch = service_->current_epoch();
  ack.epoch_version = epoch ? epoch->version() : 0;
  const std::int64_t depth =
      service_->metrics().gauge("queue_depth").value();
  ack.queue_depth = depth > 0 ? static_cast<std::uint64_t>(depth) : 0;
  return serve::encode_heartbeat_ack(ack);
}

std::vector<std::uint8_t> ServingNode::serve_epoch(
    const std::uint8_t* payload, std::size_t size) {
  auto frame = serve::decode_epoch_publish(payload, size);
  auto epoch = std::make_shared<const serve::BindingsEpoch>(
      frame.version, std::move(frame.bindings));
  service_->publish_epoch(std::move(epoch));
  epoch_installs_.increment();
  serve::EpochAck ack;
  ack.client_tag = frame.client_tag;
  ack.version = frame.version;
  return serve::encode_epoch_ack(ack);
}

void ServingNode::crash() {
  // Exclusive lock: waits for in-flight frames to drain (their service
  // is still running, so they complete), then fail-stops. The service
  // object survives until restart() so draining never races teardown.
  const std::unique_lock lock(mutex_);
  if (crashed_) return;
  crashed_ = true;
  crashes_.increment();
}

void ServingNode::restart() {
  const std::unique_lock lock(mutex_);
  metrics_.remove_child("");  // old registry dies with the old service
  service_.reset();           // joins workers; no frames are in flight
  service_ = std::make_unique<serve::PredictionService>(options_);
  for (const auto& [id, spec] : manifest_) {
    service_->register_model(id, spec);
  }
  metrics_.add_child("", &service_->metrics());
  crashed_ = false;
  slowdown_ns_.store(0, std::memory_order_relaxed);
  restarts_.increment();
}

bool ServingNode::crashed() const {
  const std::shared_lock lock(mutex_);
  return crashed_;
}

void ServingNode::set_slowdown(double seconds) noexcept {
  slowdown_ns_.store(
      seconds <= 0.0 ? 0 : static_cast<std::int64_t>(seconds * 1e9),
      std::memory_order_relaxed);
}

std::uint64_t ServingNode::epoch_version() const {
  const std::shared_lock lock(mutex_);
  if (crashed_ || !service_) return 0;
  const serve::EpochPtr epoch = service_->current_epoch();
  return epoch ? epoch->version() : 0;
}

bool ServingNode::report_observation(std::uint64_t request_id,
                                     double observed_seconds) {
  const std::shared_lock lock(mutex_);
  if (crashed_ || !service_) return false;
  return service_->report_observation(request_id, observed_seconds);
}

std::uint64_t ServingNode::service_counter(const std::string& name) const {
  const std::shared_lock lock(mutex_);
  if (!service_) return 0;
  return service_->metrics().counter(name).value();
}

serve::PredictionService* ServingNode::service() {
  const std::shared_lock lock(mutex_);
  return crashed_ ? nullptr : service_.get();
}

}  // namespace sspred::dserve
