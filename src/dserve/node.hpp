// ServingNode — one simulated replica of the serving stack.
//
// A node is a sharded PredictionService that speaks ONLY the wire codec:
// its entire inbound surface is handle_frame(bytes) -> bytes, demuxing
// prediction requests, heartbeat probes, and epoch fan-outs off one
// framed stream (serve/wire.hpp) exactly as a remote process would off a
// socket. The in-process transport is an optimization, not a cheat — no
// object crosses the node boundary except encoded frames, so promoting a
// node to a real process is a transport swap.
//
// Fault model (fail-stop with drain):
//   crash()   — the node stops answering: every subsequent handle_frame
//               returns nullopt, which the frontend reads as a dead
//               link. Calls already inside the node complete (their
//               futures resolve and the replies are returned) — the
//               synchronous transport is the drain boundary. State is
//               NOT lost at crash; it is lost at restart.
//   restart() — tears the service down (joining its workers) and builds
//               a fresh one: cold program caches, empty metrics, and NO
//               bindings epoch. Registered models survive (a deployment
//               reloads its model manifest on boot); the epoch does not,
//               which is exactly the skew the frontend's heartbeat
//               rebalance detects and repairs.
//
// Concurrency: handle_frame holds a shared lock for its whole round
// trip; crash/restart take the lock exclusively, so a restart never
// destroys a service mid-call. restart() also swaps the node registry's
// child pointer — callers must not snapshot node metrics concurrently
// with restart (the ClusterFrontend serializes fault application against
// its metrics rendering).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/service.hpp"
#include "support/clock.hpp"

namespace sspred::dserve {

class ServingNode {
 public:
  /// `options` configures the node's inner PredictionService (shards,
  /// workers, queues — a whole single-node stack per replica).
  ServingNode(std::size_t index, serve::ServiceOptions options,
              std::shared_ptr<support::Clock> clock = nullptr);
  ~ServingNode();

  ServingNode(const ServingNode&) = delete;
  ServingNode& operator=(const ServingNode&) = delete;

  /// Registers a model on the live service AND in the node's boot
  /// manifest, so restart() re-registers it.
  void register_model(const std::string& id, serve::ModelSpec spec);

  /// Serves one complete wire frame (length prefix included), returning
  /// the reply frame. nullopt: the node is crashed. A frame the codec
  /// rejects (malformed, or a type a node never receives) also yields
  /// nullopt, counted as bad_frames — a broken peer looks like a dead
  /// link, never a crashed node process.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> handle_frame(
      const std::vector<std::uint8_t>& frame);

  void crash();
  void restart();
  [[nodiscard]] bool crashed() const;

  /// Extra service time per prediction frame, seconds (a degraded
  /// machine; 0 restores full speed). Heartbeats are not slowed — a slow
  /// node is alive, and the health layer should see that.
  void set_slowdown(double seconds) noexcept;

  /// Installed bindings-epoch version (0: none, or crashed).
  [[nodiscard]] std::uint64_t epoch_version() const;

  /// Forwards an observation to the live service (see
  /// PredictionService::report_observation); false when crashed.
  bool report_observation(std::uint64_t request_id, double observed_seconds);

  /// Rolled-up counter value off the service's registry — how the
  /// frontend sums e.g. requests_stolen cluster-wide. A crashed node
  /// still reports (state is lost at restart, not crash); a restarted
  /// node reports from zero.
  [[nodiscard]] std::uint64_t service_counter(const std::string& name) const;

  /// Node-level registry: the node's own lifecycle instruments plus the
  /// live service's registry merged unprefixed, so attaching this as
  /// "node<k>" yields node<k>/requests_total and node<k>/shard<j>/...
  /// rows. Stable across crash/restart (see class comment for the
  /// snapshot-vs-restart caveat).
  [[nodiscard]] serve::MetricsRegistry& metrics() noexcept {
    return metrics_;
  }

  [[nodiscard]] std::size_t index() const noexcept { return index_; }

  /// Test/diagnostic access to the live service; null when crashed.
  /// The pointer is invalidated by restart() — don't hold it across
  /// fault events.
  [[nodiscard]] serve::PredictionService* service();

 private:
  [[nodiscard]] std::vector<std::uint8_t> serve_request(
      const std::uint8_t* payload, std::size_t size);
  [[nodiscard]] std::vector<std::uint8_t> serve_heartbeat(
      const std::uint8_t* payload, std::size_t size);
  [[nodiscard]] std::vector<std::uint8_t> serve_epoch(
      const std::uint8_t* payload, std::size_t size);

  std::size_t index_;
  serve::ServiceOptions options_;
  std::shared_ptr<support::Clock> clock_;
  serve::MetricsRegistry metrics_;  ///< stable node-level registry

  mutable std::shared_mutex mutex_;  ///< service lifetime vs crash/restart
  std::unique_ptr<serve::PredictionService> service_;
  bool crashed_ = false;
  std::vector<std::pair<std::string, serve::ModelSpec>> manifest_;

  std::atomic<std::int64_t> slowdown_ns_{0};

  serve::Counter& frames_served_;
  serve::Counter& heartbeats_served_;
  serve::Counter& epoch_installs_;
  serve::Counter& bad_frames_;
  serve::Counter& crashes_;
  serve::Counter& restarts_;
};

}  // namespace sspred::dserve
