#include "dserve/membership.hpp"

#include "support/error.hpp"

namespace sspred::dserve {

Membership::Membership(std::size_t nodes, serve::MetricsRegistry& registry,
                       double ewma_alpha, double ewma_floor,
                       std::uint64_t down_after)
    : nodes_(nodes),
      alpha_(ewma_alpha),
      floor_(ewma_floor),
      down_after_(down_after == 0 ? 1 : down_after),
      transitions_down_(registry.counter("node_transitions_down")),
      transitions_up_(registry.counter("node_transitions_up")) {
  if (nodes == 0) {
    throw support::Error("membership: need at least one node");
  }
}

void Membership::transition(NodeHealth& health, NodeState to) {
  if (health.state == to) return;
  if (to == NodeState::kDown) {
    transitions_down_.increment();
  } else if (health.state == NodeState::kDown) {
    transitions_up_.increment();
  }
  health.state = to;
}

void Membership::record_success(std::size_t node) {
  const std::lock_guard lock(mutex_);
  NodeHealth& h = nodes_.at(node);
  ++h.successes;
  h.consecutive_failures = 0;
  h.success_ewma += alpha_ * (1.0 - h.success_ewma);
  // A served request is proof of life, whatever the state said.
  transition(h, h.success_ewma < floor_ ? NodeState::kSuspect : NodeState::kUp);
}

void Membership::record_failure(std::size_t node) {
  const std::lock_guard lock(mutex_);
  NodeHealth& h = nodes_.at(node);
  ++h.failures;
  ++h.consecutive_failures;
  h.success_ewma += alpha_ * (0.0 - h.success_ewma);
  if (h.consecutive_failures >= down_after_) {
    transition(h, NodeState::kDown);
  } else if (h.state == NodeState::kUp && h.success_ewma < floor_) {
    transition(h, NodeState::kSuspect);
  }
}

void Membership::heartbeat_ok(std::size_t node, std::uint64_t epoch_version) {
  const std::lock_guard lock(mutex_);
  NodeHealth& h = nodes_.at(node);
  h.heartbeat_misses = 0;
  h.epoch_version = epoch_version;
  if (h.state == NodeState::kDown) {
    // Back from the dead: give it a clean slate so one stale failure
    // streak doesn't immediately re-down it.
    h.consecutive_failures = 0;
    if (h.success_ewma < floor_) h.success_ewma = floor_;
    transition(h, NodeState::kUp);
  }
}

void Membership::heartbeat_missed(std::size_t node) {
  const std::lock_guard lock(mutex_);
  NodeHealth& h = nodes_.at(node);
  ++h.heartbeat_misses;
  if (h.heartbeat_misses >= down_after_) {
    transition(h, NodeState::kDown);
  }
}

void Membership::set_epoch_version(std::size_t node, std::uint64_t version) {
  const std::lock_guard lock(mutex_);
  nodes_.at(node).epoch_version = version;
}

NodeState Membership::state(std::size_t node) const {
  const std::lock_guard lock(mutex_);
  return nodes_.at(node).state;
}

NodeHealth Membership::health(std::size_t node) const {
  const std::lock_guard lock(mutex_);
  return nodes_.at(node);
}

std::size_t Membership::up_count() const {
  const std::lock_guard lock(mutex_);
  std::size_t up = 0;
  for (const NodeHealth& h : nodes_) {
    if (h.state != NodeState::kDown) ++up;
  }
  return up;
}

}  // namespace sspred::dserve
