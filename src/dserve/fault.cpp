#include "dserve/fault.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/error.hpp"

namespace sspred::dserve {

namespace {

FaultEvent::Kind parse_kind(const std::string& token,
                            const std::string& word) {
  using Kind = FaultEvent::Kind;
  if (word == "crash") return Kind::kCrash;
  if (word == "restart") return Kind::kRestart;
  if (word == "slow") return Kind::kSlow;
  if (word == "drop") return Kind::kDrop;
  if (word == "delay") return Kind::kDelay;
  throw support::Error("fault plan: unknown fault kind '" + word +
                       "' in '" + token +
                       "' (want crash|restart|slow|drop|delay)");
}

[[nodiscard]] bool needs_param(FaultEvent::Kind kind) noexcept {
  return kind == FaultEvent::Kind::kSlow ||
         kind == FaultEvent::Kind::kDrop ||
         kind == FaultEvent::Kind::kDelay;
}

FaultEvent parse_event(const std::string& token) {
  // kind@step:node[:param]
  const auto at = token.find('@');
  if (at == std::string::npos) {
    throw support::Error("fault plan: expected kind@step:node[:param], got '" +
                         token + "'");
  }
  FaultEvent event;
  event.kind = parse_kind(token, token.substr(0, at));
  std::size_t pos = at + 1;
  try {
    std::size_t used = 0;
    event.step = std::stoull(token.substr(pos), &used);
    pos += used;
    if (pos >= token.size() || token[pos] != ':') {
      throw support::Error("fault plan: missing node in '" + token + "'");
    }
    event.node = std::stoull(token.substr(pos + 1), &used);
    pos += 1 + used;
    if (pos < token.size()) {
      if (token[pos] != ':') {
        throw support::Error("fault plan: trailing garbage in '" + token +
                             "'");
      }
      event.param = std::stod(token.substr(pos + 1), &used);
      if (pos + 1 + used != token.size()) {
        throw support::Error("fault plan: trailing garbage in '" + token +
                             "'");
      }
    } else if (needs_param(event.kind)) {
      throw support::Error("fault plan: '" + token +
                           "' needs a parameter (slow/delay: seconds, "
                           "drop: frame count)");
    }
  } catch (const std::invalid_argument&) {
    throw support::Error("fault plan: malformed number in '" + token + "'");
  } catch (const std::out_of_range&) {
    throw support::Error("fault plan: number out of range in '" + token +
                         "'");
  }
  if (needs_param(event.kind) && event.param < 0.0) {
    throw support::Error("fault plan: negative parameter in '" + token + "'");
  }
  return event;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(begin, end - begin);
    if (!token.empty()) plan.add(parse_event(token));
    begin = end + 1;
  }
  return plan;
}

void FaultPlan::add(FaultEvent event) {
  // Keep schedule order stable: insert before the first strictly-later
  // event, after equal-step ones (FIFO among ties).
  const auto it = std::upper_bound(
      events_.begin() + static_cast<std::ptrdiff_t>(next_), events_.end(),
      event.step,
      [](std::uint64_t step, const FaultEvent& e) { return step < e.step; });
  events_.insert(it, event);
}

std::vector<FaultEvent> FaultPlan::take_due(std::uint64_t step) {
  std::vector<FaultEvent> due;
  while (next_ < events_.size() && events_[next_].step <= step) {
    due.push_back(events_[next_]);
    ++next_;
  }
  return due;
}

std::optional<std::vector<std::uint8_t>> FaultyLink::call(
    const std::vector<std::uint8_t>& frame) {
  // Consume one drop token if armed (CAS loop: concurrent callers must
  // not both spend the same token).
  std::int64_t tokens = drop_remaining_.load(std::memory_order_relaxed);
  while (tokens > 0 &&
         !drop_remaining_.compare_exchange_weak(tokens, tokens - 1,
                                                std::memory_order_relaxed)) {
  }
  if (tokens > 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::int64_t delay = delay_ns_.load(std::memory_order_relaxed);
  if (delay > 0) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
  }
  return inner_.call(frame);
}

void FaultyLink::set_delay(double seconds) noexcept {
  delay_ns_.store(seconds <= 0.0
                      ? 0
                      : static_cast<std::int64_t>(seconds * 1e9),
                  std::memory_order_relaxed);
}

}  // namespace sspred::dserve
