// ClusterFrontend — the client-facing tier of the multi-node serving
// stack (DESIGN.md §14).
//
// N ServingNode replicas sit behind per-node transports (FaultyLink over
// an in-process call; a deployment swaps in sockets). The frontend owns
// the cluster's routing and health state and gives clients the same
// vocabulary as a single service — predict / publish_epoch /
// report_observation — with availability the single node cannot offer:
//
//   placement  — structure keys consistent-hash onto nodes exactly as
//                the service hashes them onto shards (the same ring
//                construction, reused), and each key gets an R-way
//                replica SET: the primary plus its distinct ring
//                successors, a deterministic failover order every
//                frontend derives identically.
//   failover   — a replica that drops the frame (crash, link drop) is
//                marked failed and the next replica is tried in set
//                order; kDown nodes sink to the back of the order. A
//                queue-full rejection also fails over (the node is
//                healthy — only its backlog is), so an accepted request
//                is lost only when EVERY replica rejects it.
//   health     — Membership fuses heartbeat probes with per-request
//                outcomes into kUp/kSuspect/kDown (membership.hpp).
//   rebalance  — heartbeat acks carry each node's installed epoch
//                version; a node behind the cluster's published version
//                (fresh restart: version 0) gets the epoch re-pushed
//                over the wire and counts one rebalance. Requests are
//                never re-homed — replica sets already are the balanced
//                placement; what rebalances is the STATE a revived node
//                needs to serve its share again.
//   faults     — a FaultPlan keyed by the frontend's request-step
//                counter injects node crash/restart/slowdown and link
//                drop/delay deterministically mid-stream (fault.hpp).
//
// Determinism contract: the frontend stamps every result's request_id
// with its own step counter (node-local ids stay behind the curtain, the
// frontend keeps the mapping for observations). Since evaluation is
// bit-exact wherever it runs, a fixed request stream returns the SAME
// (request_id, value) set with and without mid-stream failovers — only
// the serving node differs. dserve_test.cpp pins exactly this.
//
// Thread safety: predict/report_observation/heartbeat_tick may be called
// from any thread. Fault application (scheduled or injected) and metrics
// rendering serialize on one mutex — a restart swaps a node's service
// registry, which must not race a snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dserve/fault.hpp"
#include "dserve/membership.hpp"
#include "dserve/node.hpp"
#include "dserve/transport.hpp"
#include "serve/epoch.hpp"
#include "serve/metrics.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"

namespace sspred::dserve {

struct ClusterOptions {
  std::size_t nodes = 3;
  /// Replica-set width R: nodes tried, in ring order, before a request
  /// is lost. Capped at the node count.
  std::size_t replicas = 2;
  /// Virtual nodes per ServingNode on the placement ring.
  std::size_t ring_vnodes = 64;
  /// Configuration of each node's inner PredictionService.
  serve::ServiceOptions node_options;
  // Health tuning (see membership.hpp).
  double ewma_alpha = 0.2;
  double ewma_floor = 0.5;
  std::uint64_t down_after_failures = 2;
  /// Served requests remembered for report_observation forwarding.
  std::size_t observation_capacity = 4096;
  /// Clock handed to every node; null selects the real clock.
  std::shared_ptr<support::Clock> clock;
};

/// A cluster-served prediction: the result (request_id rewritten to the
/// frontend's step counter) plus where and how hard it was to get.
struct ClusterResult {
  serve::PredictResult result;
  std::size_t node = 0;      ///< node that served (or last tried)
  std::size_t attempts = 1;  ///< transport calls spent
};

class ClusterFrontend {
 public:
  explicit ClusterFrontend(ClusterOptions options, FaultPlan plan = {});
  ~ClusterFrontend();

  ClusterFrontend(const ClusterFrontend&) = delete;
  ClusterFrontend& operator=(const ClusterFrontend&) = delete;

  /// Registers `id` on every node (and in the frontend's own table,
  /// which supplies the routing structure key).
  void register_model(const std::string& id, serve::ModelSpec spec);

  /// Serves one request through the replica set, failing over as needed.
  /// Never throws for request-level trouble: an unservable request comes
  /// back as a structured kError/kRejected result, like the service's own
  /// contract. The returned result is complete (a future would model a
  /// remote frontend's pipelining, which the in-process transport — a
  /// synchronous call — cannot overlap anyway).
  [[nodiscard]] ClusterResult predict(serve::PredictRequest request);

  /// Publishes `epoch` as the cluster's bindings epoch and fans it to
  /// every node over the wire. Nodes that miss the fan-out (crashed,
  /// dropped link) are caught up by heartbeat_tick's rebalance.
  void publish_epoch(serve::EpochPtr epoch);
  [[nodiscard]] std::uint64_t epoch_version() const;

  /// Probes every node: updates Membership liveness, and re-publishes
  /// the cluster epoch to any live node whose installed version lags
  /// (counted as rebalances_total). Returns how many nodes were
  /// rebalanced this tick.
  std::size_t heartbeat_tick();

  /// Forwards the observation for a cluster request_id (as returned in
  /// ClusterResult) to the node that served it. False — counted
  /// unmatched — for unknown/evicted ids or a node that lost the state.
  bool report_observation(std::uint64_t request_id, double observed_seconds);

  /// Applies a fault event immediately, outside any plan.
  void inject(const FaultEvent& event);

  /// Cluster metrics JSON: frontend counters plus every node's registry
  /// under "node<k>/..." (nodes' shard children nest as
  /// "node<k>/shard<j>/..."). Serialized against fault application.
  [[nodiscard]] std::string render_metrics_json() const;

  [[nodiscard]] serve::MetricsRegistry& metrics() noexcept {
    return metrics_;
  }
  [[nodiscard]] Membership& membership() noexcept { return membership_; }
  [[nodiscard]] ServingNode& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t replicas() const noexcept { return replicas_; }

  /// The failover order predict() uses for `model_id`, primary first.
  [[nodiscard]] std::vector<std::size_t> replica_set(
      const std::string& model_id) const;

  /// Requests stolen between co-located shards, summed across nodes.
  [[nodiscard]] std::uint64_t requests_stolen() const;

 private:
  /// Transport endpoint of one node: call() == hand the node the frame.
  class NodeTransport final : public Transport {
   public:
    explicit NodeTransport(ServingNode& node) : node_(node) {}
    [[nodiscard]] std::optional<std::vector<std::uint8_t>> call(
        const std::vector<std::uint8_t>& frame) override {
      return node_.handle_frame(frame);
    }

   private:
    ServingNode& node_;
  };

  [[nodiscard]] std::uint64_t key_hash_for(const std::string& model_id) const;
  /// Fires every plan event due at `step`. Cheap no-op (one relaxed
  /// load) once the plan is exhausted.
  void apply_due_faults(std::uint64_t step);
  /// Caller holds faults_mutex_.
  void apply_fault(const FaultEvent& event);
  /// Pushes the current epoch to one node; true when the node acked.
  /// Caller holds epoch_mutex_ or otherwise owns a stable epoch snapshot.
  bool push_epoch_to(std::size_t node, const serve::EpochPtr& epoch);
  void remember_mapping(std::uint64_t step, std::size_t node,
                        std::uint64_t node_request_id);

  ClusterOptions options_;
  std::size_t replicas_;
  serve::MetricsRegistry metrics_;
  serve::ModelTable models_;
  serve::ShardRouter ring_;  ///< placement ring over NODES
  Membership membership_;

  std::vector<std::unique_ptr<ServingNode>> nodes_;
  std::vector<std::unique_ptr<NodeTransport>> transports_;
  std::vector<std::unique_ptr<FaultyLink>> links_;

  std::atomic<std::uint64_t> next_step_{1};

  mutable std::mutex faults_mutex_;  ///< plan + injection + metrics render
  FaultPlan plan_;
  std::atomic<std::size_t> plan_remaining_{0};

  mutable std::mutex epoch_mutex_;
  serve::EpochPtr epoch_;
  std::uint64_t epoch_version_ = 0;

  /// step -> (node, node-local request id), FIFO-bounded, for
  /// observation forwarding.
  mutable std::mutex observations_mutex_;
  std::map<std::uint64_t, std::pair<std::size_t, std::uint64_t>> served_;
  std::deque<std::uint64_t> served_order_;

  serve::Counter& requests_total_;
  serve::Counter& requests_ok_;
  serve::Counter& requests_error_;
  serve::Counter& requests_rejected_;
  serve::Counter& failovers_total_;
  serve::Counter& requests_retried_;
  serve::Counter& rebalances_total_;
  serve::Counter& heartbeats_total_;
  serve::Counter& heartbeat_failures_;
  serve::Counter& faults_injected_;
  serve::Counter& epochs_published_;
  serve::Counter& observations_forwarded_;
  serve::Counter& observations_unmatched_;
};

}  // namespace sspred::dserve
