// Per-node health tracking for the cluster frontend.
//
// Two signals feed it, in the spirit of the belief-net bottleneck
// diagnosis that motivates per-node health state (PAPERS.md, arXiv
// 1302.4932): explicit heartbeat probes (liveness + the node's installed
// epoch version) and the outcome of every routed request (an EWMA of
// success, the passive signal that catches a node that answers probes
// but fails work). The derived state machine is deliberately small:
//
//   kUp      — healthy; preferred replica order
//   kSuspect — alive but flaky (success EWMA under the floor); tried
//              after every kUp replica
//   kDown    — `down_after` consecutive transport failures or missed
//              heartbeats; skipped on the first failover pass, probed by
//              heartbeats, and resurrected by the first success
//
// Transitions are counted into the frontend's registry
// (node_transitions_down / node_transitions_up). All methods are
// thread-safe; request outcomes race benignly (the EWMA is a health
// signal, not an accounting ledger).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/metrics.hpp"

namespace sspred::dserve {

enum class NodeState {
  kUp,
  kSuspect,
  kDown,
};

struct NodeHealth {
  NodeState state = NodeState::kUp;
  double success_ewma = 1.0;        ///< request-outcome EWMA in [0,1]
  std::uint64_t epoch_version = 0;  ///< last version the node reported
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t consecutive_failures = 0;
  std::uint64_t heartbeat_misses = 0;  ///< consecutive
};

class Membership {
 public:
  /// `registry` receives the transition counters; it must outlive the
  /// membership. `ewma_floor` is the success level below which a node
  /// turns kSuspect; `down_after` the consecutive failures (or missed
  /// heartbeats) that turn it kDown.
  Membership(std::size_t nodes, serve::MetricsRegistry& registry,
             double ewma_alpha, double ewma_floor, std::uint64_t down_after);

  /// A routed request completed on `node`. Resurrects a kDown node (the
  /// failover path may have reached it as a last resort).
  void record_success(std::size_t node);
  /// The transport to `node` failed a request.
  void record_failure(std::size_t node);

  /// Heartbeat reply carrying the node's installed epoch version.
  void heartbeat_ok(std::size_t node, std::uint64_t epoch_version);
  void heartbeat_missed(std::size_t node);

  /// Records that the frontend pushed epoch `version` to `node` and the
  /// node acked it (epoch fan-out and rebalance both land here).
  void set_epoch_version(std::size_t node, std::uint64_t version);

  [[nodiscard]] NodeState state(std::size_t node) const;
  [[nodiscard]] NodeHealth health(std::size_t node) const;
  [[nodiscard]] std::size_t nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t up_count() const;

 private:
  /// Applies a state change, counting the down/up transition. Caller
  /// holds mutex_.
  void transition(NodeHealth& health, NodeState to);

  mutable std::mutex mutex_;
  std::vector<NodeHealth> nodes_;
  double alpha_;
  double floor_;
  std::uint64_t down_after_;
  serve::Counter& transitions_down_;
  serve::Counter& transitions_up_;
};

}  // namespace sspred::dserve
