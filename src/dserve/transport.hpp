// The cluster's byte-moving seam.
//
// Everything the ClusterFrontend says to a ServingNode — predictions,
// heartbeats, epoch fan-outs — is one length-prefixed wire frame
// (serve/wire.hpp) pushed through a Transport. The interface is
// deliberately tiny: one synchronous call, frame in, frame out,
// `nullopt` for "the bytes did not make it" (node crashed, link dropped
// the frame). That single failure signal is all the failover and health
// machinery keys off, so a real network transport slots in by mapping
// its timeouts and resets onto the same nullopt.
//
// Implementations must be safe to call from multiple client threads
// concurrently.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace sspred::dserve {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers one complete frame (4-byte length prefix included) and
  /// returns the peer's reply frame, or nullopt when the frame or its
  /// reply was lost — the caller decides whether to fail over.
  [[nodiscard]] virtual std::optional<std::vector<std::uint8_t>> call(
      const std::vector<std::uint8_t>& frame) = 0;
};

}  // namespace sspred::dserve
