#include "dserve/frontend.hpp"

#include <utility>

#include "model/fingerprint.hpp"
#include "serve/wire.hpp"
#include "support/error.hpp"

namespace sspred::dserve {

namespace {

std::size_t clamp_replicas(const ClusterOptions& options) {
  if (options.nodes == 0) {
    throw support::Error("cluster: need at least one node");
  }
  const std::size_t r = options.replicas == 0 ? 1 : options.replicas;
  return r > options.nodes ? options.nodes : r;
}

/// Strips the 4-byte length prefix off a complete reply frame; null on a
/// frame too short to carry one.
const std::uint8_t* reply_payload(const std::vector<std::uint8_t>& reply,
                                  std::size_t& size) {
  if (reply.size() < 4) return nullptr;
  size = reply.size() - 4;
  return reply.data() + 4;
}

}  // namespace

ClusterFrontend::ClusterFrontend(ClusterOptions options, FaultPlan plan)
    : options_(std::move(options)),
      replicas_(clamp_replicas(options_)),
      ring_(options_.nodes, options_.ring_vnodes),
      membership_(options_.nodes, metrics_, options_.ewma_alpha,
                  options_.ewma_floor, options_.down_after_failures),
      plan_(std::move(plan)),
      requests_total_(metrics_.counter("requests_total")),
      requests_ok_(metrics_.counter("requests_ok")),
      requests_error_(metrics_.counter("requests_error")),
      requests_rejected_(metrics_.counter("requests_rejected")),
      failovers_total_(metrics_.counter("failovers_total")),
      requests_retried_(metrics_.counter("requests_retried")),
      rebalances_total_(metrics_.counter("rebalances_total")),
      heartbeats_total_(metrics_.counter("heartbeats_total")),
      heartbeat_failures_(metrics_.counter("heartbeat_failures")),
      faults_injected_(metrics_.counter("faults_injected")),
      epochs_published_(metrics_.counter("epochs_published")),
      observations_forwarded_(metrics_.counter("observations_forwarded")),
      observations_unmatched_(metrics_.counter("observations_unmatched")) {
  plan_remaining_.store(plan_.remaining(), std::memory_order_relaxed);
  nodes_.reserve(options_.nodes);
  transports_.reserve(options_.nodes);
  links_.reserve(options_.nodes);
  for (std::size_t k = 0; k < options_.nodes; ++k) {
    nodes_.push_back(std::make_unique<ServingNode>(k, options_.node_options,
                                                   options_.clock));
    transports_.push_back(std::make_unique<NodeTransport>(*nodes_.back()));
    links_.push_back(std::make_unique<FaultyLink>(*transports_.back()));
    metrics_.add_child("node" + std::to_string(k), &nodes_.back()->metrics());
  }
}

ClusterFrontend::~ClusterFrontend() {
  metrics_.clear_children();  // before the node registries die
}

void ClusterFrontend::register_model(const std::string& id,
                                     serve::ModelSpec spec) {
  models_.insert(id, spec);
  for (auto& node : nodes_) {
    node->register_model(id, spec);
  }
}

std::uint64_t ClusterFrontend::key_hash_for(
    const std::string& model_id) const {
  const serve::ModelTable::EntryPtr entry = models_.find(model_id);
  // Unknown ids still route deterministically (by id text), so they are
  // answered — with the structured unknown-model error — not dropped.
  return entry ? entry->key_hash : model::hash_bytes(model_id);
}

std::vector<std::size_t> ClusterFrontend::replica_set(
    const std::string& model_id) const {
  return ring_.replica_set_hash(key_hash_for(model_id), replicas_);
}

ClusterResult ClusterFrontend::predict(serve::PredictRequest request) {
  const std::uint64_t step =
      next_step_.fetch_add(1, std::memory_order_relaxed);
  apply_due_faults(step);
  requests_total_.increment();

  const std::vector<std::size_t> set =
      ring_.replica_set_hash(key_hash_for(request.model_id), replicas_);
  // Try live replicas in ring order; kDown ones sink to the back as a
  // last resort (a node the health layer wrote off may have revived).
  std::vector<std::size_t> order;
  order.reserve(set.size());
  for (std::size_t n : set) {
    if (membership_.state(n) != NodeState::kDown) order.push_back(n);
  }
  for (std::size_t n : set) {
    if (membership_.state(n) == NodeState::kDown) order.push_back(n);
  }

  const std::vector<std::uint8_t> frame = serve::encode_request(request, step);

  ClusterResult out;
  out.attempts = 0;
  out.node = order.front();
  std::optional<serve::PredictResult> last_rejection;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t n = order[i];
    ++out.attempts;
    if (out.attempts > 1) requests_retried_.increment();
    out.node = n;
    const auto failover = [&] {
      if (i + 1 < order.size()) failovers_total_.increment();
    };

    const auto reply = links_[n]->call(frame);
    if (!reply) {
      membership_.record_failure(n);
      failover();
      continue;
    }
    serve::DecodedResponse resp;
    std::size_t size = 0;
    const std::uint8_t* payload = reply_payload(*reply, size);
    try {
      if (payload == nullptr) throw support::Error("cluster: short reply");
      resp = serve::decode_response(payload, size);
      if (resp.client_tag != step) {
        throw support::Error("cluster: reply tag mismatch");
      }
    } catch (const support::Error&) {
      // A node talking garbage is as failed as one not talking at all.
      membership_.record_failure(n);
      failover();
      continue;
    }

    membership_.record_success(n);  // it answered — even a rejection
    if (resp.result.status == serve::PredictResult::Status::kRejected) {
      last_rejection = std::move(resp.result);
      failover();
      continue;
    }
    // kOk / kError are authoritative: the request was evaluated (or
    // structurally refused); retrying elsewhere would change nothing.
    if (resp.result.ok()) {
      requests_ok_.increment();
      remember_mapping(step, n, resp.result.request_id);
    } else {
      requests_error_.increment();
    }
    resp.result.request_id = step;
    out.result = std::move(resp.result);
    return out;
  }

  // Every replica dropped or shed the request.
  requests_rejected_.increment();
  if (last_rejection) {
    out.result = std::move(*last_rejection);
  } else {
    out.result.status = serve::PredictResult::Status::kRejected;
    out.result.error = "cluster: no replica available for model '" +
                       request.model_id + "'";
  }
  out.result.request_id = step;
  return out;
}

void ClusterFrontend::publish_epoch(serve::EpochPtr epoch) {
  const std::lock_guard lock(epoch_mutex_);
  epoch_ = std::move(epoch);
  epoch_version_ = epoch_ ? epoch_->version() : 0;
  epochs_published_.increment();
  if (!epoch_) return;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    push_epoch_to(n, epoch_);  // misses are healed by heartbeat rebalance
  }
}

std::uint64_t ClusterFrontend::epoch_version() const {
  const std::lock_guard lock(epoch_mutex_);
  return epoch_version_;
}

bool ClusterFrontend::push_epoch_to(std::size_t node,
                                    const serve::EpochPtr& epoch) {
  serve::EpochFrame frame;
  frame.client_tag = epoch->version();
  frame.version = epoch->version();
  frame.bindings = epoch->values();
  const auto reply = links_[node]->call(serve::encode_epoch_publish(frame));
  if (!reply) {
    membership_.record_failure(node);
    return false;
  }
  std::size_t size = 0;
  const std::uint8_t* payload = reply_payload(*reply, size);
  try {
    if (payload == nullptr) throw support::Error("cluster: short reply");
    const serve::EpochAck ack = serve::decode_epoch_ack(payload, size);
    membership_.set_epoch_version(node, ack.version);
    return ack.version == epoch->version();
  } catch (const support::Error&) {
    membership_.record_failure(node);
    return false;
  }
}

std::size_t ClusterFrontend::heartbeat_tick() {
  serve::EpochPtr epoch;
  std::uint64_t version = 0;
  {
    const std::lock_guard lock(epoch_mutex_);
    epoch = epoch_;
    version = epoch_version_;
  }
  std::size_t rebalanced = 0;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    heartbeats_total_.increment();
    const auto reply = links_[n]->call(serve::encode_heartbeat(n + 1));
    serve::HeartbeatAck ack;
    bool alive = false;
    if (reply) {
      std::size_t size = 0;
      const std::uint8_t* payload = reply_payload(*reply, size);
      try {
        if (payload == nullptr) throw support::Error("cluster: short reply");
        ack = serve::decode_heartbeat_ack(payload, size);
        alive = true;
      } catch (const support::Error&) {
      }
    }
    if (!alive) {
      heartbeat_failures_.increment();
      membership_.heartbeat_missed(n);
      continue;
    }
    membership_.heartbeat_ok(n, ack.epoch_version);
    // Epoch skew: the node is alive but serving off an older (or no)
    // bindings snapshot — a fresh restart reports version 0. Re-push the
    // cluster epoch; that is the rebalance.
    if (epoch && ack.epoch_version < version) {
      if (push_epoch_to(n, epoch)) {
        rebalances_total_.increment();
        ++rebalanced;
      }
    }
  }
  return rebalanced;
}

bool ClusterFrontend::report_observation(std::uint64_t request_id,
                                         double observed_seconds) {
  std::size_t node = 0;
  std::uint64_t node_request_id = 0;
  {
    const std::lock_guard lock(observations_mutex_);
    const auto it = served_.find(request_id);
    if (it == served_.end()) {
      observations_unmatched_.increment();
      return false;
    }
    node = it->second.first;
    node_request_id = it->second.second;
    served_.erase(it);
  }
  const bool recorded =
      nodes_[node]->report_observation(node_request_id, observed_seconds);
  (recorded ? observations_forwarded_ : observations_unmatched_).increment();
  return recorded;
}

void ClusterFrontend::remember_mapping(std::uint64_t step, std::size_t node,
                                       std::uint64_t node_request_id) {
  const std::lock_guard lock(observations_mutex_);
  served_[step] = {node, node_request_id};
  served_order_.push_back(step);
  while (served_order_.size() > options_.observation_capacity) {
    served_.erase(served_order_.front());
    served_order_.pop_front();
  }
}

void ClusterFrontend::apply_due_faults(std::uint64_t step) {
  if (plan_remaining_.load(std::memory_order_relaxed) == 0) return;
  const std::lock_guard lock(faults_mutex_);
  for (const FaultEvent& event : plan_.take_due(step)) {
    apply_fault(event);
  }
  plan_remaining_.store(plan_.remaining(), std::memory_order_relaxed);
}

void ClusterFrontend::inject(const FaultEvent& event) {
  const std::lock_guard lock(faults_mutex_);
  apply_fault(event);
}

void ClusterFrontend::apply_fault(const FaultEvent& event) {
  if (event.node >= nodes_.size()) {
    throw support::Error("fault plan: node " + std::to_string(event.node) +
                         " out of range (cluster has " +
                         std::to_string(nodes_.size()) + ")");
  }
  switch (event.kind) {
    case FaultEvent::Kind::kCrash:
      nodes_[event.node]->crash();
      break;
    case FaultEvent::Kind::kRestart:
      nodes_[event.node]->restart();
      break;
    case FaultEvent::Kind::kSlow:
      nodes_[event.node]->set_slowdown(event.param);
      break;
    case FaultEvent::Kind::kDrop:
      links_[event.node]->drop_next(
          static_cast<std::uint64_t>(event.param));
      break;
    case FaultEvent::Kind::kDelay:
      links_[event.node]->set_delay(event.param);
      break;
  }
  faults_injected_.increment();
}

std::string ClusterFrontend::render_metrics_json() const {
  // Fault application can swap a node's service registry (restart);
  // rendering walks every child, so the two serialize.
  const std::lock_guard lock(faults_mutex_);
  return metrics_.render_json();
}

std::uint64_t ClusterFrontend::requests_stolen() const {
  std::uint64_t stolen = 0;
  for (const auto& node : nodes_) {
    stolen += node->service_counter("requests_stolen");
  }
  return stolen;
}

}  // namespace sspred::dserve
