#include "sched/workshare.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/descriptive.hpp"
#include "stoch/arithmetic.hpp"
#include "stoch/montecarlo.hpp"
#include "support/error.hpp"

namespace sspred::sched {

std::size_t Allocation::total() const noexcept {
  return std::accumulate(units.begin(), units.end(), std::size_t{0});
}

Allocation allocate(std::size_t total_units,
                    std::span<const MachineProfile> machines,
                    Strategy strategy, double risk_aversion) {
  SSPRED_REQUIRE(!machines.empty(), "need at least one machine");
  SSPRED_REQUIRE(total_units >= machines.size(),
                 "need at least one unit per machine");
  SSPRED_REQUIRE(risk_aversion >= 0.0, "risk aversion must be >= 0");

  std::vector<double> rate(machines.size());
  for (std::size_t i = 0; i < machines.size(); ++i) {
    const auto& t = machines[i].unit_time;
    SSPRED_REQUIRE(t.mean() > 0.0, "unit time must be positive");
    double effective = t.mean();
    switch (strategy) {
      case Strategy::kMeanBalance:
        break;
      case Strategy::kConservative:
        effective = t.mean() + risk_aversion * t.halfwidth();
        break;
      case Strategy::kOptimistic:
        effective = std::max(t.lower(), 0.05 * t.mean());
        break;
    }
    rate[i] = 1.0 / effective;
  }
  const double total_rate = std::accumulate(rate.begin(), rate.end(), 0.0);

  // Largest-remainder apportionment with a one-unit floor.
  Allocation alloc;
  alloc.units.assign(machines.size(), 1);
  std::size_t assigned = machines.size();
  std::vector<double> ideal(machines.size());
  for (std::size_t i = 0; i < machines.size(); ++i) {
    ideal[i] = rate[i] / total_rate * static_cast<double>(total_units);
    const auto extra =
        static_cast<std::size_t>(std::max(0.0, std::floor(ideal[i]) - 1.0));
    alloc.units[i] += extra;
    assigned += extra;
  }
  std::vector<std::size_t> order(machines.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ra = ideal[a] - std::floor(ideal[a]);
    const double rb = ideal[b] - std::floor(ideal[b]);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  for (std::size_t i = 0; assigned < total_units;
       i = (i + 1) % machines.size()) {
    ++alloc.units[order[i]];
    ++assigned;
  }
  SSPRED_REQUIRE(alloc.total() == total_units, "apportionment failed");
  return alloc;
}

stoch::StochasticValue predicted_makespan(
    const Allocation& alloc, std::span<const MachineProfile> machines,
    stoch::ExtremePolicy policy) {
  SSPRED_REQUIRE(alloc.units.size() == machines.size(),
                 "allocation/machine count mismatch");
  std::vector<stoch::StochasticValue> finish;
  finish.reserve(machines.size());
  for (std::size_t i = 0; i < machines.size(); ++i) {
    finish.push_back(stoch::scale(machines[i].unit_time,
                                  static_cast<double>(alloc.units[i])));
  }
  return stoch::smax(finish, policy);
}

MakespanStats simulate_makespan(const Allocation& alloc,
                                std::span<const MachineProfile> machines,
                                support::Rng& rng, std::size_t trials) {
  SSPRED_REQUIRE(alloc.units.size() == machines.size(),
                 "allocation/machine count mismatch");
  SSPRED_REQUIRE(trials >= 2, "need at least 2 trials");
  std::vector<double> spans;
  spans.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    double span = 0.0;
    for (std::size_t i = 0; i < machines.size(); ++i) {
      // Per-unit times on one machine are strongly coupled within a run;
      // draw one unit time and scale (conservative, like the paper's
      // related-distribution regime).
      const double unit =
          std::max(1e-9, stoch::sample(machines[i].unit_time, rng));
      span = std::max(span, unit * static_cast<double>(alloc.units[i]));
    }
    spans.push_back(span);
  }
  const auto s = stats::summarize(spans);
  MakespanStats out;
  out.mean = s.mean;
  out.sd = s.sd;
  out.p95 = stats::quantile(spans, 0.95);
  out.worst = s.max;
  return out;
}

std::vector<double> capacities(std::span<const double> bm_seconds_per_element,
                               std::span<const double> load_means) {
  SSPRED_REQUIRE(bm_seconds_per_element.size() == load_means.size(),
                 "bm/load size mismatch");
  std::vector<double> caps(bm_seconds_per_element.size());
  for (std::size_t i = 0; i < caps.size(); ++i) {
    SSPRED_REQUIRE(bm_seconds_per_element[i] > 0.0 && load_means[i] > 0.0,
                   "bm and load must be positive");
    caps[i] = load_means[i] / bm_seconds_per_element[i];
  }
  return caps;
}

}  // namespace sspred::sched
