// Work allocation over stochastic unit times (paper §1.2).
//
// An embarrassingly parallel job of W units is split across machines whose
// per-unit execution times are stochastic values. The paper sketches the
// strategy space: balance on means when prediction accuracy doesn't
// matter; shift work toward low-variance machines when mispredictions are
// penalized; optimistically favour the often-faster machine when they are
// not. All three are implemented, plus Monte-Carlo makespan evaluation so
// the strategies can be compared under explicit penalty metrics.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "stoch/group_ops.hpp"
#include "stoch/stochastic_value.hpp"
#include "support/rng.hpp"

namespace sspred::sched {

/// A machine's per-unit-of-work execution time.
struct MachineProfile {
  std::string name;
  stoch::StochasticValue unit_time;  ///< seconds per unit, stochastic
};

enum class Strategy {
  kMeanBalance,   ///< units ∝ 1 / mean(unit_time)
  kConservative,  ///< units ∝ 1 / (mean + risk_aversion·2sd): prefer
                  ///< predictable machines when bad guesses are penalized
  kOptimistic,    ///< units ∝ 1 / max(lower bound, eps): bet on best case
};

/// Units of work assigned to each machine (sums to the requested total).
struct Allocation {
  std::vector<std::size_t> units;

  [[nodiscard]] std::size_t total() const noexcept;
};

/// Splits `total_units` across `machines` under `strategy`.
/// `risk_aversion` scales the variance penalty of kConservative.
[[nodiscard]] Allocation allocate(std::size_t total_units,
                                  std::span<const MachineProfile> machines,
                                  Strategy strategy,
                                  double risk_aversion = 1.0);

/// Stochastic makespan prediction: Max_i (units_i · unit_time_i).
[[nodiscard]] stoch::StochasticValue predicted_makespan(
    const Allocation& alloc, std::span<const MachineProfile> machines,
    stoch::ExtremePolicy policy = stoch::ExtremePolicy::kClark);

/// Monte-Carlo makespan statistics of an allocation.
struct MakespanStats {
  double mean = 0.0;
  double sd = 0.0;
  double p95 = 0.0;   ///< 95th percentile
  double worst = 0.0;
};

[[nodiscard]] MakespanStats simulate_makespan(
    const Allocation& alloc, std::span<const MachineProfile> machines,
    support::Rng& rng, std::size_t trials = 20'000);

/// Capacity-weighted decomposition helper (paper footnote 2): relative
/// capacity of each machine = load_mean / bm_seconds_per_element.
[[nodiscard]] std::vector<double> capacities(
    std::span<const double> bm_seconds_per_element,
    std::span<const double> load_means);

}  // namespace sspred::sched
