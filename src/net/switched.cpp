#include "net/switched.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace sspred::net {

namespace {
constexpr double kRemainderEpsilon = 1e-6;  // bytes considered delivered
}

SwitchedEthernet::SwitchedEthernet(sim::Engine& engine, SwitchedSpec spec)
    : engine_(engine), spec_(spec), link_count_(2 * spec.hosts) {
  SSPRED_REQUIRE(spec_.hosts >= 1, "switched network needs hosts");
  SSPRED_REQUIRE(spec_.link_bandwidth > 0.0,
                 "link bandwidth must be positive");
  SSPRED_REQUIRE(spec_.latency >= 0.0, "latency must be non-negative");
}

double SwitchedEthernet::transfer_rate(TransferId id) const noexcept {
  for (const auto& x : active_) {
    if (x.id == id) return x.rate;
  }
  return 0.0;
}

void SwitchedEthernet::progress() {
  const sim::Time now = engine_.now();
  const double dt = now - last_progress_;
  if (dt > 0.0) {
    for (auto& x : active_) {
      x.remaining = std::max(0.0, x.remaining - x.rate * dt);
    }
  }
  last_progress_ = now;
}

void SwitchedEthernet::allocate_rates() {
  // Progressive filling: raise all unfrozen transfers together until some
  // link saturates; freeze that link's transfers at its fair share;
  // repeat. Terminates in at most link_count_ rounds.
  std::vector<double> capacity(link_count_, spec_.link_bandwidth);
  std::vector<std::size_t> load(link_count_, 0);
  for (auto& x : active_) {
    x.rate = 0.0;
    ++load[x.egress];
    ++load[x.ingress];
  }
  std::vector<bool> frozen(active_.size(), false);
  std::size_t remaining = active_.size();
  while (remaining > 0) {
    // The bottleneck link: smallest capacity / unfrozen-transfer count.
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < link_count_; ++l) {
      if (load[l] > 0) {
        bottleneck_share = std::min(
            bottleneck_share, capacity[l] / static_cast<double>(load[l]));
      }
    }
    // Freeze every transfer crossing a link that saturates at this share.
    bool froze_any = false;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (frozen[i]) continue;
      auto& x = active_[i];
      const bool saturated_egress =
          capacity[x.egress] / static_cast<double>(load[x.egress]) <=
          bottleneck_share * (1.0 + 1e-12);
      const bool saturated_ingress =
          capacity[x.ingress] / static_cast<double>(load[x.ingress]) <=
          bottleneck_share * (1.0 + 1e-12);
      if (saturated_egress || saturated_ingress) {
        x.rate = bottleneck_share;
        frozen[i] = true;
        froze_any = true;
        --remaining;
        capacity[x.egress] -= x.rate;
        capacity[x.ingress] -= x.rate;
        --load[x.egress];
        --load[x.ingress];
      }
    }
    SSPRED_REQUIRE(froze_any, "max-min allocation failed to progress");
  }
}

void SwitchedEthernet::reschedule() {
  if (completion_event_ != 0) {
    engine_.cancel(completion_event_);
    completion_event_ = 0;
  }
  if (active_.empty()) return;
  allocate_rates();
  double eta = std::numeric_limits<double>::infinity();
  for (const auto& x : active_) {
    eta = std::min(eta, std::max(x.remaining, 0.0) / x.rate);
  }
  completion_event_ = engine_.schedule_in(eta, [this] { on_completion_due(); });
}

void SwitchedEthernet::on_completion_due() {
  completion_event_ = 0;
  progress();
  std::vector<std::function<void()>> callbacks;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->remaining <= kRemainderEpsilon) {
      callbacks.push_back(std::move(it->on_complete));
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule();
  for (auto& cb : callbacks) cb();
}

TransferId SwitchedEthernet::send(int src, int dst, support::Bytes bytes,
                                  std::function<void()> on_complete) {
  SSPRED_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < spec_.hosts,
                 "source host out of range");
  SSPRED_REQUIRE(dst >= 0 && static_cast<std::size_t>(dst) < spec_.hosts,
                 "destination host out of range");
  SSPRED_REQUIRE(src != dst, "switched send needs distinct hosts");
  SSPRED_REQUIRE(bytes > 0.0, "transfer must move at least one byte");
  progress();
  const TransferId id = next_id_++;
  Xfer x;
  x.id = id;
  x.egress = static_cast<std::size_t>(src);                 // out links
  x.ingress = spec_.hosts + static_cast<std::size_t>(dst);  // in links
  x.remaining = bytes;
  x.on_complete = std::move(on_complete);
  active_.push_back(std::move(x));
  reschedule();
  return id;
}

}  // namespace sspred::net
