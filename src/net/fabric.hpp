// Fabric — the interface the message-passing layer sends through.
//
// Two implementations ship: the paper's shared 10 Mbit ethernet segment
// (SharedEthernet: every transfer contends with every other and with
// cross-traffic) and a switched full-duplex network (SwitchedEthernet:
// contention only at each host's NIC, max-min fair rates).
#pragma once

#include <cstdint>
#include <functional>

#include "support/units.hpp"

namespace sspred::net {

using TransferId = std::uint64_t;

class Fabric {
 public:
  virtual ~Fabric() = default;

  /// Starts a transfer of `bytes` from host `src` to host `dst`;
  /// `on_complete` fires (as an engine event) when the last byte lands.
  /// Latency is NOT included — callers add latency() themselves.
  virtual TransferId send(int src, int dst, support::Bytes bytes,
                          std::function<void()> on_complete) = 0;

  /// Per-message latency to add on top of the bandwidth term.
  [[nodiscard]] virtual support::Seconds latency() const = 0;

  /// Nominal point-to-point bandwidth (for models), bytes/second.
  [[nodiscard]] virtual support::BytesPerSecond nominal_bandwidth() const = 0;
};

}  // namespace sspred::net
