// Switched full-duplex ethernet: each host owns an ingress and an egress
// link of fixed capacity; a transfer consumes one egress (at the source)
// and one ingress (at the destination). Rates are max-min fair across all
// active transfers (progressive filling / water-filling), recomputed on
// every arrival and departure.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace sspred::net {

struct SwitchedSpec {
  std::size_t hosts = 4;
  /// Full-duplex per-direction link capacity.
  support::BytesPerSecond link_bandwidth = support::mbits_per_sec(10.0);
  support::Seconds latency = 0.5e-3;  ///< switch adds store-and-forward hops
};

class SwitchedEthernet final : public Fabric {
 public:
  SwitchedEthernet(sim::Engine& engine, SwitchedSpec spec);

  TransferId send(int src, int dst, support::Bytes bytes,
                  std::function<void()> on_complete) override;

  [[nodiscard]] support::Seconds latency() const override {
    return spec_.latency;
  }
  [[nodiscard]] support::BytesPerSecond nominal_bandwidth() const override {
    return spec_.link_bandwidth;
  }

  [[nodiscard]] const SwitchedSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t active_transfers() const noexcept {
    return active_.size();
  }
  /// Current max-min fair rate of a live transfer (0 if unknown id).
  [[nodiscard]] double transfer_rate(TransferId id) const noexcept;

 private:
  struct Xfer {
    TransferId id;
    std::size_t egress;   ///< link index: src's outgoing side
    std::size_t ingress;  ///< link index: dst's incoming side
    support::Bytes remaining;
    double rate = 0.0;
    std::function<void()> on_complete;
  };

  /// Applies progress since last_progress_ at the current rates.
  void progress();
  /// Max-min fair rate allocation over the two-link paths.
  void allocate_rates();
  /// Recomputes rates and the next completion event.
  void reschedule();
  void on_completion_due();

  sim::Engine& engine_;
  SwitchedSpec spec_;
  std::size_t link_count_;  ///< hosts egress links + hosts ingress links
  std::vector<Xfer> active_;
  sim::Time last_progress_ = 0.0;
  sim::EventId completion_event_ = 0;
  TransferId next_id_ = 1;
};

}  // namespace sspred::net
