#include "net/ethernet.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace sspred::net {

namespace {
constexpr double kRemainderEpsilon = 1e-6;  // bytes considered delivered
}

stats::ModalProcessSpec dedicated_availability() {
  stats::ModalProcessSpec spec;
  stats::ModeState mode;
  mode.shape.center = 0.999;
  mode.shape.sd = 1e-4;
  mode.mean_dwell = 1e9;
  spec.modes.push_back(mode);
  spec.lo = 0.9;
  spec.hi = 1.0;
  return spec;
}

SharedEthernet::SharedEthernet(sim::Engine& engine, EthernetSpec spec,
                               std::uint64_t seed)
    : engine_(engine),
      spec_(std::move(spec)),
      avail_process_(spec_.availability, seed),
      avail_(avail_process_.next(spec_.availability_interval)) {
  SSPRED_REQUIRE(spec_.nominal_bandwidth > 0.0,
                 "nominal bandwidth must be positive");
  SSPRED_REQUIRE(spec_.latency >= 0.0, "latency must be non-negative");
  SSPRED_REQUIRE(spec_.availability_interval > 0.0,
                 "availability interval must be positive");
}

double SharedEthernet::per_transfer_rate() const noexcept {
  if (active_.empty()) return 0.0;
  return spec_.nominal_bandwidth * avail_ /
         static_cast<double>(active_.size());
}

void SharedEthernet::progress() {
  const sim::Time now = engine_.now();
  const double dt = now - last_progress_;
  if (dt > 0.0 && !active_.empty()) {
    const double delta = per_transfer_rate() * dt;
    for (auto& x : active_) x.remaining = std::max(0.0, x.remaining - delta);
  }
  last_progress_ = now;
}

void SharedEthernet::reschedule() {
  if (completion_event_ != 0) {
    engine_.cancel(completion_event_);
    completion_event_ = 0;
  }
  if (tick_event_ != 0) {
    engine_.cancel(tick_event_);
    tick_event_ = 0;
  }
  if (active_.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& x : active_) min_remaining = std::min(min_remaining, x.remaining);
  const double rate = per_transfer_rate();
  const sim::Time eta = std::max(min_remaining, 0.0) / rate;
  completion_event_ = engine_.schedule_in(eta, [this] { on_completion_due(); });
  tick_event_ = engine_.schedule_in(spec_.availability_interval,
                                    [this] { on_tick(); });
}

void SharedEthernet::on_completion_due() {
  completion_event_ = 0;
  progress();
  std::vector<std::function<void()>> callbacks;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->remaining <= kRemainderEpsilon) {
      delivered_ += it->total;
      callbacks.push_back(std::move(it->on_complete));
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule();
  // Run callbacks last: they may start new transfers, which re-enters
  // progress()/reschedule() safely now that state is consistent.
  for (auto& cb : callbacks) cb();
}

void SharedEthernet::on_tick() {
  tick_event_ = 0;
  progress();
  avail_ = avail_process_.next(spec_.availability_interval);
  reschedule();
}

TransferId SharedEthernet::start_transfer(support::Bytes bytes,
                                          std::function<void()> on_complete) {
  SSPRED_REQUIRE(bytes > 0.0, "transfer must move at least one byte");
  progress();
  if (active_.empty()) {
    // Fresh activity after idle: resample cross-traffic.
    avail_ = avail_process_.next(spec_.availability_interval);
  }
  const TransferId id = next_id_++;
  active_.push_back(Xfer{id, bytes, bytes, std::move(on_complete)});
  reschedule();
  return id;
}

}  // namespace sspred::net
