// Shared-medium ethernet as a fluid-flow model.
//
// All hosts on the paper's platforms share one 10 Mbit ethernet segment,
// with other users' traffic stealing capacity in a long-tailed fashion
// (paper Figs. 3-4). The model:
//   * concurrent transfers split the instantaneous capacity fairly
//     (capacity = nominal * avail, re-apportioned on every arrival,
//     departure and availability change);
//   * `avail` is a modal/long-tailed stochastic process resampled every
//     `avail_dt` seconds while the segment is busy (lazy — no events are
//     generated while idle, so Engine::run() terminates).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "stats/modal_sampler.hpp"
#include "support/units.hpp"

namespace sspred::net {

/// Static description of a shared segment.
struct EthernetSpec {
  support::BytesPerSecond nominal_bandwidth = support::mbits_per_sec(10.0);
  support::Seconds latency = 1.0e-3;  ///< per-message latency (added by users)
  stats::ModalProcessSpec availability;  ///< cross-traffic process, in (0,1]
  support::Seconds availability_interval = 1.0;  ///< resample period
};

/// An `availability` spec for a dedicated (uncontended) segment.
[[nodiscard]] stats::ModalProcessSpec dedicated_availability();

class SharedEthernet final : public Fabric {
 public:
  /// Binds the segment to an engine; `seed` drives the availability noise.
  SharedEthernet(sim::Engine& engine, EthernetSpec spec, std::uint64_t seed);

  /// Starts a transfer of `bytes`; `on_complete` fires (as an engine event)
  /// when the last byte is delivered. Latency is NOT included — callers add
  /// spec().latency themselves (the MPI layer does).
  TransferId start_transfer(support::Bytes bytes,
                            std::function<void()> on_complete);

  /// Fabric interface: on a shared segment every pair contends alike, so
  /// src/dst only need to be distinct hosts.
  TransferId send(int src, int dst, support::Bytes bytes,
                  std::function<void()> on_complete) override {
    (void)src;
    (void)dst;
    return start_transfer(bytes, std::move(on_complete));
  }
  [[nodiscard]] support::Seconds latency() const override {
    return spec_.latency;
  }
  [[nodiscard]] support::BytesPerSecond nominal_bandwidth() const override {
    return spec_.nominal_bandwidth;
  }

  /// Awaitable transfer for coroutine processes: resumes when delivered.
  [[nodiscard]] auto transfer(support::Bytes bytes) {
    struct Awaiter {
      SharedEthernet& eth;
      support::Bytes bytes;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        eth.start_transfer(bytes, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, bytes};
  }

  [[nodiscard]] const EthernetSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t active_transfers() const noexcept {
    return active_.size();
  }
  /// Current availability fraction (resampled while busy).
  [[nodiscard]] double current_availability() const noexcept { return avail_; }
  /// Total bytes fully delivered so far.
  [[nodiscard]] support::Bytes bytes_delivered() const noexcept {
    return delivered_;
  }

 private:
  struct Xfer {
    TransferId id;
    support::Bytes total;
    support::Bytes remaining;
    std::function<void()> on_complete;
  };

  /// Applies progress accrued since last_progress_ to all active transfers.
  void progress();
  /// Recomputes the next completion event (and the availability tick).
  void reschedule();
  /// Fires when the earliest transfer is due to finish.
  void on_completion_due();
  /// Periodic availability resample while the segment is busy.
  void on_tick();
  [[nodiscard]] double per_transfer_rate() const noexcept;

  sim::Engine& engine_;
  EthernetSpec spec_;
  stats::ModalProcess avail_process_;
  double avail_;
  std::vector<Xfer> active_;
  sim::Time last_progress_ = 0.0;
  sim::EventId completion_event_ = 0;
  sim::EventId tick_event_ = 0;
  TransferId next_id_ = 1;
  support::Bytes delivered_ = 0.0;
};

}  // namespace sspred::net
