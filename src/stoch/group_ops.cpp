#include "stoch/group_ops.hpp"

#include <cmath>
#include <vector>

#include "stats/distributions.hpp"
#include "stoch/arithmetic.hpp"
#include "support/error.hpp"

namespace sspred::stoch {

StochasticValue clark_max(const StochasticValue& x, const StochasticValue& y,
                          double rho) {
  SSPRED_REQUIRE(rho >= -1.0 && rho <= 1.0, "correlation must be in [-1,1]");
  const double m1 = x.mean();
  const double m2 = y.mean();
  const double s1 = x.sd();
  const double s2 = y.sd();
  const double theta2 = s1 * s1 + s2 * s2 - 2.0 * rho * s1 * s2;
  if (theta2 <= 1e-30) {
    // Operands are (near) perfectly coupled: max is just the larger mean.
    return m1 >= m2 ? x : y;
  }
  const double theta = std::sqrt(theta2);
  const double alpha = (m1 - m2) / theta;
  const double phi = stats::normal_pdf(alpha);
  const double cdf_a = stats::normal_cdf(alpha);
  const double cdf_ma = stats::normal_cdf(-alpha);
  const double mean = m1 * cdf_a + m2 * cdf_ma + theta * phi;
  const double second = (m1 * m1 + s1 * s1) * cdf_a +
                        (m2 * m2 + s2 * s2) * cdf_ma +
                        (m1 + m2) * theta * phi;
  const double var = std::max(second - mean * mean, 0.0);
  return StochasticValue::from_mean_sd(mean, std::sqrt(var));
}

StochasticValue smax(std::span<const StochasticValue> xs,
                     ExtremePolicy policy) {
  SSPRED_REQUIRE(!xs.empty(), "smax needs at least one operand");
  switch (policy) {
    case ExtremePolicy::kLargestMean: {
      const StochasticValue* best = &xs[0];
      for (const auto& x : xs.subspan(1)) {
        if (x.mean() > best->mean()) best = &x;
      }
      return *best;
    }
    case ExtremePolicy::kLargestUpper: {
      const StochasticValue* best = &xs[0];
      for (const auto& x : xs.subspan(1)) {
        if (x.upper() > best->upper()) best = &x;
      }
      return *best;
    }
    case ExtremePolicy::kClark: {
      StochasticValue acc = xs[0];
      for (const auto& x : xs.subspan(1)) acc = clark_max(acc, x);
      return acc;
    }
  }
  SSPRED_REQUIRE(false, "unknown ExtremePolicy");
  return xs[0];  // unreachable
}

StochasticValue smin(std::span<const StochasticValue> xs,
                     ExtremePolicy policy) {
  SSPRED_REQUIRE(!xs.empty(), "smin needs at least one operand");
  std::vector<StochasticValue> negated;
  negated.reserve(xs.size());
  for (const auto& x : xs) negated.push_back(scale(x, -1.0));
  return scale(smax(negated, policy), -1.0);
}

}  // namespace sspred::stoch
