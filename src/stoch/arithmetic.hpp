// The paper's Table 2: arithmetic combination rules for stochastic values.
//
// Two regimes (paper §2.3):
//  * related   — the underlying distributions have a causal connection
//                (e.g. latency and bandwidth under shared traffic). The
//                rules are conservative error sums so the result is never
//                "over-smoothed".
//  * unrelated — independent quantities; the rules are the probabilistic
//                root-sum-of-squares forms.
//
// Because normals are closed under linear combination, sums/differences of
// normal stochastic values are normal; products are long-tailed but are
// approximated as normal per §2.1.1.
#pragma once

#include <span>

#include "stoch/stochastic_value.hpp"

namespace sspred::stoch {

/// Whether two stochastic operands share a causal connection (paper §2.3.1).
enum class Dependence {
  kRelated,
  kUnrelated,
};

/// (X ± a) + P = (X+P) ± a — point shift leaves the spread alone.
[[nodiscard]] StochasticValue add_point(const StochasticValue& x, double p);

/// P·(X ± a) = PX ± |P|a — point scale scales the spread.
[[nodiscard]] StochasticValue scale(const StochasticValue& x, double p);

/// Sum of two stochastic values under the given dependence:
///  related:   (Xi+Xj) ± (|ai| + |aj|)            [conservative]
///  unrelated: (Xi+Xj) ± sqrt(ai^2 + aj^2)        [RSS]
[[nodiscard]] StochasticValue add(const StochasticValue& x,
                                  const StochasticValue& y, Dependence dep);

/// Difference: addition with the second mean negated (paper §2.3.1);
/// spreads combine exactly as in add().
[[nodiscard]] StochasticValue sub(const StochasticValue& x,
                                  const StochasticValue& y, Dependence dep);

/// Sum over a sequence under one dependence regime.
[[nodiscard]] StochasticValue sum(std::span<const StochasticValue> xs,
                                  Dependence dep);

/// Contiguous-span fold fast paths for the compiled-IR evaluator
/// (model/ir.*): one tight pass over a gathered operand span instead of a
/// virtual-dispatch tree walk. Bit-identical to folding add()/mul()
/// left-to-right from the first element — the structural tree's exact
/// semantics (sum() above folds from the zero identity instead, and
/// mul_span() preserves the first operand's spread when it alone has a
/// zero mean, which a multiplicative-identity fold would drop).
/// Require a non-empty span.
[[nodiscard]] StochasticValue sum_span(std::span<const StochasticValue> xs,
                                       Dependence dep);
[[nodiscard]] StochasticValue mul_span(std::span<const StochasticValue> xs,
                                       Dependence dep);

/// Product of two stochastic values:
///  related:   XiXj ± (|ai Xj| + |aj Xi| + |ai aj|)
///  unrelated: XiXj ± |XiXj|·sqrt((ai/Xi)^2 + (aj/Xj)^2)
/// If either mean is zero the product is defined to be the zero point
/// value (paper §2.3.2).
[[nodiscard]] StochasticValue mul(const StochasticValue& x,
                                  const StochasticValue& y, Dependence dep);

/// Multiplicative inverse of Y ± b via the first-order delta method:
/// (1/Y) ± |b / Y^2|. PRECONDITION: the range [Y-b, Y+b] must exclude
/// zero — a denominator that can be zero has no meaningful normal
/// approximation of its inverse (the true distribution of 1/Y is
/// heavy-tailed with no finite moments). Violations throw
/// sspred::support::Error naming the offending value and its range.
///
/// Note: the paper's footnote 5 writes the inverse as "Y^-1 ± b^-1", which
/// does not reduce to the point-value rule as b -> 0; we follow standard
/// error propagation instead (documented in DESIGN.md).
[[nodiscard]] StochasticValue inverse(const StochasticValue& y);

/// Division x / y = mul(x, inverse(y), dep). Same precondition as
/// inverse(): the denominator's range must exclude zero (the error names
/// the division's operands).
[[nodiscard]] StochasticValue div(const StochasticValue& x,
                                  const StochasticValue& y, Dependence dep);

/// Generalization of the paper's two regimes to an explicit correlation
/// coefficient rho in [-1, 1]:
///   Var[X+Y] = Var[X] + Var[Y] + 2·rho·SD[X]·SD[Y].
/// rho = 0 reduces to the unrelated RSS rule; rho = 1 to the conservative
/// related sum.
[[nodiscard]] StochasticValue add_correlated(const StochasticValue& x,
                                             const StochasticValue& y,
                                             double rho);

/// First-order (delta-method) product of correlated operands:
///   Var[XY] ≈ (Y·sx)^2 + (X·sy)^2 + 2·rho·XY·sx·sy.
/// rho = 0 matches the unrelated rule; the related rule remains the
/// conservative upper bound for rho = 1.
[[nodiscard]] StochasticValue mul_correlated(const StochasticValue& x,
                                             const StochasticValue& y,
                                             double rho);

// Operator sugar for the UNRELATED regime (the common case for combining
// measurements of different quantities). Use the named functions when the
// related/conservative rules are intended.
[[nodiscard]] StochasticValue operator+(const StochasticValue& x,
                                        const StochasticValue& y);
[[nodiscard]] StochasticValue operator-(const StochasticValue& x,
                                        const StochasticValue& y);
[[nodiscard]] StochasticValue operator*(const StochasticValue& x,
                                        const StochasticValue& y);
[[nodiscard]] StochasticValue operator/(const StochasticValue& x,
                                        const StochasticValue& y);
[[nodiscard]] StochasticValue operator-(const StochasticValue& x);

}  // namespace sspred::stoch
