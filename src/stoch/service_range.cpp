#include "stoch/service_range.hpp"

#include "stats/distributions.hpp"
#include "support/error.hpp"

namespace sspred::stoch {

double probability_below(const StochasticValue& v, double x) {
  if (v.is_point()) return x >= v.mean() ? 1.0 : 0.0;
  return v.to_normal().cdf(x);
}

double probability_above(const StochasticValue& v, double x) {
  return 1.0 - probability_below(v, x);
}

double quantile(const StochasticValue& v, double p) {
  SSPRED_REQUIRE(p > 0.0 && p < 1.0, "quantile needs p in (0,1)");
  if (v.is_point()) return v.mean();
  return v.to_normal().quantile(p);
}

ServiceRange service_range(const StochasticValue& v, double confidence) {
  SSPRED_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0,1)");
  ServiceRange r;
  r.confidence = confidence;
  if (v.is_point()) {
    r.lower = v.mean();
    r.upper = v.mean();
    return r;
  }
  const double tail = (1.0 - confidence) / 2.0;
  r.lower = quantile(v, tail);
  r.upper = quantile(v, 1.0 - tail);
  return r;
}

double deadline_for(const StochasticValue& v, double confidence) {
  SSPRED_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0,1)");
  return quantile(v, confidence);
}

}  // namespace sspred::stoch
