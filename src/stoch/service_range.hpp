// Service ranges (paper §1.2): "stochastic values could be used to specify
// a 'service range' as an alternative to Quality of Service guarantees.
// Probabilities associated with values in the service range could be used
// in instances where poor performance can be tolerated a small percentage
// of the time."
//
// These helpers read a stochastic value as the normal distribution it
// summarizes and answer exactly those questions.
#pragma once

#include "stoch/stochastic_value.hpp"

namespace sspred::stoch {

/// P(X <= x) under the value's normal distribution. A point value yields
/// a 0/1 step.
[[nodiscard]] double probability_below(const StochasticValue& v, double x);

/// P(X > x) — e.g. the probability of missing deadline x.
[[nodiscard]] double probability_above(const StochasticValue& v, double x);

/// The p-quantile of the value's distribution (p in (0,1)); a point value
/// returns its mean for every p.
[[nodiscard]] double quantile(const StochasticValue& v, double p);

/// A symmetric service range covering `confidence` of the distribution.
struct ServiceRange {
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.0;  ///< probability mass inside [lower, upper]
};

/// The central interval holding `confidence` (in (0,1)) of the mass —
/// e.g. service_range(pred, 0.99) is a "99% of the time" guarantee band.
[[nodiscard]] ServiceRange service_range(const StochasticValue& v,
                                         double confidence);

/// The deadline met with probability `confidence`: quantile(v, confidence).
[[nodiscard]] double deadline_for(const StochasticValue& v, double confidence);

}  // namespace sspred::stoch
