#include "stoch/stochastic_value.hpp"

#include <cmath>
#include <ostream>

#include "stats/descriptive.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

namespace sspred::stoch {

StochasticValue::StochasticValue(double mean, double halfwidth)
    : mean_(mean), half_(halfwidth) {
  SSPRED_REQUIRE(halfwidth >= 0.0, "stochastic halfwidth must be >= 0");
  SSPRED_REQUIRE(std::isfinite(mean) && std::isfinite(halfwidth),
                 "stochastic value must be finite");
}

StochasticValue StochasticValue::point(double v) noexcept {
  return StochasticValue(v);
}

StochasticValue StochasticValue::from_percent(double mean, double percent) {
  SSPRED_REQUIRE(percent >= 0.0, "percentage range must be >= 0");
  return StochasticValue(mean, std::abs(mean) * percent / 100.0);
}

StochasticValue StochasticValue::from_mean_sd(double mean, double sd) {
  SSPRED_REQUIRE(sd >= 0.0, "standard deviation must be >= 0");
  return StochasticValue(mean, 2.0 * sd);
}

StochasticValue StochasticValue::from_sample(std::span<const double> xs) {
  const auto s = stats::summarize(xs);
  return from_mean_sd(s.mean, s.sd);
}

double StochasticValue::relative() const {
  SSPRED_REQUIRE(mean_ != 0.0, "relative halfwidth undefined for zero mean");
  return std::abs(half_ / mean_);
}

stats::Normal StochasticValue::to_normal() const {
  SSPRED_REQUIRE(half_ > 0.0, "point value has no normal distribution");
  return stats::Normal(mean_, sd());
}

bool StochasticValue::contains(double v) const noexcept {
  return v >= lower() && v <= upper();
}

double StochasticValue::out_of_range_distance(double v) const noexcept {
  if (contains(v)) return 0.0;
  return v < lower() ? lower() - v : v - upper();
}

std::string StochasticValue::to_string(int precision) const {
  if (is_point()) return support::fmt(mean_, precision);
  return support::fmt_pm(mean_, half_, precision);
}

std::ostream& operator<<(std::ostream& os, const StochasticValue& v) {
  return os << v.to_string();
}

}  // namespace sspred::stoch
