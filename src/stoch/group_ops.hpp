// Group operations over stochastic values (paper §2.3.3).
//
// The paper leaves Max/Min policy situation-dependent: "Max could be
// calculated by choosing the largest mean of the stochastic value inputs,
// or by selecting the stochastic value with the largest magnitude value in
// its entire range". We implement both policies, plus Clark's classical
// moment-matching approximation of the exact maximum of Gaussians, which
// the ablation bench compares against the paper's two heuristics.
#pragma once

#include <span>

#include "stoch/stochastic_value.hpp"

namespace sspred::stoch {

/// How a group Max (or Min) over stochastic values is resolved.
enum class ExtremePolicy {
  kLargestMean,   ///< pick the operand with the largest mean
  kLargestUpper,  ///< pick the operand with the largest upper bound
  kClark,         ///< Clark (1961) Gaussian moment-matching of max()
};

/// Clark's approximation of max(X, Y) for X~N(m1,s1^2), Y~N(m2,s2^2) with
/// correlation rho: matches the first two moments of the true maximum and
/// returns them as a (approximately normal) stochastic value.
[[nodiscard]] StochasticValue clark_max(const StochasticValue& x,
                                        const StochasticValue& y,
                                        double rho = 0.0);

/// Max over a non-empty group under the chosen policy.
/// For kLargestMean/kLargestUpper ties resolve to the earliest operand.
[[nodiscard]] StochasticValue smax(std::span<const StochasticValue> xs,
                                   ExtremePolicy policy);

/// Min over a non-empty group: -Max of the negated operands.
[[nodiscard]] StochasticValue smin(std::span<const StochasticValue> xs,
                                   ExtremePolicy policy);

}  // namespace sspred::stoch
