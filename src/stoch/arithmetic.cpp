#include "stoch/arithmetic.hpp"

#include <cmath>

#include "support/error.hpp"

namespace sspred::stoch {

StochasticValue add_point(const StochasticValue& x, double p) {
  return StochasticValue(x.mean() + p, x.halfwidth());
}

StochasticValue scale(const StochasticValue& x, double p) {
  return StochasticValue(x.mean() * p, std::abs(p) * x.halfwidth());
}

StochasticValue add(const StochasticValue& x, const StochasticValue& y,
                    Dependence dep) {
  const double mean = x.mean() + y.mean();
  const double a = x.halfwidth();
  const double b = y.halfwidth();
  const double half = dep == Dependence::kRelated
                          ? a + b
                          : std::sqrt(a * a + b * b);
  return StochasticValue(mean, half);
}

StochasticValue sub(const StochasticValue& x, const StochasticValue& y,
                    Dependence dep) {
  return add(x, scale(y, -1.0), dep);
}

StochasticValue sum(std::span<const StochasticValue> xs, Dependence dep) {
  StochasticValue acc;  // zero point value is the additive identity
  for (const auto& x : xs) acc = add(acc, x, dep);
  return acc;
}

StochasticValue mul(const StochasticValue& x, const StochasticValue& y,
                    Dependence dep) {
  // Paper §2.3.2: a zero mean operand makes the product the zero point value.
  if (x.mean() == 0.0 || y.mean() == 0.0) return StochasticValue();
  const double mean = x.mean() * y.mean();
  const double a = x.halfwidth();
  const double b = y.halfwidth();
  double half = 0.0;
  if (dep == Dependence::kRelated) {
    half = std::abs(a * y.mean()) + std::abs(b * x.mean()) + std::abs(a * b);
  } else {
    const double ra = a / x.mean();
    const double rb = b / y.mean();
    half = std::abs(mean) * std::sqrt(ra * ra + rb * rb);
  }
  return StochasticValue(mean, half);
}

StochasticValue inverse(const StochasticValue& y) {
  SSPRED_REQUIRE(y.mean() != 0.0, "cannot invert a zero-mean stochastic value");
  SSPRED_REQUIRE(!y.contains(0.0),
                 "cannot invert a stochastic value whose range spans zero");
  const double inv_mean = 1.0 / y.mean();
  const double inv_half = std::abs(y.halfwidth() / (y.mean() * y.mean()));
  return StochasticValue(inv_mean, inv_half);
}

StochasticValue div(const StochasticValue& x, const StochasticValue& y,
                    Dependence dep) {
  return mul(x, inverse(y), dep);
}

StochasticValue add_correlated(const StochasticValue& x,
                               const StochasticValue& y, double rho) {
  SSPRED_REQUIRE(rho >= -1.0 && rho <= 1.0, "correlation must be in [-1,1]");
  const double a = x.halfwidth();
  const double b = y.halfwidth();
  const double var = a * a + b * b + 2.0 * rho * a * b;
  return StochasticValue(x.mean() + y.mean(), std::sqrt(std::max(var, 0.0)));
}

StochasticValue mul_correlated(const StochasticValue& x,
                               const StochasticValue& y, double rho) {
  SSPRED_REQUIRE(rho >= -1.0 && rho <= 1.0, "correlation must be in [-1,1]");
  if (x.mean() == 0.0 || y.mean() == 0.0) return StochasticValue();
  const double a = x.halfwidth();
  const double b = y.halfwidth();
  const double ta = y.mean() * a;
  const double tb = x.mean() * b;
  const double var = ta * ta + tb * tb + 2.0 * rho * ta * tb;
  return StochasticValue(x.mean() * y.mean(),
                         std::sqrt(std::max(var, 0.0)));
}

StochasticValue operator+(const StochasticValue& x, const StochasticValue& y) {
  return add(x, y, Dependence::kUnrelated);
}

StochasticValue operator-(const StochasticValue& x, const StochasticValue& y) {
  return sub(x, y, Dependence::kUnrelated);
}

StochasticValue operator*(const StochasticValue& x, const StochasticValue& y) {
  return mul(x, y, Dependence::kUnrelated);
}

StochasticValue operator/(const StochasticValue& x, const StochasticValue& y) {
  return div(x, y, Dependence::kUnrelated);
}

StochasticValue operator-(const StochasticValue& x) { return scale(x, -1.0); }

}  // namespace sspred::stoch
