#include "stoch/arithmetic.hpp"

#include <cmath>
#include <string>

#include "support/error.hpp"

namespace sspred::stoch {

StochasticValue add_point(const StochasticValue& x, double p) {
  return StochasticValue(x.mean() + p, x.halfwidth());
}

StochasticValue scale(const StochasticValue& x, double p) {
  return StochasticValue(x.mean() * p, std::abs(p) * x.halfwidth());
}

StochasticValue add(const StochasticValue& x, const StochasticValue& y,
                    Dependence dep) {
  const double mean = x.mean() + y.mean();
  const double a = x.halfwidth();
  const double b = y.halfwidth();
  const double half = dep == Dependence::kRelated
                          ? a + b
                          : std::sqrt(a * a + b * b);
  return StochasticValue(mean, half);
}

StochasticValue sub(const StochasticValue& x, const StochasticValue& y,
                    Dependence dep) {
  return add(x, scale(y, -1.0), dep);
}

StochasticValue sum(std::span<const StochasticValue> xs, Dependence dep) {
  StochasticValue acc;  // zero point value is the additive identity
  for (const auto& x : xs) acc = add(acc, x, dep);
  return acc;
}

StochasticValue sum_span(std::span<const StochasticValue> xs, Dependence dep) {
  SSPRED_REQUIRE(!xs.empty(), "sum_span needs at least one operand");
  double mean = xs[0].mean();
  double half = xs[0].halfwidth();
  if (dep == Dependence::kRelated) {
    for (const auto& x : xs.subspan(1)) {
      mean += x.mean();
      half += x.halfwidth();
    }
  } else {
    // Per-step sqrt keeps the fold bit-identical to repeated add().
    for (const auto& x : xs.subspan(1)) {
      mean += x.mean();
      const double b = x.halfwidth();
      half = std::sqrt(half * half + b * b);
    }
  }
  return StochasticValue(mean, half);
}

StochasticValue mul_span(std::span<const StochasticValue> xs, Dependence dep) {
  SSPRED_REQUIRE(!xs.empty(), "mul_span needs at least one operand");
  StochasticValue acc = xs[0];
  for (const auto& x : xs.subspan(1)) acc = mul(acc, x, dep);
  return acc;
}

StochasticValue mul(const StochasticValue& x, const StochasticValue& y,
                    Dependence dep) {
  // Paper §2.3.2: a zero mean operand makes the product the zero point value.
  if (x.mean() == 0.0 || y.mean() == 0.0) return StochasticValue();
  const double mean = x.mean() * y.mean();
  const double a = x.halfwidth();
  const double b = y.halfwidth();
  double half = 0.0;
  if (dep == Dependence::kRelated) {
    half = std::abs(a * y.mean()) + std::abs(b * x.mean()) + std::abs(a * b);
  } else {
    const double ra = a / x.mean();
    const double rb = b / y.mean();
    half = std::abs(mean) * std::sqrt(ra * ra + rb * rb);
  }
  return StochasticValue(mean, half);
}

StochasticValue inverse(const StochasticValue& y) {
  SSPRED_REQUIRE(!y.contains(0.0),
                 "cannot invert " + y.to_string() + ": its range [" +
                     std::to_string(y.lower()) + ", " +
                     std::to_string(y.upper()) +
                     "] spans zero, so 1/Y has no meaningful normal "
                     "approximation (tighten the spread or shift the mean "
                     "away from zero)");
  const double inv_mean = 1.0 / y.mean();
  const double inv_half = std::abs(y.halfwidth() / (y.mean() * y.mean()));
  return StochasticValue(inv_mean, inv_half);
}

StochasticValue div(const StochasticValue& x, const StochasticValue& y,
                    Dependence dep) {
  SSPRED_REQUIRE(!y.contains(0.0),
                 "cannot divide " + x.to_string() + " by " + y.to_string() +
                     ": the denominator's range [" +
                     std::to_string(y.lower()) + ", " +
                     std::to_string(y.upper()) +
                     "] spans zero, so the quotient has no meaningful "
                     "normal approximation");
  return mul(x, inverse(y), dep);
}

StochasticValue add_correlated(const StochasticValue& x,
                               const StochasticValue& y, double rho) {
  SSPRED_REQUIRE(rho >= -1.0 && rho <= 1.0, "correlation must be in [-1,1]");
  const double a = x.halfwidth();
  const double b = y.halfwidth();
  const double var = a * a + b * b + 2.0 * rho * a * b;
  return StochasticValue(x.mean() + y.mean(), std::sqrt(std::max(var, 0.0)));
}

StochasticValue mul_correlated(const StochasticValue& x,
                               const StochasticValue& y, double rho) {
  SSPRED_REQUIRE(rho >= -1.0 && rho <= 1.0, "correlation must be in [-1,1]");
  if (x.mean() == 0.0 || y.mean() == 0.0) return StochasticValue();
  const double a = x.halfwidth();
  const double b = y.halfwidth();
  const double ta = y.mean() * a;
  const double tb = x.mean() * b;
  const double var = ta * ta + tb * tb + 2.0 * rho * ta * tb;
  return StochasticValue(x.mean() * y.mean(),
                         std::sqrt(std::max(var, 0.0)));
}

StochasticValue operator+(const StochasticValue& x, const StochasticValue& y) {
  return add(x, y, Dependence::kUnrelated);
}

StochasticValue operator-(const StochasticValue& x, const StochasticValue& y) {
  return sub(x, y, Dependence::kUnrelated);
}

StochasticValue operator*(const StochasticValue& x, const StochasticValue& y) {
  return mul(x, y, Dependence::kUnrelated);
}

StochasticValue operator/(const StochasticValue& x, const StochasticValue& y) {
  return div(x, y, Dependence::kUnrelated);
}

StochasticValue operator-(const StochasticValue& x) { return scale(x, -1.0); }

}  // namespace sspred::stoch
