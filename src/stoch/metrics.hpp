// Scoring predictions against observed values — the quantities the paper's
// evaluation reports (capture fraction, out-of-range error, point error).
#pragma once

#include <span>

#include "stoch/stochastic_value.hpp"

namespace sspred::stoch {

/// Aggregate quality of a set of stochastic predictions vs observations.
struct PredictionScore {
  std::size_t count = 0;
  /// Fraction of observations inside their prediction's range
  /// (the paper's "we capture approximately 80% of the actual times").
  double capture_fraction = 0.0;
  /// Max relative error of observations *outside* the range, measured per
  /// paper footnote 6 as distance-to-range / observation.
  double max_range_error = 0.0;
  /// Mean of the same relative range error over all observations
  /// (zero contribution from captured points).
  double mean_range_error = 0.0;
  /// Max relative error of the prediction MEAN vs the observation —
  /// what a point-valued prediction would score.
  double max_mean_error = 0.0;
  /// Mean relative error of the prediction mean vs the observation.
  double mean_mean_error = 0.0;
};

/// Scores paired (prediction, observation) sequences. Sizes must match and
/// observations must be positive (they are execution times).
[[nodiscard]] PredictionScore score_predictions(
    std::span<const StochasticValue> predictions,
    std::span<const double> observations);

/// Relative error |predicted - actual| / actual for point predictions.
[[nodiscard]] double relative_error(double predicted, double actual);

/// Wilson-score confidence interval for a binomial fraction (e.g. the
/// capture fraction over a small number of trials — the paper's "~80%"
/// over ~16 points carries real uncertainty).
struct FractionInterval {
  double lower = 0.0;
  double upper = 1.0;
};

/// Wilson interval for `successes`/`trials` at the given confidence
/// (default 95%). Requires trials >= 1.
[[nodiscard]] FractionInterval wilson_interval(std::size_t successes,
                                               std::size_t trials,
                                               double confidence = 0.95);

}  // namespace sspred::stoch
