// Modal stochastic data (paper §2.1.2).
//
// Multi-modal characteristics (e.g. CPU load) are represented as a set of
// modes, each a normal M_i ± SD_i with an occupancy fraction P_i. When data
// stays in one mode during a run, the single mode's stochastic value is
// used directly; for bursty data the modes are averaged by occupancy:
//     P1(M1 ± SD1) + P2(M2 ± SD2) + ... .
#pragma once

#include <span>
#include <vector>

#include "stats/gmm.hpp"
#include "stoch/stochastic_value.hpp"

namespace sspred::stoch {

/// One mode of a multi-modal characteristic.
struct Mode {
  double occupancy = 0.0;    ///< P_i: fraction of time spent in this mode
  StochasticValue value;     ///< M_i ± (2·SD_i)
};

/// The paper's modal average: sum of occupancy-scaled modes. Each scaled
/// mode is normal, so the result is treated as normal; occupancies must be
/// non-negative and sum to ~1.
[[nodiscard]] StochasticValue mix_modes(std::span<const Mode> modes);

/// Moment-matched mixture summary: the exact mean and standard deviation
/// of the Gaussian mixture defined by the modes (law of total variance),
/// reported as mean ± 2sd. This is the statistically faithful alternative
/// to mix_modes(); the ablation bench compares both.
[[nodiscard]] StochasticValue mixture_moments(std::span<const Mode> modes);

/// Converts a fitted Gaussian mixture into modes (weights become
/// occupancies; each component becomes M_i ± 2·SD_i).
[[nodiscard]] std::vector<Mode> modes_from_gmm(const stats::GmmFit& fit);

/// Selects the mode whose mean is nearest to `current_level` — the paper's
/// "data remains within a single mode" regime (§3.1): predictions use the
/// occupied mode's distribution alone.
[[nodiscard]] const Mode& nearest_mode(std::span<const Mode> modes,
                                       double current_level);

}  // namespace sspred::stoch
