// Monte-Carlo cross-validation of the stochastic calculus.
//
// Each Table-2 rule is a closed form; these helpers sample the operand
// distributions, combine samples elementwise, and summarize the empirical
// result so tests and the Table-2 bench can compare closed form vs truth.
//
// Two sampling regimes per helper:
//  * explicit-n overloads — exactly n draws, kept for the bit-pinned
//    tests (the caller states the sample size; there is no default);
//  * StopRule overloads — sequential stopping via
//    stats::SequentialEstimator: sampling proceeds in the shared
//    stats::next_block_width schedule and stops once the CI half-width
//    of the estimated mean (for coverage: of the inside-fraction) meets
//    the rule's target, or at its max-trial clamp. The achieved width
//    and sample count come back in the result struct, so the Table-2
//    bench reports "± what" instead of "ran N".
#pragma once

#include <functional>

#include "stats/sequential.hpp"
#include "stoch/stochastic_value.hpp"
#include "support/rng.hpp"

namespace sspred::stoch {

/// Draws one value from the normal associated with `v` (a point value
/// always yields its mean).
[[nodiscard]] double sample(const StochasticValue& v, support::Rng& rng);

/// An adaptively stopped empirical summary: the value plus how much
/// sampling the stop rule actually took and what precision it bought.
struct EmpiricalResult {
  StochasticValue value;      ///< mean ± 2sd over the drawn samples
  std::size_t samples = 0;    ///< samples actually drawn
  double ci_halfwidth = 0.0;  ///< achieved CI half-width of the mean
  bool converged = true;      ///< false: target unmet at the max clamp
};

/// Empirically combines two stochastic values with independent sampling:
/// draws n pairs, applies `op`, and summarizes the results as mean ± 2sd.
[[nodiscard]] StochasticValue empirical_combine(
    const StochasticValue& x, const StochasticValue& y,
    const std::function<double(double, double)>& op, support::Rng& rng,
    std::size_t n);

/// Like empirical_combine, but the operands are comonotonic (driven by one
/// shared standard-normal draw) — the sampling analogue of "related"
/// distributions with perfect positive coupling.
[[nodiscard]] StochasticValue empirical_combine_related(
    const StochasticValue& x, const StochasticValue& y,
    const std::function<double(double, double)>& op, support::Rng& rng,
    std::size_t n);

/// Gaussian-copula sampling at an explicit correlation rho in [-1, 1]:
/// z_y = rho·z_x + sqrt(1-rho²)·z'. Ground truth for the *_correlated
/// closed forms.
[[nodiscard]] StochasticValue empirical_combine_correlated(
    const StochasticValue& x, const StochasticValue& y, double rho,
    const std::function<double(double, double)>& op, support::Rng& rng,
    std::size_t n);

/// Fraction of samples of `v`'s distribution that land inside `range`.
/// Used to check ±2sd coverage claims (≈95% for true normals).
[[nodiscard]] double empirical_coverage(const StochasticValue& v,
                                        const StochasticValue& range,
                                        support::Rng& rng, std::size_t n);

// --- Sequentially stopped variants -----------------------------------------

[[nodiscard]] EmpiricalResult empirical_combine(
    const StochasticValue& x, const StochasticValue& y,
    const std::function<double(double, double)>& op, support::Rng& rng,
    const stats::StopRule& rule);

[[nodiscard]] EmpiricalResult empirical_combine_related(
    const StochasticValue& x, const StochasticValue& y,
    const std::function<double(double, double)>& op, support::Rng& rng,
    const stats::StopRule& rule);

[[nodiscard]] EmpiricalResult empirical_combine_correlated(
    const StochasticValue& x, const StochasticValue& y, double rho,
    const std::function<double(double, double)>& op, support::Rng& rng,
    const stats::StopRule& rule);

/// Adaptive coverage: `value.mean()` is the inside-fraction and the stop
/// rule targets the CI half-width of that fraction (binomial via Welford
/// over 0/1 samples). `value`'s halfwidth is 2sd of the indicator — use
/// `ci_halfwidth` for the precision of the fraction itself.
[[nodiscard]] EmpiricalResult empirical_coverage(const StochasticValue& v,
                                                 const StochasticValue& range,
                                                 support::Rng& rng,
                                                 const stats::StopRule& rule);

}  // namespace sspred::stoch
