// Monte-Carlo cross-validation of the stochastic calculus.
//
// Each Table-2 rule is a closed form; these helpers sample the operand
// distributions, combine samples elementwise, and summarize the empirical
// result so tests and the Table-2 bench can compare closed form vs truth.
#pragma once

#include <functional>

#include "stoch/stochastic_value.hpp"
#include "support/rng.hpp"

namespace sspred::stoch {

/// Draws one value from the normal associated with `v` (a point value
/// always yields its mean).
[[nodiscard]] double sample(const StochasticValue& v, support::Rng& rng);

/// Empirically combines two stochastic values with independent sampling:
/// draws n pairs, applies `op`, and summarizes the results as mean ± 2sd.
[[nodiscard]] StochasticValue empirical_combine(
    const StochasticValue& x, const StochasticValue& y,
    const std::function<double(double, double)>& op, support::Rng& rng,
    std::size_t n = 100'000);

/// Like empirical_combine, but the operands are comonotonic (driven by one
/// shared standard-normal draw) — the sampling analogue of "related"
/// distributions with perfect positive coupling.
[[nodiscard]] StochasticValue empirical_combine_related(
    const StochasticValue& x, const StochasticValue& y,
    const std::function<double(double, double)>& op, support::Rng& rng,
    std::size_t n = 100'000);

/// Gaussian-copula sampling at an explicit correlation rho in [-1, 1]:
/// z_y = rho·z_x + sqrt(1-rho²)·z'. Ground truth for the *_correlated
/// closed forms.
[[nodiscard]] StochasticValue empirical_combine_correlated(
    const StochasticValue& x, const StochasticValue& y, double rho,
    const std::function<double(double, double)>& op, support::Rng& rng,
    std::size_t n = 100'000);

/// Fraction of samples of `v`'s distribution that land inside `range`.
/// Used to check ±2sd coverage claims (≈95% for true normals).
[[nodiscard]] double empirical_coverage(const StochasticValue& v,
                                        const StochasticValue& range,
                                        support::Rng& rng,
                                        std::size_t n = 100'000);

}  // namespace sspred::stoch
