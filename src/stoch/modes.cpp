#include "stoch/modes.hpp"

#include <cmath>

#include "stoch/arithmetic.hpp"
#include "support/error.hpp"

namespace sspred::stoch {

namespace {
void check_occupancies(std::span<const Mode> modes) {
  SSPRED_REQUIRE(!modes.empty(), "need at least one mode");
  double total = 0.0;
  for (const auto& m : modes) {
    SSPRED_REQUIRE(m.occupancy >= 0.0, "mode occupancy must be >= 0");
    total += m.occupancy;
  }
  SSPRED_REQUIRE(std::abs(total - 1.0) < 1e-6, "mode occupancies must sum to 1");
}
}  // namespace

StochasticValue mix_modes(std::span<const Mode> modes) {
  check_occupancies(modes);
  StochasticValue acc;
  for (const auto& m : modes) {
    // P_i (M_i ± SD_i): a point scale followed by a related (conservative)
    // sum — the modes describe the same underlying quantity.
    acc = add(acc, scale(m.value, m.occupancy), Dependence::kRelated);
  }
  return acc;
}

StochasticValue mixture_moments(std::span<const Mode> modes) {
  check_occupancies(modes);
  double mean = 0.0;
  for (const auto& m : modes) mean += m.occupancy * m.value.mean();
  double var = 0.0;
  for (const auto& m : modes) {
    const double d = m.value.mean() - mean;
    var += m.occupancy * (m.value.sd() * m.value.sd() + d * d);
  }
  return StochasticValue::from_mean_sd(mean, std::sqrt(var));
}

std::vector<Mode> modes_from_gmm(const stats::GmmFit& fit) {
  SSPRED_REQUIRE(!fit.components.empty(), "GMM fit has no components");
  std::vector<Mode> modes;
  modes.reserve(fit.components.size());
  for (const auto& c : fit.components) {
    modes.push_back({c.weight, StochasticValue::from_mean_sd(c.mean, c.sd)});
  }
  return modes;
}

const Mode& nearest_mode(std::span<const Mode> modes, double current_level) {
  SSPRED_REQUIRE(!modes.empty(), "need at least one mode");
  const Mode* best = &modes[0];
  double best_dist = std::abs(modes[0].value.mean() - current_level);
  for (const auto& m : modes.subspan(1)) {
    const double d = std::abs(m.value.mean() - current_level);
    if (d < best_dist) {
      best_dist = d;
      best = &m;
    }
  }
  return *best;
}

}  // namespace sspred::stoch
