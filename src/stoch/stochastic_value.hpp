// StochasticValue — the paper's core abstraction (§1.1, §2.1).
//
// A stochastic value represents a model parameter or prediction as a range
// of likely values: a mean plus a halfwidth equal to TWO standard
// deviations of an assumed-normal distribution (so the interval
// [mean - halfwidth, mean + halfwidth] covers ~95% of a truly normal
// quantity). A point value is the degenerate case halfwidth == 0.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "stats/distributions.hpp"

namespace sspred::stoch {

class StochasticValue {
 public:
  /// Zero point value.
  constexpr StochasticValue() noexcept = default;

  /// `mean ± halfwidth`, halfwidth in absolute units (two standard
  /// deviations). Requires halfwidth >= 0.
  StochasticValue(double mean, double halfwidth);

  /// Implicit from double: a point value (the paper treats a point value
  /// as a stochastic value with all probability at one point).
  constexpr StochasticValue(double point) noexcept  // NOLINT(google-explicit-constructor)
      : mean_(point) {}

  /// Point value factory (reads better at call sites than the implicit).
  [[nodiscard]] static StochasticValue point(double v) noexcept;

  /// `mean ± percent%` — the paper's percentage form, e.g. 12 s ± 30%.
  /// Translated algebraically to an absolute range (paper footnote 3).
  [[nodiscard]] static StochasticValue from_percent(double mean,
                                                    double percent);

  /// From a normal's (mean, sd): halfwidth = 2*sd.
  [[nodiscard]] static StochasticValue from_mean_sd(double mean, double sd);

  /// Summarizes a sample as mean ± 2·(sample sd).
  [[nodiscard]] static StochasticValue from_sample(std::span<const double> xs);

  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double halfwidth() const noexcept { return half_; }
  /// One standard deviation (halfwidth is two).
  [[nodiscard]] double sd() const noexcept { return half_ / 2.0; }
  [[nodiscard]] double lower() const noexcept { return mean_ - half_; }
  [[nodiscard]] double upper() const noexcept { return mean_ + half_; }
  [[nodiscard]] bool is_point() const noexcept { return half_ == 0.0; }
  /// Relative halfwidth |halfwidth / mean|; requires mean != 0.
  [[nodiscard]] double relative() const;

  /// The associated normal distribution N(mean, sd). Requires halfwidth>0.
  [[nodiscard]] stats::Normal to_normal() const;

  /// True when v lies inside [lower(), upper()].
  [[nodiscard]] bool contains(double v) const noexcept;

  /// Paper footnote 6: the error between a value v outside the range and
  /// the stochastic value is the minimum distance between v and
  /// [mean-halfwidth, mean+halfwidth]; zero when v is inside.
  [[nodiscard]] double out_of_range_distance(double v) const noexcept;

  /// "12.00 ± 0.60" — the paper's reporting format.
  [[nodiscard]] std::string to_string(int precision = 3) const;

  friend bool operator==(const StochasticValue&,
                         const StochasticValue&) noexcept = default;

 private:
  double mean_ = 0.0;
  double half_ = 0.0;
};

std::ostream& operator<<(std::ostream& os, const StochasticValue& v);

}  // namespace sspred::stoch
