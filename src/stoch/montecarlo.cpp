#include "stoch/montecarlo.hpp"

#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace sspred::stoch {

double sample(const StochasticValue& v, support::Rng& rng) {
  if (v.is_point()) return v.mean();
  return rng.normal(v.mean(), v.sd());
}

StochasticValue empirical_combine(
    const StochasticValue& x, const StochasticValue& y,
    const std::function<double(double, double)>& op, support::Rng& rng,
    std::size_t n) {
  SSPRED_REQUIRE(n >= 2, "need at least 2 samples");
  std::vector<double> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    results.push_back(op(sample(x, rng), sample(y, rng)));
  }
  return StochasticValue::from_sample(results);
}

StochasticValue empirical_combine_related(
    const StochasticValue& x, const StochasticValue& y,
    const std::function<double(double, double)>& op, support::Rng& rng,
    std::size_t n) {
  SSPRED_REQUIRE(n >= 2, "need at least 2 samples");
  std::vector<double> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z = rng.normal();
    const double xv = x.mean() + x.sd() * z;
    const double yv = y.mean() + y.sd() * z;
    results.push_back(op(xv, yv));
  }
  return StochasticValue::from_sample(results);
}

StochasticValue empirical_combine_correlated(
    const StochasticValue& x, const StochasticValue& y, double rho,
    const std::function<double(double, double)>& op, support::Rng& rng,
    std::size_t n) {
  SSPRED_REQUIRE(n >= 2, "need at least 2 samples");
  SSPRED_REQUIRE(rho >= -1.0 && rho <= 1.0, "correlation must be in [-1,1]");
  const double ortho = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  std::vector<double> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double zx = rng.normal();
    const double zy = rho * zx + ortho * rng.normal();
    results.push_back(op(x.mean() + x.sd() * zx, y.mean() + y.sd() * zy));
  }
  return StochasticValue::from_sample(results);
}

double empirical_coverage(const StochasticValue& v,
                          const StochasticValue& range, support::Rng& rng,
                          std::size_t n) {
  SSPRED_REQUIRE(n >= 1, "need at least 1 sample");
  std::size_t inside = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (range.contains(sample(v, rng))) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(n);
}

}  // namespace sspred::stoch
