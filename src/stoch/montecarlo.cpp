#include "stoch/montecarlo.hpp"

#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace sspred::stoch {

namespace {

/// Block cap for the sequentially stopped helpers: samples accrue in
/// stats::next_block_width blocks with the stop rule consulted between
/// blocks (same schedule discipline as the blocked IR engine, so trial
/// counts are a pure deterministic function of rule + seed).
constexpr std::size_t kEmpiricalBlockCap = 1024;

template <class Draw>
EmpiricalResult run_adaptive(const stats::StopRule& rule, Draw&& draw) {
  SSPRED_REQUIRE(rule.max_trials >= 2, "need at least 2 samples");
  stats::SequentialEstimator est(rule);
  std::vector<double> results;
  results.reserve(std::min<std::size_t>(rule.max_trials,
                                        4 * kEmpiricalBlockCap));
  for (;;) {
    const std::size_t width =
        stats::next_block_width(est.count(), rule, kEmpiricalBlockCap);
    if (width == 0) break;
    for (std::size_t i = 0; i < width; ++i) {
      const double x = draw();
      results.push_back(x);
      est.add(x);
    }
    if (est.should_stop()) break;
  }
  EmpiricalResult out;
  out.value = StochasticValue::from_sample(results);
  out.samples = est.count();
  out.ci_halfwidth = est.ci_halfwidth();
  out.converged = rule.target <= 0.0 || est.precision_met();
  return out;
}

}  // namespace

double sample(const StochasticValue& v, support::Rng& rng) {
  if (v.is_point()) return v.mean();
  return rng.normal(v.mean(), v.sd());
}

StochasticValue empirical_combine(
    const StochasticValue& x, const StochasticValue& y,
    const std::function<double(double, double)>& op, support::Rng& rng,
    std::size_t n) {
  SSPRED_REQUIRE(n >= 2, "need at least 2 samples");
  std::vector<double> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    results.push_back(op(sample(x, rng), sample(y, rng)));
  }
  return StochasticValue::from_sample(results);
}

StochasticValue empirical_combine_related(
    const StochasticValue& x, const StochasticValue& y,
    const std::function<double(double, double)>& op, support::Rng& rng,
    std::size_t n) {
  SSPRED_REQUIRE(n >= 2, "need at least 2 samples");
  std::vector<double> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z = rng.normal();
    const double xv = x.mean() + x.sd() * z;
    const double yv = y.mean() + y.sd() * z;
    results.push_back(op(xv, yv));
  }
  return StochasticValue::from_sample(results);
}

StochasticValue empirical_combine_correlated(
    const StochasticValue& x, const StochasticValue& y, double rho,
    const std::function<double(double, double)>& op, support::Rng& rng,
    std::size_t n) {
  SSPRED_REQUIRE(n >= 2, "need at least 2 samples");
  SSPRED_REQUIRE(rho >= -1.0 && rho <= 1.0, "correlation must be in [-1,1]");
  const double ortho = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  std::vector<double> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double zx = rng.normal();
    const double zy = rho * zx + ortho * rng.normal();
    results.push_back(op(x.mean() + x.sd() * zx, y.mean() + y.sd() * zy));
  }
  return StochasticValue::from_sample(results);
}

double empirical_coverage(const StochasticValue& v,
                          const StochasticValue& range, support::Rng& rng,
                          std::size_t n) {
  SSPRED_REQUIRE(n >= 1, "need at least 1 sample");
  std::size_t inside = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (range.contains(sample(v, rng))) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(n);
}

EmpiricalResult empirical_combine(
    const StochasticValue& x, const StochasticValue& y,
    const std::function<double(double, double)>& op, support::Rng& rng,
    const stats::StopRule& rule) {
  return run_adaptive(rule,
                      [&] { return op(sample(x, rng), sample(y, rng)); });
}

EmpiricalResult empirical_combine_related(
    const StochasticValue& x, const StochasticValue& y,
    const std::function<double(double, double)>& op, support::Rng& rng,
    const stats::StopRule& rule) {
  return run_adaptive(rule, [&] {
    const double z = rng.normal();
    return op(x.mean() + x.sd() * z, y.mean() + y.sd() * z);
  });
}

EmpiricalResult empirical_combine_correlated(
    const StochasticValue& x, const StochasticValue& y, double rho,
    const std::function<double(double, double)>& op, support::Rng& rng,
    const stats::StopRule& rule) {
  SSPRED_REQUIRE(rho >= -1.0 && rho <= 1.0, "correlation must be in [-1,1]");
  const double ortho = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  return run_adaptive(rule, [&] {
    const double zx = rng.normal();
    const double zy = rho * zx + ortho * rng.normal();
    return op(x.mean() + x.sd() * zx, y.mean() + y.sd() * zy);
  });
}

EmpiricalResult empirical_coverage(const StochasticValue& v,
                                   const StochasticValue& range,
                                   support::Rng& rng,
                                   const stats::StopRule& rule) {
  return run_adaptive(
      rule, [&] { return range.contains(sample(v, rng)) ? 1.0 : 0.0; });
}

}  // namespace sspred::stoch
