#include "stoch/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "stats/distributions.hpp"
#include "support/error.hpp"

namespace sspred::stoch {

double relative_error(double predicted, double actual) {
  SSPRED_REQUIRE(actual != 0.0, "relative error undefined for zero actual");
  return std::abs(predicted - actual) / std::abs(actual);
}

FractionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                 double confidence) {
  SSPRED_REQUIRE(trials >= 1, "need at least one trial");
  SSPRED_REQUIRE(successes <= trials, "successes exceed trials");
  SSPRED_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0,1)");
  const double z = stats::normal_quantile(0.5 + confidence / 2.0);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double spread =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - spread), std::min(1.0, center + spread)};
}

PredictionScore score_predictions(std::span<const StochasticValue> predictions,
                                  std::span<const double> observations) {
  SSPRED_REQUIRE(predictions.size() == observations.size(),
                 "predictions/observations size mismatch");
  SSPRED_REQUIRE(!predictions.empty(), "need at least one prediction");
  PredictionScore s;
  s.count = predictions.size();
  std::size_t captured = 0;
  double sum_range_err = 0.0;
  double sum_mean_err = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const auto& pred = predictions[i];
    const double obs = observations[i];
    SSPRED_REQUIRE(obs > 0.0, "observations must be positive");
    if (pred.contains(obs)) ++captured;
    const double range_err = pred.out_of_range_distance(obs) / obs;
    const double mean_err = relative_error(pred.mean(), obs);
    s.max_range_error = std::max(s.max_range_error, range_err);
    s.max_mean_error = std::max(s.max_mean_error, mean_err);
    sum_range_err += range_err;
    sum_mean_err += mean_err;
  }
  const double n = static_cast<double>(predictions.size());
  s.capture_fraction = static_cast<double>(captured) / n;
  s.mean_range_error = sum_range_err / n;
  s.mean_mean_error = sum_mean_err / n;
  return s;
}

}  // namespace sspred::stoch
