// ASCII rendering of histograms, time series and scatter/interval plots.
//
// The bench harness regenerates the paper's figures; these helpers render
// them directly into the terminal / bench_output.txt so the *shape* of each
// figure can be eyeballed without a plotting stack.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace sspred::support {

/// Options shared by the plotters.
struct PlotOptions {
  int width = 72;        ///< plot body width in characters
  int height = 16;       ///< plot body height in rows (series plots)
  std::string title;     ///< printed above the plot when non-empty
  std::string x_label;   ///< printed below the x axis when non-empty
  std::string y_label;   ///< printed above the y axis when non-empty
};

/// Renders a pre-binned histogram as horizontal bars.
/// `edges` has bin_count + 1 entries; `counts` has bin_count entries.
[[nodiscard]] std::string render_histogram(std::span<const double> edges,
                                           std::span<const double> counts,
                                           const PlotOptions& opts = {});

/// Renders one y-series against an implicit 0..n-1 x axis.
[[nodiscard]] std::string render_series(std::span<const double> ys,
                                        const PlotOptions& opts = {});

/// A named series for multi-series plots. Each series supplies matching
/// x/y vectors; the glyph distinguishes series in the plot body.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
  char glyph = '*';
};

/// Renders several series on shared axes, with a legend line per series.
[[nodiscard]] std::string render_xy(std::span<const Series> series,
                                    const PlotOptions& opts = {});

}  // namespace sspred::support
