#include "support/clock.hpp"

#include <chrono>
#include <cmath>

namespace sspred::support {

namespace {

[[nodiscard]] std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Clock::~Clock() = default;

RealClock::RealClock() noexcept : origin_ns_(steady_ns()) {}

double RealClock::now() const noexcept {
  return static_cast<double>(steady_ns() - origin_ns_) * 1e-9;
}

FakeClock::FakeClock(double start_seconds) noexcept {
  set(start_seconds);
}

double FakeClock::now() const noexcept {
  return static_cast<double>(now_ticks_.load(std::memory_order_acquire)) *
         kTick;
}

void FakeClock::advance(double dt) noexcept {
  if (dt <= 0.0) return;
  now_ticks_.fetch_add(std::llround(dt / kTick), std::memory_order_acq_rel);
}

void FakeClock::set(double seconds) noexcept {
  const std::int64_t ticks = std::llround(seconds / kTick);
  std::int64_t cur = now_ticks_.load(std::memory_order_acquire);
  while (ticks > cur &&
         !now_ticks_.compare_exchange_weak(cur, ticks,
                                           std::memory_order_acq_rel)) {
  }
}

std::shared_ptr<Clock> real_clock() {
  static const std::shared_ptr<Clock> instance = std::make_shared<RealClock>();
  return instance;
}

}  // namespace sspred::support
