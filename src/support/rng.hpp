// Deterministic, explicitly-seeded random number generation.
//
// All randomness in the library flows through Rng so that every experiment
// is reproducible from a single seed. The generator is xoshiro256**
// (Blackman & Vigna), seeded through splitmix64; both are implemented here
// rather than taken from <random> so that streams are stable across
// standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace sspred::support {

/// splitmix64 step: used for seeding and for hashing seed material.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to
/// <random> adaptors, but the members below are the supported surface:
/// they produce identical streams on every platform.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  [[nodiscard]] result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Standard normal via Marsaglia's polar method (one value cached).
  [[nodiscard]] double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double sd) noexcept;
  /// Standard normal via the Marsaglia-Tsang ziggurat (128 strips, 53-bit
  /// tables). One raw draw per value on the ~98.8% fast path, so it is the
  /// batch sampler's workhorse. Consumes the raw stream directly and never
  /// touches normal()'s cached spare, so the two methods produce
  /// independent, individually reproducible streams.
  [[nodiscard]] double normal_ziggurat() noexcept;
  /// Fills `out` with independent N(mean, sd) draws via the ziggurat.
  void normal_fill(std::span<double> out, double mean = 0.0,
                   double sd = 1.0) noexcept;
  /// Log-normal: exp(N(mu, sigma)) where mu/sigma are in log space.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;
  /// Exponential with the given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate) noexcept;
  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy tail).
  [[nodiscard]] double pareto(double x_m, double alpha) noexcept;

  /// Index in [0, weights.size()) chosen proportionally to `weights`.
  /// Weights must be non-negative with a positive sum.
  [[nodiscard]] std::size_t choose(std::span<const double> weights) noexcept;

  /// Derives an independent child generator (for per-component streams).
  [[nodiscard]] Rng split() noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_int(i)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace sspred::support
