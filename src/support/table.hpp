// Aligned plain-text table rendering for the bench harness.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace sspred::support {

/// Builds and renders a column-aligned text table.
///
/// Usage:
///   Table t({"Machine", "Dedicated", "Production"});
///   t.add_row({"A", "10 sec", "12 sec ± 5%"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  Table(std::initializer_list<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each double with `precision` digits.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header underline and 2-space column gaps.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// Formats "mean ± halfwidth" the way the paper reports stochastic values.
[[nodiscard]] std::string fmt_pm(double mean, double halfwidth,
                                 int precision = 3);

/// Formats a ratio as a percentage string, e.g. 0.097 -> "9.7%".
[[nodiscard]] std::string fmt_pct(double ratio, int precision = 1);

}  // namespace sspred::support
