// Error handling for the sspred library.
//
// Precondition violations throw sspred::support::Error (std::logic_error):
// the library is used for offline analysis, so failing loudly beats
// continuing with a corrupt simulation.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace sspred::support {

/// Exception thrown on contract violations inside the library.
class Error : public std::logic_error {
 public:
  explicit Error(const std::string& what) : std::logic_error(what) {}
};

/// Throws Error with file/line context. Used by SSPRED_REQUIRE.
[[noreturn]] void raise(std::string_view condition, std::string_view message,
                        std::string_view file, int line);

}  // namespace sspred::support

/// Contract check: throws sspred::support::Error when `cond` is false.
#define SSPRED_REQUIRE(cond, message)                                   \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::sspred::support::raise(#cond, (message), __FILE__, __LINE__);   \
    }                                                                   \
  } while (false)
