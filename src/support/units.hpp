// Lightweight unit aliases and conversion helpers.
//
// The simulation uses plain doubles for speed, but every quantity-bearing
// API names its unit through these aliases, and the constants below keep
// conversions out of call sites.
#pragma once

namespace sspred::support {

/// Virtual time and durations, in seconds.
using Seconds = double;

/// Data sizes, in bytes.
using Bytes = double;

/// Bandwidths, in bytes per second.
using BytesPerSecond = double;

/// Units used by the paper (10 Mbit ethernet, bandwidth plots in Mbit/s).
inline constexpr double kBitsPerByte = 8.0;

/// Converts megabits per second to bytes per second.
[[nodiscard]] constexpr BytesPerSecond mbits_per_sec(double mbits) noexcept {
  return mbits * 1.0e6 / kBitsPerByte;
}

/// Converts bytes per second to megabits per second (for reporting).
[[nodiscard]] constexpr double to_mbits_per_sec(BytesPerSecond bps) noexcept {
  return bps * kBitsPerByte / 1.0e6;
}

}  // namespace sspred::support
