// Minimal CSV writing, used by benches to dump raw experiment data
// alongside the printed tables/plots.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace sspred::support {

/// Writes rows of doubles (plus a header) to a CSV file.
/// Throws support::Error if the file cannot be opened.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header);
  CsvWriter(const std::string& path, std::initializer_list<std::string> header);

  /// Writes a data row; must match the header width.
  void write_row(const std::vector<double>& values);

  /// Number of data rows written so far.
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace sspred::support
