// Monotonic-clock abstraction for the serving layer.
//
// Latency metrics and batching windows need a time source that (a) never
// goes backwards and (b) can be replaced by a hand-advanced fake in tests,
// so timing-dependent behaviour is deterministic under CI. All times are
// seconds since an arbitrary epoch; only differences are meaningful.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace sspred::support {

/// Monotonic time source. Implementations must be safe to call from
/// multiple threads concurrently.
class Clock {
 public:
  virtual ~Clock();

  /// Seconds since an arbitrary fixed epoch; never decreases.
  [[nodiscard]] virtual double now() const noexcept = 0;
};

/// Wall clock backed by std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  RealClock() noexcept;
  [[nodiscard]] double now() const noexcept override;

 private:
  std::int64_t origin_ns_ = 0;  ///< readings are offsets from construction
};

/// Hand-advanced clock for deterministic tests. Time only moves when
/// advance()/set() are called; both are safe against concurrent now().
class FakeClock final : public Clock {
 public:
  explicit FakeClock(double start_seconds = 0.0) noexcept;

  [[nodiscard]] double now() const noexcept override;

  /// Moves time forward by `dt` seconds (dt >= 0).
  void advance(double dt) noexcept;

  /// Jumps to an absolute reading (must not move backwards).
  void set(double seconds) noexcept;

 private:
  static constexpr double kTick = 1e-9;  ///< stored resolution, seconds
  std::atomic<std::int64_t> now_ticks_{0};
};

/// The process-wide default clock (a RealClock), shared so services can
/// default-construct without threading a clock through every call site.
[[nodiscard]] std::shared_ptr<Clock> real_clock();

}  // namespace sspred::support
