#include "support/error.hpp"

#include <sstream>

namespace sspred::support {

void raise(std::string_view condition, std::string_view message,
           std::string_view file, int line) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed: " << condition;
  if (!message.empty()) os << " — " << message;
  throw Error(os.str());
}

}  // namespace sspred::support
