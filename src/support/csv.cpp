#include "support/csv.hpp"

#include <cstdio>

#include "support/error.hpp"

namespace sspred::support {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  SSPRED_REQUIRE(out_.good(), "cannot open CSV output file: " + path);
  SSPRED_REQUIRE(columns_ > 0, "CSV header must not be empty");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

CsvWriter::CsvWriter(const std::string& path,
                     std::initializer_list<std::string> header)
    : CsvWriter(path, std::vector<std::string>(header)) {}

void CsvWriter::write_row(const std::vector<double>& values) {
  SSPRED_REQUIRE(values.size() == columns_, "CSV row width mismatch");
  char buf[64];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_ << ',';
    std::snprintf(buf, sizeof buf, "%.10g", values[i]);
    out_ << buf;
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace sspred::support
