#include "support/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace sspred::support {

namespace {

[[nodiscard]] std::string format_num(double v) {
  char buf[32];
  if (std::abs(v) >= 1000.0 || (std::abs(v) < 0.01 && v != 0.0)) {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  }
  return buf;
}

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void add(double v) noexcept {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  void widen_if_degenerate() noexcept {
    if (!(lo < hi)) {
      lo -= 0.5;
      hi += 0.5;
    }
  }
  [[nodiscard]] double span() const noexcept { return hi - lo; }
};

}  // namespace

std::string render_histogram(std::span<const double> edges,
                             std::span<const double> counts,
                             const PlotOptions& opts) {
  SSPRED_REQUIRE(edges.size() == counts.size() + 1,
                 "histogram edges must be counts+1");
  SSPRED_REQUIRE(!counts.empty(), "histogram needs at least one bin");
  std::ostringstream os;
  if (!opts.title.empty()) os << opts.title << "\n";
  const double max_count = std::max(
      1e-300, *std::max_element(counts.begin(), counts.end()));
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const int bar =
        static_cast<int>(std::lround(counts[i] / max_count * opts.width));
    char label[48];
    std::snprintf(label, sizeof label, "[%8s,%8s)",
                  format_num(edges[i]).c_str(),
                  format_num(edges[i + 1]).c_str());
    os << label << " |" << std::string(static_cast<std::size_t>(bar), '#')
       << " " << format_num(counts[i]) << "\n";
  }
  if (!opts.x_label.empty()) os << "  (" << opts.x_label << ")\n";
  return os.str();
}

std::string render_series(std::span<const double> ys, const PlotOptions& opts) {
  Series s;
  s.name = opts.y_label.empty() ? "series" : opts.y_label;
  s.ys.assign(ys.begin(), ys.end());
  s.xs.resize(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) s.xs[i] = static_cast<double>(i);
  return render_xy(std::span<const Series>(&s, 1), opts);
}

std::string render_xy(std::span<const Series> series, const PlotOptions& opts) {
  SSPRED_REQUIRE(!series.empty(), "need at least one series");
  Range xr;
  Range yr;
  for (const auto& s : series) {
    SSPRED_REQUIRE(s.xs.size() == s.ys.size(), "series x/y size mismatch");
    for (double x : s.xs) xr.add(x);
    for (double y : s.ys) yr.add(y);
  }
  SSPRED_REQUIRE(std::isfinite(xr.lo) && std::isfinite(yr.lo),
                 "series must contain points");
  xr.widen_if_degenerate();
  yr.widen_if_degenerate();

  const int w = std::max(opts.width, 8);
  const int h = std::max(opts.height, 4);
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const int col = static_cast<int>(
          std::lround((s.xs[i] - xr.lo) / xr.span() * (w - 1)));
      const int row = static_cast<int>(
          std::lround((s.ys[i] - yr.lo) / yr.span() * (h - 1)));
      const int r = h - 1 - row;  // row 0 is the top of the plot
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] =
          s.glyph;
    }
  }

  std::ostringstream os;
  if (!opts.title.empty()) os << opts.title << "\n";
  if (!opts.y_label.empty()) os << opts.y_label << "\n";
  for (int r = 0; r < h; ++r) {
    const double y_at_row = yr.hi - yr.span() * r / (h - 1);
    char margin[16];
    std::snprintf(margin, sizeof margin, "%9s |",
                  (r == 0 || r == h - 1 || r == h / 2)
                      ? format_num(y_at_row).c_str()
                      : "");
    os << margin << grid[static_cast<std::size_t>(r)] << "\n";
  }
  os << std::string(10, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
     << "\n";
  os << std::string(11, ' ') << format_num(xr.lo)
     << std::string(static_cast<std::size_t>(std::max(
            1, w - 2 - static_cast<int>(format_num(xr.lo).size() +
                                        format_num(xr.hi).size()))),
                    ' ')
     << format_num(xr.hi) << "\n";
  if (!opts.x_label.empty()) os << std::string(11, ' ') << "(" << opts.x_label << ")\n";
  for (const auto& s : series) {
    os << "    " << s.glyph << " = " << s.name << "\n";
  }
  return os.str();
}

}  // namespace sspred::support
