#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace sspred::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SSPRED_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table::Table(std::initializer_list<std::string> headers)
    : Table(std::vector<std::string>(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  SSPRED_REQUIRE(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_pm(double mean, double halfwidth, int precision) {
  return fmt(mean, precision) + " ± " + fmt(halfwidth, precision);
}

std::string fmt_pct(double ratio, int precision) {
  return fmt(ratio * 100.0, precision) + "%";
}

}  // namespace sspred::support
