#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace sspred::support {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded generation (simple rejection form).
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sd) noexcept {
  return mean + sd * normal();
}

namespace {

/// Marsaglia & Tsang's 128-strip ziggurat for the standard normal, scaled
/// to 53-bit integers (the double mantissa width) instead of the original
/// 32-bit tables. Built once from closed-form constants with the same
/// deterministic recurrence on every platform, so streams stay portable.
struct ZigguratTables {
  std::uint64_t kn[128];  ///< quick-accept thresholds, |hz| < kn[i]
  double wn[128];         ///< strip widths: x = hz * wn[i]
  double fn[128];         ///< pdf at each strip boundary
  ZigguratTables() noexcept {
    constexpr double m1 = 9007199254740992.0;  // 2^53
    const double vn = 9.91256303526217e-3;     // strip area
    double dn = 3.442619855899;                // tail boundary R
    double tn = dn;
    const double q = vn / std::exp(-0.5 * dn * dn);
    kn[0] = static_cast<std::uint64_t>((dn / q) * m1);
    kn[1] = 0;
    wn[0] = q / m1;
    wn[127] = dn / m1;
    fn[0] = 1.0;
    fn[127] = std::exp(-0.5 * dn * dn);
    for (int i = 126; i >= 1; --i) {
      dn = std::sqrt(-2.0 * std::log(vn / dn + std::exp(-0.5 * dn * dn)));
      kn[i + 1] = static_cast<std::uint64_t>((dn / tn) * m1);
      tn = dn;
      fn[i] = std::exp(-0.5 * dn * dn);
      wn[i] = dn / m1;
    }
  }
};

const ZigguratTables& ziggurat_tables() noexcept {
  static const ZigguratTables tables;
  return tables;
}

}  // namespace

double Rng::normal_ziggurat() noexcept {
  const ZigguratTables& t = ziggurat_tables();
  constexpr double kTail = 3.442619855899;  // = the tables' R
  for (;;) {
    const std::uint64_t bits = (*this)();
    const std::size_t i = bits & 127;
    // Arithmetic shift keeps the sign: hz is a signed 54-bit value whose
    // magnitude reuses 53 of the strip-selection draw's high bits.
    const std::int64_t hz = static_cast<std::int64_t>(bits) >> 10;
    // |hz| <= 2^53, so negation cannot overflow.
    const auto az = static_cast<std::uint64_t>(hz < 0 ? -hz : hz);
    if (az < t.kn[i]) return static_cast<double>(hz) * t.wn[i];
    if (i == 0) {
      // Base strip: sample the tail x > R exactly (Marsaglia's method).
      double x = 0.0;
      double y = 0.0;
      do {
        x = -std::log(1.0 - uniform()) / kTail;
        y = -std::log(1.0 - uniform());
      } while (y + y < x * x);
      return hz >= 0 ? kTail + x : -(kTail + x);
    }
    const double x = static_cast<double>(hz) * t.wn[i];
    if (t.fn[i] + uniform() * (t.fn[i - 1] - t.fn[i]) <
        std::exp(-0.5 * x * x)) {
      return x;
    }
    // Wedge rejected: retry from a fresh strip.
  }
}

void Rng::normal_fill(std::span<double> out, double mean, double sd) noexcept {
  for (double& v : out) v = mean + sd * normal_ziggurat();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::pareto(double x_m, double alpha) noexcept {
  return x_m / std::pow(1.0 - uniform(), 1.0 / alpha);
}

std::size_t Rng::choose(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slack lands on the last bin
}

Rng Rng::split() noexcept {
  std::uint64_t seed = (*this)();
  return Rng(seed);
}

}  // namespace sspred::support
