// Flat slot-indexed IR for structural models.
//
// The `Expr` tree (expr.hpp) is the authoring frontend: it is easy to build
// and to read, but every evaluation re-walks a shared_ptr DAG through
// virtual dispatch and resolves parameters through string-keyed map
// lookups. `compile()` (compile.hpp) flattens a tree into a `Program`: a
// contiguous post-order node buffer with parameters interned to integer
// slots. The iterative evaluator walks that buffer once per evaluation —
// no virtual calls, no pointer chasing, no string lookups — and mirrors
// the tree API with three entry points:
//   * evaluate()       — the §2.3 stochastic calculus;
//   * evaluate_point() — conventional point prediction;
//   * sample_trials()  — batched Monte-Carlo over trial-major blocks of
//                        structure-of-arrays buffers (one double[block]
//                        row per node and per slot), so each node is a
//                        flat arithmetic kernel over the whole block.
// All three are semantically interchangeable with the tree evaluators.
// Monte-Carlo additionally carries two versioned RNG stream contracts
// (SampleOrder below): the default kBlocked order feeds whole blocks from
// the batched ziggurat sampler, while kScalarCompat reproduces the exact
// stream of repeated Expr::sample() calls, keeping the tree a bit-exact
// differential-testing oracle for the compiled path
// (tests/compile_test.cpp; the blocked order is pinned by
// tests/mc_engine_test.cpp).
//
// Each entry point also has a *fused request-major* variant
// (evaluate_fused / evaluate_point_fused / sample_fused) that evaluates N
// independent sets of bindings — a LaneEnvironment, the slot table
// columned by request lane — in one sweep over the node buffer,
// amortizing per-node dispatch across concurrent requests instead of only
// across the trials of one request. Every fused variant is bit-exact per
// lane against its single-request counterpart (sample_fused drives one
// RNG substream per lane, reproducing each lane's standalone kBlocked
// stream bit for bit), so fusing is a pure throughput optimization: the
// serving layer batches structure-equal requests into lanes without any
// observable effect on results (tests/fused_test.cpp pins this).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "stats/sequential.hpp"
#include "stoch/arithmetic.hpp"
#include "stoch/group_ops.hpp"
#include "stoch/stochastic_value.hpp"
#include "support/rng.hpp"

namespace sspred::model::ir {

/// Operation of one flat node. Group nodes (sum/prod/max/min/div) read
/// their operands' values from earlier positions in the buffer; post-order
/// guarantees operands are computed before their consumer.
enum class OpCode : std::uint8_t {
  kConst,    ///< push constants[payload]
  kParam,    ///< push slot `payload` of the SlotEnvironment
  kSum,      ///< fold stoch::add over the operand list (dep regime)
  kProd,     ///< fold stoch::mul over the operand list (dep regime)
  kDiv,      ///< operands[0] / operands[1] (dep regime)
  kMax,      ///< stoch::smax over the operand list (policy)
  kMin,      ///< stoch::smin over the operand list (policy)
  kIterate,  ///< n repetitions of the body region summed
  kRef,      ///< reuse of an earlier occurrence region (shared subtree)
};

/// One flat node. Fields are a union-of-purposes kept plain for
/// cache-friendly linear walks:
///  * kConst:   payload = index into Program constants
///  * kParam:   payload = parameter slot id
///  * group ops: first/count index the shared operand-id buffer
///  * kIterate: payload = iteration count; body occupies
///    [body_begin, self) with its root immediately before self;
///    slots_first/slots_count list the distinct parameter slots the body
///    references (needed to give each unrelated Monte-Carlo iteration a
///    fresh per-slot draw without disturbing the enclosing trial's cache).
///  * kRef:     payload = root node of an earlier occurrence region
///    [body_begin, payload] compiled from the same authoring subtree.
///    Deterministic walks copy the occurrence's value; the Monte-Carlo
///    walk re-executes the region so every occurrence draws independently,
///    exactly like the tree re-walking a shared subtree.
struct Node {
  OpCode op = OpCode::kConst;
  stoch::Dependence dep = stoch::Dependence::kUnrelated;
  stoch::ExtremePolicy policy = stoch::ExtremePolicy::kLargestMean;
  std::uint32_t payload = 0;
  std::uint32_t first = 0;
  std::uint32_t count = 0;
  std::uint32_t body_begin = 0;
  std::uint32_t slots_first = 0;
  std::uint32_t slots_count = 0;
};

class Program;

/// Which order Monte-Carlo sampling consumes the RNG stream in. Both
/// orders draw the same distributions, so estimates agree statistically,
/// but per-seed results differ; each order is a versioned determinism
/// contract pinned by its own regression tests.
enum class SampleOrder : std::uint8_t {
  /// Trial-major blocks of kBlockTrials lanes over SoA buffers. Per draw
  /// event the whole block's normals are drawn consecutively (ziggurat):
  /// first every live parameter slot in ascending slot-id order, then the
  /// node-major walk (stochastic constants per occurrence; unrelated
  /// iterate repetitions redraw their body slots, ascending, per
  /// repetition). The default and the fast path.
  kBlocked,
  /// One trial at a time, consuming the stream exactly like repeated
  /// Expr::sample() calls on the authoring tree (the PR-2 differential
  /// testing contract).
  kScalarCompat,
};

/// Lanes per block of the blocked Monte-Carlo engine. Also its RNG
/// batching unit, i.e. part of the kBlocked determinism contract —
/// changing it changes every blocked stream.
inline constexpr std::size_t kBlockTrials = 1024;

/// Dense parameter bindings for one compiled evaluation: a vector of
/// stochastic values indexed by slot id, replacing the tree path's
/// per-evaluation string->value map lookups.
class SlotEnvironment {
 public:
  /// An environment with every slot of `names` unbound.
  explicit SlotEnvironment(
      std::shared_ptr<const std::vector<std::string>> names);

  void bind(std::uint32_t slot, stoch::StochasticValue value);

  /// Throws sspred::support::Error naming the slot and listing the bound
  /// slots when `slot` is out of range or unbound.
  [[nodiscard]] const stoch::StochasticValue& lookup(std::uint32_t slot) const;

  [[nodiscard]] bool bound(std::uint32_t slot) const noexcept {
    return slot < bound_.size() && bound_[slot] != 0;
  }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return *names_;
  }

 private:
  std::vector<stoch::StochasticValue> values_;
  std::vector<std::uint8_t> bound_;
  std::shared_ptr<const std::vector<std::string>> names_;
};

/// Dense per-lane parameter bindings for a fused request-major evaluation:
/// the slot table columned by request lane. Storage is slot-major
/// (values_[slot * lanes + lane]) so the fused kernels and the blocked
/// sampler's per-slot prologue read one lane run per slot. A default
/// constructed environment is empty; reset() (re)shapes it for a program
/// and lane count, retaining capacity, so serving workers reuse one
/// environment across batches allocation-free after warmup.
class LaneEnvironment {
 public:
  LaneEnvironment() = default;

  /// Reshapes for `lanes` lanes of `program`'s slot table and clears every
  /// binding. Capacity only grows.
  void reset(const Program& program, std::size_t lanes);

  /// Reshapes to `lane_ids.size()` lanes copied column-by-column from
  /// `src` (lane i takes src lane lane_ids[i], bindings included). The
  /// adaptive fused sampler uses this to compact retired lanes out of
  /// the sweep between blocks. Capacity only grows.
  void assign_compacted(const LaneEnvironment& src,
                        std::span<const std::size_t> lane_ids);

  void bind(std::size_t lane, std::uint32_t slot,
            stoch::StochasticValue value);

  /// Throws sspred::support::Error naming the lane and slot when the slot
  /// is out of range or unbound in that lane.
  [[nodiscard]] const stoch::StochasticValue& lookup(std::size_t lane,
                                                     std::uint32_t slot) const;

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return names_ ? names_->size() : 0;
  }

 private:
  std::vector<stoch::StochasticValue> values_;  ///< [slot * lanes + lane]
  std::vector<std::uint8_t> bound_;
  std::size_t lanes_ = 0;
  std::shared_ptr<const std::vector<std::string>> names_;
};

/// Reusable evaluation buffers. Every Program entry point has an overload
/// taking one of these; the overloads without it allocate a fresh
/// workspace per call. Reuse across calls (and across the trials of one
/// sample_trials batch) makes evaluation allocation-free after warmup.
struct EvalWorkspace {
  std::vector<stoch::StochasticValue> values;   ///< per-node stochastic value
  std::vector<stoch::StochasticValue> scratch;  ///< operand gather buffer
  std::vector<double> point_values;             ///< per-node point/sample
  std::vector<double> slot_sample;              ///< per-slot trial draw
  std::vector<std::uint8_t> slot_drawn;         ///< per-slot cache validity
  std::vector<double> saved_sample;             ///< iterate slot save/restore
  std::vector<std::uint8_t> saved_drawn;
  std::vector<double> saved_values;             ///< ref region save/restore
  std::vector<double> trial_results;            ///< sample_trials batch
  // Blocked-engine structure-of-arrays arenas (one kBlockTrials-wide row
  // per node / per slot; kept hot across calls, so serving workers pay no
  // per-request allocation on the Monte-Carlo path after warmup).
  std::vector<double> lane_values;              ///< node-major value rows
  std::vector<double> lane_slots;               ///< slot-major draw rows
  std::vector<double> lane_saved;               ///< row save/restore stack
  // Adaptive-sampling scratch (per-lane sample buffers and bookkeeping;
  // reused across calls like the arenas above).
  std::vector<std::vector<double>> adaptive_samples;
  std::vector<std::size_t> adaptive_active;     ///< surviving lane ids
  std::vector<std::size_t> adaptive_offsets;    ///< per-lane segment starts
  std::vector<std::size_t> adaptive_widths;     ///< per-lane segment widths
};

/// Outcome of one adaptively stopped Monte-Carlo run: the summary plus
/// how much work the stop rule actually bought.
struct AdaptiveResult {
  stoch::StochasticValue value;  ///< mean ± 2sd over the executed trials
  std::size_t trials = 0;        ///< trials actually executed
  double ci_halfwidth = 0.0;     ///< achieved CI half-width of the mean
  /// False only when a precision target was set and still unmet at the
  /// max-trial clamp (a structured partial-precision outcome, not an
  /// error). Fixed rules and point-program short-circuits report true.
  bool converged = true;
};

/// A compiled structural model: arena-style flat buffers, value semantics,
/// immutable after compile(). Thread-safe for concurrent evaluation as
/// long as each thread uses its own EvalWorkspace and RNG.
class Program {
 public:
  /// Stochastic evaluation under the §2.3 calculus (tree-equivalent).
  [[nodiscard]] stoch::StochasticValue evaluate(
      const SlotEnvironment& env) const;
  [[nodiscard]] stoch::StochasticValue evaluate(const SlotEnvironment& env,
                                                EvalWorkspace& ws) const;

  /// Conventional point evaluation (all parameters collapse to means).
  [[nodiscard]] double evaluate_point(const SlotEnvironment& env) const;
  [[nodiscard]] double evaluate_point(const SlotEnvironment& env,
                                      EvalWorkspace& ws) const;

  /// `trials` Monte-Carlo samples summarized as mean ± 2sd. Workspace
  /// buffers are reused across all trials (and across calls when the
  /// caller passes its own workspace). The RNG stream follows `order`:
  /// kBlocked (default) is the trial-major SoA fast path, kScalarCompat
  /// matches `trials` sequential Expr::sample() calls bit for bit.
  [[nodiscard]] stoch::StochasticValue sample_trials(
      const SlotEnvironment& env, support::Rng& rng, std::size_t trials,
      SampleOrder order = SampleOrder::kBlocked) const;
  [[nodiscard]] stoch::StochasticValue sample_trials(
      const SlotEnvironment& env, support::Rng& rng, std::size_t trials,
      EvalWorkspace& ws, SampleOrder order = SampleOrder::kBlocked) const;

  /// Writes one Monte-Carlo sample per element of `out` (out.size()
  /// trials). The raw-sample entry point for callers that reduce trials
  /// themselves (serve's chunked fan-out combines per-chunk partials).
  void sample_into(const SlotEnvironment& env, support::Rng& rng,
                   std::span<double> out, EvalWorkspace& ws,
                   SampleOrder order = SampleOrder::kBlocked) const;

  /// One Monte-Carlo trial (the tree's Expr::sample analogue).
  [[nodiscard]] double sample(const SlotEnvironment& env, support::Rng& rng,
                              EvalWorkspace& ws) const;

  /// Sequentially stopped Monte-Carlo (kBlocked order only): draws trial
  /// blocks per stats::next_block_width and stops at the first
  /// between-block checkpoint where `rule` is satisfied, or at its
  /// max-trial clamp. The stop decision depends only on the sampled
  /// values, so a fixed seed reproduces the exact trial count. A rule
  /// with no precision target (`StopRule::fixed(n)`) consumes the RNG
  /// identically to sample_trials(env, rng, n, kBlocked) and returns a
  /// bit-identical summary. rule.max_trials must be >= 2.
  [[nodiscard]] AdaptiveResult sample_adaptive(const SlotEnvironment& env,
                                               support::Rng& rng,
                                               const stats::StopRule& rule,
                                               EvalWorkspace& ws) const;
  [[nodiscard]] AdaptiveResult sample_adaptive(const SlotEnvironment& env,
                                               support::Rng& rng,
                                               const stats::StopRule& rule)
      const;

  // --- Fused request-major evaluation ------------------------------------
  //
  // One sweep over the node buffer evaluates env.lanes() independent sets
  // of bindings. Each fused entry point is bit-exact per lane against its
  // single-request counterpart, so batching requests into lanes is
  // observable only as throughput. out.size() must equal env.lanes().

  /// Fused evaluate(): §2.3 stochastic calculus, one result per lane.
  void evaluate_fused(const LaneEnvironment& env, EvalWorkspace& ws,
                      std::span<stoch::StochasticValue> out) const;

  /// Fused evaluate_point(): conventional point prediction per lane.
  void evaluate_point_fused(const LaneEnvironment& env, EvalWorkspace& ws,
                            std::span<double> out) const;

  /// Fused sample_trials(): `trials` Monte-Carlo samples per lane,
  /// summarized as mean ± 2sd. Lane k draws exclusively from rngs[k] and
  /// consumes it in exactly the standalone kBlocked order — the per-lane
  /// RNG substream contract — so out[k] is bit-identical to
  /// sample_trials(env_k, rngs[k], trials, kBlocked) run alone.
  /// rngs.size() must equal env.lanes(); all lanes share one trial count
  /// (the serving layer only fuses requests with equal trials).
  void sample_fused(const LaneEnvironment& env, std::span<support::Rng> rngs,
                    std::size_t trials, EvalWorkspace& ws,
                    std::span<stoch::StochasticValue> out) const;

  /// Fused sample_adaptive(): lane k draws from rngs[k] under rules[k].
  /// Converged lanes retire at block boundaries and compact out of the
  /// sweep while unconverged lanes keep drawing from their per-lane RNG
  /// substreams; every lane's draws, trial count and summary are
  /// bit-identical to sample_adaptive(env_k, rngs[k], rules[k]) run
  /// alone, so mixed fixed-count and precision-target batches fuse
  /// freely. rngs/rules/out sizes must equal env.lanes().
  void sample_adaptive_fused(const LaneEnvironment& env,
                             std::span<support::Rng> rngs,
                             std::span<const stats::StopRule> rules,
                             EvalWorkspace& ws,
                             std::span<AdaptiveResult> out) const;

  /// A SlotEnvironment shaped for this program, all slots unbound.
  [[nodiscard]] SlotEnvironment make_environment() const {
    return SlotEnvironment(slot_names_);
  }

  /// A LaneEnvironment shaped for this program with `lanes` lanes, all
  /// slots unbound in every lane.
  [[nodiscard]] LaneEnvironment make_lane_environment(std::size_t lanes) const {
    LaneEnvironment env;
    env.reset(*this, lanes);
    return env;
  }

  /// Slot id for `name`; throws sspred::support::Error listing the known
  /// parameters when the program has no such parameter.
  [[nodiscard]] std::uint32_t slot(const std::string& name) const;
  [[nodiscard]] bool has_slot(const std::string& name) const noexcept {
    return slot_ids_.contains(name);
  }
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slot_names_->size();
  }
  [[nodiscard]] const std::vector<std::string>& slot_names() const noexcept {
    return *slot_names_;
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const Node& node(std::size_t i) const { return nodes_[i]; }
  /// Constant-pool entry `i` (kConst nodes index it through payload).
  [[nodiscard]] const stoch::StochasticValue& constant(std::size_t i) const {
    return constants_[i];
  }
  /// Slots some node actually reads, ascending. Slots present only in the
  /// table (e.g. inherited from a slot_base) are dead: the blocked engine
  /// never draws for them, and the optimizer reports them.
  [[nodiscard]] std::span<const std::uint32_t> live_slots() const noexcept {
    return live_slots_;
  }

 private:
  friend class Builder;
  friend class ProgramRewriter;  ///< optimizer passes (model/compile.cpp)
  friend class LaneEnvironment;  ///< reset() shares slot_names_

  /// Recomputes the derived indexes (sample skips, per-node skip flags,
  /// live slots) from nodes_; called after building and after rewrites.
  void reindex();
  void resize_workspace(EvalWorkspace& ws) const;
  void exec_stochastic(const SlotEnvironment& env, EvalWorkspace& ws) const;
  void exec_point(const SlotEnvironment& env, EvalWorkspace& ws) const;
  /// Executes nodes [lo, hi) of the sample walk, skipping regions that are
  /// bodies of unrelated-iterate nodes (those re-run under the iterate
  /// node's own loop, with fresh per-slot draws each iteration).
  void exec_sample(const SlotEnvironment& env, support::Rng& rng,
                   EvalWorkspace& ws, std::uint32_t lo, std::uint32_t hi) const;
  /// Blocked analogue of exec_sample: executes nodes [lo, hi) for `lanes`
  /// trials at once against the workspace's SoA rows.
  void exec_blocked(const SlotEnvironment& env, support::Rng& rng,
                    EvalWorkspace& ws, std::uint32_t lo, std::uint32_t hi,
                    std::size_t lanes) const;
  /// Shared body of the single-request and fused blocked walks. `Fill`
  /// supplies the two draw sites (parameter-slot rows and stochastic
  /// constants); `stride` is the allocated row width (kBlockTrials for the
  /// single walk, requests * kBlockTrials when fused) and `lanes` the
  /// occupied prefix of each row.
  template <class Fill>
  void exec_blocked_impl(Fill& fill, EvalWorkspace& ws, std::uint32_t lo,
                         std::uint32_t hi, std::size_t lanes,
                         std::size_t stride) const;
  void exec_stochastic_fused(const LaneEnvironment& env,
                             EvalWorkspace& ws) const;
  void exec_point_fused(const LaneEnvironment& env, EvalWorkspace& ws) const;

  std::vector<Node> nodes_;                       ///< post-order; root last
  std::vector<std::uint32_t> operands_;           ///< group operand node ids
  std::vector<stoch::StochasticValue> constants_;
  std::vector<std::uint32_t> body_slots_;         ///< iterate body slot sets
  /// For each position that begins the body of one or more unrelated
  /// iterate nodes: the iterate node ids, ascending (nested bodies share a
  /// begin position; the sample walk jumps to the largest id inside the
  /// region being executed).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sample_skips_;
  std::vector<std::uint8_t> has_skip_;            ///< per-node skip flag
  /// Per-node flag, set only on kRef nodes whose occurrence region is
  /// draw-free at re-execution time: every constant in the region is
  /// point-valued, it contains no unrelated iterate (and no impure nested
  /// ref), and no unrelated-iterate body separates the ref from its region
  /// (which would reset the region's slot draws in between). Re-executing
  /// such a region consumes no RNG and recomputes the target's values bit
  /// for bit, so the blocked engine copies the target row instead —
  /// skipping the region re-run and its lane save/restore. kScalarCompat
  /// deliberately keeps the re-execution: it is the versioned image of the
  /// pre-batching interpreter, preserved instruction for instruction.
  std::vector<std::uint8_t> ref_pure_;
  std::vector<std::uint32_t> live_slots_;         ///< referenced slots, asc
  std::shared_ptr<const std::vector<std::string>> slot_names_ =
      std::make_shared<const std::vector<std::string>>();
  std::map<std::string, std::uint32_t> slot_ids_;
};

/// Append-only program assembler used by Expr::lower(). Children must be
/// emitted before their parent (post-order), which the recursive lowering
/// does naturally.
class Builder {
 public:
  Builder() = default;
  /// Seeds the slot table from `base` so programs compiled from related
  /// expressions (a model and its component breakdowns) agree on slot ids.
  explicit Builder(const Program& base);

  [[nodiscard]] std::uint32_t emit_const(stoch::StochasticValue v);
  [[nodiscard]] std::uint32_t emit_param(const std::string& name);
  /// kSum/kProd/kDiv take `dep`; kMax/kMin take `policy`.
  [[nodiscard]] std::uint32_t emit_group(OpCode op,
                                         std::span<const std::uint32_t> children,
                                         stoch::Dependence dep,
                                         stoch::ExtremePolicy policy);
  /// The body must be the nodes emitted since `body_begin` (non-empty,
  /// root last).
  [[nodiscard]] std::uint32_t emit_iterate(std::uint32_t body_begin,
                                           std::size_t iterations,
                                           stoch::Dependence dep);

  /// Reuse node for the already-emitted occurrence region
  /// [region_begin, target]: deterministic walks copy the target's value,
  /// the sample walk re-executes the region for an independent draw.
  [[nodiscard]] std::uint32_t emit_ref(std::uint32_t target,
                                       std::uint32_t region_begin);

  /// Shared-subtree memo, keyed by the authoring node's identity. If `key`
  /// was noted before, emits a kRef to its occurrence and returns the new
  /// node id; otherwise returns kNoNode (caller should lower the subtree
  /// and note_shared() it).
  static constexpr std::uint32_t kNoNode = 0xffffffffu;
  [[nodiscard]] std::uint32_t emit_shared_ref(const void* key);
  void note_shared(const void* key, std::uint32_t region_begin,
                   std::uint32_t root);

  /// Index the next emitted node will get (used to mark iterate bodies).
  [[nodiscard]] std::uint32_t next_index() const noexcept {
    return static_cast<std::uint32_t>(prog_.nodes_.size());
  }

  /// Finalizes into an immutable Program. The last emitted node is the
  /// root; requires at least one node.
  [[nodiscard]] Program take();

 private:
  Program prog_;
  std::vector<std::string> names_;  ///< mutable slot table until take()
  /// authoring-node identity -> (region begin, root) of first emission
  std::map<const void*, std::pair<std::uint32_t, std::uint32_t>> shared_;
};

}  // namespace sspred::model::ir
