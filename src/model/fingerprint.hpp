// Canonical structural fingerprints.
//
// A structural model's identity — for the serving layer's program cache,
// for grouping structure-equal requests into one fused sweep, and for
// consistent-hash routing to a shard — is a *fingerprint* of everything
// that determines the compiled program (and nothing that doesn't, such
// as runtime load bindings). Before this helper the same serialization
// was hand-rolled in more than one place (model registration stamped one
// key, the program cache re-serialized another); Fingerprint is the one
// canonical builder both use, so two call sites can never drift into
// disagreeing about what "structurally identical" means.
//
// The fingerprint is injective over its inputs: string fields are
// length-prefixed so no choice of delimiters inside a value (a host name
// containing '|' or '=') can make two different field sequences collide,
// and doubles are rendered with 17 significant digits (round-trip exact
// for IEEE binary64). hash() is a 64-bit digest of the canonical string
// for cheap routing/bucketing; equality decisions always use str().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace sspred::model {

/// 64-bit digest of a byte string: FNV-1a with a splitmix64 finalizer
/// (the FNV core alone mixes the low bits poorly; the finalizer makes the
/// digest usable directly as a hash-ring position). Deterministic across
/// runs and platforms.
[[nodiscard]] std::uint64_t hash_bytes(std::string_view bytes) noexcept;

/// Append-only canonical key builder: `tag(...)` names the kind,
/// `field(name, value)` appends one structural input. Field order is
/// significant (callers append in one fixed order).
class Fingerprint {
 public:
  /// Appends a bare tag ("sor", "block", ...).
  Fingerprint& tag(std::string_view t);

  Fingerprint& field(std::string_view name, std::uint64_t v);
  Fingerprint& field(std::string_view name, std::int64_t v);
  /// 17 significant digits: distinct doubles yield distinct fields.
  Fingerprint& field(std::string_view name, double v);
  Fingerprint& field(std::string_view name, bool v);
  /// Length-prefixed (`name=<len>:<bytes>`): injective for any value.
  Fingerprint& field(std::string_view name, std::string_view v);

  /// Convenience for the common integer kinds without caller-side casts.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  Fingerprint& field(std::string_view name, T v) {
    if constexpr (std::is_signed_v<T>) {
      return field(name, static_cast<std::int64_t>(v));
    } else {
      return field(name, static_cast<std::uint64_t>(v));
    }
  }

  /// Enums fingerprint as their underlying integer value.
  template <typename E>
    requires std::is_enum_v<E>
  Fingerprint& field(std::string_view name, E v) {
    return field(name,
                 static_cast<std::int64_t>(static_cast<std::underlying_type_t<E>>(v)));
  }

  /// The canonical key so far. Equal sequences of tag/field calls produce
  /// equal strings; distinct sequences produce distinct strings.
  [[nodiscard]] const std::string& str() const noexcept { return key_; }

  /// hash_bytes(str()): the routing/bucketing digest.
  [[nodiscard]] std::uint64_t hash() const noexcept;

 private:
  void sep();
  std::string key_;
};

}  // namespace sspred::model
