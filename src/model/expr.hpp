// Structural performance models (paper §2.2, [Sch97]).
//
// A structural model is an expression DAG over component models and model
// parameters. Leaves are constants (point or stochastic) and named
// parameters; inner nodes are sums, products, quotients, group Max/Min and
// per-iteration repetition. A model can be evaluated three ways:
//   * evaluate()      — the stochastic calculus of §2.3 (the contribution);
//   * evaluate_point()— conventional point-valued prediction (the baseline);
//   * monte_carlo()   — ground truth by sampling parameters, for validation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stoch/arithmetic.hpp"
#include "stoch/group_ops.hpp"
#include "stoch/stochastic_value.hpp"
#include "support/rng.hpp"

namespace sspred::model {

namespace ir {
class Builder;
}  // namespace ir

/// Parameter bindings for one evaluation.
class Environment {
 public:
  /// Binds (or rebinds) a parameter.
  void bind(const std::string& name, stoch::StochasticValue value);

  /// Throws sspred::support::Error naming the parameter and listing the
  /// bound names when `name` is unbound.
  [[nodiscard]] const stoch::StochasticValue& lookup(
      const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const noexcept;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, stoch::StochasticValue> bindings_;
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Per-trial sample cache: a parameter appearing in several places draws
/// one value per trial (it is one physical quantity).
using SampleCache = std::map<std::string, double>;

class Expr {
 public:
  virtual ~Expr() = default;

  /// Stochastic evaluation under the §2.3 calculus.
  [[nodiscard]] virtual stoch::StochasticValue evaluate(
      const Environment& env) const = 0;

  /// Conventional point evaluation (all parameters collapse to means).
  [[nodiscard]] virtual double evaluate_point(const Environment& env) const = 0;

  /// One Monte-Carlo trial: parameters are drawn from their stochastic
  /// distributions (cached per name), operators applied exactly.
  [[nodiscard]] virtual double sample(const Environment& env,
                                      SampleCache& cache,
                                      support::Rng& rng) const = 0;

  /// Human-readable form (for documentation and debugging).
  [[nodiscard]] virtual std::string to_string() const = 0;

  /// Collects parameter names into `out` (duplicates possible).
  virtual void collect_params(std::vector<std::string>& out) const = 0;

  /// Emits this node into the flat-IR builder, children first (post-order),
  /// and returns the emitted node id. Implementation detail of
  /// model::compile() (compile.hpp) — call that instead.
  virtual std::uint32_t lower(ir::Builder& builder) const = 0;

  /// All distinct parameter names in the expression.
  [[nodiscard]] std::vector<std::string> parameters() const;
};

/// Leaf: a constant (point or stochastic) value.
[[nodiscard]] ExprPtr constant(stoch::StochasticValue v);
/// Leaf: a named parameter resolved from the Environment.
[[nodiscard]] ExprPtr param(std::string name);

/// Sum of terms under one dependence regime.
[[nodiscard]] ExprPtr sum(std::vector<ExprPtr> terms,
                          stoch::Dependence dep = stoch::Dependence::kUnrelated);
/// Binary convenience.
[[nodiscard]] ExprPtr add(ExprPtr a, ExprPtr b,
                          stoch::Dependence dep = stoch::Dependence::kUnrelated);
/// Product of factors under one dependence regime.
[[nodiscard]] ExprPtr prod(std::vector<ExprPtr> factors,
                           stoch::Dependence dep = stoch::Dependence::kUnrelated);
[[nodiscard]] ExprPtr mul(ExprPtr a, ExprPtr b,
                          stoch::Dependence dep = stoch::Dependence::kUnrelated);
/// Quotient numerator / denominator.
[[nodiscard]] ExprPtr quotient(ExprPtr numerator, ExprPtr denominator,
                               stoch::Dependence dep =
                                   stoch::Dependence::kUnrelated);
/// Group maximum / minimum under a policy (paper §2.3.3).
[[nodiscard]] ExprPtr vmax(std::vector<ExprPtr> items,
                           stoch::ExtremePolicy policy =
                               stoch::ExtremePolicy::kLargestMean);
[[nodiscard]] ExprPtr vmin(std::vector<ExprPtr> items,
                           stoch::ExtremePolicy policy =
                               stoch::ExtremePolicy::kLargestMean);
/// `iterations` repetitions of `body` summed (the paper's Σ over NumIts).
/// Stochastically: related -> n·X ± n·a; unrelated -> n·X ± sqrt(n)·a.
[[nodiscard]] ExprPtr iterate(ExprPtr body, std::size_t iterations,
                              stoch::Dependence dep =
                                  stoch::Dependence::kRelated);

// Operator sugar over ExprPtr for the UNRELATED regime (use the named
// builders when the related/conservative rules or explicit policies are
// intended).
[[nodiscard]] inline ExprPtr operator+(ExprPtr a, ExprPtr b) {
  return add(std::move(a), std::move(b));
}
[[nodiscard]] inline ExprPtr operator*(ExprPtr a, ExprPtr b) {
  return mul(std::move(a), std::move(b));
}
[[nodiscard]] inline ExprPtr operator/(ExprPtr a, ExprPtr b) {
  return quotient(std::move(a), std::move(b));
}

/// Full Monte-Carlo evaluation: `trials` samples summarized as mean ± 2sd.
/// Routes through the compiled flat IR (one compile, then the blocked
/// trial-major engine — see ir::SampleOrder in model/ir.hpp for the RNG
/// stream contract and the scalar-compatible fallback order).
[[nodiscard]] stoch::StochasticValue monte_carlo(const Expr& expr,
                                                 const Environment& env,
                                                 support::Rng& rng,
                                                 std::size_t trials = 10'000);

}  // namespace sspred::model
