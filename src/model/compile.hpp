// compile() — the only bridge between the Expr authoring frontend and the
// flat slot-indexed IR (ir.hpp).
//
// Two-phase lifecycle: build the model once as an Expr tree (readable,
// composable, the differential-testing oracle), compile it once, then
// answer every prediction query from the compiled Program. Structural
// models (predict/sor_model.hpp) do exactly this at construction.
#pragma once

#include "model/expr.hpp"
#include "model/ir.hpp"

namespace sspred::model {

/// Flattens `expr` into a post-order Program with parameters interned to
/// integer slots (slot ids assigned in first-occurrence order).
[[nodiscard]] ir::Program compile(const Expr& expr);

/// Like compile(), but seeds the slot table from `slot_base` so programs
/// compiled from related expressions — a model and its per-component
/// breakdown terms — agree on slot ids and can share one SlotEnvironment.
[[nodiscard]] ir::Program compile(const Expr& expr,
                                  const ir::Program& slot_base);

/// Binds every slot of `program` from the string-keyed environment
/// (throws the Environment's unbound-parameter error if one is missing).
/// Bridge for callers still holding a tree-style Environment; hot paths
/// should bind slots directly instead.
[[nodiscard]] ir::SlotEnvironment bind_environment(const ir::Program& program,
                                                   const Environment& env);

/// Monte-Carlo over a compiled program (mean ± 2sd of `trials` samples).
[[nodiscard]] stoch::StochasticValue monte_carlo(const ir::Program& program,
                                                 const ir::SlotEnvironment& env,
                                                 support::Rng& rng,
                                                 std::size_t trials = 10'000);

}  // namespace sspred::model
