// compile() — the only bridge between the Expr authoring frontend and the
// flat slot-indexed IR (ir.hpp) — plus the IR optimization pipeline that
// runs between lowering and execution.
//
// Two-phase lifecycle: build the model once as an Expr tree (readable,
// composable, the differential-testing oracle), compile it once, then
// answer every prediction query from the compiled Program. Structural
// models (predict/sor_model.hpp) do exactly this at construction.
//
// Every optimization pass is bit-exact in all three evaluation modes and
// leaves the Monte-Carlo RNG stream untouched (only draw-free structure is
// rewritten), so compile() applies the full pipeline by default and every
// existing bit-level differential test keeps passing. optimize() is also
// exposed directly, with per-pass switches, for testing and diagnostics.
#pragma once

#include "model/expr.hpp"
#include "model/ir.hpp"

namespace sspred::model {

/// Per-pass switches for optimize(). All passes preserve results bit for
/// bit in stochastic, point and Monte-Carlo modes (both sample orders):
///  * fold_constants — rewrites point-valued (parameter- and draw-free)
///    subtrees to single literals, guarded per node on the three modes'
///    arithmetic agreeing exactly;
///  * fuse_groups — flattens single-use max/min chains of one policy
///    (any operand position; Clark's sequential fold is excluded) and
///    head-position sum/prod chains of one dependence into their parent,
///    turning the SOR skeleton's nested reductions into wide variadic ops;
///  * eliminate_dead — drops nodes unreachable from the root (the
///    leftovers of folding and fusion) and reports table slots no
///    surviving node reads (the blocked sampler never draws for them).
struct OptimizeOptions {
  bool fold_constants = true;
  bool fuse_groups = true;
  bool eliminate_dead = true;
};

/// What optimize() did, for tests and diagnostics.
struct OptimizeStats {
  std::size_t folded = 0;         ///< non-leaf nodes rewritten to literals
  std::size_t fused = 0;          ///< chain links flattened into parents
  std::size_t removed_nodes = 0;  ///< nodes dropped by the dead-code sweep
  std::size_t dead_slots = 0;     ///< table slots no surviving node reads
};

/// Runs the optimization pipeline over `program`. The result evaluates
/// bit-identically to the input in every mode; the slot table is preserved
/// verbatim so slot ids (and environments) stay valid.
[[nodiscard]] ir::Program optimize(const ir::Program& program,
                                   const OptimizeOptions& options = {},
                                   OptimizeStats* stats = nullptr);

/// Flattens `expr` into a post-order Program with parameters interned to
/// integer slots (slot ids assigned in first-occurrence order), then runs
/// the optimization pipeline.
[[nodiscard]] ir::Program compile(const Expr& expr);

/// Like compile(), but seeds the slot table from `slot_base` so programs
/// compiled from related expressions — a model and its per-component
/// breakdown terms — agree on slot ids and can share one SlotEnvironment.
[[nodiscard]] ir::Program compile(const Expr& expr,
                                  const ir::Program& slot_base);

/// compile() without the optimization pipeline: the raw lowering, kept as
/// the structural baseline for the optimizer's differential tests.
[[nodiscard]] ir::Program compile_unoptimized(const Expr& expr);
[[nodiscard]] ir::Program compile_unoptimized(const Expr& expr,
                                              const ir::Program& slot_base);

/// Binds every slot of `program` from the string-keyed environment
/// (throws the Environment's unbound-parameter error if one is missing).
/// Bridge for callers still holding a tree-style Environment; hot paths
/// should bind slots directly instead.
[[nodiscard]] ir::SlotEnvironment bind_environment(const ir::Program& program,
                                                   const Environment& env);

/// Monte-Carlo over a compiled program (mean ± 2sd of `trials` samples).
/// Runs the blocked trial-major engine by default; pass
/// ir::SampleOrder::kScalarCompat to reproduce the per-trial tree stream.
[[nodiscard]] stoch::StochasticValue monte_carlo(
    const ir::Program& program, const ir::SlotEnvironment& env,
    support::Rng& rng, std::size_t trials = 10'000,
    ir::SampleOrder order = ir::SampleOrder::kBlocked);

}  // namespace sspred::model
