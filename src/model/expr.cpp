#include "model/expr.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "model/compile.hpp"
#include "model/ir.hpp"
#include "stoch/montecarlo.hpp"
#include "support/error.hpp"

namespace sspred::model {

using stoch::Dependence;
using stoch::ExtremePolicy;
using stoch::StochasticValue;

void Environment::bind(const std::string& name, StochasticValue value) {
  bindings_[name] = value;
}

const StochasticValue& Environment::lookup(const std::string& name) const {
  const auto it = bindings_.find(name);
  if (it == bindings_.end()) {
    std::string bound;
    for (const auto& [bound_name, _] : bindings_) {
      if (!bound.empty()) bound += ", ";
      bound += bound_name;
    }
    SSPRED_REQUIRE(false, "unbound model parameter '" + name + "'; bound: " +
                              (bound.empty() ? "(none)" : bound));
  }
  return it->second;
}

bool Environment::has(const std::string& name) const noexcept {
  return bindings_.contains(name);
}

std::vector<std::string> Environment::names() const {
  std::vector<std::string> out;
  out.reserve(bindings_.size());
  for (const auto& [name, _] : bindings_) out.push_back(name);
  return out;
}

std::vector<std::string> Expr::parameters() const {
  std::vector<std::string> out;
  collect_params(out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

[[nodiscard]] const char* dep_suffix(Dependence dep) {
  return dep == Dependence::kRelated ? "~rel" : "";
}

/// Lowers a child subtree, reusing an earlier emission when the same
/// authoring node (a shared ExprPtr) was already lowered into this
/// program: deterministic walks then copy the occurrence's value instead
/// of recomputing the region. Sampling still re-executes the region, so
/// draw-per-occurrence semantics and the tree's RNG stream are preserved.
[[nodiscard]] std::uint32_t lower_child(const ExprPtr& e,
                                        ir::Builder& builder) {
  if (e.use_count() <= 1) return e->lower(builder);
  const std::uint32_t reused = builder.emit_shared_ref(e.get());
  if (reused != ir::Builder::kNoNode) return reused;
  const std::uint32_t begin = builder.next_index();
  const std::uint32_t root = e->lower(builder);
  builder.note_shared(e.get(), begin, root);
  return root;
}

class ConstExpr final : public Expr {
 public:
  explicit ConstExpr(StochasticValue v) : value_(v) {}
  StochasticValue evaluate(const Environment&) const override { return value_; }
  double evaluate_point(const Environment&) const override {
    return value_.mean();
  }
  double sample(const Environment&, SampleCache&,
                support::Rng& rng) const override {
    return stoch::sample(value_, rng);
  }
  std::string to_string() const override { return value_.to_string(); }
  void collect_params(std::vector<std::string>&) const override {}
  std::uint32_t lower(ir::Builder& builder) const override {
    return builder.emit_const(value_);
  }

 private:
  StochasticValue value_;
};

class ParamExpr final : public Expr {
 public:
  explicit ParamExpr(std::string name) : name_(std::move(name)) {}
  StochasticValue evaluate(const Environment& env) const override {
    return env.lookup(name_);
  }
  double evaluate_point(const Environment& env) const override {
    return env.lookup(name_).mean();
  }
  double sample(const Environment& env, SampleCache& cache,
                support::Rng& rng) const override {
    const auto it = cache.find(name_);
    if (it != cache.end()) return it->second;
    const double v = stoch::sample(env.lookup(name_), rng);
    cache.emplace(name_, v);
    return v;
  }
  std::string to_string() const override { return name_; }
  void collect_params(std::vector<std::string>& out) const override {
    out.push_back(name_);
  }
  std::uint32_t lower(ir::Builder& builder) const override {
    return builder.emit_param(name_);
  }

 private:
  std::string name_;
};

class NaryExpr : public Expr {
 public:
  explicit NaryExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {
    SSPRED_REQUIRE(!children_.empty(), "expression needs operands");
    for (const auto& c : children_) {
      SSPRED_REQUIRE(c != nullptr, "null operand");
    }
  }
  void collect_params(std::vector<std::string>& out) const override {
    for (const auto& c : children_) c->collect_params(out);
  }

 protected:
  /// Lowers every child (post-order) and returns their node ids.
  [[nodiscard]] std::vector<std::uint32_t> lower_children(
      ir::Builder& builder) const {
    std::vector<std::uint32_t> ids;
    ids.reserve(children_.size());
    for (const auto& c : children_) ids.push_back(lower_child(c, builder));
    return ids;
  }
  [[nodiscard]] std::string join(const char* op, const char* suffix) const {
    std::ostringstream os;
    os << "(";
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) os << " " << op << " ";
      os << children_[i]->to_string();
    }
    os << ")" << suffix;
    return os.str();
  }
  std::vector<ExprPtr> children_;
};

class SumExpr final : public NaryExpr {
 public:
  SumExpr(std::vector<ExprPtr> children, Dependence dep)
      : NaryExpr(std::move(children)), dep_(dep) {}
  StochasticValue evaluate(const Environment& env) const override {
    StochasticValue acc = children_[0]->evaluate(env);
    for (std::size_t i = 1; i < children_.size(); ++i) {
      acc = stoch::add(acc, children_[i]->evaluate(env), dep_);
    }
    return acc;
  }
  double evaluate_point(const Environment& env) const override {
    double acc = 0.0;
    for (const auto& c : children_) acc += c->evaluate_point(env);
    return acc;
  }
  double sample(const Environment& env, SampleCache& cache,
                support::Rng& rng) const override {
    double acc = 0.0;
    for (const auto& c : children_) acc += c->sample(env, cache, rng);
    return acc;
  }
  std::string to_string() const override { return join("+", dep_suffix(dep_)); }
  std::uint32_t lower(ir::Builder& builder) const override {
    return builder.emit_group(ir::OpCode::kSum, lower_children(builder), dep_,
                              ExtremePolicy::kLargestMean);
  }

 private:
  Dependence dep_;
};

class ProdExpr final : public NaryExpr {
 public:
  ProdExpr(std::vector<ExprPtr> children, Dependence dep)
      : NaryExpr(std::move(children)), dep_(dep) {}
  StochasticValue evaluate(const Environment& env) const override {
    StochasticValue acc = children_[0]->evaluate(env);
    for (std::size_t i = 1; i < children_.size(); ++i) {
      acc = stoch::mul(acc, children_[i]->evaluate(env), dep_);
    }
    return acc;
  }
  double evaluate_point(const Environment& env) const override {
    double acc = 1.0;
    for (const auto& c : children_) acc *= c->evaluate_point(env);
    return acc;
  }
  double sample(const Environment& env, SampleCache& cache,
                support::Rng& rng) const override {
    double acc = 1.0;
    for (const auto& c : children_) acc *= c->sample(env, cache, rng);
    return acc;
  }
  std::string to_string() const override { return join("*", dep_suffix(dep_)); }
  std::uint32_t lower(ir::Builder& builder) const override {
    return builder.emit_group(ir::OpCode::kProd, lower_children(builder), dep_,
                              ExtremePolicy::kLargestMean);
  }

 private:
  Dependence dep_;
};

class DivExpr final : public Expr {
 public:
  DivExpr(ExprPtr num, ExprPtr den, Dependence dep)
      : num_(std::move(num)), den_(std::move(den)), dep_(dep) {
    SSPRED_REQUIRE(num_ != nullptr && den_ != nullptr, "null operand");
  }
  StochasticValue evaluate(const Environment& env) const override {
    return stoch::div(num_->evaluate(env), den_->evaluate(env), dep_);
  }
  double evaluate_point(const Environment& env) const override {
    const double d = den_->evaluate_point(env);
    SSPRED_REQUIRE(d != 0.0, "point division by zero");
    return num_->evaluate_point(env) / d;
  }
  double sample(const Environment& env, SampleCache& cache,
                support::Rng& rng) const override {
    const double d = den_->sample(env, cache, rng);
    SSPRED_REQUIRE(d != 0.0, "sampled division by zero");
    return num_->sample(env, cache, rng) / d;
  }
  std::string to_string() const override {
    // Built up with += (not one chained operator+) to dodge GCC 12's
    // -Wrestrict false positive on `const char* + std::string&&` at -O3
    // (GCC PR 105329), which -Werror turns fatal in Release builds.
    std::string s = "(";
    s += num_->to_string();
    s += " / ";
    s += den_->to_string();
    s += ")";
    s += dep_suffix(dep_);
    return s;
  }
  void collect_params(std::vector<std::string>& out) const override {
    num_->collect_params(out);
    den_->collect_params(out);
  }
  std::uint32_t lower(ir::Builder& builder) const override {
    // Denominator region first: sample() above draws the denominator
    // before the numerator, and the compiled sample walk executes the
    // buffer linearly — emission order IS draw order. The operand ids
    // keep num/den identity for the stochastic and point walks.
    const std::uint32_t den = lower_child(den_, builder);
    const std::uint32_t num = lower_child(num_, builder);
    const std::uint32_t ids[] = {num, den};
    return builder.emit_group(ir::OpCode::kDiv, ids, dep_,
                              ExtremePolicy::kLargestMean);
  }

 private:
  ExprPtr num_;
  ExprPtr den_;
  Dependence dep_;
};

class MaxExpr final : public NaryExpr {
 public:
  MaxExpr(std::vector<ExprPtr> children, ExtremePolicy policy, bool is_max)
      : NaryExpr(std::move(children)), policy_(policy), is_max_(is_max) {}
  StochasticValue evaluate(const Environment& env) const override {
    std::vector<StochasticValue> values;
    values.reserve(children_.size());
    for (const auto& c : children_) values.push_back(c->evaluate(env));
    return is_max_ ? stoch::smax(values, policy_)
                   : stoch::smin(values, policy_);
  }
  double evaluate_point(const Environment& env) const override {
    double acc = children_[0]->evaluate_point(env);
    for (std::size_t i = 1; i < children_.size(); ++i) {
      const double v = children_[i]->evaluate_point(env);
      acc = is_max_ ? std::max(acc, v) : std::min(acc, v);
    }
    return acc;
  }
  double sample(const Environment& env, SampleCache& cache,
                support::Rng& rng) const override {
    double acc = children_[0]->sample(env, cache, rng);
    for (std::size_t i = 1; i < children_.size(); ++i) {
      const double v = children_[i]->sample(env, cache, rng);
      acc = is_max_ ? std::max(acc, v) : std::min(acc, v);
    }
    return acc;
  }
  std::string to_string() const override {
    return std::string(is_max_ ? "max" : "min") + join(",", "");
  }
  std::uint32_t lower(ir::Builder& builder) const override {
    return builder.emit_group(is_max_ ? ir::OpCode::kMax : ir::OpCode::kMin,
                              lower_children(builder), Dependence::kUnrelated,
                              policy_);
  }

 private:
  ExtremePolicy policy_;
  bool is_max_;
};

class IterateExpr final : public Expr {
 public:
  IterateExpr(ExprPtr body, std::size_t iterations, Dependence dep)
      : body_(std::move(body)), n_(iterations), dep_(dep) {
    SSPRED_REQUIRE(body_ != nullptr, "null operand");
    SSPRED_REQUIRE(n_ >= 1, "iterate needs at least one iteration");
  }
  StochasticValue evaluate(const Environment& env) const override {
    const StochasticValue body = body_->evaluate(env);
    const double n = static_cast<double>(n_);
    // Related: the same slow machine stays slow every iteration -> n·a.
    // Unrelated: iteration noise averages out -> sqrt(n)·a.
    const double half = dep_ == Dependence::kRelated
                            ? n * body.halfwidth()
                            : std::sqrt(n) * body.halfwidth();
    return StochasticValue(n * body.mean(), half);
  }
  double evaluate_point(const Environment& env) const override {
    return static_cast<double>(n_) * body_->evaluate_point(env);
  }
  double sample(const Environment& env, SampleCache& cache,
                support::Rng& rng) const override {
    if (dep_ == Dependence::kRelated) {
      // One draw, repeated: the per-iteration quantities are coupled.
      return static_cast<double>(n_) * body_->sample(env, cache, rng);
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      SampleCache fresh;  // independent draw each iteration
      acc += body_->sample(env, fresh, rng);
    }
    return acc;
  }
  std::string to_string() const override {
    return "sum_" + std::to_string(n_) + "[" + body_->to_string() + "]" +
           dep_suffix(dep_);
  }
  void collect_params(std::vector<std::string>& out) const override {
    body_->collect_params(out);
  }
  std::uint32_t lower(ir::Builder& builder) const override {
    const std::uint32_t body_begin = builder.next_index();
    (void)lower_child(body_, builder);
    return builder.emit_iterate(body_begin, n_, dep_);
  }

 private:
  ExprPtr body_;
  std::size_t n_;
  Dependence dep_;
};

}  // namespace

ExprPtr constant(StochasticValue v) { return std::make_shared<ConstExpr>(v); }

ExprPtr param(std::string name) {
  return std::make_shared<ParamExpr>(std::move(name));
}

ExprPtr sum(std::vector<ExprPtr> terms, Dependence dep) {
  return std::make_shared<SumExpr>(std::move(terms), dep);
}

ExprPtr add(ExprPtr a, ExprPtr b, Dependence dep) {
  return sum({std::move(a), std::move(b)}, dep);
}

ExprPtr prod(std::vector<ExprPtr> factors, Dependence dep) {
  return std::make_shared<ProdExpr>(std::move(factors), dep);
}

ExprPtr mul(ExprPtr a, ExprPtr b, Dependence dep) {
  return prod({std::move(a), std::move(b)}, dep);
}

ExprPtr quotient(ExprPtr numerator, ExprPtr denominator, Dependence dep) {
  return std::make_shared<DivExpr>(std::move(numerator), std::move(denominator),
                                   dep);
}

ExprPtr vmax(std::vector<ExprPtr> items, ExtremePolicy policy) {
  return std::make_shared<MaxExpr>(std::move(items), policy, /*is_max=*/true);
}

ExprPtr vmin(std::vector<ExprPtr> items, ExtremePolicy policy) {
  return std::make_shared<MaxExpr>(std::move(items), policy, /*is_max=*/false);
}

ExprPtr iterate(ExprPtr body, std::size_t iterations, Dependence dep) {
  return std::make_shared<IterateExpr>(std::move(body), iterations, dep);
}

stoch::StochasticValue monte_carlo(const Expr& expr, const Environment& env,
                                   support::Rng& rng, std::size_t trials) {
  SSPRED_REQUIRE(trials >= 2, "monte_carlo needs at least 2 trials");
  // Compile once (optimization pipeline included), then run the blocked
  // trial-major engine on the flat program.
  const ir::Program program = compile(expr);
  return program.sample_trials(bind_environment(program, env), rng, trials);
}

}  // namespace sspred::model
