#include "model/compile.hpp"

#include "support/error.hpp"

namespace sspred::model {

ir::Program compile(const Expr& expr) {
  ir::Builder builder;
  (void)expr.lower(builder);
  return builder.take();
}

ir::Program compile(const Expr& expr, const ir::Program& slot_base) {
  ir::Builder builder(slot_base);
  (void)expr.lower(builder);
  return builder.take();
}

ir::SlotEnvironment bind_environment(const ir::Program& program,
                                     const Environment& env) {
  ir::SlotEnvironment slots = program.make_environment();
  const auto& names = program.slot_names();
  for (std::uint32_t s = 0; s < names.size(); ++s) {
    slots.bind(s, env.lookup(names[s]));
  }
  return slots;
}

stoch::StochasticValue monte_carlo(const ir::Program& program,
                                   const ir::SlotEnvironment& env,
                                   support::Rng& rng, std::size_t trials) {
  return program.sample_trials(env, rng, trials);
}

}  // namespace sspred::model
