#include "model/compile.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace sspred::model::ir {

// Friend of ir::Program: the optimization passes rewrite the flat buffers
// directly (the Builder's invariants — post-order, contiguous regions,
// root-last — are preserved by construction of each pass).
class ProgramRewriter {
 public:
  static Program run(const Program& in, const OptimizeOptions& options,
                     OptimizeStats* stats);

 private:
  static void fold_constants(Program& p, OptimizeStats& stats);
  static void fuse_groups(Program& p, OptimizeStats& stats);
  static void eliminate_dead(Program& p, OptimizeStats& stats);
};

namespace {

using stoch::Dependence;
using stoch::StochasticValue;

/// Per-node point values of a parameter-free, draw-free subtree under the
/// three evaluation modes. The arithmetic below replicates each mode's
/// executor step for step on degenerate (halfwidth-0) inputs, so a node is
/// folded to a literal only when all three agree bit for bit — the fold is
/// then invisible to every mode and to the RNG stream (pure subtrees never
/// draw).
struct PureValues {
  double stochastic = 0.0;  ///< exec_stochastic's mean (halfwidth is 0)
  double point = 0.0;       ///< exec_point
  double sample = 0.0;      ///< exec_sample / exec_blocked
};

}  // namespace

void ProgramRewriter::fold_constants(Program& p, OptimizeStats& stats) {
  const std::size_t n = p.nodes_.size();
  std::vector<std::uint8_t> pure(n, 0);
  std::vector<PureValues> v(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Node& node = p.nodes_[i];
    const std::uint32_t* const o = p.operands_.data() + node.first;
    const auto all_pure = [&](std::uint32_t lo, std::uint32_t hi) {
      for (std::uint32_t j = lo; j < hi; ++j) {
        if (pure[j] == 0) return false;
      }
      return true;
    };
    switch (node.op) {
      case OpCode::kConst: {
        const StochasticValue& c = p.constants_[node.payload];
        if (c.is_point()) {
          pure[i] = 1;
          v[i] = {c.mean(), c.mean(), c.mean()};
        }
        break;
      }
      case OpCode::kParam:
        break;
      case OpCode::kSum: {
        bool ok = true;
        for (std::uint32_t k = 0; k < node.count; ++k) ok = ok && pure[o[k]];
        if (!ok) break;
        pure[i] = 1;
        // Stochastic folds from the first operand; point/sample fold from
        // the additive identity.
        double sm = v[o[0]].stochastic;
        double pm = 0.0;
        double xm = 0.0;
        for (std::uint32_t k = 1; k < node.count; ++k) {
          sm += v[o[k]].stochastic;
        }
        for (std::uint32_t k = 0; k < node.count; ++k) {
          pm += v[o[k]].point;
          xm += v[o[k]].sample;
        }
        v[i] = {sm, pm, xm};
        break;
      }
      case OpCode::kProd: {
        bool ok = true;
        for (std::uint32_t k = 0; k < node.count; ++k) ok = ok && pure[o[k]];
        if (!ok) break;
        pure[i] = 1;
        // Stochastic fold includes the §2.3.2 zero-mean collapse rule.
        double sm = v[o[0]].stochastic;
        for (std::uint32_t k = 1; k < node.count; ++k) {
          const double y = v[o[k]].stochastic;
          sm = (sm == 0.0 || y == 0.0) ? 0.0 : sm * y;
        }
        double pm = 1.0;
        double xm = 1.0;
        for (std::uint32_t k = 0; k < node.count; ++k) {
          pm *= v[o[k]].point;
          xm *= v[o[k]].sample;
        }
        v[i] = {sm, pm, xm};
        break;
      }
      case OpCode::kMax:
      case OpCode::kMin: {
        bool ok = true;
        for (std::uint32_t k = 0; k < node.count; ++k) ok = ok && pure[o[k]];
        if (!ok) break;
        pure[i] = 1;
        // On halfwidth-0 operands every policy (selection or Clark's
        // degenerate fold) picks an extreme mean, which is exactly the
        // point/sample max/min chain.
        PureValues acc = v[o[0]];
        for (std::uint32_t k = 1; k < node.count; ++k) {
          const PureValues& y = v[o[k]];
          if (node.op == OpCode::kMax) {
            acc.stochastic = std::max(acc.stochastic, y.stochastic);
            acc.point = std::max(acc.point, y.point);
            acc.sample = std::max(acc.sample, y.sample);
          } else {
            acc.stochastic = std::min(acc.stochastic, y.stochastic);
            acc.point = std::min(acc.point, y.point);
            acc.sample = std::min(acc.sample, y.sample);
          }
        }
        v[i] = acc;
        break;
      }
      case OpCode::kDiv: {
        if (!pure[o[0]] || !pure[o[1]]) break;
        const PureValues& den = v[o[1]];
        if (den.stochastic == 0.0 || den.point == 0.0 || den.sample == 0.0) {
          break;  // division by zero throws at run time; leave it be
        }
        pure[i] = 1;
        // Stochastic divides via the inverse (div = mul(x, 1/y)).
        const double im = 1.0 / den.stochastic;
        const double num = v[o[0]].stochastic;
        v[i].stochastic = (num == 0.0 || im == 0.0) ? 0.0 : num * im;
        v[i].point = v[o[0]].point / den.point;
        v[i].sample = v[o[0]].sample / den.sample;
        break;
      }
      case OpCode::kIterate: {
        // The whole body region must be pure: Monte-Carlo re-executes it
        // linearly, so any impure node inside would draw.
        if (!all_pure(node.body_begin, i)) break;
        pure[i] = 1;
        const double reps = static_cast<double>(node.payload);
        v[i].stochastic = reps * v[i - 1].stochastic;
        v[i].point = reps * v[i - 1].point;
        if (node.dep == Dependence::kRelated) {
          v[i].sample = reps * v[i - 1].sample;
        } else {
          // Unrelated iterates accumulate per repetition in sample mode;
          // repeated addition rounds differently from reps * body.
          double acc = 0.0;
          for (std::uint32_t rep = 0; rep < node.payload; ++rep) {
            acc += v[i - 1].sample;
          }
          v[i].sample = acc;
        }
        break;
      }
      case OpCode::kRef: {
        if (!all_pure(node.body_begin, node.payload + 1)) break;
        pure[i] = 1;
        v[i] = v[node.payload];  // re-executing a pure region is a no-op
        break;
      }
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    Node& node = p.nodes_[i];
    if (pure[i] == 0 || node.op == OpCode::kConst) continue;
    if (v[i].stochastic != v[i].point || v[i].point != v[i].sample) continue;
    node.op = OpCode::kConst;
    node.payload = static_cast<std::uint32_t>(p.constants_.size());
    p.constants_.emplace_back(v[i].point);
    node.dep = Dependence::kUnrelated;
    node.policy = stoch::ExtremePolicy::kLargestMean;
    node.first = node.count = 0;
    node.body_begin = node.slots_first = node.slots_count = 0;
    ++stats.folded;
  }
}

void ProgramRewriter::fuse_groups(Program& p, OptimizeStats& stats) {
  const std::size_t n = p.nodes_.size();
  // Use counts over every structural edge: operand lists, the implicit
  // body-root read of an iterate, a ref's target, and the root result. A
  // chain link may be folded into its consumer only when that consumer is
  // its sole use.
  std::vector<std::uint32_t> uses(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Node& node = p.nodes_[i];
    switch (node.op) {
      case OpCode::kSum:
      case OpCode::kProd:
      case OpCode::kDiv:
      case OpCode::kMax:
      case OpCode::kMin:
        for (std::uint32_t k = 0; k < node.count; ++k) {
          ++uses[p.operands_[node.first + k]];
        }
        break;
      case OpCode::kIterate:
        ++uses[i - 1];
        break;
      case OpCode::kRef:
        ++uses[node.payload];
        break;
      default:
        break;
    }
  }
  ++uses[n - 1];

  // Rebuild operand lists ascending; a child processed earlier already has
  // its own list flattened, so one pass fully flattens every chain.
  std::vector<std::uint32_t> fused_ops;
  fused_ops.reserve(p.operands_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    Node& node = p.nodes_[i];
    if (node.op != OpCode::kSum && node.op != OpCode::kProd &&
        node.op != OpCode::kDiv && node.op != OpCode::kMax &&
        node.op != OpCode::kMin) {
      continue;
    }
    const std::uint32_t first = node.first;
    const std::uint32_t count = node.count;
    node.first = static_cast<std::uint32_t>(fused_ops.size());
    for (std::uint32_t k = 0; k < count; ++k) {
      const std::uint32_t c = p.operands_[first + k];
      const Node& child = p.nodes_[c];
      bool fuse = uses[c] == 1 && child.op == node.op;
      if (node.op == OpCode::kSum || node.op == OpCode::kProd) {
        // Sequential folds (identity-start in point/sample mode,
        // first-operand-start in stochastic mode) are bit-exact under
        // flattening only at the head position.
        fuse = fuse && k == 0 && child.dep == node.dep;
      } else if (node.op == OpCode::kMax || node.op == OpCode::kMin) {
        // Leftmost-extreme selection is grouping-invariant at any
        // position; Clark's moment-matching fold is not associative.
        fuse = fuse && child.policy == node.policy &&
               node.policy != stoch::ExtremePolicy::kClark;
      } else {
        fuse = false;
      }
      if (fuse) {
        for (std::uint32_t j = 0; j < child.count; ++j) {
          const std::uint32_t grand = fused_ops[child.first + j];
          fused_ops.push_back(grand);
        }
        ++stats.fused;
      } else {
        fused_ops.push_back(c);
      }
    }
    node.count = static_cast<std::uint32_t>(fused_ops.size()) - node.first;
  }
  p.operands_ = std::move(fused_ops);
}

void ProgramRewriter::eliminate_dead(Program& p, OptimizeStats& stats) {
  const std::size_t n = p.nodes_.size();
  std::vector<std::uint8_t> live(n, 0);
  std::vector<std::uint32_t> work{static_cast<std::uint32_t>(n - 1)};
  while (!work.empty()) {
    const std::uint32_t i = work.back();
    work.pop_back();
    if (live[i] != 0) continue;
    live[i] = 1;
    const Node& node = p.nodes_[i];
    switch (node.op) {
      case OpCode::kSum:
      case OpCode::kProd:
      case OpCode::kDiv:
      case OpCode::kMax:
      case OpCode::kMin:
        for (std::uint32_t k = 0; k < node.count; ++k) {
          work.push_back(p.operands_[node.first + k]);
        }
        break;
      case OpCode::kIterate:
        work.push_back(i - 1);
        break;
      case OpCode::kRef:
        work.push_back(node.payload);
        break;
      default:
        break;
    }
  }
  std::vector<std::uint32_t> remap(n, 0);
  std::uint32_t kept = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (live[i] != 0) remap[i] = kept++;
  }
  if (kept == n) return;

  // First live node at or after a position: region begins move up to the
  // surviving part of the region (relative order is preserved, so regions
  // stay contiguous and an iterate's body root stays immediately below it).
  std::vector<std::uint32_t> next_live(n + 1, kept);
  for (std::uint32_t i = static_cast<std::uint32_t>(n); i-- > 0;) {
    next_live[i] = live[i] != 0 ? remap[i] : next_live[i + 1];
  }

  std::vector<Node> nodes;
  nodes.reserve(kept);
  std::vector<std::uint32_t> operands;
  std::vector<StochasticValue> constants;
  std::vector<std::uint32_t> body_slots;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (live[i] == 0) continue;
    Node node = p.nodes_[i];
    switch (node.op) {
      case OpCode::kConst:
        node.payload = static_cast<std::uint32_t>(constants.size());
        constants.push_back(p.constants_[p.nodes_[i].payload]);
        break;
      case OpCode::kParam:
        break;
      case OpCode::kSum:
      case OpCode::kProd:
      case OpCode::kDiv:
      case OpCode::kMax:
      case OpCode::kMin: {
        const std::uint32_t first = node.first;
        node.first = static_cast<std::uint32_t>(operands.size());
        for (std::uint32_t k = 0; k < node.count; ++k) {
          operands.push_back(remap[p.operands_[first + k]]);
        }
        break;
      }
      case OpCode::kIterate: {
        node.body_begin = next_live[node.body_begin];
        const std::uint32_t slots_first = node.slots_first;
        node.slots_first = static_cast<std::uint32_t>(body_slots.size());
        for (std::uint32_t k = 0; k < node.slots_count; ++k) {
          body_slots.push_back(p.body_slots_[slots_first + k]);
        }
        break;
      }
      case OpCode::kRef:
        node.body_begin = next_live[node.body_begin];
        node.payload = remap[node.payload];
        break;
    }
    nodes.push_back(node);
  }
  stats.removed_nodes = n - kept;
  p.nodes_ = std::move(nodes);
  p.operands_ = std::move(operands);
  p.constants_ = std::move(constants);
  p.body_slots_ = std::move(body_slots);
}

Program ProgramRewriter::run(const Program& in, const OptimizeOptions& options,
                             OptimizeStats* stats) {
  Program p = in;
  OptimizeStats local;
  if (options.fold_constants) fold_constants(p, local);
  if (options.fuse_groups) fuse_groups(p, local);
  if (options.eliminate_dead) eliminate_dead(p, local);
  p.reindex();
  local.dead_slots = p.slot_count() - p.live_slots_.size();
  if (stats != nullptr) *stats = local;
  return p;
}

}  // namespace sspred::model::ir

namespace sspred::model {

ir::Program optimize(const ir::Program& program,
                     const OptimizeOptions& options, OptimizeStats* stats) {
  return ir::ProgramRewriter::run(program, options, stats);
}

ir::Program compile(const Expr& expr) {
  return optimize(compile_unoptimized(expr));
}

ir::Program compile(const Expr& expr, const ir::Program& slot_base) {
  return optimize(compile_unoptimized(expr, slot_base));
}

ir::Program compile_unoptimized(const Expr& expr) {
  ir::Builder builder;
  (void)expr.lower(builder);
  return builder.take();
}

ir::Program compile_unoptimized(const Expr& expr,
                                const ir::Program& slot_base) {
  ir::Builder builder(slot_base);
  (void)expr.lower(builder);
  return builder.take();
}

ir::SlotEnvironment bind_environment(const ir::Program& program,
                                     const Environment& env) {
  ir::SlotEnvironment slots = program.make_environment();
  const auto& names = program.slot_names();
  for (std::uint32_t s = 0; s < names.size(); ++s) {
    slots.bind(s, env.lookup(names[s]));
  }
  return slots;
}

stoch::StochasticValue monte_carlo(const ir::Program& program,
                                   const ir::SlotEnvironment& env,
                                   support::Rng& rng, std::size_t trials,
                                   ir::SampleOrder order) {
  return program.sample_trials(env, rng, trials, order);
}

}  // namespace sspred::model
