#include "model/ir.hpp"

#include <algorithm>
#include <cmath>

#include "stoch/montecarlo.hpp"
#include "support/error.hpp"

// Inner per-lane loops of the blocked engine are flat and alias-free;
// with SSPRED_SIMD=ON the build defines SSPRED_USE_OMP_SIMD and marks them
// for explicit vectorization (plain builds rely on auto-vectorization).
#if defined(SSPRED_USE_OMP_SIMD)
#define SSPRED_SIMD_LOOP _Pragma("omp simd")
#else
#define SSPRED_SIMD_LOOP
#endif

namespace sspred::model::ir {

using stoch::Dependence;
using stoch::StochasticValue;

namespace {

/// "a, b, c" or "(none)" — shared by the unbound-slot guards.
[[nodiscard]] std::string join_names(const std::vector<std::string>& names) {
  if (names.empty()) return "(none)";
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

/// One batched draw for a stochastic value: point values fill their mean
/// without touching the RNG (mirroring stoch::sample), stochastic values
/// take `lanes` consecutive ziggurat normals.
void fill_lane(const StochasticValue& v, support::Rng& rng, double* row,
               std::size_t lanes) {
  if (v.is_point()) {
    std::fill(row, row + lanes, v.mean());
  } else {
    rng.normal_fill({row, lanes}, v.mean(), v.sd());
  }
}

}  // namespace

SlotEnvironment::SlotEnvironment(
    std::shared_ptr<const std::vector<std::string>> names)
    : values_(names->size()),
      bound_(names->size(), 0),
      names_(std::move(names)) {}

void SlotEnvironment::bind(std::uint32_t slot, StochasticValue value) {
  SSPRED_REQUIRE(slot < values_.size(),
                 "slot " + std::to_string(slot) + " out of range (program has " +
                     std::to_string(values_.size()) + " parameter slots)");
  values_[slot] = value;
  bound_[slot] = 1;
}

const StochasticValue& SlotEnvironment::lookup(std::uint32_t slot) const {
  if (slot < bound_.size() && bound_[slot] != 0) return values_[slot];
  std::string msg = "unbound model parameter slot " + std::to_string(slot);
  if (slot < names_->size()) msg += " ('" + (*names_)[slot] + "')";
  std::vector<std::string> bound_names;
  for (std::size_t s = 0; s < bound_.size(); ++s) {
    if (bound_[s] != 0) bound_names.push_back((*names_)[s]);
  }
  msg += "; bound: " + join_names(bound_names);
  SSPRED_REQUIRE(false, msg);
  return values_[slot];  // unreachable
}

void LaneEnvironment::reset(const Program& program, std::size_t lanes) {
  names_ = program.slot_names_;
  lanes_ = lanes;
  // assign() reuses capacity, so a serving worker's pooled environment is
  // allocation-free once it has seen its largest (slots x lanes) shape.
  values_.assign(names_->size() * lanes, StochasticValue());
  bound_.assign(names_->size() * lanes, 0);
}

void LaneEnvironment::bind(std::size_t lane, std::uint32_t slot,
                           StochasticValue value) {
  SSPRED_REQUIRE(lane < lanes_,
                 "lane " + std::to_string(lane) + " out of range (environment "
                 "has " + std::to_string(lanes_) + " lanes)");
  SSPRED_REQUIRE(slot < slot_count(),
                 "slot " + std::to_string(slot) + " out of range (program has " +
                     std::to_string(slot_count()) + " parameter slots)");
  const std::size_t idx = static_cast<std::size_t>(slot) * lanes_ + lane;
  values_[idx] = value;
  bound_[idx] = 1;
}

void LaneEnvironment::assign_compacted(const LaneEnvironment& src,
                                       std::span<const std::size_t> lane_ids) {
  SSPRED_REQUIRE(this != &src, "assign_compacted: source must be distinct");
  names_ = src.names_;
  lanes_ = lane_ids.size();
  const std::size_t slots = names_ ? names_->size() : 0;
  values_.assign(slots * lanes_, StochasticValue());
  bound_.assign(slots * lanes_, 0);
  for (const std::size_t id : lane_ids) {
    SSPRED_REQUIRE(id < src.lanes_, "assign_compacted: lane id out of range");
  }
  for (std::size_t s = 0; s < slots; ++s) {
    const std::size_t src_row = s * src.lanes_;
    const std::size_t dst_row = s * lanes_;
    for (std::size_t i = 0; i < lanes_; ++i) {
      values_[dst_row + i] = src.values_[src_row + lane_ids[i]];
      bound_[dst_row + i] = src.bound_[src_row + lane_ids[i]];
    }
  }
}

const StochasticValue& LaneEnvironment::lookup(std::size_t lane,
                                               std::uint32_t slot) const {
  if (lane < lanes_ && slot < slot_count()) {
    const std::size_t idx = static_cast<std::size_t>(slot) * lanes_ + lane;
    if (bound_[idx] != 0) return values_[idx];
  }
  std::string msg = "lane " + std::to_string(lane) +
                    ": unbound model parameter slot " + std::to_string(slot);
  if (names_ && slot < names_->size()) msg += " ('" + (*names_)[slot] + "')";
  SSPRED_REQUIRE(false, msg);
  return values_[0];  // unreachable
}

std::uint32_t Program::slot(const std::string& name) const {
  const auto it = slot_ids_.find(name);
  SSPRED_REQUIRE(it != slot_ids_.end(),
                 "no model parameter named '" + name +
                     "'; program parameters: " + join_names(*slot_names_));
  return it->second;
}

void Program::reindex() {
  sample_skips_.clear();
  has_skip_.assign(nodes_.size(), 0);
  live_slots_.clear();
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (node.op == OpCode::kIterate && node.dep == Dependence::kUnrelated) {
      sample_skips_.emplace_back(node.body_begin, i);
    } else if (node.op == OpCode::kParam) {
      live_slots_.push_back(node.payload);
    }
  }
  std::sort(sample_skips_.begin(), sample_skips_.end());
  for (const auto& [pos, _] : sample_skips_) has_skip_[pos] = 1;
  std::sort(live_slots_.begin(), live_slots_.end());
  live_slots_.erase(std::unique(live_slots_.begin(), live_slots_.end()),
                    live_slots_.end());
  // Pure-ref analysis (see the member note in ir.hpp): a kRef whose region
  // re-execution provably consumes no RNG and recomputes the target bit
  // for bit can be satisfied by a row copy in the blocked engine. Refs
  // point backward, so an ascending scan sees nested refs' flags first.
  ref_pure_.assign(nodes_.size(), 0);
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (node.op != OpCode::kRef) continue;
    bool pure = true;
    for (std::uint32_t j = node.body_begin; j <= node.payload && pure; ++j) {
      const Node& n = nodes_[j];
      if (n.op == OpCode::kConst) {
        pure = constants_[n.payload].is_point();
      } else if (n.op == OpCode::kIterate) {
        pure = n.dep != Dependence::kUnrelated;
      } else if (n.op == OpCode::kRef) {
        pure = ref_pure_[j] != 0;
      }
    }
    // An unrelated-iterate body between the region and the ref resets the
    // region's slot draws (each repetition redraws them), so re-execution
    // there is a fresh draw, not a replay: require every such body to
    // contain the ref and its region together or not at all.
    for (const auto& [body_begin, iter] : sample_skips_) {
      const bool ref_inside = body_begin <= i && i < iter;
      const bool region_inside = body_begin <= node.body_begin &&
                                 node.payload < iter;
      if (ref_inside != region_inside) pure = false;
    }
    ref_pure_[i] = pure ? 1 : 0;
  }
}

void Program::resize_workspace(EvalWorkspace& ws) const {
  ws.values.resize(nodes_.size());
  ws.point_values.resize(nodes_.size());
  ws.slot_sample.resize(slot_names_->size());
  ws.slot_drawn.resize(slot_names_->size());
}

// --- Stochastic walk (§2.3 calculus) --------------------------------------

void Program::exec_stochastic(const SlotEnvironment& env,
                              EvalWorkspace& ws) const {
  // The group cases fold inline over the operand ids rather than gathering
  // into a scratch buffer and calling the stoch:: span helpers — this walk
  // is the hot path under repeated prediction, and the gather + call pair
  // dominated its per-node cost. Each fold replicates the corresponding
  // helper's arithmetic step for step (sum_span, mul_span's mul() chain,
  // smax/smin selection), so results stay bit-identical to the tree path;
  // the differential tests in tests/compile_test.cpp pin that down.
  StochasticValue* const vals = ws.values.data();
  const std::uint32_t* const ops = operands_.data();
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    switch (node.op) {
      case OpCode::kConst:
        vals[i] = constants_[node.payload];
        break;
      case OpCode::kParam:
        vals[i] = env.lookup(node.payload);
        break;
      case OpCode::kSum: {
        // stoch::sum_span: fold from the first operand; per-step sqrt in
        // the unrelated regime keeps it bit-identical to repeated add().
        const std::uint32_t* o = ops + node.first;
        double mean = vals[o[0]].mean();
        double half = vals[o[0]].halfwidth();
        if (node.dep == Dependence::kRelated) {
          for (std::uint32_t k = 1; k < node.count; ++k) {
            mean += vals[o[k]].mean();
            half += vals[o[k]].halfwidth();
          }
        } else {
          for (std::uint32_t k = 1; k < node.count; ++k) {
            mean += vals[o[k]].mean();
            const double b = vals[o[k]].halfwidth();
            half = std::sqrt(half * half + b * b);
          }
        }
        vals[i] = StochasticValue(mean, half);
        break;
      }
      case OpCode::kProd: {
        // stoch::mul_span: fold mul() from the first operand, including
        // the §2.3.2 zero-mean -> zero point value rule.
        const std::uint32_t* o = ops + node.first;
        double mean = vals[o[0]].mean();
        double half = vals[o[0]].halfwidth();
        for (std::uint32_t k = 1; k < node.count; ++k) {
          const StochasticValue& y = vals[o[k]];
          if (mean == 0.0 || y.mean() == 0.0) {
            mean = 0.0;
            half = 0.0;
            continue;
          }
          const double m = mean * y.mean();
          if (node.dep == Dependence::kRelated) {
            half = std::abs(half * y.mean()) + std::abs(y.halfwidth() * mean) +
                   std::abs(half * y.halfwidth());
          } else {
            const double ra = half / mean;
            const double rb = y.halfwidth() / y.mean();
            half = std::abs(m) * std::sqrt(ra * ra + rb * rb);
          }
          mean = m;
        }
        vals[i] = StochasticValue(mean, half);
        break;
      }
      case OpCode::kMax:
      case OpCode::kMin: {
        const std::uint32_t* o = ops + node.first;
        if (node.policy == stoch::ExtremePolicy::kClark) {
          // Clark's moment-matching fold has no cheap scan form; keep the
          // gather + library path for it.
          ws.scratch.clear();
          for (std::uint32_t k = 0; k < node.count; ++k) {
            ws.scratch.push_back(vals[o[k]]);
          }
          vals[i] = node.op == OpCode::kMax
                        ? stoch::smax(ws.scratch, node.policy)
                        : stoch::smin(ws.scratch, node.policy);
          break;
        }
        // kLargestMean / kLargestUpper select one operand. smin's
        // negate/smax/negate definition reduces to picking the smallest
        // mean (resp. smallest lower bound): IEEE negation is exact, so
        // comparing negated quantities and un-negating the winner returns
        // that operand bit-for-bit.
        std::uint32_t best = o[0];
        if (node.policy == stoch::ExtremePolicy::kLargestMean) {
          for (std::uint32_t k = 1; k < node.count; ++k) {
            if (node.op == OpCode::kMax ? vals[o[k]].mean() > vals[best].mean()
                                        : vals[o[k]].mean() < vals[best].mean())
              best = o[k];
          }
        } else {
          for (std::uint32_t k = 1; k < node.count; ++k) {
            if (node.op == OpCode::kMax
                    ? vals[o[k]].upper() > vals[best].upper()
                    : vals[o[k]].lower() < vals[best].lower())
              best = o[k];
          }
        }
        vals[i] = vals[best];
        break;
      }
      case OpCode::kDiv: {
        const StochasticValue& x = vals[ops[node.first]];
        const StochasticValue& y = vals[ops[node.first + 1]];
        // stoch::div = guard + mul(x, inverse(y)); the zero-straddle
        // diagnostic stays with the library on the cold path.
        if (y.lower() <= 0.0 && y.upper() >= 0.0) {
          vals[i] = stoch::div(x, y, node.dep);  // throws with full context
          break;
        }
        const double im = 1.0 / y.mean();
        const double ih = std::abs(y.halfwidth() / (y.mean() * y.mean()));
        if (x.mean() == 0.0 || im == 0.0) {
          vals[i] = StochasticValue();
          break;
        }
        const double m = x.mean() * im;
        double half = 0.0;
        if (node.dep == Dependence::kRelated) {
          half = std::abs(x.halfwidth() * im) + std::abs(ih * x.mean()) +
                 std::abs(x.halfwidth() * ih);
        } else {
          const double ra = x.halfwidth() / x.mean();
          const double rb = ih / im;
          half = std::abs(m) * std::sqrt(ra * ra + rb * rb);
        }
        vals[i] = StochasticValue(m, half);
        break;
      }
      case OpCode::kIterate: {
        const StochasticValue body = vals[i - 1];
        const double n = static_cast<double>(node.payload);
        // Related: the same slow machine stays slow every iteration -> n·a.
        // Unrelated: iteration noise averages out -> sqrt(n)·a.
        const double half = node.dep == Dependence::kRelated
                                ? n * body.halfwidth()
                                : std::sqrt(n) * body.halfwidth();
        vals[i] = StochasticValue(n * body.mean(), half);
        break;
      }
      case OpCode::kRef:
        // Deterministic evaluation of a subtree is context-free, so a
        // shared occurrence's value can simply be copied.
        vals[i] = vals[node.payload];
        break;
    }
  }
}

StochasticValue Program::evaluate(const SlotEnvironment& env,
                                  EvalWorkspace& ws) const {
  SSPRED_REQUIRE(env.size() == slot_count(),
                 "slot environment shape does not match the program (create "
                 "it with make_environment())");
  resize_workspace(ws);
  exec_stochastic(env, ws);
  return ws.values[nodes_.size() - 1];
}

StochasticValue Program::evaluate(const SlotEnvironment& env) const {
  EvalWorkspace ws;
  return evaluate(env, ws);
}

// Fused variant of exec_stochastic: ws.values becomes a node-major matrix
// (vals[node * L + lane]) and every case replicates the single-lane fold
// verbatim inside a per-lane loop, so each lane's result is bit-identical
// to exec_stochastic run alone on that lane's bindings.
void Program::exec_stochastic_fused(const LaneEnvironment& env,
                                    EvalWorkspace& ws) const {
  const std::size_t L = env.lanes();
  StochasticValue* const vals = ws.values.data();
  const std::uint32_t* const ops = operands_.data();
  const auto row = [vals, L](std::uint32_t i) {
    return vals + static_cast<std::size_t>(i) * L;
  };
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    switch (node.op) {
      case OpCode::kConst: {
        StochasticValue* const r = row(i);
        for (std::size_t l = 0; l < L; ++l) r[l] = constants_[node.payload];
        break;
      }
      case OpCode::kParam: {
        StochasticValue* const r = row(i);
        for (std::size_t l = 0; l < L; ++l) {
          r[l] = env.lookup(l, node.payload);
        }
        break;
      }
      case OpCode::kSum: {
        const std::uint32_t* o = ops + node.first;
        StochasticValue* const r = row(i);
        for (std::size_t l = 0; l < L; ++l) {
          double mean = row(o[0])[l].mean();
          double half = row(o[0])[l].halfwidth();
          if (node.dep == Dependence::kRelated) {
            for (std::uint32_t k = 1; k < node.count; ++k) {
              mean += row(o[k])[l].mean();
              half += row(o[k])[l].halfwidth();
            }
          } else {
            for (std::uint32_t k = 1; k < node.count; ++k) {
              mean += row(o[k])[l].mean();
              const double b = row(o[k])[l].halfwidth();
              half = std::sqrt(half * half + b * b);
            }
          }
          r[l] = StochasticValue(mean, half);
        }
        break;
      }
      case OpCode::kProd: {
        const std::uint32_t* o = ops + node.first;
        StochasticValue* const r = row(i);
        for (std::size_t l = 0; l < L; ++l) {
          double mean = row(o[0])[l].mean();
          double half = row(o[0])[l].halfwidth();
          for (std::uint32_t k = 1; k < node.count; ++k) {
            const StochasticValue& y = row(o[k])[l];
            if (mean == 0.0 || y.mean() == 0.0) {
              mean = 0.0;
              half = 0.0;
              continue;
            }
            const double m = mean * y.mean();
            if (node.dep == Dependence::kRelated) {
              half = std::abs(half * y.mean()) +
                     std::abs(y.halfwidth() * mean) +
                     std::abs(half * y.halfwidth());
            } else {
              const double ra = half / mean;
              const double rb = y.halfwidth() / y.mean();
              half = std::abs(m) * std::sqrt(ra * ra + rb * rb);
            }
            mean = m;
          }
          r[l] = StochasticValue(mean, half);
        }
        break;
      }
      case OpCode::kMax:
      case OpCode::kMin: {
        const std::uint32_t* o = ops + node.first;
        StochasticValue* const r = row(i);
        if (node.policy == stoch::ExtremePolicy::kClark) {
          for (std::size_t l = 0; l < L; ++l) {
            ws.scratch.clear();
            for (std::uint32_t k = 0; k < node.count; ++k) {
              ws.scratch.push_back(row(o[k])[l]);
            }
            r[l] = node.op == OpCode::kMax
                       ? stoch::smax(ws.scratch, node.policy)
                       : stoch::smin(ws.scratch, node.policy);
          }
          break;
        }
        for (std::size_t l = 0; l < L; ++l) {
          std::uint32_t best = o[0];
          if (node.policy == stoch::ExtremePolicy::kLargestMean) {
            for (std::uint32_t k = 1; k < node.count; ++k) {
              if (node.op == OpCode::kMax
                      ? row(o[k])[l].mean() > row(best)[l].mean()
                      : row(o[k])[l].mean() < row(best)[l].mean())
                best = o[k];
            }
          } else {
            for (std::uint32_t k = 1; k < node.count; ++k) {
              if (node.op == OpCode::kMax
                      ? row(o[k])[l].upper() > row(best)[l].upper()
                      : row(o[k])[l].lower() < row(best)[l].lower())
                best = o[k];
            }
          }
          r[l] = row(best)[l];
        }
        break;
      }
      case OpCode::kDiv: {
        StochasticValue* const r = row(i);
        for (std::size_t l = 0; l < L; ++l) {
          const StochasticValue& x = row(ops[node.first])[l];
          const StochasticValue& y = row(ops[node.first + 1])[l];
          if (y.lower() <= 0.0 && y.upper() >= 0.0) {
            r[l] = stoch::div(x, y, node.dep);  // throws with full context
            continue;
          }
          const double im = 1.0 / y.mean();
          const double ih = std::abs(y.halfwidth() / (y.mean() * y.mean()));
          if (x.mean() == 0.0 || im == 0.0) {
            r[l] = StochasticValue();
            continue;
          }
          const double m = x.mean() * im;
          double half = 0.0;
          if (node.dep == Dependence::kRelated) {
            half = std::abs(x.halfwidth() * im) + std::abs(ih * x.mean()) +
                   std::abs(x.halfwidth() * ih);
          } else {
            const double ra = x.halfwidth() / x.mean();
            const double rb = ih / im;
            half = std::abs(m) * std::sqrt(ra * ra + rb * rb);
          }
          r[l] = StochasticValue(m, half);
        }
        break;
      }
      case OpCode::kIterate: {
        StochasticValue* const r = row(i);
        const StochasticValue* const body = row(i - 1);
        const double n = static_cast<double>(node.payload);
        for (std::size_t l = 0; l < L; ++l) {
          const double half = node.dep == Dependence::kRelated
                                  ? n * body[l].halfwidth()
                                  : std::sqrt(n) * body[l].halfwidth();
          r[l] = StochasticValue(n * body[l].mean(), half);
        }
        break;
      }
      case OpCode::kRef: {
        StochasticValue* const r = row(i);
        const StochasticValue* const src = row(node.payload);
        for (std::size_t l = 0; l < L; ++l) r[l] = src[l];
        break;
      }
    }
  }
}

void Program::evaluate_fused(const LaneEnvironment& env, EvalWorkspace& ws,
                             std::span<StochasticValue> out) const {
  SSPRED_REQUIRE(env.slot_count() == slot_count(),
                 "lane environment shape does not match the program (create "
                 "it with make_lane_environment())");
  SSPRED_REQUIRE(out.size() == env.lanes(),
                 "evaluate_fused: out.size() must equal env.lanes()");
  const std::size_t L = env.lanes();
  if (L == 0) return;
  ws.values.resize(nodes_.size() * L);
  exec_stochastic_fused(env, ws);
  std::copy_n(ws.values.data() + (nodes_.size() - 1) * L, L, out.begin());
}

// --- Point walk -----------------------------------------------------------

void Program::exec_point(const SlotEnvironment& env, EvalWorkspace& ws) const {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    switch (node.op) {
      case OpCode::kConst:
        ws.point_values[i] = constants_[node.payload].mean();
        break;
      case OpCode::kParam:
        ws.point_values[i] = env.lookup(node.payload).mean();
        break;
      case OpCode::kSum: {
        double acc = 0.0;
        for (std::uint32_t k = 0; k < node.count; ++k) {
          acc += ws.point_values[operands_[node.first + k]];
        }
        ws.point_values[i] = acc;
        break;
      }
      case OpCode::kProd: {
        double acc = 1.0;
        for (std::uint32_t k = 0; k < node.count; ++k) {
          acc *= ws.point_values[operands_[node.first + k]];
        }
        ws.point_values[i] = acc;
        break;
      }
      case OpCode::kMax:
      case OpCode::kMin: {
        double acc = ws.point_values[operands_[node.first]];
        for (std::uint32_t k = 1; k < node.count; ++k) {
          const double v = ws.point_values[operands_[node.first + k]];
          acc = node.op == OpCode::kMax ? std::max(acc, v) : std::min(acc, v);
        }
        ws.point_values[i] = acc;
        break;
      }
      case OpCode::kDiv: {
        const double d = ws.point_values[operands_[node.first + 1]];
        SSPRED_REQUIRE(d != 0.0, "point division by zero");
        ws.point_values[i] = ws.point_values[operands_[node.first]] / d;
        break;
      }
      case OpCode::kIterate:
        ws.point_values[i] =
            static_cast<double>(node.payload) * ws.point_values[i - 1];
        break;
      case OpCode::kRef:
        ws.point_values[i] = ws.point_values[node.payload];
        break;
    }
  }
}

double Program::evaluate_point(const SlotEnvironment& env,
                               EvalWorkspace& ws) const {
  SSPRED_REQUIRE(env.size() == slot_count(),
                 "slot environment shape does not match the program (create "
                 "it with make_environment())");
  resize_workspace(ws);
  exec_point(env, ws);
  return ws.point_values[nodes_.size() - 1];
}

double Program::evaluate_point(const SlotEnvironment& env) const {
  EvalWorkspace ws;
  return evaluate_point(env, ws);
}

// Fused variant of exec_point over the SoA arena: one L-wide double row per
// node (ws.lane_values), flat elementwise kernels over the lane dimension.
// The deterministic point walk has no draw events or skip protocol, so this
// is a straight transposition of exec_point.
void Program::exec_point_fused(const LaneEnvironment& env,
                               EvalWorkspace& ws) const {
  const std::size_t L = env.lanes();
  double* const vals = ws.lane_values.data();
  const std::uint32_t* const ops = operands_.data();
  const auto row = [vals, L](std::uint32_t i) {
    return vals + static_cast<std::size_t>(i) * L;
  };
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    switch (node.op) {
      case OpCode::kConst:
        std::fill_n(row(i), L, constants_[node.payload].mean());
        break;
      case OpCode::kParam: {
        double* const r = row(i);
        for (std::size_t l = 0; l < L; ++l) {
          r[l] = env.lookup(l, node.payload).mean();
        }
        break;
      }
      case OpCode::kSum: {
        double* const r = row(i);
        std::fill_n(r, L, 0.0);
        for (std::uint32_t k = 0; k < node.count; ++k) {
          const double* const b = row(ops[node.first + k]);
          SSPRED_SIMD_LOOP
          for (std::size_t l = 0; l < L; ++l) r[l] += b[l];
        }
        break;
      }
      case OpCode::kProd: {
        double* const r = row(i);
        std::fill_n(r, L, 1.0);
        for (std::uint32_t k = 0; k < node.count; ++k) {
          const double* const b = row(ops[node.first + k]);
          SSPRED_SIMD_LOOP
          for (std::size_t l = 0; l < L; ++l) r[l] *= b[l];
        }
        break;
      }
      case OpCode::kMax:
      case OpCode::kMin: {
        double* const r = row(i);
        std::copy_n(row(ops[node.first]), L, r);
        for (std::uint32_t k = 1; k < node.count; ++k) {
          const double* const b = row(ops[node.first + k]);
          SSPRED_SIMD_LOOP
          for (std::size_t l = 0; l < L; ++l) {
            r[l] = node.op == OpCode::kMax ? std::max(r[l], b[l])
                                           : std::min(r[l], b[l]);
          }
        }
        break;
      }
      case OpCode::kDiv: {
        const double* const num = row(ops[node.first]);
        const double* const den = row(ops[node.first + 1]);
        double* const r = row(i);
        bool zero = false;
        for (std::size_t l = 0; l < L; ++l) zero = zero || den[l] == 0.0;
        SSPRED_REQUIRE(!zero, "point division by zero");
        SSPRED_SIMD_LOOP
        for (std::size_t l = 0; l < L; ++l) r[l] = num[l] / den[l];
        break;
      }
      case OpCode::kIterate: {
        const double n = static_cast<double>(node.payload);
        const double* const body = row(i - 1);
        double* const r = row(i);
        SSPRED_SIMD_LOOP
        for (std::size_t l = 0; l < L; ++l) r[l] = n * body[l];
        break;
      }
      case OpCode::kRef:
        std::copy_n(row(node.payload), L, row(i));
        break;
    }
  }
}

void Program::evaluate_point_fused(const LaneEnvironment& env,
                                   EvalWorkspace& ws,
                                   std::span<double> out) const {
  SSPRED_REQUIRE(env.slot_count() == slot_count(),
                 "lane environment shape does not match the program (create "
                 "it with make_lane_environment())");
  SSPRED_REQUIRE(out.size() == env.lanes(),
                 "evaluate_point_fused: out.size() must equal env.lanes()");
  const std::size_t L = env.lanes();
  if (L == 0) return;
  ws.lane_values.resize(nodes_.size() * L);
  exec_point_fused(env, ws);
  std::copy_n(ws.lane_values.data() + (nodes_.size() - 1) * L, L, out.begin());
}

// --- Monte-Carlo walk -----------------------------------------------------

void Program::exec_sample(const SlotEnvironment& env, support::Rng& rng,
                          EvalWorkspace& ws, std::uint32_t lo,
                          std::uint32_t hi) const {
  std::uint32_t i = lo;
  while (i < hi) {
    // An unrelated-iterate body must NOT run under the enclosing per-slot
    // cache — the tree gives each iteration an independent fresh cache —
    // so the walk jumps over the body region to the iterate node, which
    // drives the iterations itself. With nested bodies sharing a begin
    // position, the outermost iterate inside the current region wins.
    if (has_skip_[i] != 0) {
      auto it = std::lower_bound(
          sample_skips_.begin(), sample_skips_.end(),
          std::pair<std::uint32_t, std::uint32_t>{i, 0});
      std::uint32_t target = 0;
      for (; it != sample_skips_.end() && it->first == i; ++it) {
        if (it->second < hi) target = std::max(target, it->second);
      }
      if (target != 0) {
        const Node& node = nodes_[target];
        // Save the enclosing cache entries for every slot the body can
        // touch; each iteration then starts from an all-fresh state.
        const std::size_t mark = ws.saved_sample.size();
        for (std::uint32_t k = 0; k < node.slots_count; ++k) {
          const std::uint32_t s = body_slots_[node.slots_first + k];
          ws.saved_sample.push_back(ws.slot_sample[s]);
          ws.saved_drawn.push_back(ws.slot_drawn[s]);
        }
        double acc = 0.0;
        for (std::uint32_t rep = 0; rep < node.payload; ++rep) {
          for (std::uint32_t k = 0; k < node.slots_count; ++k) {
            ws.slot_drawn[body_slots_[node.slots_first + k]] = 0;
          }
          exec_sample(env, rng, ws, node.body_begin, target);
          acc += ws.point_values[target - 1];
        }
        for (std::uint32_t k = 0; k < node.slots_count; ++k) {
          const std::uint32_t s = body_slots_[node.slots_first + k];
          ws.slot_sample[s] = ws.saved_sample[mark + k];
          ws.slot_drawn[s] = ws.saved_drawn[mark + k];
        }
        ws.saved_sample.resize(mark);
        ws.saved_drawn.resize(mark);
        ws.point_values[target] = acc;
        i = target + 1;
        continue;
      }
    }
    const Node& node = nodes_[i];
    switch (node.op) {
      case OpCode::kConst:
        ws.point_values[i] = stoch::sample(constants_[node.payload], rng);
        break;
      case OpCode::kParam: {
        const std::uint32_t s = node.payload;
        if (ws.slot_drawn[s] == 0) {
          ws.slot_sample[s] = stoch::sample(env.lookup(s), rng);
          ws.slot_drawn[s] = 1;
        }
        ws.point_values[i] = ws.slot_sample[s];
        break;
      }
      case OpCode::kSum: {
        double acc = 0.0;
        for (std::uint32_t k = 0; k < node.count; ++k) {
          acc += ws.point_values[operands_[node.first + k]];
        }
        ws.point_values[i] = acc;
        break;
      }
      case OpCode::kProd: {
        double acc = 1.0;
        for (std::uint32_t k = 0; k < node.count; ++k) {
          acc *= ws.point_values[operands_[node.first + k]];
        }
        ws.point_values[i] = acc;
        break;
      }
      case OpCode::kMax:
      case OpCode::kMin: {
        double acc = ws.point_values[operands_[node.first]];
        for (std::uint32_t k = 1; k < node.count; ++k) {
          const double v = ws.point_values[operands_[node.first + k]];
          acc = node.op == OpCode::kMax ? std::max(acc, v) : std::min(acc, v);
        }
        ws.point_values[i] = acc;
        break;
      }
      case OpCode::kDiv: {
        const double d = ws.point_values[operands_[node.first + 1]];
        SSPRED_REQUIRE(d != 0.0, "sampled division by zero");
        ws.point_values[i] = ws.point_values[operands_[node.first]] / d;
        break;
      }
      case OpCode::kIterate:
        // Only related iterates reach the linear walk (unrelated ones are
        // handled through the skip above): one shared-cache body draw,
        // repeated — the per-iteration quantities are coupled.
        ws.point_values[i] =
            static_cast<double>(node.payload) * ws.point_values[i - 1];
        break;
      case OpCode::kRef: {
        // Sampling a shared subtree draws per occurrence (the tree
        // re-walks it), so re-execute the referenced region. Its prior
        // per-node values are saved and restored around the re-run: they
        // may still be pending operands of consumers after this node.
        // saved_values is kept separate from the iterate pair above, whose
        // save/restore indexes saved_sample and saved_drawn in lockstep.
        const std::uint32_t begin = node.body_begin;
        const std::uint32_t target = node.payload;
        const std::size_t mark = ws.saved_values.size();
        ws.saved_values.insert(ws.saved_values.end(),
                               ws.point_values.begin() + begin,
                               ws.point_values.begin() + target + 1);
        exec_sample(env, rng, ws, begin, target + 1);
        ws.point_values[i] = ws.point_values[target];
        std::copy(ws.saved_values.begin() + static_cast<std::ptrdiff_t>(mark),
                  ws.saved_values.end(), ws.point_values.begin() + begin);
        ws.saved_values.resize(mark);
        break;
      }
    }
    ++i;
  }
}

double Program::sample(const SlotEnvironment& env, support::Rng& rng,
                       EvalWorkspace& ws) const {
  SSPRED_REQUIRE(env.size() == slot_count(),
                 "slot environment shape does not match the program (create "
                 "it with make_environment())");
  resize_workspace(ws);
  std::fill(ws.slot_drawn.begin(), ws.slot_drawn.end(),
            static_cast<std::uint8_t>(0));
  exec_sample(env, rng, ws, 0, static_cast<std::uint32_t>(nodes_.size()));
  return ws.point_values[nodes_.size() - 1];
}

// --- Blocked trial-major engine ---------------------------------------------
//
// exec_blocked is exec_sample transposed: instead of one trial flowing
// through all nodes, each node processes a whole block of trials against
// structure-of-arrays rows (lane_values[node][lane], lane_slots[slot][lane],
// both kBlockTrials wide). Group ops become flat elementwise kernels the
// compiler can vectorize; every stochastic draw event becomes one batched
// ziggurat fill. The skip/iterate/ref structure — and therefore the
// per-trial sampling semantics — is identical to the scalar walk; only the
// RNG stream order differs (see SampleOrder::kBlocked in the header).

namespace {

/// Draw-site policy of the single-request blocked walk: every fill spans
/// the whole occupied row prefix and consumes the one request RNG — the
/// original exec_blocked behavior, preserved instruction for instruction
/// (the kBlocked golden-replay tests pin its stream).
struct SingleFill {
  const SlotEnvironment* env;
  support::Rng* rng;
  void slot(std::uint32_t s, double* row, std::size_t lanes) {
    fill_lane(env->lookup(s), *rng, row, lanes);
  }
  void constant(const StochasticValue& v, double* row, std::size_t lanes) {
    fill_lane(v, *rng, row, lanes);
  }
};

/// Draw-site policy of the fused request-major walk: the occupied row
/// prefix packs `requests` lanes of `seg` trials each ([k*seg, (k+1)*seg)
/// belongs to request k), and each request's segment draws from its own
/// RNG. Because every draw event fills lane k's segment from rngs[k] with
/// the same width the standalone walk would use, each lane's substream is
/// the standalone kBlocked stream bit for bit.
struct FusedFill {
  const LaneEnvironment* env;
  support::Rng* rngs;
  std::size_t requests;
  std::size_t seg;
  void slot(std::uint32_t s, double* row, std::size_t /*lanes*/) {
    for (std::size_t k = 0; k < requests; ++k) {
      fill_lane(env->lookup(k, s), rngs[k], row + k * seg, seg);
    }
  }
  void constant(const StochasticValue& v, double* row,
                std::size_t /*lanes*/) {
    for (std::size_t k = 0; k < requests; ++k) {
      fill_lane(v, rngs[k], row + k * seg, seg);
    }
  }
};

/// Draw-site policy of the adaptive fused walk: the occupied row prefix
/// packs the surviving lanes' segments back to back (survivor i occupies
/// [offsets[i], offsets[i] + widths[i])), and each survivor draws from
/// its ORIGINAL request's RNG (rng_ids[i] indexes the caller's rngs
/// array) with its own standalone block width. Every draw event a
/// surviving lane sees is therefore identical — source RNG, width,
/// order — to its solo sample_adaptive walk, no matter how many other
/// lanes have retired and compacted away.
struct AdaptiveFill {
  const LaneEnvironment* env;  ///< compacted: lane i is survivor i
  support::Rng* rngs;          ///< original per-request RNG array
  const std::size_t* rng_ids;  ///< survivor i -> original request index
  const std::size_t* offsets;
  const std::size_t* widths;
  std::size_t active;
  void slot(std::uint32_t s, double* row, std::size_t /*lanes*/) {
    for (std::size_t i = 0; i < active; ++i) {
      fill_lane(env->lookup(i, s), rngs[rng_ids[i]], row + offsets[i],
                widths[i]);
    }
  }
  void constant(const StochasticValue& v, double* row,
                std::size_t /*lanes*/) {
    for (std::size_t i = 0; i < active; ++i) {
      fill_lane(v, rngs[rng_ids[i]], row + offsets[i], widths[i]);
    }
  }
};

}  // namespace

void Program::exec_blocked(const SlotEnvironment& env, support::Rng& rng,
                           EvalWorkspace& ws, std::uint32_t lo,
                           std::uint32_t hi, std::size_t lanes) const {
  SingleFill fill{&env, &rng};
  exec_blocked_impl(fill, ws, lo, hi, lanes, kBlockTrials);
}

template <class Fill>
void Program::exec_blocked_impl(Fill& fill, EvalWorkspace& ws,
                                std::uint32_t lo, std::uint32_t hi,
                                std::size_t lanes, std::size_t stride) const {
  double* const vals = ws.lane_values.data();
  double* const slots = ws.lane_slots.data();
  const std::uint32_t* const ops = operands_.data();
  const auto row = [vals, stride](std::uint32_t i) {
    return vals + static_cast<std::size_t>(i) * stride;
  };
  const auto slot_row = [slots, stride](std::uint32_t s) {
    return slots + static_cast<std::size_t>(s) * stride;
  };
  std::uint32_t i = lo;
  while (i < hi) {
    // Same region-skip protocol as the scalar walk: an unrelated-iterate
    // body runs under the iterate node's own repetition loop, with fresh
    // per-slot draws (here: fresh rows) for every repetition.
    if (has_skip_[i] != 0) {
      auto it = std::lower_bound(
          sample_skips_.begin(), sample_skips_.end(),
          std::pair<std::uint32_t, std::uint32_t>{i, 0});
      std::uint32_t target = 0;
      for (; it != sample_skips_.end() && it->first == i; ++it) {
        if (it->second < hi) target = std::max(target, it->second);
      }
      if (target != 0) {
        const Node& node = nodes_[target];
        const std::size_t mark = ws.lane_saved.size();
        for (std::uint32_t k = 0; k < node.slots_count; ++k) {
          const double* const src =
              slot_row(body_slots_[node.slots_first + k]);
          ws.lane_saved.insert(ws.lane_saved.end(), src, src + lanes);
        }
        double* const acc = row(target);
        std::fill(acc, acc + lanes, 0.0);
        for (std::uint32_t rep = 0; rep < node.payload; ++rep) {
          for (std::uint32_t k = 0; k < node.slots_count; ++k) {
            const std::uint32_t s = body_slots_[node.slots_first + k];
            fill.slot(s, slot_row(s), lanes);
          }
          exec_blocked_impl(fill, ws, node.body_begin, target, lanes, stride);
          const double* const body = row(target - 1);
          SSPRED_SIMD_LOOP
          for (std::size_t t = 0; t < lanes; ++t) acc[t] += body[t];
        }
        for (std::uint32_t k = 0; k < node.slots_count; ++k) {
          std::copy_n(ws.lane_saved.data() + mark + k * lanes, lanes,
                      slot_row(body_slots_[node.slots_first + k]));
        }
        ws.lane_saved.resize(mark);
        i = target + 1;
        continue;
      }
    }
    const Node& node = nodes_[i];
    switch (node.op) {
      case OpCode::kConst:
        // Stochastic constants draw per occurrence (per block), exactly
        // like the scalar walk draws per occurrence per trial.
        fill.constant(constants_[node.payload], row(i), lanes);
        break;
      case OpCode::kParam:
        std::copy_n(slot_row(node.payload), lanes, row(i));
        break;
      case OpCode::kSum: {
        double* const r = row(i);
        std::copy_n(row(ops[node.first]), lanes, r);
        for (std::uint32_t k = 1; k < node.count; ++k) {
          const double* const b = row(ops[node.first + k]);
          SSPRED_SIMD_LOOP
          for (std::size_t t = 0; t < lanes; ++t) r[t] += b[t];
        }
        break;
      }
      case OpCode::kProd: {
        double* const r = row(i);
        std::copy_n(row(ops[node.first]), lanes, r);
        for (std::uint32_t k = 1; k < node.count; ++k) {
          const double* const b = row(ops[node.first + k]);
          SSPRED_SIMD_LOOP
          for (std::size_t t = 0; t < lanes; ++t) r[t] *= b[t];
        }
        break;
      }
      case OpCode::kMax: {
        double* const r = row(i);
        std::copy_n(row(ops[node.first]), lanes, r);
        for (std::uint32_t k = 1; k < node.count; ++k) {
          const double* const b = row(ops[node.first + k]);
          SSPRED_SIMD_LOOP
          for (std::size_t t = 0; t < lanes; ++t) r[t] = std::max(r[t], b[t]);
        }
        break;
      }
      case OpCode::kMin: {
        double* const r = row(i);
        std::copy_n(row(ops[node.first]), lanes, r);
        for (std::uint32_t k = 1; k < node.count; ++k) {
          const double* const b = row(ops[node.first + k]);
          SSPRED_SIMD_LOOP
          for (std::size_t t = 0; t < lanes; ++t) r[t] = std::min(r[t], b[t]);
        }
        break;
      }
      case OpCode::kDiv: {
        const double* const num = row(ops[node.first]);
        const double* const den = row(ops[node.first + 1]);
        double* const r = row(i);
        bool zero = false;
        for (std::size_t t = 0; t < lanes; ++t) {
          zero = zero || den[t] == 0.0;
        }
        SSPRED_REQUIRE(!zero, "sampled division by zero");
        SSPRED_SIMD_LOOP
        for (std::size_t t = 0; t < lanes; ++t) r[t] = num[t] / den[t];
        break;
      }
      case OpCode::kIterate: {
        // Only related iterates reach the linear walk (see the skip above):
        // one shared body draw per trial, repeated n times.
        const double n = static_cast<double>(node.payload);
        const double* const body = row(i - 1);
        double* const r = row(i);
        SSPRED_SIMD_LOOP
        for (std::size_t t = 0; t < lanes; ++t) r[t] = n * body[t];
        break;
      }
      case OpCode::kRef: {
        // A pure region (no draw events at re-execution time; see
        // reindex()) would recompute the target row bit for bit while
        // consuming no RNG — copy it instead of re-running the region.
        if (ref_pure_[i] != 0) {
          std::copy_n(row(node.payload), lanes, row(i));
          break;
        }
        // Re-execute the occurrence region for an independent draw, with
        // the region's rows — contiguous in node-major layout — saved
        // around the re-run: they may still be pending operands of later
        // consumers.
        const std::uint32_t begin = node.body_begin;
        const std::uint32_t target = node.payload;
        const std::size_t span_len =
            static_cast<std::size_t>(target - begin + 1) * stride;
        const std::size_t mark = ws.lane_saved.size();
        ws.lane_saved.insert(ws.lane_saved.end(), row(begin),
                             row(begin) + span_len);
        exec_blocked_impl(fill, ws, begin, target + 1, lanes, stride);
        std::copy_n(row(target), lanes, row(i));
        std::copy_n(ws.lane_saved.data() + mark, span_len, row(begin));
        ws.lane_saved.resize(mark);
        break;
      }
    }
    ++i;
  }
}

void Program::sample_into(const SlotEnvironment& env, support::Rng& rng,
                          std::span<double> out, EvalWorkspace& ws,
                          SampleOrder order) const {
  SSPRED_REQUIRE(env.size() == slot_count(),
                 "slot environment shape does not match the program (create "
                 "it with make_environment())");
  resize_workspace(ws);
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  if (order == SampleOrder::kScalarCompat) {
    for (double& o : out) {
      std::fill(ws.slot_drawn.begin(), ws.slot_drawn.end(),
                static_cast<std::uint8_t>(0));
      exec_sample(env, rng, ws, 0, n);
      o = ws.point_values[n - 1];
    }
    return;
  }
  ws.lane_values.resize(nodes_.size() * kBlockTrials);
  ws.lane_slots.resize(slot_count() * kBlockTrials);
  const double* const root =
      ws.lane_values.data() + static_cast<std::size_t>(n - 1) * kBlockTrials;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t lanes = std::min(kBlockTrials, out.size() - done);
    // Block prologue: one batched draw per live slot, ascending slot id.
    // Dead slots (present in the table, read by no node) draw nothing.
    for (const std::uint32_t s : live_slots_) {
      fill_lane(env.lookup(s), rng,
                ws.lane_slots.data() + static_cast<std::size_t>(s) * kBlockTrials,
                lanes);
    }
    exec_blocked(env, rng, ws, 0, n, lanes);
    std::copy_n(root, lanes, out.begin() + static_cast<std::ptrdiff_t>(done));
    done += lanes;
  }
}

StochasticValue Program::sample_trials(const SlotEnvironment& env,
                                       support::Rng& rng, std::size_t trials,
                                       EvalWorkspace& ws,
                                       SampleOrder order) const {
  SSPRED_REQUIRE(trials >= 2, "sample_trials needs at least 2 trials");
  SSPRED_REQUIRE(env.size() == slot_count(),
                 "slot environment shape does not match the program (create "
                 "it with make_environment())");
  // A fully folded point program needs no sampling at all: every trial
  // would be exactly the mean. Short-circuiting is observable only through
  // summary rounding, so it is reserved for the blocked contract;
  // kScalarCompat keeps the trial loop (and its bit-exact summary).
  if (order == SampleOrder::kBlocked && nodes_.size() == 1 &&
      nodes_[0].op == OpCode::kConst && constants_[0].is_point()) {
    return constants_[0];
  }
  ws.trial_results.resize(trials);
  sample_into(env, rng, ws.trial_results, ws, order);
  return StochasticValue::from_sample(ws.trial_results);
}

StochasticValue Program::sample_trials(const SlotEnvironment& env,
                                       support::Rng& rng, std::size_t trials,
                                       SampleOrder order) const {
  EvalWorkspace ws;
  return sample_trials(env, rng, trials, ws, order);
}

// --- Fused request-major Monte-Carlo ----------------------------------------
//
// sample_fused generalizes the blocked engine's lane dimension from "trials
// of one request" to "requests x trials": the SoA rows widen to
// K * kBlockTrials and each block sweep advances every request by one
// trial sub-block. Request k's segment draws exclusively from rngs[k], in
// the standalone kBlocked order (prologue slots ascending, then the
// node-major walk), so the per-lane results — including the per-trial
// doubles — are bit-identical to K standalone sample_trials(kBlocked)
// calls. tests/fused_test.cpp pins this differentially.

void Program::sample_fused(const LaneEnvironment& env,
                           std::span<support::Rng> rngs, std::size_t trials,
                           EvalWorkspace& ws,
                           std::span<StochasticValue> out) const {
  SSPRED_REQUIRE(trials >= 2, "sample_fused needs at least 2 trials");
  SSPRED_REQUIRE(env.slot_count() == slot_count(),
                 "lane environment shape does not match the program (create "
                 "it with make_lane_environment())");
  SSPRED_REQUIRE(rngs.size() == env.lanes() && out.size() == env.lanes(),
                 "sample_fused: rngs.size() and out.size() must equal "
                 "env.lanes()");
  const std::size_t requests = env.lanes();
  if (requests == 0) return;
  // Same fully-folded short-circuit as sample_trials' kBlocked contract:
  // a point program samples to exactly its constant, drawing nothing.
  if (nodes_.size() == 1 && nodes_[0].op == OpCode::kConst &&
      constants_[0].is_point()) {
    std::fill(out.begin(), out.end(), constants_[0]);
    return;
  }
  const std::size_t stride = requests * kBlockTrials;
  ws.lane_values.resize(nodes_.size() * stride);
  ws.lane_slots.resize(slot_count() * stride);
  ws.trial_results.resize(requests * trials);
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  const double* const root =
      ws.lane_values.data() + static_cast<std::size_t>(n - 1) * stride;
  std::size_t done = 0;
  while (done < trials) {
    const std::size_t seg = std::min(kBlockTrials, trials - done);
    FusedFill fill{&env, rngs.data(), requests, seg};
    // Block prologue per lane: every live slot ascending — each request's
    // substream sees exactly the standalone prologue order and widths.
    for (const std::uint32_t s : live_slots_) {
      fill.slot(s, ws.lane_slots.data() + static_cast<std::size_t>(s) * stride,
                0);
    }
    exec_blocked_impl(fill, ws, 0, n, requests * seg, stride);
    for (std::size_t k = 0; k < requests; ++k) {
      std::copy_n(root + k * seg, seg,
                  ws.trial_results.begin() +
                      static_cast<std::ptrdiff_t>(k * trials + done));
    }
    done += seg;
  }
  for (std::size_t k = 0; k < requests; ++k) {
    out[k] = StochasticValue::from_sample(
        {ws.trial_results.data() + k * trials, trials});
  }
}

// --- Adaptive (sequentially stopped) Monte-Carlo ----------------------------
//
// sample_adaptive runs the blocked engine in stats::next_block_width
// blocks and consults the stop rule between blocks; the decision is a
// pure function of the sampled values, so trial counts are reproducible
// from the seed. A fixed rule walks the exact sample_trials(kBlocked)
// schedule — same block widths, same draw order — and a precision rule
// uses doubling checkpoints so easy targets stop in hundreds of trials.
// sample_adaptive_fused generalizes FusedFill to per-lane segment widths
// so lanes with different rules (mixed fixed + precision) share one
// sweep, retiring and compacting converged lanes at block boundaries.

AdaptiveResult Program::sample_adaptive(const SlotEnvironment& env,
                                        support::Rng& rng,
                                        const stats::StopRule& rule,
                                        EvalWorkspace& ws) const {
  SSPRED_REQUIRE(rule.max_trials >= 2,
                 "sample_adaptive needs rule.max_trials >= 2");
  SSPRED_REQUIRE(env.size() == slot_count(),
                 "slot environment shape does not match the program (create "
                 "it with make_environment())");
  // Same fully-folded short-circuit as sample_trials' kBlocked contract:
  // a point program samples to exactly its constant, drawing nothing.
  if (nodes_.size() == 1 && nodes_[0].op == OpCode::kConst &&
      constants_[0].is_point()) {
    return AdaptiveResult{constants_[0], 0, 0.0, true};
  }
  resize_workspace(ws);
  ws.lane_values.resize(nodes_.size() * kBlockTrials);
  ws.lane_slots.resize(slot_count() * kBlockTrials);
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  const double* const root =
      ws.lane_values.data() + static_cast<std::size_t>(n - 1) * kBlockTrials;
  stats::SequentialEstimator est(rule);
  ws.trial_results.clear();
  for (;;) {
    const std::size_t lanes =
        stats::next_block_width(est.count(), rule, kBlockTrials);
    if (lanes == 0) break;
    // Block prologue: one batched draw per live slot, ascending slot id
    // (the kBlocked contract; see sample_into).
    for (const std::uint32_t s : live_slots_) {
      fill_lane(
          env.lookup(s), rng,
          ws.lane_slots.data() + static_cast<std::size_t>(s) * kBlockTrials,
          lanes);
    }
    exec_blocked(env, rng, ws, 0, n, lanes);
    ws.trial_results.insert(ws.trial_results.end(), root, root + lanes);
    est.add({root, lanes});
    if (est.should_stop()) break;
  }
  AdaptiveResult result;
  result.value = StochasticValue::from_sample(ws.trial_results);
  result.trials = est.count();
  result.ci_halfwidth = est.ci_halfwidth();
  result.converged = rule.target <= 0.0 || est.precision_met();
  return result;
}

AdaptiveResult Program::sample_adaptive(const SlotEnvironment& env,
                                        support::Rng& rng,
                                        const stats::StopRule& rule) const {
  EvalWorkspace ws;
  return sample_adaptive(env, rng, rule, ws);
}

void Program::sample_adaptive_fused(const LaneEnvironment& env,
                                    std::span<support::Rng> rngs,
                                    std::span<const stats::StopRule> rules,
                                    EvalWorkspace& ws,
                                    std::span<AdaptiveResult> out) const {
  SSPRED_REQUIRE(env.slot_count() == slot_count(),
                 "lane environment shape does not match the program (create "
                 "it with make_lane_environment())");
  SSPRED_REQUIRE(rngs.size() == env.lanes() && rules.size() == env.lanes() &&
                     out.size() == env.lanes(),
                 "sample_adaptive_fused: rngs/rules/out sizes must equal "
                 "env.lanes()");
  const std::size_t requests = env.lanes();
  if (requests == 0) return;
  for (const stats::StopRule& rule : rules) {
    SSPRED_REQUIRE(rule.max_trials >= 2,
                   "sample_adaptive_fused needs rule.max_trials >= 2");
  }
  if (nodes_.size() == 1 && nodes_[0].op == OpCode::kConst &&
      constants_[0].is_point()) {
    std::fill(out.begin(), out.end(),
              AdaptiveResult{constants_[0], 0, 0.0, true});
    return;
  }
  resize_workspace(ws);
  if (ws.adaptive_samples.size() < requests) {
    ws.adaptive_samples.resize(requests);
  }
  std::vector<stats::SequentialEstimator> est;
  est.reserve(requests);
  for (std::size_t k = 0; k < requests; ++k) {
    est.emplace_back(rules[k]);
    ws.adaptive_samples[k].clear();
  }
  auto& active = ws.adaptive_active;
  auto& offsets = ws.adaptive_offsets;
  auto& widths = ws.adaptive_widths;
  active.resize(requests);
  for (std::size_t k = 0; k < requests; ++k) active[k] = k;
  // Retirement rebuilds a compacted environment over the survivors (in
  // stable original order); `cur` points at whichever environment the
  // current sweep should read.
  LaneEnvironment compact;
  const LaneEnvironment* cur = &env;
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  while (!active.empty()) {
    const std::size_t count = active.size();
    offsets.resize(count);
    widths.resize(count);
    std::size_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t k = active[i];
      offsets[i] = total;
      widths[i] = stats::next_block_width(est[k].count(), rules[k],
                                          kBlockTrials);
      total += widths[i];
    }
    const std::size_t stride = count * kBlockTrials;
    ws.lane_values.resize(nodes_.size() * stride);
    ws.lane_slots.resize(slot_count() * stride);
    const double* const root =
        ws.lane_values.data() + static_cast<std::size_t>(n - 1) * stride;
    AdaptiveFill fill{cur,            rngs.data(),   active.data(),
                      offsets.data(), widths.data(), count};
    // Block prologue per surviving lane: every live slot ascending, each
    // lane at its standalone width (see AdaptiveFill).
    for (const std::uint32_t s : live_slots_) {
      fill.slot(s, ws.lane_slots.data() + static_cast<std::size_t>(s) * stride,
                0);
    }
    exec_blocked_impl(fill, ws, 0, n, total, stride);
    // Harvest every survivor's segment, then retire converged lanes at
    // the block boundary (solo runs check the rule at the same points).
    std::size_t keep = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t k = active[i];
      auto& samples = ws.adaptive_samples[k];
      samples.insert(samples.end(), root + offsets[i],
                     root + offsets[i] + widths[i]);
      est[k].add({root + offsets[i], widths[i]});
      if (!est[k].should_stop()) active[keep++] = k;
    }
    if (keep != count) {
      active.resize(keep);
      if (!active.empty()) {
        compact.assign_compacted(env, active);
        cur = &compact;
      }
    }
  }
  for (std::size_t k = 0; k < requests; ++k) {
    out[k].value = StochasticValue::from_sample(ws.adaptive_samples[k]);
    out[k].trials = est[k].count();
    out[k].ci_halfwidth = est[k].ci_halfwidth();
    out[k].converged = rules[k].target <= 0.0 || est[k].precision_met();
  }
}

// --- Builder --------------------------------------------------------------

Builder::Builder(const Program& base) : names_(*base.slot_names_) {
  prog_.slot_ids_ = base.slot_ids_;
}

std::uint32_t Builder::emit_const(StochasticValue v) {
  const auto idx = static_cast<std::uint32_t>(prog_.constants_.size());
  prog_.constants_.push_back(v);
  Node node;
  node.op = OpCode::kConst;
  node.payload = idx;
  prog_.nodes_.push_back(node);
  return next_index() - 1;
}

std::uint32_t Builder::emit_param(const std::string& name) {
  std::uint32_t slot;
  const auto it = prog_.slot_ids_.find(name);
  if (it != prog_.slot_ids_.end()) {
    slot = it->second;
  } else {
    slot = static_cast<std::uint32_t>(names_.size());
    names_.push_back(name);
    prog_.slot_ids_.emplace(name, slot);
  }
  Node node;
  node.op = OpCode::kParam;
  node.payload = slot;
  prog_.nodes_.push_back(node);
  return next_index() - 1;
}

std::uint32_t Builder::emit_group(OpCode op,
                                  std::span<const std::uint32_t> children,
                                  Dependence dep,
                                  stoch::ExtremePolicy policy) {
  SSPRED_REQUIRE(op == OpCode::kSum || op == OpCode::kProd ||
                     op == OpCode::kDiv || op == OpCode::kMax ||
                     op == OpCode::kMin,
                 "emit_group: not a group opcode");
  SSPRED_REQUIRE(!children.empty(), "group node needs operands");
  SSPRED_REQUIRE(op != OpCode::kDiv || children.size() == 2,
                 "division takes exactly two operands");
  for (const std::uint32_t c : children) {
    SSPRED_REQUIRE(c < next_index(),
                   "operand must be emitted before its consumer (post-order)");
  }
  Node node;
  node.op = op;
  node.dep = dep;
  node.policy = policy;
  node.first = static_cast<std::uint32_t>(prog_.operands_.size());
  node.count = static_cast<std::uint32_t>(children.size());
  prog_.operands_.insert(prog_.operands_.end(), children.begin(),
                         children.end());
  prog_.nodes_.push_back(node);
  return next_index() - 1;
}

std::uint32_t Builder::emit_iterate(std::uint32_t body_begin,
                                    std::size_t iterations, Dependence dep) {
  SSPRED_REQUIRE(body_begin < next_index(), "iterate body must not be empty");
  SSPRED_REQUIRE(iterations >= 1, "iterate needs at least one iteration");
  SSPRED_REQUIRE(iterations <= 0xffffffffULL, "iteration count too large");
  Node node;
  node.op = OpCode::kIterate;
  node.dep = dep;
  node.payload = static_cast<std::uint32_t>(iterations);
  node.body_begin = body_begin;
  // Distinct parameter slots the body references (including nested iterate
  // bodies — their params are ordinary kParam nodes in the region — and
  // the regions behind kRef nodes, which sampling re-executes in place).
  std::vector<std::uint32_t> slots;
  const auto collect = [&](auto&& self, std::uint32_t lo,
                           std::uint32_t hi) -> void {
    for (std::uint32_t i = lo; i < hi; ++i) {
      const Node& n = prog_.nodes_[i];
      if (n.op == OpCode::kParam) {
        slots.push_back(n.payload);
      } else if (n.op == OpCode::kRef) {
        self(self, n.body_begin, n.payload + 1);
      }
    }
  };
  collect(collect, body_begin, next_index());
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  node.slots_first = static_cast<std::uint32_t>(prog_.body_slots_.size());
  node.slots_count = static_cast<std::uint32_t>(slots.size());
  prog_.body_slots_.insert(prog_.body_slots_.end(), slots.begin(),
                           slots.end());
  const std::uint32_t idx = next_index();
  prog_.nodes_.push_back(node);
  return idx;
}

std::uint32_t Builder::emit_ref(std::uint32_t target,
                                std::uint32_t region_begin) {
  SSPRED_REQUIRE(target < next_index(),
                 "ref target must be emitted before the ref");
  SSPRED_REQUIRE(region_begin <= target, "ref region must end at its target");
  Node node;
  node.op = OpCode::kRef;
  node.payload = target;
  node.body_begin = region_begin;
  prog_.nodes_.push_back(node);
  return next_index() - 1;
}

std::uint32_t Builder::emit_shared_ref(const void* key) {
  const auto it = shared_.find(key);
  if (it == shared_.end()) return kNoNode;
  return emit_ref(it->second.second, it->second.first);
}

void Builder::note_shared(const void* key, std::uint32_t region_begin,
                          std::uint32_t root) {
  shared_.emplace(key, std::make_pair(region_begin, root));
}

Program Builder::take() {
  SSPRED_REQUIRE(!prog_.nodes_.empty(), "cannot compile an empty program");
  prog_.slot_names_ =
      std::make_shared<const std::vector<std::string>>(std::move(names_));
  prog_.reindex();
  return std::move(prog_);
}

}  // namespace sspred::model::ir
