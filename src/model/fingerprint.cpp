#include "model/fingerprint.hpp"

#include <cstdio>

namespace sspred::model {

std::uint64_t hash_bytes(std::string_view bytes) noexcept {
  // FNV-1a 64.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  // splitmix64 finalizer.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

void Fingerprint::sep() {
  if (!key_.empty()) key_ += '|';
}

Fingerprint& Fingerprint::tag(std::string_view t) {
  sep();
  key_ += '#';  // tags and fields can never collide textually
  key_.append(t);
  return *this;
}

Fingerprint& Fingerprint::field(std::string_view name, std::uint64_t v) {
  sep();
  key_.append(name);
  key_ += '=';
  key_ += 'u';
  key_ += std::to_string(v);
  return *this;
}

Fingerprint& Fingerprint::field(std::string_view name, std::int64_t v) {
  sep();
  key_.append(name);
  key_ += '=';
  key_ += 'i';
  key_ += std::to_string(v);
  return *this;
}

Fingerprint& Fingerprint::field(std::string_view name, double v) {
  sep();
  key_.append(name);
  key_ += '=';
  char buf[40];
  std::snprintf(buf, sizeof buf, "f%.17g", v);
  key_ += buf;
  return *this;
}

Fingerprint& Fingerprint::field(std::string_view name, bool v) {
  sep();
  key_.append(name);
  key_ += '=';
  key_ += v ? "b1" : "b0";
  return *this;
}

Fingerprint& Fingerprint::field(std::string_view name, std::string_view v) {
  sep();
  key_.append(name);
  key_ += '=';
  key_ += 's';
  key_ += std::to_string(v.size());
  key_ += ':';
  key_.append(v);
  return *this;
}

std::uint64_t Fingerprint::hash() const noexcept { return hash_bytes(key_); }

}  // namespace sspred::model
