// The Network Weather Service forecaster family (Wolski, TR-CS96-494).
//
// Each forecaster predicts the next value of a time series from its
// history. The Service evaluates every forecaster retrospectively
// ("postcasting") and reports the prediction of the one with the lowest
// mean squared error — NWS's dynamic predictor selection.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace sspred::nws {

/// Interface: predict the next value from `history` (oldest first).
/// Implementations must be stateless across calls.
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  [[nodiscard]] virtual double predict(std::span<const double> history) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Predicts the most recent value.
class LastValue final : public Forecaster {
 public:
  [[nodiscard]] double predict(std::span<const double> history) const override;
  [[nodiscard]] std::string name() const override { return "last"; }
};

/// Predicts the mean of the entire history.
class RunningMean final : public Forecaster {
 public:
  [[nodiscard]] double predict(std::span<const double> history) const override;
  [[nodiscard]] std::string name() const override { return "mean"; }
};

/// Predicts the mean of the last `window` values.
class SlidingMean final : public Forecaster {
 public:
  explicit SlidingMean(std::size_t window);
  [[nodiscard]] double predict(std::span<const double> history) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t window_;
};

/// Predicts the median of the last `window` values (robust to bursts).
class SlidingMedian final : public Forecaster {
 public:
  explicit SlidingMedian(std::size_t window);
  [[nodiscard]] double predict(std::span<const double> history) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t window_;
};

/// Exponential smoothing with gain `alpha` in (0, 1].
class ExpSmoothing final : public Forecaster {
 public:
  explicit ExpSmoothing(double alpha);
  [[nodiscard]] double predict(std::span<const double> history) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double alpha_;
};

/// NWS's adaptive-window mean: for each prediction, postcasts a set of
/// candidate windows over the recent history and averages over the window
/// whose one-step errors were smallest.
class AdaptiveMean final : public Forecaster {
 public:
  /// `windows` must be non-empty, ascending.
  explicit AdaptiveMean(std::vector<std::size_t> windows = {5, 10, 20, 50});
  [[nodiscard]] double predict(std::span<const double> history) const override;
  [[nodiscard]] std::string name() const override { return "adaptive"; }

 private:
  std::vector<std::size_t> windows_;
};

/// The default NWS-style bank: last value, running mean, sliding
/// means/medians over several windows, and exponential smoothers.
[[nodiscard]] std::vector<std::unique_ptr<Forecaster>> default_bank();

}  // namespace sspred::nws
