#include "nws/sensor.hpp"

#include "support/error.hpp"

namespace sspred::nws {

std::string cpu_resource(const machine::Machine& m) {
  return "cpu/" + m.spec().name;
}

sim::Process cpu_sensor(sim::Engine& engine, const machine::Machine& machine,
                        Service& service, support::Seconds interval,
                        support::Seconds until) {
  SSPRED_REQUIRE(interval > 0.0, "sensor interval must be positive");
  const std::string resource = cpu_resource(machine);
  while (engine.now() < until) {
    service.observe(resource, machine.availability(engine.now()));
    co_await engine.delay(interval);
  }
}

void ingest_cpu_history(const machine::Machine& machine, Service& service,
                        support::Seconds t0, support::Seconds t1,
                        support::Seconds interval) {
  SSPRED_REQUIRE(interval > 0.0, "sensor interval must be positive");
  SSPRED_REQUIRE(t1 > t0, "history window must be non-empty");
  const std::string resource = cpu_resource(machine);
  for (support::Seconds t = t0; t < t1; t += interval) {
    service.observe(resource, machine.availability(t));
  }
}

void attach_cpu_sensors(sim::Engine& engine, cluster::Platform& platform,
                        Service& service, support::Seconds interval,
                        support::Seconds until) {
  for (std::size_t i = 0; i < platform.size(); ++i) {
    engine.spawn(
        cpu_sensor(engine, platform.machine(i), service, interval, until));
  }
}

std::string ethernet_resource() { return "net/ethernet"; }

sim::Process bandwidth_sensor(sim::Engine& engine,
                              net::SharedEthernet& ethernet, Service& service,
                              support::Bytes probe_bytes,
                              support::Seconds interval,
                              support::Seconds until) {
  SSPRED_REQUIRE(interval > 0.0, "sensor interval must be positive");
  SSPRED_REQUIRE(probe_bytes > 0.0, "probe must move at least one byte");
  const std::string resource = ethernet_resource();
  while (engine.now() < until) {
    const support::Seconds start = engine.now();
    co_await ethernet.transfer(probe_bytes);
    const support::Seconds elapsed = engine.now() - start;
    const double effective = probe_bytes / elapsed;
    service.observe(resource,
                    effective / ethernet.spec().nominal_bandwidth);
    co_await engine.delay(interval);
  }
}

}  // namespace sspred::nws
