#include "nws/forecasters.hpp"

#include <algorithm>
#include <limits>

#include "stats/descriptive.hpp"
#include "support/error.hpp"

namespace sspred::nws {

namespace {
[[nodiscard]] std::span<const double> tail(std::span<const double> xs,
                                           std::size_t window) {
  return xs.size() > window ? xs.subspan(xs.size() - window) : xs;
}
}  // namespace

double LastValue::predict(std::span<const double> history) const {
  SSPRED_REQUIRE(!history.empty(), "forecaster needs history");
  return history.back();
}

double RunningMean::predict(std::span<const double> history) const {
  return stats::mean(history);
}

SlidingMean::SlidingMean(std::size_t window) : window_(window) {
  SSPRED_REQUIRE(window >= 1, "window must be >= 1");
}

double SlidingMean::predict(std::span<const double> history) const {
  return stats::mean(tail(history, window_));
}

std::string SlidingMean::name() const {
  return "mean" + std::to_string(window_);
}

SlidingMedian::SlidingMedian(std::size_t window) : window_(window) {
  SSPRED_REQUIRE(window >= 1, "window must be >= 1");
}

double SlidingMedian::predict(std::span<const double> history) const {
  return stats::median(tail(history, window_));
}

std::string SlidingMedian::name() const {
  return "median" + std::to_string(window_);
}

ExpSmoothing::ExpSmoothing(double alpha) : alpha_(alpha) {
  SSPRED_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
}

double ExpSmoothing::predict(std::span<const double> history) const {
  SSPRED_REQUIRE(!history.empty(), "forecaster needs history");
  double s = history.front();
  for (double x : history.subspan(1)) s = alpha_ * x + (1.0 - alpha_) * s;
  return s;
}

std::string ExpSmoothing::name() const {
  return "expsm" + std::to_string(static_cast<int>(alpha_ * 100.0));
}

AdaptiveMean::AdaptiveMean(std::vector<std::size_t> windows)
    : windows_(std::move(windows)) {
  SSPRED_REQUIRE(!windows_.empty(), "adaptive mean needs candidate windows");
  SSPRED_REQUIRE(std::is_sorted(windows_.begin(), windows_.end()),
                 "candidate windows must be ascending");
  SSPRED_REQUIRE(windows_.front() >= 1, "windows must be >= 1");
}

double AdaptiveMean::predict(std::span<const double> history) const {
  SSPRED_REQUIRE(!history.empty(), "forecaster needs history");
  // Postcast each candidate window over the most recent quarter of the
  // history (at least 4 points) and keep the one with the lowest MSE.
  const std::size_t eval_points =
      std::max<std::size_t>(4, history.size() / 4);
  const std::size_t eval_begin =
      history.size() > eval_points ? history.size() - eval_points : 1;
  std::size_t best_window = windows_.front();
  double best_mse = std::numeric_limits<double>::infinity();
  for (std::size_t w : windows_) {
    double se = 0.0;
    std::size_t count = 0;
    for (std::size_t i = eval_begin; i < history.size(); ++i) {
      const double pred = stats::mean(tail(history.subspan(0, i), w));
      const double err = pred - history[i];
      se += err * err;
      ++count;
    }
    if (count == 0) continue;
    const double mse = se / static_cast<double>(count);
    if (mse < best_mse) {
      best_mse = mse;
      best_window = w;
    }
  }
  return stats::mean(tail(history, best_window));
}

std::vector<std::unique_ptr<Forecaster>> default_bank() {
  std::vector<std::unique_ptr<Forecaster>> bank;
  bank.push_back(std::make_unique<LastValue>());
  bank.push_back(std::make_unique<RunningMean>());
  for (std::size_t w : {5, 10, 20, 50}) {
    bank.push_back(std::make_unique<SlidingMean>(w));
  }
  for (std::size_t w : {5, 15, 31}) {
    bank.push_back(std::make_unique<SlidingMedian>(w));
  }
  for (double a : {0.2, 0.5, 0.8}) {
    bank.push_back(std::make_unique<ExpSmoothing>(a));
  }
  bank.push_back(std::make_unique<AdaptiveMean>());
  return bank;
}

}  // namespace sspred::nws
