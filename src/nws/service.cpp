#include "nws/service.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <mutex>

#include "support/error.hpp"

namespace sspred::nws {

Service::Service(ServiceOptions options)
    : options_(options), bank_(default_bank()) {
  SSPRED_REQUIRE(options_.history_capacity >= options_.warmup + 2,
                 "history capacity too small for postcasting");
}

void Service::observe(const std::string& resource, double value) {
  const std::unique_lock lock(mutex_);
  auto& h = histories_[resource];
  h.push_back(value);
  while (h.size() > options_.history_capacity) h.pop_front();
}

std::size_t Service::history_size(const std::string& resource) const {
  const std::shared_lock lock(mutex_);
  const auto it = histories_.find(resource);
  return it == histories_.end() ? 0 : it->second.size();
}

std::vector<double> Service::history_locked(
    const std::string& resource) const {
  const auto it = histories_.find(resource);
  SSPRED_REQUIRE(it != histories_.end(), "unknown resource: " + resource);
  return {it->second.begin(), it->second.end()};
}

std::vector<double> Service::history(const std::string& resource) const {
  const std::shared_lock lock(mutex_);
  return history_locked(resource);
}

std::vector<std::pair<std::string, double>> Service::postcast_errors_locked(
    const std::string& resource) const {
  const std::vector<double> h = history_locked(resource);
  SSPRED_REQUIRE(h.size() >= options_.warmup + 2,
                 "not enough history to postcast: " + resource);
  std::vector<std::pair<std::string, double>> errors;
  errors.reserve(bank_.size());
  for (const auto& f : bank_) {
    double se = 0.0;
    std::size_t n = 0;
    for (std::size_t i = options_.warmup; i < h.size(); ++i) {
      const double pred =
          f->predict(std::span<const double>(h.data(), i));
      const double err = pred - h[i];
      se += err * err;
      ++n;
    }
    errors.emplace_back(f->name(), se / static_cast<double>(n));
  }
  return errors;
}

std::vector<std::pair<std::string, double>> Service::postcast_errors(
    const std::string& resource) const {
  const std::shared_lock lock(mutex_);
  return postcast_errors_locked(resource);
}

void Service::save_csv(const std::string& path) const {
  std::ofstream out(path);
  SSPRED_REQUIRE(out.good(), "cannot open history file: " + path);
  out << "resource,index,value\n";
  const std::shared_lock lock(mutex_);
  for (const auto& [resource, history] : histories_) {
    std::size_t i = 0;
    for (double v : history) {
      out << resource << ',' << i++ << ',' << v << '\n';
    }
  }
}

void Service::load_csv(const std::string& path) {
  std::ifstream in(path);
  SSPRED_REQUIRE(in.good(), "cannot open history file: " + path);
  std::string line;
  SSPRED_REQUIRE(static_cast<bool>(std::getline(in, line)) &&
                     line == "resource,index,value",
                 "unexpected history header in " + path);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto c1 = line.find(',');
    const auto c2 = line.find(',', c1 + 1);
    SSPRED_REQUIRE(c1 != std::string::npos && c2 != std::string::npos,
                   "malformed history row in " + path);
    observe(line.substr(0, c1), std::stod(line.substr(c2 + 1)));
  }
}

std::vector<std::string> Service::resources() const {
  const std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histories_.size());
  for (const auto& [name, _] : histories_) names.push_back(name);
  return names;
}

Forecast Service::forecast(const std::string& resource) const {
  const std::shared_lock lock(mutex_);
  const std::vector<double> h = history_locked(resource);
  const auto errors = postcast_errors_locked(resource);
  std::size_t best = 0;
  double best_mse = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (errors[i].second < best_mse) {
      best_mse = errors[i].second;
      best = i;
    }
  }
  Forecast fc;
  fc.value = bank_[best]->predict(h);
  fc.error_sd = std::sqrt(best_mse);
  fc.forecaster = errors[best].first;
  return fc;
}

}  // namespace sspred::nws
