// The NWS service: per-resource measurement histories + forecasting.
//
// The paper (§3): "The Network Weather Service supplied us with accurate
// run-time information about the CPU load on our machines as well as the
// variance of those values at 5 second intervals." Service reproduces
// that interface: observations stream in; forecast() returns the
// best-postcasting forecaster's prediction together with its error spread,
// packaged as a stochastic value.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "nws/forecasters.hpp"
#include "stoch/stochastic_value.hpp"

namespace sspred::nws {

/// A forecast with quality information.
struct Forecast {
  double value = 0.0;     ///< predicted next measurement
  double error_sd = 0.0;  ///< RMSE of the winning forecaster (postcast)
  std::string forecaster; ///< name of the winning forecaster

  /// The paper's parameter form: value ± 2·error_sd.
  [[nodiscard]] stoch::StochasticValue sv() const {
    return stoch::StochasticValue::from_mean_sd(value, error_sd);
  }
};

struct ServiceOptions {
  std::size_t history_capacity = 512;  ///< measurements kept per resource
  std::size_t warmup = 8;              ///< observations before postcasting
};

/// Thread safety: histories are guarded by a reader/writer lock, so any
/// number of concurrent readers (forecast/history/postcast_errors/...)
/// may overlap with writers (observe/load_csv). Writers serialize against
/// each other and against readers; a forecast therefore always sees a
/// complete, consistent history — never a half-appended one. The serving
/// layer (serve/epoch.hpp) additionally snapshots forecasts into immutable
/// epochs so a batch of predictions shares one consistent view.
class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Records a measurement for `resource` (e.g. "cpu/sparc2-a").
  void observe(const std::string& resource, double value);

  /// Number of stored measurements for `resource` (0 if unknown).
  [[nodiscard]] std::size_t history_size(const std::string& resource) const;

  /// The stored history, oldest first.
  [[nodiscard]] std::vector<double> history(const std::string& resource) const;

  /// Forecast for `resource`. Requires at least warmup+2 observations.
  [[nodiscard]] Forecast forecast(const std::string& resource) const;

  /// Postcast MSE of every forecaster on `resource`'s history
  /// (for the forecaster-ablation bench), as (name, mse) pairs.
  [[nodiscard]] std::vector<std::pair<std::string, double>> postcast_errors(
      const std::string& resource) const;

  /// Persists every resource's history as CSV (`resource,index,value`).
  void save_csv(const std::string& path) const;

  /// Loads histories written by save_csv (appending to current state).
  void load_csv(const std::string& path);

  /// All resource names with stored history.
  [[nodiscard]] std::vector<std::string> resources() const;

 private:
  /// history() body without locking; callers hold mutex_ (any mode).
  [[nodiscard]] std::vector<double> history_locked(
      const std::string& resource) const;
  /// postcast_errors() body without locking; callers hold mutex_.
  [[nodiscard]] std::vector<std::pair<std::string, double>>
  postcast_errors_locked(const std::string& resource) const;

  ServiceOptions options_;
  std::vector<std::unique_ptr<Forecaster>> bank_;
  mutable std::shared_mutex mutex_;  ///< guards histories_
  std::map<std::string, std::deque<double>> histories_;
};

}  // namespace sspred::nws
