// Sensors: feed machine load and network availability into the Service.
//
// Two modes:
//  * a coroutine sensor process that samples inside a simulation run
//    (faithful to the real NWS's periodic sensors);
//  * direct trace ingestion for "load history up to time T" when preparing
//    a prediction outside a run.
#pragma once

#include <string>

#include "cluster/platform.hpp"
#include "nws/service.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace sspred::nws {

/// Resource name used for machine `m`'s CPU availability.
[[nodiscard]] std::string cpu_resource(const machine::Machine& m);

/// Sensor process: every `interval` seconds until `until`, records the
/// machine's current availability into `service`. The paper's NWS sampled
/// at 5 second intervals.
[[nodiscard]] sim::Process cpu_sensor(sim::Engine& engine,
                                      const machine::Machine& machine,
                                      Service& service,
                                      support::Seconds interval,
                                      support::Seconds until);

/// Ingests the machine's availability trace over [t0, t1) at `interval`
/// spacing — what a sensor running over that period would have recorded.
void ingest_cpu_history(const machine::Machine& machine, Service& service,
                        support::Seconds t0, support::Seconds t1,
                        support::Seconds interval = 5.0);

/// Spawns cpu sensors for every host of a platform.
void attach_cpu_sensors(sim::Engine& engine, cluster::Platform& platform,
                        Service& service, support::Seconds interval,
                        support::Seconds until);

/// Resource name for a shared segment's availability fraction.
[[nodiscard]] std::string ethernet_resource();

/// Bandwidth sensor process: every `interval` seconds until `until`,
/// sends a `probe_bytes` probe through the segment and records the
/// measured availability fraction (effective / nominal bandwidth). Like
/// the real NWS's bandwidth sensors, the probes themselves consume a
/// little bandwidth and see whatever application traffic is in flight.
[[nodiscard]] sim::Process bandwidth_sensor(sim::Engine& engine,
                                            net::SharedEthernet& ethernet,
                                            Service& service,
                                            support::Bytes probe_bytes,
                                            support::Seconds interval,
                                            support::Seconds until);

}  // namespace sspred::nws
