#include "sor/block.hpp"

#include <cmath>
#include <memory>
#include <numbers>

#include "mpi/comm.hpp"
#include "sor/serial.hpp"
#include "support/error.hpp"

namespace sspred::sor {

std::size_t block_extent(std::size_t n, std::size_t parts, std::size_t index) {
  SSPRED_REQUIRE(index < parts, "block index out of range");
  return n / parts + (index < n % parts ? 1 : 0);
}

std::size_t block_offset(std::size_t n, std::size_t parts, std::size_t index) {
  SSPRED_REQUIRE(index < parts, "block index out of range");
  const std::size_t base = n / parts;
  const std::size_t rem = n % parts;
  return index * base + std::min(index, rem);
}

namespace {

constexpr double pi = std::numbers::pi;

/// One rank's 2-D block with a one-cell ghost frame.
class LocalBlock {
 public:
  LocalBlock(std::size_t n, std::size_t row0, std::size_t rows,
             std::size_t col0, std::size_t cols, double omega)
      : n_(n),
        row0_(row0),
        rows_(rows),
        col0_(col0),
        cols_(cols),
        stride_(cols + 2),
        h_(1.0 / (static_cast<double>(n) + 1.0)),
        omega_(omega),
        u_((rows + 2) * stride_, 0.0),
        f_((rows + 2) * stride_, 0.0) {
    for (std::size_t r = 0; r < rows_; ++r) {
      const double y = static_cast<double>(row0_ + r + 1) * h_;
      for (std::size_t c = 0; c < cols_; ++c) {
        const double x = static_cast<double>(col0_ + c + 1) * h_;
        f_[(r + 1) * stride_ + c + 1] =
            2.0 * pi * pi * std::sin(pi * x) * std::sin(pi * y);
      }
    }
  }

  void sweep(bool red) {
    const double h2 = h_ * h_;
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::size_t i = r + 1;
      const std::size_t gi = row0_ + r + 1;  // global storage row
      double* row = &u_[i * stride_];
      const double* above = row - stride_;
      const double* below = row + stride_;
      const double* frow = &f_[i * stride_];
      const std::size_t parity = red ? 0 : 1;
      // First local column whose global (gi + gj) parity matches.
      // Global storage column of local c is col0_ + c + 1.
      std::size_t c = (gi + parity + col0_ + 1) % 2 == 0 ? 0 : 1;
      for (std::size_t j = c + 1; j <= cols_; j += 2) {
        const double gs = 0.25 * (above[j] + below[j] + row[j - 1] +
                                  row[j + 1] + h2 * frow[j]);
        row[j] += omega_ * (gs - row[j]);
      }
    }
  }

  [[nodiscard]] mpi::Payload top_row() const {
    return {&u_[stride_ + 1], &u_[stride_ + 1 + cols_]};
  }
  [[nodiscard]] mpi::Payload bottom_row() const {
    return {&u_[rows_ * stride_ + 1], &u_[rows_ * stride_ + 1 + cols_]};
  }
  [[nodiscard]] mpi::Payload left_col() const {
    mpi::Payload out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = u_[(r + 1) * stride_ + 1];
    return out;
  }
  [[nodiscard]] mpi::Payload right_col() const {
    mpi::Payload out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      out[r] = u_[(r + 1) * stride_ + cols_];
    }
    return out;
  }
  void set_top_ghost(const mpi::Payload& v) {
    SSPRED_REQUIRE(v.size() == cols_, "ghost size mismatch");
    std::copy(v.begin(), v.end(), &u_[1]);
  }
  void set_bottom_ghost(const mpi::Payload& v) {
    SSPRED_REQUIRE(v.size() == cols_, "ghost size mismatch");
    std::copy(v.begin(), v.end(), &u_[(rows_ + 1) * stride_ + 1]);
  }
  void set_left_ghost(const mpi::Payload& v) {
    SSPRED_REQUIRE(v.size() == rows_, "ghost size mismatch");
    for (std::size_t r = 0; r < rows_; ++r) u_[(r + 1) * stride_] = v[r];
  }
  void set_right_ghost(const mpi::Payload& v) {
    SSPRED_REQUIRE(v.size() == rows_, "ghost size mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
      u_[(r + 1) * stride_ + cols_ + 1] = v[r];
    }
  }

  [[nodiscard]] double residual_sq() const {
    const double h2 = h_ * h_;
    double sum = 0.0;
    for (std::size_t r = 1; r <= rows_; ++r) {
      for (std::size_t c = 1; c <= cols_; ++c) {
        const double lap =
            (u_[(r - 1) * stride_ + c] + u_[(r + 1) * stride_ + c] +
             u_[r * stride_ + c - 1] + u_[r * stride_ + c + 1] -
             4.0 * u_[r * stride_ + c]) /
            h2;
        const double res = f_[r * stride_ + c] + lap;
        sum += res * res;
      }
    }
    return sum;
  }

  /// Owned interior, row-major (rows_ x cols_).
  [[nodiscard]] mpi::Payload interior() const {
    mpi::Payload out;
    out.reserve(rows_ * cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
      const double* row = &u_[(r + 1) * stride_];
      out.insert(out.end(), row + 1, row + 1 + cols_);
    }
    return out;
  }

  [[nodiscard]] double h() const noexcept { return h_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t row0() const noexcept { return row0_; }
  [[nodiscard]] std::size_t col0() const noexcept { return col0_; }

 private:
  std::size_t n_;
  std::size_t row0_;
  std::size_t rows_;
  std::size_t col0_;
  std::size_t cols_;
  std::size_t stride_;
  double h_;
  double omega_;
  std::vector<double> u_;
  std::vector<double> f_;
};

struct BlockShared {
  BlockConfig config;
  SorResult result;
  double omega = 0.0;
  support::Seconds start_time = 0.0;
  int finished = 0;
};

sim::Process block_rank(mpi::RankCtx ctx, BlockShared* shared) {
  const BlockConfig& cfg = shared->config;
  const std::size_t n = cfg.n;
  const auto rank = static_cast<std::size_t>(ctx.rank());
  const std::size_t br = rank / cfg.pc;
  const std::size_t bc = rank % cfg.pc;
  const int up = br > 0 ? static_cast<int>(rank - cfg.pc) : -1;
  const int down = br + 1 < cfg.pr ? static_cast<int>(rank + cfg.pc) : -1;
  const int left = bc > 0 ? static_cast<int>(rank - 1) : -1;
  const int right = bc + 1 < cfg.pc ? static_cast<int>(rank + 1) : -1;

  LocalBlock block(n, block_offset(n, cfg.pr, br),
                   block_extent(n, cfg.pr, br), block_offset(n, cfg.pc, bc),
                   block_extent(n, cfg.pc, bc), shared->omega);

  RankStats& stats = shared->result.ranks[rank];
  const double phase_elements =
      static_cast<double>(block.rows()) * static_cast<double>(block.cols()) /
      2.0;
  const double working_set = 2.0 *
                             static_cast<double>(block.rows() + 2) *
                             static_cast<double>(block.cols() + 2);
  const support::Seconds phase_work =
      ctx.machine().element_work(phase_elements, working_set);

  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    PhaseTiming timing;
    for (int phase = 0; phase < 2; ++phase) {
      const bool red = phase == 0;
      const int tag = 2 * static_cast<int>(it) + phase;

      const support::Seconds t0 = ctx.now();
      if (cfg.real_numerics) block.sweep(red);
      co_await ctx.compute(phase_work);
      const support::Seconds t1 = ctx.now();

      if (up >= 0) ctx.send(up, tag, block.top_row());
      if (down >= 0) ctx.send(down, tag, block.bottom_row());
      if (left >= 0) ctx.send(left, tag, block.left_col());
      if (right >= 0) ctx.send(right, tag, block.right_col());
      if (up >= 0) {
        mpi::Message m = co_await ctx.recv(up, tag);
        block.set_top_ghost(m.data);
      }
      if (down >= 0) {
        mpi::Message m = co_await ctx.recv(down, tag);
        block.set_bottom_ghost(m.data);
      }
      if (left >= 0) {
        mpi::Message m = co_await ctx.recv(left, tag);
        block.set_left_ghost(m.data);
      }
      if (right >= 0) {
        mpi::Message m = co_await ctx.recv(right, tag);
        block.set_right_ghost(m.data);
      }
      const support::Seconds t2 = ctx.now();

      if (red) {
        timing.red_comp = t1 - t0;
        timing.red_comm = t2 - t1;
      } else {
        timing.black_comp = t1 - t0;
        timing.black_comm = t2 - t1;
      }
    }
    stats.iterations.push_back(timing);
    stats.iteration_end.push_back(ctx.now());
  }

  const double res_sq = co_await ctx.allreduce_sum(block.residual_sq());

  if (cfg.gather_solution) {
    // Gather per-rank interiors; rank 0 reassembles by block coordinates.
    mpi::Payload all = co_await ctx.gather(block.interior());
    if (ctx.rank() == 0) {
      std::vector<double> grid(n * n, 0.0);
      std::size_t offset = 0;
      for (std::size_t p = 0; p < static_cast<std::size_t>(ctx.size()); ++p) {
        const std::size_t pbr = p / cfg.pc;
        const std::size_t pbc = p % cfg.pc;
        const std::size_t r0 = block_offset(n, cfg.pr, pbr);
        const std::size_t rs = block_extent(n, cfg.pr, pbr);
        const std::size_t c0 = block_offset(n, cfg.pc, pbc);
        const std::size_t cs = block_extent(n, cfg.pc, pbc);
        for (std::size_t r = 0; r < rs; ++r) {
          for (std::size_t c = 0; c < cs; ++c) {
            grid[(r0 + r) * n + c0 + c] = all[offset++];
          }
        }
      }
      shared->result.solution = std::move(grid);
    }
  }

  co_await ctx.barrier();
  if (ctx.rank() == 0) {
    shared->result.residual = std::sqrt(res_sq) * block.h();
    shared->result.total_time = ctx.now() - shared->start_time;
    shared->result.iterations_run = cfg.iterations;
  }
  ++shared->finished;
}

}  // namespace

SorResult run_distributed_block_sor(sim::Engine& engine,
                                    cluster::Platform& platform,
                                    const BlockConfig& config,
                                    support::Seconds start_time) {
  SSPRED_REQUIRE(config.pr * config.pc == platform.size(),
                 "pr*pc must equal the platform size");
  SSPRED_REQUIRE(config.pr >= 1 && config.pc >= 1, "block grid must be >= 1x1");
  SSPRED_REQUIRE(config.n >= config.pr && config.n >= config.pc,
                 "grid too small for the block grid");
  auto shared = std::make_unique<BlockShared>(
      BlockShared{config, SorResult{}, 0.0, start_time, 0});
  shared->omega =
      config.omega > 0.0 ? config.omega : SerialSor::optimal_omega(config.n);
  shared->result.start_time = start_time;
  shared->result.ranks.resize(platform.size());

  engine.run_until(start_time);
  mpi::Comm comm(engine, platform);
  comm.launch([ptr = shared.get()](mpi::RankCtx ctx) {
    return block_rank(ctx, ptr);
  });
  while (shared->finished < comm.size() && engine.step_one()) {
  }
  SSPRED_REQUIRE(shared->finished == comm.size(),
                 "not all ranks finished — deadlock in the run");
  return std::move(shared->result);
}

}  // namespace sspred::sor
