// Distributed Conjugate Gradient for the same Poisson problem — a third
// application with a qualitatively different communication pattern: per
// iteration one neighbour ghost exchange (for the matrix-free SpMV) plus
// TWO global allreduces (the dot products). Where SOR/Jacobi stress
// boundary bandwidth, CG stresses collective latency.
#pragma once

#include <array>
#include <cstddef>
#include <limits>
#include <vector>

#include "cluster/platform.hpp"
#include "sim/engine.hpp"
#include "support/units.hpp"

namespace sspred::sor {

/// Serial matrix-free CG reference on the 5-point Poisson system.
class SerialCg {
 public:
  explicit SerialCg(std::size_t n);

  /// Runs up to `max_iterations`, stopping when ||r||_2 < tol (tol <= 0
  /// disables the check). Returns iterations performed.
  std::size_t solve(std::size_t max_iterations, double tol = 0.0);

  [[nodiscard]] double residual_norm() const noexcept { return residual_; }
  [[nodiscard]] double solution_error() const;
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

 private:
  std::size_t n_;
  double h_;
  std::vector<double> x_;
  std::vector<double> b_;
  double residual_ = std::numeric_limits<double>::infinity();
};

struct CgConfig {
  std::size_t n = 256;
  std::size_t max_iterations = 200;
  double tolerance = 0.0;  ///< <= 0: run all iterations
  bool real_numerics = true;
};

struct CgResult {
  support::Seconds start_time = 0.0;
  support::Seconds total_time = 0.0;
  std::size_t iterations_run = 0;
  double residual = std::numeric_limits<double>::quiet_NaN();
  double solution_error = std::numeric_limits<double>::quiet_NaN();
  /// Per-rank total (compute, neighbour comm, allreduce) seconds.
  std::vector<std::array<support::Seconds, 3>> rank_totals;
};

/// Runs the strip-decomposed CG on `platform`.
[[nodiscard]] CgResult run_distributed_cg(sim::Engine& engine,
                                          cluster::Platform& platform,
                                          const CgConfig& config,
                                          support::Seconds start_time = 0.0);

}  // namespace sspred::sor
