// Serial Red-Black SOR reference solver.
//
// Solves the Poisson problem -∆u = f on the unit square with zero Dirichlet
// boundary, f chosen so the exact solution is sin(pi x) sin(pi y). The
// distributed solver must produce bit-identical interiors after the same
// number of iterations — red/black sweeps touch disjoint colors, so the
// update order within a sweep does not affect the result.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sspred::sor {

class SerialSor {
 public:
  /// Interior n x n unknowns (storage is (n+2)^2 with the boundary).
  /// omega <= 0 selects the optimal SOR factor 2 / (1 + sin(pi/(n+1))).
  explicit SerialSor(std::size_t n, double omega = 0.0);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] double omega() const noexcept { return omega_; }

  /// One red (i+j even) or black (i+j odd) half-sweep over rows
  /// [row_begin, row_end) of the interior (0-based interior rows).
  void sweep(bool red, std::size_t row_begin, std::size_t row_end);
  /// Full-interior half-sweep.
  void sweep(bool red) { sweep(red, 0, n_); }
  /// One full iteration = red sweep + black sweep.
  void iterate(std::size_t iterations = 1);

  /// L2 norm of the residual f + ∆u over the interior.
  [[nodiscard]] double residual_norm() const;
  /// Max-norm error against the analytic solution.
  [[nodiscard]] double solution_error() const;

  /// Value at interior cell (row, col), 0-based.
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;
  /// Raw (n+2)x(n+2) row-major storage, boundary included.
  [[nodiscard]] std::span<const double> data() const noexcept { return u_; }
  /// Mutable row pointer into raw storage (row in [0, n+2)).
  [[nodiscard]] double* raw_row(std::size_t storage_row);
  [[nodiscard]] const double* raw_row(std::size_t storage_row) const;

  /// Source term at interior cell (row, col).
  [[nodiscard]] double source(std::size_t row, std::size_t col) const;

  /// Optimal omega for this grid size.
  [[nodiscard]] static double optimal_omega(std::size_t n);

  /// Iterate until residual_norm() < tol, checking every `check_every`
  /// iterations; returns iterations performed (capped at max_iterations).
  std::size_t iterate_to_tolerance(double tol, std::size_t max_iterations,
                                   std::size_t check_every = 10);

 private:
  std::size_t n_;
  std::size_t stride_;
  double h_;
  double omega_;
  std::vector<double> u_;
  std::vector<double> f_;
};

/// Predicted iterations for SOR (optimal omega) to reduce the residual to
/// `tol`: asymptotic convergence factor rho = omega_opt - 1, initial
/// residual ||f|| = pi^2 for this problem, so
/// iterations ≈ ln(pi^2 / tol) / -ln(rho). Feeds "solve to tolerance"
/// predictions: time ≈ estimated_iterations · per-iteration model.
[[nodiscard]] std::size_t estimated_iterations_to_tolerance(std::size_t n,
                                                            double tol);

}  // namespace sspred::sor
