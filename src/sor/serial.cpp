#include "sor/serial.hpp"

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace sspred::sor {

double SerialSor::optimal_omega(std::size_t n) {
  return 2.0 / (1.0 + std::sin(std::numbers::pi /
                               (static_cast<double>(n) + 1.0)));
}

SerialSor::SerialSor(std::size_t n, double omega)
    : n_(n),
      stride_(n + 2),
      h_(1.0 / (static_cast<double>(n) + 1.0)),
      omega_(omega > 0.0 ? omega : optimal_omega(n)),
      u_(stride_ * stride_, 0.0),
      f_(stride_ * stride_, 0.0) {
  SSPRED_REQUIRE(n >= 2, "SOR grid needs n >= 2");
  SSPRED_REQUIRE(omega_ > 0.0 && omega_ < 2.0, "omega must be in (0,2)");
  constexpr double pi = std::numbers::pi;
  for (std::size_t i = 1; i <= n_; ++i) {
    const double y = static_cast<double>(i) * h_;
    for (std::size_t j = 1; j <= n_; ++j) {
      const double x = static_cast<double>(j) * h_;
      f_[i * stride_ + j] =
          2.0 * pi * pi * std::sin(pi * x) * std::sin(pi * y);
    }
  }
}

void SerialSor::sweep(bool red, std::size_t row_begin, std::size_t row_end) {
  SSPRED_REQUIRE(row_end <= n_ && row_begin <= row_end,
                 "sweep rows out of range");
  const double h2 = h_ * h_;
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const std::size_t i = r + 1;  // storage row
    // Red cells have (i + j) even in storage coordinates.
    const std::size_t parity = red ? 0 : 1;
    std::size_t j = 2 - ((i + parity) % 2);  // first j >= 1 with right parity
    double* row = &u_[i * stride_];
    const double* above = row - stride_;
    const double* below = row + stride_;
    const double* frow = &f_[i * stride_];
    for (; j <= n_; j += 2) {
      const double gs =
          0.25 * (above[j] + below[j] + row[j - 1] + row[j + 1] + h2 * frow[j]);
      row[j] += omega_ * (gs - row[j]);
    }
  }
}

void SerialSor::iterate(std::size_t iterations) {
  for (std::size_t k = 0; k < iterations; ++k) {
    sweep(/*red=*/true);
    sweep(/*red=*/false);
  }
}

double SerialSor::residual_norm() const {
  const double h2 = h_ * h_;
  double sum = 0.0;
  for (std::size_t i = 1; i <= n_; ++i) {
    for (std::size_t j = 1; j <= n_; ++j) {
      const double lap = (u_[(i - 1) * stride_ + j] + u_[(i + 1) * stride_ + j] +
                          u_[i * stride_ + j - 1] + u_[i * stride_ + j + 1] -
                          4.0 * u_[i * stride_ + j]) /
                         h2;
      const double r = f_[i * stride_ + j] + lap;
      sum += r * r;
    }
  }
  return std::sqrt(sum * h2);
}

double SerialSor::solution_error() const {
  constexpr double pi = std::numbers::pi;
  double worst = 0.0;
  for (std::size_t i = 1; i <= n_; ++i) {
    const double y = static_cast<double>(i) * h_;
    for (std::size_t j = 1; j <= n_; ++j) {
      const double x = static_cast<double>(j) * h_;
      const double exact = std::sin(pi * x) * std::sin(pi * y);
      worst = std::max(worst, std::abs(u_[i * stride_ + j] - exact));
    }
  }
  return worst;
}

std::size_t SerialSor::iterate_to_tolerance(double tol,
                                            std::size_t max_iterations,
                                            std::size_t check_every) {
  SSPRED_REQUIRE(tol > 0.0, "tolerance must be positive");
  SSPRED_REQUIRE(check_every >= 1, "check interval must be >= 1");
  std::size_t done = 0;
  while (done < max_iterations) {
    const std::size_t batch = std::min(check_every, max_iterations - done);
    iterate(batch);
    done += batch;
    if (residual_norm() < tol) break;
  }
  return done;
}

std::size_t estimated_iterations_to_tolerance(std::size_t n, double tol) {
  SSPRED_REQUIRE(tol > 0.0, "tolerance must be positive");
  SSPRED_REQUIRE(n >= 2, "grid must have n >= 2");
  const double rho = SerialSor::optimal_omega(n) - 1.0;
  const double r0 = std::numbers::pi * std::numbers::pi;  // ||f|| at u = 0
  if (tol >= r0) return 1;
  const double iters = std::log(r0 / tol) / -std::log(rho);
  return static_cast<std::size_t>(std::ceil(iters));
}

double SerialSor::at(std::size_t row, std::size_t col) const {
  SSPRED_REQUIRE(row < n_ && col < n_, "interior index out of range");
  return u_[(row + 1) * stride_ + col + 1];
}

double* SerialSor::raw_row(std::size_t storage_row) {
  SSPRED_REQUIRE(storage_row < stride_, "storage row out of range");
  return &u_[storage_row * stride_];
}

const double* SerialSor::raw_row(std::size_t storage_row) const {
  SSPRED_REQUIRE(storage_row < stride_, "storage row out of range");
  return &u_[storage_row * stride_];
}

double SerialSor::source(std::size_t row, std::size_t col) const {
  SSPRED_REQUIRE(row < n_ && col < n_, "interior index out of range");
  return f_[(row + 1) * stride_ + col + 1];
}

}  // namespace sspred::sor
