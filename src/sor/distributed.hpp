// Distributed Red-Black SOR over the simulated message-passing cluster.
//
// The real numerics of SerialSor run on strip-decomposed local grids; the
// costs of each red/black compute phase are charged to virtual time
// through each host's availability trace, and boundary-row exchanges go
// through the shared-ethernet model. Per-rank, per-iteration phase timings
// are recorded — the measurements the paper's structural model predicts.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "cluster/platform.hpp"
#include "sim/engine.hpp"
#include "sor/decomposition.hpp"
#include "support/units.hpp"

namespace sspred::sor {

struct SorConfig {
  std::size_t n = 512;           ///< interior grid dimension (NxN)
  std::size_t iterations = 30;   ///< red+black iterations (max when tol>0)
  double omega = 0.0;            ///< <=0 selects the optimal factor
  /// Solve-to-tolerance mode: when > 0, the ranks allreduce the global
  /// residual every `convergence_interval` iterations and stop early once
  /// it drops below. Requires real_numerics. `iterations` caps the run.
  double tolerance = 0.0;
  std::size_t convergence_interval = 10;
  /// Execute the actual floating-point sweeps. Disable for timing-only
  /// parameter sweeps (virtual times are identical either way).
  bool real_numerics = true;
  /// Gather the final interior into SorResult::solution on rank 0.
  bool gather_solution = false;
  /// Custom strip heights; empty selects the uniform decomposition.
  std::vector<std::size_t> rows_per_rank;
  /// Extra pre-loop delay injected on rank 0 (skew demonstration, Fig. 7).
  support::Seconds rank0_initial_delay = 0.0;
  /// Overlap communication with computation: sweep the strip's boundary
  /// rows first, send them, then sweep the interior while the ghost
  /// exchanges are in flight. Numerically identical; hides most of the
  /// per-phase communication cost.
  bool overlap_comm = false;
  /// Adaptive rebalancing: every `rebalance_interval` iterations the ranks
  /// gather measured per-row compute times, rank 0 derives a new
  /// capacity-balanced decomposition, and the grid migrates (full
  /// gather/scatter whose transfer costs are paid through the fabric).
  /// 0 disables. Numerically identical to the static run.
  std::size_t rebalance_interval = 0;
};

/// Durations of the four phases of one iteration on one rank.
struct PhaseTiming {
  support::Seconds red_comp = 0.0;
  support::Seconds red_comm = 0.0;
  support::Seconds black_comp = 0.0;
  support::Seconds black_comm = 0.0;

  [[nodiscard]] support::Seconds total() const noexcept {
    return red_comp + red_comm + black_comp + black_comm;
  }
};

struct RankStats {
  std::vector<PhaseTiming> iterations;
  std::vector<support::Seconds> iteration_end;  ///< absolute end times
};

/// One adaptive-rebalance event (time, migration cost, new layout).
struct RebalanceEvent {
  support::Seconds at = 0.0;
  support::Seconds duration = 0.0;  ///< measure + migrate + ghost refresh
  std::vector<std::size_t> rows;
};

struct SorResult {
  support::Seconds start_time = 0.0;
  support::Seconds total_time = 0.0;  ///< wall (virtual) time of the run
  std::size_t iterations_run = 0;     ///< < config max when tol met early
  std::vector<RebalanceEvent> rebalances;
  std::vector<RankStats> ranks;
  double residual = std::numeric_limits<double>::quiet_NaN();
  double solution_error = std::numeric_limits<double>::quiet_NaN();
  /// Row-major n x n interior (only when gather_solution was set).
  std::vector<double> solution;

  /// Max-over-ranks duration of iteration `it`'s phases summed.
  [[nodiscard]] support::Seconds iteration_time(std::size_t it) const;
};

/// Runs the distributed SOR on `platform`, starting at virtual time
/// `start_time` (the engine is advanced there first). Returns when all
/// ranks have finished; the engine is left at the finish time.
[[nodiscard]] SorResult run_distributed_sor(sim::Engine& engine,
                                            cluster::Platform& platform,
                                            const SorConfig& config,
                                            support::Seconds start_time = 0.0);

/// The decomposition a config implies on a platform.
[[nodiscard]] StripDecomposition make_decomposition(
    const cluster::Platform& platform, const SorConfig& config);

}  // namespace sspred::sor
