// Distributed (and serial reference) Jacobi iteration — a second stencil
// application on the same substrate, demonstrating that the structural-
// modeling approach is not SOR-specific. Jacobi does one full sweep and
// ONE ghost exchange per iteration (vs SOR's two of each), so its
// structural model has a different compute/communicate mix.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "cluster/platform.hpp"
#include "sim/engine.hpp"
#include "sor/decomposition.hpp"
#include "support/units.hpp"

namespace sspred::sor {

/// Serial Jacobi on the same Poisson problem as SerialSor.
class SerialJacobi {
 public:
  explicit SerialJacobi(std::size_t n);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  void iterate(std::size_t iterations = 1);
  [[nodiscard]] double residual_norm() const;
  [[nodiscard]] double solution_error() const;
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

 private:
  std::size_t n_;
  std::size_t stride_;
  double h_;
  std::vector<double> u_;
  std::vector<double> next_;
  std::vector<double> f_;
};

struct JacobiConfig {
  std::size_t n = 512;
  std::size_t iterations = 50;
  bool real_numerics = true;
  bool gather_solution = false;
  std::vector<std::size_t> rows_per_rank;  ///< empty = uniform strips
};

struct JacobiResult {
  support::Seconds start_time = 0.0;
  support::Seconds total_time = 0.0;
  /// Per-rank per-iteration (compute, communicate) durations.
  std::vector<std::vector<std::pair<support::Seconds, support::Seconds>>>
      rank_timings;
  double solution_error = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> solution;  ///< n x n interior when gathered
};

/// Runs the distributed Jacobi on `platform` starting at `start_time`.
[[nodiscard]] JacobiResult run_distributed_jacobi(
    sim::Engine& engine, cluster::Platform& platform,
    const JacobiConfig& config, support::Seconds start_time = 0.0);

}  // namespace sspred::sor
