#include "sor/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace sspred::sor {

StripDecomposition::StripDecomposition(std::size_t n,
                                       std::vector<std::size_t> rows_per_rank)
    : n_(n), rows_(std::move(rows_per_rank)) {
  SSPRED_REQUIRE(!rows_.empty(), "decomposition needs at least one rank");
  std::size_t total = 0;
  for (std::size_t r : rows_) {
    SSPRED_REQUIRE(r >= 1, "every rank needs at least one row");
    total += r;
  }
  SSPRED_REQUIRE(total == n, "row counts must sum to n");
  offsets_.resize(rows_.size() + 1);
  offsets_[0] = 0;
  std::partial_sum(rows_.begin(), rows_.end(), offsets_.begin() + 1);
}

StripDecomposition StripDecomposition::uniform(std::size_t n,
                                               std::size_t ranks) {
  SSPRED_REQUIRE(ranks >= 1 && ranks <= n, "need 1 <= ranks <= n");
  std::vector<std::size_t> rows(ranks, n / ranks);
  for (std::size_t i = 0; i < n % ranks; ++i) ++rows[i];
  return StripDecomposition(n, std::move(rows));
}

StripDecomposition StripDecomposition::weighted(
    std::size_t n, std::span<const double> capacity) {
  SSPRED_REQUIRE(!capacity.empty() && capacity.size() <= n,
                 "need 1 <= ranks <= n");
  double total = 0.0;
  for (double c : capacity) {
    SSPRED_REQUIRE(c > 0.0, "capacities must be positive");
    total += c;
  }
  const std::size_t ranks = capacity.size();
  std::vector<std::size_t> rows(ranks, 1);  // a floor of one row each
  std::size_t assigned = ranks;
  // Largest-remainder apportionment of the remaining rows.
  std::vector<double> ideal(ranks);
  for (std::size_t i = 0; i < ranks; ++i) {
    ideal[i] = capacity[i] / total * static_cast<double>(n);
  }
  for (std::size_t i = 0; i < ranks; ++i) {
    const auto extra = static_cast<std::size_t>(
        std::max(0.0, std::floor(ideal[i]) - 1.0));
    rows[i] += extra;
    assigned += extra;
  }
  std::vector<std::size_t> order(ranks);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ra = ideal[a] - std::floor(ideal[a]);
    const double rb = ideal[b] - std::floor(ideal[b]);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  for (std::size_t i = 0; assigned < n; i = (i + 1) % ranks) {
    ++rows[order[i]];
    ++assigned;
  }
  return StripDecomposition(n, std::move(rows));
}

std::size_t StripDecomposition::rows(std::size_t rank) const {
  SSPRED_REQUIRE(rank < rows_.size(), "rank out of range");
  return rows_[rank];
}

std::size_t StripDecomposition::begin(std::size_t rank) const {
  SSPRED_REQUIRE(rank < rows_.size(), "rank out of range");
  return offsets_[rank];
}

std::size_t StripDecomposition::end(std::size_t rank) const {
  SSPRED_REQUIRE(rank < rows_.size(), "rank out of range");
  return offsets_[rank + 1];
}

double StripDecomposition::elements(std::size_t rank) const {
  return static_cast<double>(rows(rank)) * static_cast<double>(n_);
}

}  // namespace sspred::sor
