#include "sor/cg.hpp"

#include <cmath>
#include <memory>
#include <numbers>

#include "mpi/comm.hpp"
#include "sor/decomposition.hpp"
#include "support/error.hpp"

namespace sspred::sor {

namespace {
constexpr double pi = std::numbers::pi;

/// A CG iteration touches each element several times (SpMV + three AXPYs
/// + two dots) — roughly twice the work of one stencil half-sweep pair.
constexpr double kCgWorkFactor = 2.0;
}  // namespace

SerialCg::SerialCg(std::size_t n)
    : n_(n),
      h_(1.0 / (static_cast<double>(n) + 1.0)),
      x_(n * n, 0.0),
      b_(n * n, 0.0) {
  SSPRED_REQUIRE(n >= 2, "CG grid needs n >= 2");
  for (std::size_t i = 0; i < n_; ++i) {
    const double y = static_cast<double>(i + 1) * h_;
    for (std::size_t j = 0; j < n_; ++j) {
      const double x = static_cast<double>(j + 1) * h_;
      b_[i * n_ + j] =
          h_ * h_ * 2.0 * pi * pi * std::sin(pi * x) * std::sin(pi * y);
    }
  }
}

namespace {
/// q = A p for the unscaled 5-point operator (zero Dirichlet boundary).
void apply_poisson(std::size_t n, const std::vector<double>& p,
                   std::vector<double>& q) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double v = 4.0 * p[i * n + j];
      if (i > 0) v -= p[(i - 1) * n + j];
      if (i + 1 < n) v -= p[(i + 1) * n + j];
      if (j > 0) v -= p[i * n + j - 1];
      if (j + 1 < n) v -= p[i * n + j + 1];
      q[i * n + j] = v;
    }
  }
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}
}  // namespace

std::size_t SerialCg::solve(std::size_t max_iterations, double tol) {
  std::vector<double> r = b_;
  std::vector<double> p = r;
  std::vector<double> q(r.size());
  double rs = dot(r, r);
  residual_ = std::sqrt(rs);
  std::size_t it = 0;
  for (; it < max_iterations; ++it) {
    apply_poisson(n_, p, q);
    const double alpha = rs / dot(p, q);
    for (std::size_t k = 0; k < x_.size(); ++k) {
      x_[k] += alpha * p[k];
      r[k] -= alpha * q[k];
    }
    const double rs_new = dot(r, r);
    residual_ = std::sqrt(rs_new);
    if (tol > 0.0 && residual_ < tol) {
      ++it;
      break;
    }
    const double beta = rs_new / rs;
    for (std::size_t k = 0; k < p.size(); ++k) p[k] = r[k] + beta * p[k];
    rs = rs_new;
  }
  return it;
}

double SerialCg::solution_error() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double y = static_cast<double>(i + 1) * h_;
    for (std::size_t j = 0; j < n_; ++j) {
      const double x = static_cast<double>(j + 1) * h_;
      worst = std::max(worst, std::abs(x_[i * n_ + j] -
                                       std::sin(pi * x) * std::sin(pi * y)));
    }
  }
  return worst;
}

double SerialCg::at(std::size_t row, std::size_t col) const {
  SSPRED_REQUIRE(row < n_ && col < n_, "index out of range");
  return x_[row * n_ + col];
}

namespace {

struct CgShared {
  CgConfig config;
  StripDecomposition decomp;
  CgResult result;
  support::Seconds start_time = 0.0;
  int finished = 0;
};

sim::Process cg_rank(mpi::RankCtx ctx, CgShared* shared) {
  const CgConfig& cfg = shared->config;
  const auto rank = static_cast<std::size_t>(ctx.rank());
  const std::size_t n = cfg.n;
  const std::size_t rows = shared->decomp.rows(rank);
  const std::size_t row0 = shared->decomp.begin(rank);
  const double h = 1.0 / (static_cast<double>(n) + 1.0);
  const int up = ctx.rank() > 0 ? ctx.rank() - 1 : -1;
  const int down = ctx.rank() + 1 < ctx.size() ? ctx.rank() + 1 : -1;

  // Local rows of x, r, b (rows x n) and p with ghost rows ((rows+2) x n).
  std::vector<double> x(rows * n, 0.0);
  std::vector<double> b(rows * n, 0.0);
  std::vector<double> p((rows + 2) * n, 0.0);
  std::vector<double> r(rows * n, 0.0);
  std::vector<double> q(rows * n, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    const double y = static_cast<double>(row0 + i + 1) * h;
    for (std::size_t j = 0; j < n; ++j) {
      const double xx = static_cast<double>(j + 1) * h;
      b[i * n + j] =
          h * h * 2.0 * pi * pi * std::sin(pi * xx) * std::sin(pi * y);
    }
  }
  r = b;
  std::copy(r.begin(), r.end(), p.begin() + static_cast<long>(n));

  auto& totals = shared->result.rank_totals[rank];
  const support::Seconds iter_work =
      ctx.machine().element_work(static_cast<double>(rows * n)) *
      kCgWorkFactor;

  double rs = co_await ctx.allreduce_sum(
      dot(r, r));  // startup reduction, not timed per-phase
  double residual = std::sqrt(rs);
  std::size_t it = 0;
  for (; it < cfg.max_iterations; ++it) {
    // 1. Ghost exchange of p's boundary rows.
    support::Seconds t0 = ctx.now();
    const int tag = static_cast<int>(it);
    if (up >= 0) {
      ctx.send(up, tag, mpi::Payload(p.begin() + static_cast<long>(n),
                                     p.begin() + static_cast<long>(2 * n)));
    }
    if (down >= 0) {
      ctx.send(down, tag,
               mpi::Payload(p.begin() + static_cast<long>(rows * n),
                            p.begin() + static_cast<long>((rows + 1) * n)));
    }
    if (up >= 0) {
      mpi::Message m = co_await ctx.recv(up, tag);
      std::copy(m.data.begin(), m.data.end(), p.begin());
    }
    if (down >= 0) {
      mpi::Message m = co_await ctx.recv(down, tag);
      std::copy(m.data.begin(), m.data.end(),
                p.begin() + static_cast<long>((rows + 1) * n));
    }
    totals[1] += ctx.now() - t0;

    // 2. Local SpMV + dots + updates (one compute charge per iteration).
    t0 = ctx.now();
    double local_pq = 0.0;
    if (cfg.real_numerics) {
      for (std::size_t i = 0; i < rows; ++i) {
        const double* prow = &p[(i + 1) * n];
        const double* pup = prow - n;
        const double* pdn = prow + n;
        for (std::size_t j = 0; j < n; ++j) {
          double v = 4.0 * prow[j] - pup[j] - pdn[j];
          if (j > 0) v -= prow[j - 1];
          if (j + 1 < n) v -= prow[j + 1];
          q[i * n + j] = v;
          local_pq += prow[j] * v;
        }
      }
    }
    co_await ctx.compute(iter_work);
    totals[0] += ctx.now() - t0;

    // 3. First allreduce: <p, q>.
    t0 = ctx.now();
    const double pq = co_await ctx.allreduce_sum(local_pq);
    totals[2] += ctx.now() - t0;

    const double alpha = cfg.real_numerics ? rs / pq : 0.0;
    double local_rr = 0.0;
    if (cfg.real_numerics) {
      for (std::size_t k = 0; k < x.size(); ++k) {
        x[k] += alpha * p[k + n];
        r[k] -= alpha * q[k];
        local_rr += r[k] * r[k];
      }
    }

    // 4. Second allreduce: <r, r>.
    t0 = ctx.now();
    const double rs_new = co_await ctx.allreduce_sum(local_rr);
    totals[2] += ctx.now() - t0;

    residual = std::sqrt(rs_new);
    if (cfg.real_numerics && cfg.tolerance > 0.0 &&
        residual < cfg.tolerance) {
      ++it;
      break;
    }
    if (cfg.real_numerics) {
      const double beta = rs_new / rs;
      for (std::size_t k = 0; k < x.size(); ++k) {
        p[k + n] = r[k] + beta * p[k + n];
      }
      rs = rs_new;
    }
  }

  double err = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    const double y = static_cast<double>(row0 + i + 1) * h;
    for (std::size_t j = 0; j < n; ++j) {
      const double xx = static_cast<double>(j + 1) * h;
      err = std::max(err, std::abs(x[i * n + j] -
                                   std::sin(pi * xx) * std::sin(pi * y)));
    }
  }
  const double global_err = co_await ctx.allreduce_max(err);

  co_await ctx.barrier();
  if (ctx.rank() == 0) {
    shared->result.iterations_run = it;
    shared->result.residual = residual;
    shared->result.solution_error = global_err;
    shared->result.total_time = ctx.now() - shared->start_time;
  }
  ++shared->finished;
}

}  // namespace

CgResult run_distributed_cg(sim::Engine& engine, cluster::Platform& platform,
                            const CgConfig& config,
                            support::Seconds start_time) {
  SSPRED_REQUIRE(config.max_iterations >= 1, "need at least one iteration");
  auto shared = std::make_unique<CgShared>(CgShared{
      config, StripDecomposition::uniform(config.n, platform.size()),
      CgResult{}, start_time, 0});
  shared->result.start_time = start_time;
  shared->result.rank_totals.assign(platform.size(), {0.0, 0.0, 0.0});

  engine.run_until(start_time);
  mpi::Comm comm(engine, platform);
  comm.launch([ptr = shared.get()](mpi::RankCtx ctx) {
    return cg_rank(ctx, ptr);
  });
  while (shared->finished < comm.size() && engine.step_one()) {
  }
  SSPRED_REQUIRE(shared->finished == comm.size(),
                 "not all ranks finished — deadlock in the run");
  return std::move(shared->result);
}

}  // namespace sspred::sor
