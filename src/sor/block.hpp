// 2-D block-decomposed Red-Black SOR.
//
// The paper uses a strip decomposition (Fig. 6); the classic alternative
// splits the grid into a pr x pc block grid, trading more messages for
// less boundary volume (strips move O(n·P) bytes per phase, blocks
// O(n·(pr+pc))). Same real numerics, same virtual-time accounting — and a
// matching structural model in predict/ so the trade-off is predictable.
#pragma once

#include <cstddef>

#include "cluster/platform.hpp"
#include "sim/engine.hpp"
#include "sor/distributed.hpp"

namespace sspred::sor {

struct BlockConfig {
  std::size_t n = 512;
  std::size_t iterations = 30;
  std::size_t pr = 2;  ///< block-grid rows; pr*pc must equal platform size
  std::size_t pc = 2;  ///< block-grid columns
  double omega = 0.0;  ///< <=0 selects the optimal factor
  bool real_numerics = true;
  bool gather_solution = false;
};

/// Runs the block-decomposed SOR; returns the same result shape as the
/// strip solver (rebalances unused).
[[nodiscard]] SorResult run_distributed_block_sor(
    sim::Engine& engine, cluster::Platform& platform,
    const BlockConfig& config, support::Seconds start_time = 0.0);

/// Near-equal 1-D split of `n` into `parts`: size of part `index`.
[[nodiscard]] std::size_t block_extent(std::size_t n, std::size_t parts,
                                       std::size_t index);
/// Offset of part `index` under the same split.
[[nodiscard]] std::size_t block_offset(std::size_t n, std::size_t parts,
                                       std::size_t index);

}  // namespace sspred::sor
