#include "sor/jacobi.hpp"

#include <cmath>
#include <memory>
#include <numbers>

#include "mpi/comm.hpp"
#include "support/error.hpp"

namespace sspred::sor {

namespace {
constexpr double pi = std::numbers::pi;

void fill_source(std::vector<double>& f, std::size_t stride,
                 std::size_t row_begin, std::size_t row_count, double h) {
  for (std::size_t r = 0; r < row_count; ++r) {
    const double y = static_cast<double>(row_begin + r + 1) * h;
    for (std::size_t j = 1; j + 1 < stride; ++j) {
      const double x = static_cast<double>(j) * h;
      f[(r + 1) * stride + j] =
          2.0 * pi * pi * std::sin(pi * x) * std::sin(pi * y);
    }
  }
}
}  // namespace

SerialJacobi::SerialJacobi(std::size_t n)
    : n_(n),
      stride_(n + 2),
      h_(1.0 / (static_cast<double>(n) + 1.0)),
      u_(stride_ * stride_, 0.0),
      next_(stride_ * stride_, 0.0),
      f_(stride_ * stride_, 0.0) {
  SSPRED_REQUIRE(n >= 2, "Jacobi grid needs n >= 2");
  fill_source(f_, stride_, 0, n_, h_);
}

void SerialJacobi::iterate(std::size_t iterations) {
  const double h2 = h_ * h_;
  for (std::size_t k = 0; k < iterations; ++k) {
    for (std::size_t i = 1; i <= n_; ++i) {
      for (std::size_t j = 1; j <= n_; ++j) {
        next_[i * stride_ + j] =
            0.25 * (u_[(i - 1) * stride_ + j] + u_[(i + 1) * stride_ + j] +
                    u_[i * stride_ + j - 1] + u_[i * stride_ + j + 1] +
                    h2 * f_[i * stride_ + j]);
      }
    }
    u_.swap(next_);
  }
}

double SerialJacobi::residual_norm() const {
  const double h2 = h_ * h_;
  double sum = 0.0;
  for (std::size_t i = 1; i <= n_; ++i) {
    for (std::size_t j = 1; j <= n_; ++j) {
      const double lap =
          (u_[(i - 1) * stride_ + j] + u_[(i + 1) * stride_ + j] +
           u_[i * stride_ + j - 1] + u_[i * stride_ + j + 1] -
           4.0 * u_[i * stride_ + j]) /
          h2;
      const double r = f_[i * stride_ + j] + lap;
      sum += r * r;
    }
  }
  return std::sqrt(sum * h2);
}

double SerialJacobi::solution_error() const {
  double worst = 0.0;
  for (std::size_t i = 1; i <= n_; ++i) {
    const double y = static_cast<double>(i) * h_;
    for (std::size_t j = 1; j <= n_; ++j) {
      const double x = static_cast<double>(j) * h_;
      worst = std::max(worst, std::abs(u_[i * stride_ + j] -
                                       std::sin(pi * x) * std::sin(pi * y)));
    }
  }
  return worst;
}

double SerialJacobi::at(std::size_t row, std::size_t col) const {
  SSPRED_REQUIRE(row < n_ && col < n_, "interior index out of range");
  return u_[(row + 1) * stride_ + col + 1];
}

namespace {

struct JacobiShared {
  JacobiConfig config;
  StripDecomposition decomp;
  JacobiResult result;
  support::Seconds start_time = 0.0;
  int finished = 0;
};

sim::Process jacobi_rank(mpi::RankCtx ctx, JacobiShared* shared) {
  const auto rank = static_cast<std::size_t>(ctx.rank());
  const JacobiConfig& cfg = shared->config;
  const std::size_t n = cfg.n;
  const std::size_t stride = n + 2;
  const std::size_t rows = shared->decomp.rows(rank);
  const std::size_t row_begin = shared->decomp.begin(rank);
  const double h = 1.0 / (static_cast<double>(n) + 1.0);
  const double h2 = h * h;
  const int up = ctx.rank() > 0 ? ctx.rank() - 1 : -1;
  const int down = ctx.rank() + 1 < ctx.size() ? ctx.rank() + 1 : -1;

  std::vector<double> u((rows + 2) * stride, 0.0);
  std::vector<double> next((rows + 2) * stride, 0.0);
  std::vector<double> f((rows + 2) * stride, 0.0);
  fill_source(f, stride, row_begin, rows, h);

  auto& timings = shared->result.rank_timings[rank];
  timings.reserve(cfg.iterations);

  const double elements = static_cast<double>(rows) * static_cast<double>(n);
  const double working_set =
      2.0 * static_cast<double>(rows + 2) * static_cast<double>(stride);
  const support::Seconds iter_work =
      ctx.machine().element_work(elements, working_set);

  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const int tag = static_cast<int>(it);
    // One ghost exchange per iteration, before the sweep.
    const support::Seconds t0 = ctx.now();
    if (up >= 0) {
      ctx.send(up, tag, mpi::Payload(&u[stride], &u[2 * stride]));
    }
    if (down >= 0) {
      ctx.send(down, tag,
               mpi::Payload(&u[rows * stride], &u[(rows + 1) * stride]));
    }
    if (up >= 0) {
      mpi::Message m = co_await ctx.recv(up, tag);
      std::copy(m.data.begin(), m.data.end(), u.begin());
    }
    if (down >= 0) {
      mpi::Message m = co_await ctx.recv(down, tag);
      std::copy(m.data.begin(), m.data.end(),
                u.begin() + static_cast<long>((rows + 1) * stride));
    }
    const support::Seconds t1 = ctx.now();

    if (cfg.real_numerics) {
      for (std::size_t r = 1; r <= rows; ++r) {
        for (std::size_t j = 1; j <= n; ++j) {
          next[r * stride + j] =
              0.25 * (u[(r - 1) * stride + j] + u[(r + 1) * stride + j] +
                      u[r * stride + j - 1] + u[r * stride + j + 1] +
                      h2 * f[r * stride + j]);
        }
      }
      u.swap(next);
    }
    co_await ctx.compute(iter_work);
    timings.emplace_back(ctx.now() - t1, t1 - t0);
  }

  double err = 0.0;
  for (std::size_t r = 1; r <= rows; ++r) {
    const double y = static_cast<double>(row_begin + r) * h;
    for (std::size_t j = 1; j <= n; ++j) {
      const double x = static_cast<double>(j) * h;
      err = std::max(err, std::abs(u[r * stride + j] -
                                   std::sin(pi * x) * std::sin(pi * y)));
    }
  }
  const double global_err = co_await ctx.allreduce_max(err);

  if (cfg.gather_solution) {
    mpi::Payload interior;
    interior.reserve(rows * n);
    for (std::size_t r = 1; r <= rows; ++r) {
      interior.insert(interior.end(), &u[r * stride + 1],
                      &u[r * stride + 1 + n]);
    }
    mpi::Payload all = co_await ctx.gather(std::move(interior));
    if (ctx.rank() == 0) shared->result.solution = std::move(all);
  }

  co_await ctx.barrier();
  if (ctx.rank() == 0) {
    shared->result.solution_error = global_err;
    shared->result.total_time = ctx.now() - shared->start_time;
  }
  ++shared->finished;
}

}  // namespace

JacobiResult run_distributed_jacobi(sim::Engine& engine,
                                    cluster::Platform& platform,
                                    const JacobiConfig& config,
                                    support::Seconds start_time) {
  SSPRED_REQUIRE(config.iterations >= 1, "need at least one iteration");
  auto shared = std::make_unique<JacobiShared>(JacobiShared{
      config,
      config.rows_per_rank.empty()
          ? StripDecomposition::uniform(config.n, platform.size())
          : StripDecomposition(config.n, config.rows_per_rank),
      JacobiResult{}, start_time, 0});
  shared->result.start_time = start_time;
  shared->result.rank_timings.resize(platform.size());

  engine.run_until(start_time);
  mpi::Comm comm(engine, platform);
  comm.launch([ptr = shared.get()](mpi::RankCtx ctx) {
    return jacobi_rank(ctx, ptr);
  });
  while (shared->finished < comm.size() && engine.step_one()) {
  }
  SSPRED_REQUIRE(shared->finished == comm.size(),
                 "not all ranks finished — deadlock in the run");
  return std::move(shared->result);
}

}  // namespace sspred::sor
