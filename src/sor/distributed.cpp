#include "sor/distributed.hpp"

#include <cmath>
#include <memory>
#include <numbers>

#include "mpi/comm.hpp"
#include "sor/serial.hpp"
#include "support/error.hpp"

namespace sspred::sor {

namespace {

constexpr int kGhostTagBase = 0;  // per-phase tag = 2*iteration + phase

/// One rank's strip: owned interior rows plus two ghost rows.
class LocalStrip {
 public:
  LocalStrip(std::size_t n, std::size_t row_begin, std::size_t row_count,
             double omega)
      : n_(n),
        stride_(n + 2),
        rows_(row_count),
        row_begin_(row_begin),
        h_(1.0 / (static_cast<double>(n) + 1.0)),
        omega_(omega),
        u_((row_count + 2) * stride_, 0.0),
        f_((row_count + 2) * stride_, 0.0) {
    constexpr double pi = std::numbers::pi;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double y = static_cast<double>(row_begin_ + r + 1) * h_;
      for (std::size_t j = 1; j <= n_; ++j) {
        const double x = static_cast<double>(j) * h_;
        f_[(r + 1) * stride_ + j] =
            2.0 * pi * pi * std::sin(pi * x) * std::sin(pi * y);
      }
    }
  }

  void sweep(bool red) { sweep_rows(red, 0, rows_); }

  /// Half-sweep restricted to local rows [row_begin, row_end).
  void sweep_rows(bool red, std::size_t row_begin, std::size_t row_end) {
    const double h2 = h_ * h_;
    for (std::size_t r = row_begin; r < row_end; ++r) {
      const std::size_t i = r + 1;                       // local storage row
      const std::size_t gi = row_begin_ + r + 1;         // global storage row
      const std::size_t parity = red ? 0 : 1;
      std::size_t j = 2 - ((gi + parity) % 2);
      double* row = &u_[i * stride_];
      const double* above = row - stride_;
      const double* below = row + stride_;
      const double* frow = &f_[i * stride_];
      for (; j <= n_; j += 2) {
        const double gs = 0.25 * (above[j] + below[j] + row[j - 1] +
                                  row[j + 1] + h2 * frow[j]);
        row[j] += omega_ * (gs - row[j]);
      }
    }
  }

  /// Copy of the first/last owned storage row (for the ghost exchange).
  [[nodiscard]] mpi::Payload first_row() const {
    return {&u_[stride_], &u_[2 * stride_]};
  }
  [[nodiscard]] mpi::Payload last_row() const {
    return {&u_[rows_ * stride_], &u_[(rows_ + 1) * stride_]};
  }
  void set_top_ghost(const mpi::Payload& row) {
    SSPRED_REQUIRE(row.size() == stride_, "ghost row size mismatch");
    std::copy(row.begin(), row.end(), u_.begin());
  }
  void set_bottom_ghost(const mpi::Payload& row) {
    SSPRED_REQUIRE(row.size() == stride_, "ghost row size mismatch");
    std::copy(row.begin(), row.end(),
              u_.begin() + static_cast<long>((rows_ + 1) * stride_));
  }

  /// Partial squared residual over owned rows (ghosts must be current).
  [[nodiscard]] double residual_sq() const {
    const double h2 = h_ * h_;
    double sum = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::size_t i = r + 1;
      for (std::size_t j = 1; j <= n_; ++j) {
        const double lap =
            (u_[(i - 1) * stride_ + j] + u_[(i + 1) * stride_ + j] +
             u_[i * stride_ + j - 1] + u_[i * stride_ + j + 1] -
             4.0 * u_[i * stride_ + j]) /
            h2;
        const double res = f_[i * stride_ + j] + lap;
        sum += res * res;
      }
    }
    return sum;
  }

  /// Max-norm error vs the analytic solution over owned rows.
  [[nodiscard]] double solution_error() const {
    constexpr double pi = std::numbers::pi;
    double worst = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double y = static_cast<double>(row_begin_ + r + 1) * h_;
      for (std::size_t j = 1; j <= n_; ++j) {
        const double x = static_cast<double>(j) * h_;
        const double exact = std::sin(pi * x) * std::sin(pi * y);
        worst = std::max(worst,
                         std::abs(u_[(r + 1) * stride_ + j] - exact));
      }
    }
    return worst;
  }

  /// Owned interior values, row-major, without boundary columns.
  [[nodiscard]] mpi::Payload interior() const {
    mpi::Payload out;
    out.reserve(rows_ * n_);
    for (std::size_t r = 0; r < rows_; ++r) {
      const double* row = &u_[(r + 1) * stride_];
      out.insert(out.end(), row + 1, row + 1 + n_);
    }
    return out;
  }

  /// Overwrites the owned interior from a row-major payload (rows_ * n_
  /// values, no boundary columns). Ghosts are untouched.
  void set_interior(std::span<const double> values) {
    SSPRED_REQUIRE(values.size() == rows_ * n_, "interior size mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
      std::copy(values.begin() + static_cast<long>(r * n_),
                values.begin() + static_cast<long>((r + 1) * n_),
                &u_[(r + 1) * stride_ + 1]);
    }
  }

  [[nodiscard]] double h() const noexcept { return h_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

 private:
  std::size_t n_;
  std::size_t stride_;
  std::size_t rows_;
  std::size_t row_begin_;
  double h_;
  double omega_;
  std::vector<double> u_;
  std::vector<double> f_;
};

/// Shared state for one run, owned by run_distributed_sor's frame.
struct RunShared {
  SorConfig config;
  StripDecomposition decomp;
  SorResult result;
  double omega = 0.0;
  support::Seconds start_time = 0.0;
  int finished = 0;
};

// Reserved tag bases for the rebalance protocol (outside the per-phase
// ghost-tag range and the collectives' range).
constexpr int kMigrateTagBase = 3'000'000;
constexpr int kRefreshTagBase = 4'000'000;

sim::Process sor_rank(mpi::RankCtx ctx, RunShared* shared) {
  const auto rank = static_cast<std::size_t>(ctx.rank());
  const SorConfig& cfg = shared->config;
  const StripDecomposition& decomp = shared->decomp;
  const std::size_t n = cfg.n;
  const int up = ctx.rank() > 0 ? ctx.rank() - 1 : -1;
  const int down = ctx.rank() + 1 < ctx.size() ? ctx.rank() + 1 : -1;

  // The layout may change at rebalance points; every rank tracks the full
  // row layout so begins stay consistent.
  std::vector<std::size_t> layout(static_cast<std::size_t>(ctx.size()));
  for (std::size_t p = 0; p < layout.size(); ++p) layout[p] = decomp.rows(p);
  auto my_begin = [&] {
    std::size_t b = 0;
    for (std::size_t p = 0; p < rank; ++p) b += layout[p];
    return b;
  };

  auto strip = std::make_unique<LocalStrip>(n, my_begin(), layout[rank],
                                            shared->omega);
  RankStats& stats = shared->result.ranks[rank];
  stats.iterations.reserve(cfg.iterations);
  stats.iteration_end.reserve(cfg.iterations);

  if (ctx.rank() == 0 && cfg.rank0_initial_delay > 0.0) {
    co_await ctx.compute(cfg.rank0_initial_delay);
  }

  // Half the strip's elements are updated per color phase. The resident
  // working set (solution + source arrays with ghost rows and boundary
  // columns) determines the memory-thrashing multiplier.
  auto phase_work_now = [&] {
    const double phase_elements =
        static_cast<double>(layout[rank]) * static_cast<double>(n) / 2.0;
    const double working_set = 2.0 *
                               static_cast<double>(layout[rank] + 2) *
                               static_cast<double>(n + 2);
    return ctx.machine().element_work(phase_elements, working_set);
  };
  support::Seconds phase_work = phase_work_now();

  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    PhaseTiming timing;
    for (int phase = 0; phase < 2; ++phase) {
      const bool red = phase == 0;
      const int tag = kGhostTagBase + 2 * static_cast<int>(it) + phase;

      const support::Seconds t0 = ctx.now();
      support::Seconds t1 = t0;
      if (cfg.overlap_comm && layout[rank] >= 2) {
        // Sweep the boundary rows, send them, then sweep the interior
        // while the ghost rows travel.
        const std::size_t rows = layout[rank];
        const double boundary_share =
            std::min(2.0, static_cast<double>(rows)) /
            static_cast<double>(rows);
        if (cfg.real_numerics) {
          strip->sweep_rows(red, 0, 1);
          strip->sweep_rows(red, rows - 1, rows);
        }
        co_await ctx.compute(phase_work * boundary_share);
        if (up >= 0) ctx.send(up, tag, strip->first_row());
        if (down >= 0) ctx.send(down, tag, strip->last_row());
        if (cfg.real_numerics) strip->sweep_rows(red, 1, rows - 1);
        co_await ctx.compute(phase_work * (1.0 - boundary_share));
        t1 = ctx.now();
      } else {
        if (cfg.real_numerics) strip->sweep(red);
        co_await ctx.compute(phase_work);
        t1 = ctx.now();
        if (up >= 0) ctx.send(up, tag, strip->first_row());
        if (down >= 0) ctx.send(down, tag, strip->last_row());
      }
      if (up >= 0) {
        mpi::Message m = co_await ctx.recv(up, tag);
        strip->set_top_ghost(m.data);
      }
      if (down >= 0) {
        mpi::Message m = co_await ctx.recv(down, tag);
        strip->set_bottom_ghost(m.data);
      }
      const support::Seconds t2 = ctx.now();

      if (red) {
        timing.red_comp = t1 - t0;
        timing.red_comm = t2 - t1;
      } else {
        timing.black_comp = t1 - t0;
        timing.black_comm = t2 - t1;
      }
    }
    stats.iterations.push_back(timing);
    stats.iteration_end.push_back(ctx.now());

    // Solve-to-tolerance: periodic global residual check. The allreduce
    // result is identical on every rank, so all ranks break together.
    if (cfg.tolerance > 0.0 && (it + 1) % cfg.convergence_interval == 0 &&
        it + 1 < cfg.iterations) {
      SSPRED_REQUIRE(cfg.real_numerics,
                     "solve-to-tolerance needs real numerics");
      const double res_sq = co_await ctx.allreduce_sum(strip->residual_sq());
      if (std::sqrt(res_sq) * strip->h() < cfg.tolerance) break;
    }

    // Adaptive rebalancing: measure, re-decompose, migrate.
    if (cfg.rebalance_interval > 0 &&
        (it + 1) % cfg.rebalance_interval == 0 && it + 1 < cfg.iterations) {
      const support::Seconds rb_start = ctx.now();
      const int round = static_cast<int>((it + 1) / cfg.rebalance_interval);

      // 1. Per-row compute time over the last interval (captures both the
      //    machine's speed and its current load).
      double recent = 0.0;
      for (std::size_t k = stats.iterations.size() - cfg.rebalance_interval;
           k < stats.iterations.size(); ++k) {
        recent += stats.iterations[k].red_comp + stats.iterations[k].black_comp;
      }
      const double per_row = recent / static_cast<double>(layout[rank]);
      // (named variable: GCC 12 miscompiles initializer-list temporaries
      // inside co_await expressions - "array used as initializer")
      mpi::Payload measurement;
      measurement.push_back(per_row);
      mpi::Payload gathered = co_await ctx.gather(std::move(measurement));

      // 2. Rank 0 derives the capacity-balanced layout and broadcasts it.
      mpi::Payload layout_msg;
      if (ctx.rank() == 0) {
        std::vector<double> capacity(gathered.size());
        for (std::size_t p = 0; p < gathered.size(); ++p) {
          capacity[p] = 1.0 / std::max(gathered[p], 1e-12);
        }
        const auto balanced = StripDecomposition::weighted(n, capacity);
        for (std::size_t p = 0; p < capacity.size(); ++p) {
          layout_msg.push_back(static_cast<double>(balanced.rows(p)));
        }
      }
      layout_msg = co_await ctx.bcast(std::move(layout_msg));
      std::vector<std::size_t> new_layout(layout_msg.size());
      for (std::size_t p = 0; p < layout_msg.size(); ++p) {
        new_layout[p] = static_cast<std::size_t>(layout_msg[p] + 0.5);
      }

      // Only migrate when the layout shift is worth the full-grid
      // transfer cost (a ~10% strip-height change); later rounds settle.
      std::size_t max_delta = 0;
      for (std::size_t p = 0; p < layout.size(); ++p) {
        const std::size_t d = new_layout[p] > layout[p]
                                  ? new_layout[p] - layout[p]
                                  : layout[p] - new_layout[p];
        max_delta = std::max(max_delta, d);
      }
      const std::size_t migrate_threshold =
          std::max<std::size_t>(1, n / layout.size() / 10);
      if (max_delta > migrate_threshold) {
        // 3. Migrate: gather the full interior to rank 0, scatter the new
        //    strips. Transfer costs are paid through the fabric.
        mpi::Payload full = co_await ctx.gather(strip->interior());
        layout = std::move(new_layout);
        mpi::Payload mine;
        if (ctx.rank() == 0) {
          std::size_t offset = layout[0] * n;
          for (int p = 1; p < ctx.size(); ++p) {
            const std::size_t count = layout[static_cast<std::size_t>(p)] * n;
            ctx.send(p, kMigrateTagBase + round,
                     mpi::Payload(full.begin() + static_cast<long>(offset),
                                  full.begin() +
                                      static_cast<long>(offset + count)));
            offset += count;
          }
          mine.assign(full.begin(),
                      full.begin() + static_cast<long>(layout[0] * n));
        } else {
          mpi::Message m = co_await ctx.recv(0, kMigrateTagBase + round);
          mine = std::move(m.data);
        }
        strip = std::make_unique<LocalStrip>(n, my_begin(), layout[rank],
                                             shared->omega);
        strip->set_interior(mine);
        phase_work = phase_work_now();

        // 4. Ghost refresh so the next red sweep sees current neighbours.
        const int rtag = kRefreshTagBase + round;
        if (up >= 0) ctx.send(up, rtag, strip->first_row());
        if (down >= 0) ctx.send(down, rtag, strip->last_row());
        if (up >= 0) {
          mpi::Message m = co_await ctx.recv(up, rtag);
          strip->set_top_ghost(m.data);
        }
        if (down >= 0) {
          mpi::Message m = co_await ctx.recv(down, rtag);
          strip->set_bottom_ghost(m.data);
        }
      }
      if (ctx.rank() == 0) {
        shared->result.rebalances.push_back(
            RebalanceEvent{rb_start, ctx.now() - rb_start, layout});
      }
    }
  }
  if (ctx.rank() == 0) {
    shared->result.iterations_run = stats.iterations.size();
  }

  // Global diagnostics (cheap relative to the run; not charged to time).
  const double res_sq = co_await ctx.allreduce_sum(strip->residual_sq());
  const double err = co_await ctx.allreduce_max(strip->solution_error());

  if (cfg.gather_solution) {
    mpi::Payload all = co_await ctx.gather(strip->interior());
    if (ctx.rank() == 0) shared->result.solution = std::move(all);
  }

  co_await ctx.barrier();
  if (ctx.rank() == 0) {
    shared->result.residual = std::sqrt(res_sq) * strip->h();
    shared->result.solution_error = err;
    shared->result.total_time = ctx.now() - shared->start_time;
  }
  ++shared->finished;
}

}  // namespace

support::Seconds SorResult::iteration_time(std::size_t it) const {
  SSPRED_REQUIRE(!ranks.empty(), "no rank stats");
  support::Seconds red_comp = 0.0;
  support::Seconds red_comm = 0.0;
  support::Seconds black_comp = 0.0;
  support::Seconds black_comm = 0.0;
  for (const auto& r : ranks) {
    SSPRED_REQUIRE(it < r.iterations.size(), "iteration out of range");
    red_comp = std::max(red_comp, r.iterations[it].red_comp);
    red_comm = std::max(red_comm, r.iterations[it].red_comm);
    black_comp = std::max(black_comp, r.iterations[it].black_comp);
    black_comm = std::max(black_comm, r.iterations[it].black_comm);
  }
  return red_comp + red_comm + black_comp + black_comm;
}

StripDecomposition make_decomposition(const cluster::Platform& platform,
                                      const SorConfig& config) {
  if (!config.rows_per_rank.empty()) {
    return StripDecomposition(config.n, config.rows_per_rank);
  }
  return StripDecomposition::uniform(config.n, platform.size());
}

SorResult run_distributed_sor(sim::Engine& engine,
                              cluster::Platform& platform,
                              const SorConfig& config,
                              support::Seconds start_time) {
  SSPRED_REQUIRE(config.iterations >= 1, "need at least one iteration");
  auto shared = std::make_unique<RunShared>(RunShared{
      config, make_decomposition(platform, config), SorResult{}, 0.0,
      start_time, 0});
  shared->omega = config.omega > 0.0 ? config.omega
                                     : SerialSor::optimal_omega(config.n);
  shared->result.start_time = start_time;
  shared->result.ranks.resize(platform.size());

  engine.run_until(start_time);
  mpi::Comm comm(engine, platform);
  comm.launch([ptr = shared.get()](mpi::RankCtx ctx) {
    return sor_rank(ctx, ptr);
  });
  // Step until all ranks finish rather than draining the queue, so that
  // unrelated background processes (NWS sensors, bandwidth probes) can
  // outlive the run.
  while (shared->finished < comm.size() && engine.step_one()) {
  }
  SSPRED_REQUIRE(shared->finished == comm.size(),
                 "not all ranks finished — deadlock in the run");
  return std::move(shared->result);
}

}  // namespace sspred::sor
