// Strip decomposition of the NxN SOR grid across P processors (paper
// Fig. 6): contiguous blocks of rows, optionally weighted by machine
// capacity so all processors finish together (paper footnote 2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sspred::sor {

/// Row ranges of a strip decomposition. Rows are interior grid rows,
/// 0-based; rank p owns rows [begin(p), end(p)).
class StripDecomposition {
 public:
  /// Explicit row counts per rank (each >= 1, summing to n).
  StripDecomposition(std::size_t n, std::vector<std::size_t> rows_per_rank);

  /// Near-equal strips (remainder spread over the first ranks).
  [[nodiscard]] static StripDecomposition uniform(std::size_t n,
                                                  std::size_t ranks);

  /// Rows proportional to `capacity` (e.g. 1 / (bm_time / availability));
  /// every rank gets at least one row.
  [[nodiscard]] static StripDecomposition weighted(
      std::size_t n, std::span<const double> capacity);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t ranks() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t rows(std::size_t rank) const;
  [[nodiscard]] std::size_t begin(std::size_t rank) const;
  [[nodiscard]] std::size_t end(std::size_t rank) const;
  /// Interior elements owned by `rank` (rows * n).
  [[nodiscard]] double elements(std::size_t rank) const;

 private:
  std::size_t n_;
  std::vector<std::size_t> rows_;
  std::vector<std::size_t> offsets_;  // ranks()+1 prefix sums
};

}  // namespace sspred::sor
