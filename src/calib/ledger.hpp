// AccuracyLedger — streaming prediction-accuracy accounting.
//
// The paper's whole claim is a coverage statement: the observed runtime
// should fall inside the predicted stochastic interval about 95% of the
// time (§2.1.1 — and slip below that under long-tailed load). This ledger
// performs that check continuously: it ingests (prediction, observation)
// pairs — per model id and overall — and maintains streaming accuracy
// metrics in O(1) memory per model:
//
//   * empirical coverage vs the nominal target, cumulative and over a
//     fixed rolling window (the paper's 95% story, live);
//   * interval sharpness (mean half-width) — coverage is trivial to buy
//     with infinitely wide intervals, so the two are reported together;
//   * CRPS and pinball loss against the predicted normal (closed forms);
//   * standardized residuals z = (observed - mean) / sd via a Welford
//     accumulator, plus a P² sketch of the |z| quantile at the nominal
//     level (the quantity the conformal recalibrator needs).
//
// Thread safety follows serve::MetricsRegistry: record() and snapshot()
// take a short lock; no allocation happens on the record hot path after
// a model's first observation.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "stats/descriptive.hpp"
#include "stoch/stochastic_value.hpp"

namespace sspred::calib {

struct LedgerOptions {
  /// Target interval coverage; the stochastic calculus's ±2sd intervals
  /// aim at ~95% (stoch/stochastic_value.hpp).
  double nominal_coverage = 0.95;
  /// Observations in the rolling-coverage window (per model).
  std::size_t coverage_window = 256;
};

/// One-shot copy of a model's (or the overall) accuracy state.
struct CalibrationSnapshot {
  std::uint64_t count = 0;           ///< observations ingested
  std::uint64_t inside = 0;          ///< observations inside the interval
  double coverage = 0.0;             ///< cumulative empirical coverage
  double rolling_coverage = 0.0;     ///< coverage over the rolling window
  std::uint64_t rolling_count = 0;   ///< observations in the window (<= W)
  double nominal_coverage = 0.0;     ///< the target, for report rendering
  double sharpness = 0.0;            ///< mean predicted half-width
  double mean_crps = 0.0;            ///< mean CRPS vs the predicted normal
  double rolling_crps = 0.0;         ///< mean CRPS over the rolling window
                                     ///< (points score |error| here)
  std::uint64_t rolling_crps_count = 0;  ///< observations in that window
  double mean_pinball = 0.0;         ///< mean pinball loss at the interval
                                     ///< quantiles (tau = (1∓nominal)/2)
  double z_mean = 0.0;               ///< standardized-residual mean
  double z_sd = 0.0;                 ///< standardized-residual sd
  double abs_z_quantile = 0.0;       ///< P² estimate of |z| at the nominal
                                     ///< level (2.0 when perfectly calibrated)
  std::uint64_t point_predictions = 0;  ///< half-width 0: no residual defined
};

/// Streaming (prediction interval, observed runtime) accountant.
class AccuracyLedger {
 public:
  explicit AccuracyLedger(LedgerOptions options = {});

  /// Ingests one observation for `model_id`. Point predictions
  /// (half-width 0) update coverage and sharpness but contribute no
  /// standardized residual, CRPS or pinball loss.
  void record(const std::string& model_id,
              const stoch::StochasticValue& predicted, double observed);

  /// Accuracy across every model.
  [[nodiscard]] CalibrationSnapshot snapshot() const;

  /// Accuracy of one model; throws support::Error for an id that has
  /// never been recorded.
  [[nodiscard]] CalibrationSnapshot snapshot(const std::string& model_id) const;

  [[nodiscard]] std::vector<std::string> model_ids() const;

  /// True when `model_id` has at least one recorded observation (the
  /// non-throwing probe the arbiter uses before snapshot()).
  [[nodiscard]] bool has(const std::string& model_id) const;

  [[nodiscard]] const LedgerOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Entry {
    explicit Entry(const LedgerOptions& options);

    void record(const stoch::StochasticValue& predicted, double observed,
                const LedgerOptions& options);
    [[nodiscard]] CalibrationSnapshot snapshot(
        const LedgerOptions& options) const;

    std::uint64_t count = 0;
    std::uint64_t inside = 0;
    std::uint64_t points = 0;
    stats::OnlineStats halfwidths;
    stats::OnlineStats crps;
    stats::OnlineStats pinball;
    stats::OnlineStats z;
    stats::P2Quantile abs_z;
    // Rolling hit/miss ring buffer (fixed capacity = coverage_window).
    std::vector<std::uint8_t> ring;
    std::size_t ring_pos = 0;
    std::size_t ring_n = 0;
    std::uint64_t ring_sum = 0;
    // Rolling per-observation CRPS ring (same capacity). Unlike the
    // cumulative `crps` stat, point predictions DO contribute here —
    // scored as |error|, the degenerate-distribution CRPS — because the
    // arbiter compares candidates over this window and a candidate must
    // not escape scoring by emitting points. Summed at snapshot time
    // (256 adds) rather than kept as a running sum, so eviction never
    // accumulates floating-point drift.
    std::vector<double> crps_ring;
    std::size_t crps_ring_pos = 0;
    std::size_t crps_ring_n = 0;
  };

  LedgerOptions options_;
  mutable std::mutex mutex_;
  Entry overall_;
  std::map<std::string, Entry> per_model_;
};

/// Closed-form CRPS of the normal N(mean, sd) against observation y
/// (Gneiting & Raftery 2007, eq. 21). Requires sd > 0.
[[nodiscard]] double normal_crps(double mean, double sd, double y);

/// Pinball (quantile) loss of predicted quantile value `q` at level `tau`
/// against observation y.
[[nodiscard]] double pinball_loss(double q, double tau, double y) noexcept;

}  // namespace sspred::calib
