#include "calib/recalibrate.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace sspred::calib {

ConformalRecalibrator::ConformalRecalibrator(RecalibratorOptions options)
    : options_(options) {
  SSPRED_REQUIRE(options_.nominal > 0.0 && options_.nominal < 1.0,
                 "nominal coverage must be in (0, 1)");
  SSPRED_REQUIRE(options_.window >= 1, "window must hold at least one score");
  SSPRED_REQUIRE(options_.min_samples >= 1, "min_samples must be >= 1");
  SSPRED_REQUIRE(
      options_.min_scale > 0.0 && options_.min_scale <= options_.max_scale,
      "need 0 < min_scale <= max_scale");
}

void ConformalRecalibrator::record(const std::string& model_id,
                                   const stoch::StochasticValue& predicted,
                                   double observed) {
  // Near-degenerate intervals are as unusable as exact points: a
  // half-width of 1e-300 (possible from an almost-deterministic binding)
  // would blow the normalized score up to inf/NaN, and one such score
  // poisons the window quantile for `window` subsequent predictions.
  // Floor the half-width relative to the prediction's magnitude and
  // refuse any score that still fails to come out finite.
  const double floor_hw =
      std::max(1e-9 * std::max(std::abs(predicted.mean()), 1.0), 1e-300);
  if (predicted.halfwidth() < floor_hw) return;
  const double score =
      std::abs(observed - predicted.mean()) / predicted.halfwidth();
  if (!std::isfinite(score)) return;
  const std::lock_guard lock(mutex_);
  for (Window* w : {&per_model_[model_id], &overall_}) {
    if (w->ring.empty()) w->ring.assign(options_.window, 0.0);
    w->ring[w->pos] = score;
    w->pos = (w->pos + 1) % w->ring.size();
    if (w->filled < w->ring.size()) ++w->filled;
  }
}

double ConformalRecalibrator::window_scale(const Window& window) const {
  if (window.filled < options_.min_samples) return 1.0;
  std::vector<double> scores(window.ring.begin(),
                             window.ring.begin() +
                                 static_cast<std::ptrdiff_t>(window.filled));
  std::sort(scores.begin(), scores.end());
  // Split-conformal rank: the ceil((n+1)·p)-th smallest score; beyond the
  // sample it degenerates to the window max (then the clamp applies).
  const auto n = scores.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil((static_cast<double>(n) + 1.0) * options_.nominal));
  const double q = scores[std::min(rank, n) - 1];
  return std::clamp(q, options_.min_scale, options_.max_scale);
}

double ConformalRecalibrator::scale(const std::string& model_id) const {
  const std::lock_guard lock(mutex_);
  const auto it = per_model_.find(model_id);
  if (it == per_model_.end()) return 1.0;
  return window_scale(it->second);
}

double ConformalRecalibrator::overall_scale() const {
  const std::lock_guard lock(mutex_);
  return window_scale(overall_);
}

stoch::StochasticValue ConformalRecalibrator::apply(
    const std::string& model_id,
    const stoch::StochasticValue& predicted) const {
  if (predicted.is_point()) return predicted;
  return stoch::StochasticValue(predicted.mean(),
                                scale(model_id) * predicted.halfwidth());
}

std::uint64_t ConformalRecalibrator::count(const std::string& model_id) const {
  const std::lock_guard lock(mutex_);
  const auto it = per_model_.find(model_id);
  return it == per_model_.end() ? 0 : it->second.filled;
}

ConformalRecalibrator::BindingTransform
ConformalRecalibrator::binding_transform() const {
  return [this](std::map<std::string, stoch::StochasticValue>& bindings) {
    const double factor = overall_scale();
    for (auto& [name, value] : bindings) {
      if (value.is_point()) continue;
      const double half =
          std::min(factor * value.halfwidth(), 0.98 * std::abs(value.mean()));
      value = stoch::StochasticValue(value.mean(), std::max(half, 0.0));
    }
  };
}

}  // namespace sspred::calib
