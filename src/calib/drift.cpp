#include "calib/drift.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sspred::calib {

PageHinkley::PageHinkley(PageHinkleyOptions options) : options_(options) {}

bool PageHinkley::update(double x) noexcept {
  ++n_;
  mean_ += (x - mean_) / static_cast<double>(n_);
  cum_up_ += x - mean_ - options_.delta;
  min_up_ = std::min(min_up_, cum_up_);
  cum_dn_ += x - mean_ + options_.delta;
  max_dn_ = std::max(max_dn_, cum_dn_);
  if (triggered_ || n_ < options_.min_samples) return false;
  if (statistic() > options_.lambda) {
    triggered_ = true;
    return true;
  }
  return false;
}

double PageHinkley::statistic() const noexcept {
  return std::max(cum_up_ - min_up_, max_dn_ - cum_dn_);
}

void PageHinkley::reset() noexcept {
  n_ = 0;
  mean_ = 0.0;
  cum_up_ = 0.0;
  min_up_ = 0.0;
  cum_dn_ = 0.0;
  max_dn_ = 0.0;
  triggered_ = false;
}

WindowedCoverageDetector::WindowedCoverageDetector(
    WindowedCoverageOptions options)
    : options_(options), ring_(std::max<std::size_t>(options.window, 1), 0) {}

bool WindowedCoverageDetector::update(bool inside) noexcept {
  ++n_;
  sum_ += inside ? 1 : 0;
  sum_ -= ring_[pos_];
  ring_[pos_] = inside ? 1 : 0;
  pos_ = (pos_ + 1) % ring_.size();
  if (filled_ < ring_.size()) ++filled_;
  if (triggered_ || filled_ < ring_.size()) return false;
  if (rolling_coverage() < options_.min_coverage) {
    triggered_ = true;
    return true;
  }
  return false;
}

double WindowedCoverageDetector::rolling_coverage() const noexcept {
  return filled_ == 0 ? 0.0
                      : static_cast<double>(sum_) /
                            static_cast<double>(filled_);
}

void WindowedCoverageDetector::reset() noexcept {
  std::fill(ring_.begin(), ring_.end(), 0);
  pos_ = 0;
  filled_ = 0;
  sum_ = 0;
  n_ = 0;
  triggered_ = false;
}

DriftMonitor::DriftMonitor(DriftMonitorOptions options,
                           std::shared_ptr<support::Clock> clock)
    : options_(options),
      clock_(clock ? std::move(clock) : support::real_clock()) {}

bool DriftMonitor::update(const std::string& model_id, double z, bool inside) {
  const std::lock_guard lock(mutex_);
  auto it = states_.find(model_id);
  if (it == states_.end()) {
    it = states_.emplace(model_id, State(options_)).first;
  }
  State& state = it->second;
  ++state.count;
  bool fired = false;
  if (state.page_hinkley.update(z)) {
    alarms_.push_back(
        {model_id, "page_hinkley", state.count, clock_->now()});
    fired = true;
  }
  if (state.coverage.update(inside)) {
    alarms_.push_back({model_id, "coverage", state.count, clock_->now()});
    fired = true;
  }
  return fired;
}

bool DriftMonitor::triggered(const std::string& model_id) const {
  const std::lock_guard lock(mutex_);
  const auto it = states_.find(model_id);
  if (it == states_.end()) return false;
  return it->second.page_hinkley.triggered() ||
         it->second.coverage.triggered();
}

std::vector<DriftMonitor::Alarm> DriftMonitor::alarms() const {
  const std::lock_guard lock(mutex_);
  return alarms_;
}

void DriftMonitor::reset(const std::string& model_id) {
  const std::lock_guard lock(mutex_);
  const auto it = states_.find(model_id);
  if (it == states_.end()) return;
  it->second.page_hinkley.reset();
  it->second.coverage.reset();
}

}  // namespace sspred::calib
