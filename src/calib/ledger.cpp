#include "calib/ledger.hpp"

#include <algorithm>
#include <cmath>

#include "stats/distributions.hpp"
#include "support/error.hpp"

namespace sspred::calib {

namespace {
constexpr double kInvSqrtPi = 0.5641895835477563;  // 1/sqrt(pi)
}  // namespace

double normal_crps(double mean, double sd, double y) {
  SSPRED_REQUIRE(sd > 0.0, "normal_crps requires sd > 0");
  const double z = (y - mean) / sd;
  return sd * (z * (2.0 * stats::normal_cdf(z) - 1.0) +
               2.0 * stats::normal_pdf(z) - kInvSqrtPi);
}

double pinball_loss(double q, double tau, double y) noexcept {
  return y >= q ? tau * (y - q) : (1.0 - tau) * (q - y);
}

AccuracyLedger::Entry::Entry(const LedgerOptions& options)
    : abs_z(options.nominal_coverage),
      ring(std::max<std::size_t>(options.coverage_window, 1), 0),
      crps_ring(std::max<std::size_t>(options.coverage_window, 1), 0.0) {}

void AccuracyLedger::Entry::record(const stoch::StochasticValue& predicted,
                                   double observed,
                                   const LedgerOptions& options) {
  ++count;
  const bool hit = predicted.contains(observed);
  if (hit) ++inside;

  ring_sum += hit ? 1 : 0;
  ring_sum -= ring[ring_pos];
  ring[ring_pos] = hit ? 1 : 0;
  ring_pos = (ring_pos + 1) % ring.size();
  if (ring_n < ring.size()) ++ring_n;

  halfwidths.add(predicted.halfwidth());
  // Rolling CRPS: points score as |error| (the CRPS of a degenerate
  // distribution), so every candidate pays into the arbitration window.
  const double crps_now =
      predicted.is_point()
          ? std::abs(observed - predicted.mean())
          : normal_crps(predicted.mean(), predicted.sd(), observed);
  crps_ring[crps_ring_pos] = crps_now;
  crps_ring_pos = (crps_ring_pos + 1) % crps_ring.size();
  if (crps_ring_n < crps_ring.size()) ++crps_ring_n;

  if (predicted.is_point()) {
    ++points;
    return;
  }
  const double sd = predicted.sd();
  const double zv = (observed - predicted.mean()) / sd;
  z.add(zv);
  abs_z.add(std::abs(zv));
  crps.add(crps_now);
  const double tau_lo = (1.0 - options.nominal_coverage) / 2.0;
  const double tau_hi = 1.0 - tau_lo;
  const stats::Normal normal(predicted.mean(), sd);
  pinball.add(0.5 * (pinball_loss(normal.quantile(tau_lo), tau_lo, observed) +
                     pinball_loss(normal.quantile(tau_hi), tau_hi, observed)));
}

CalibrationSnapshot AccuracyLedger::Entry::snapshot(
    const LedgerOptions& options) const {
  CalibrationSnapshot s;
  s.count = count;
  s.inside = inside;
  s.coverage = count == 0 ? 0.0
                          : static_cast<double>(inside) /
                                static_cast<double>(count);
  s.rolling_count = ring_n;
  s.rolling_coverage = ring_n == 0 ? 0.0
                                   : static_cast<double>(ring_sum) /
                                         static_cast<double>(ring_n);
  s.nominal_coverage = options.nominal_coverage;
  s.sharpness = halfwidths.count() == 0 ? 0.0 : halfwidths.mean();
  s.mean_crps = crps.count() == 0 ? 0.0 : crps.mean();
  s.rolling_crps_count = crps_ring_n;
  if (crps_ring_n > 0) {
    double sum = 0.0;
    for (std::size_t i = 0; i < crps_ring_n; ++i) sum += crps_ring[i];
    s.rolling_crps = sum / static_cast<double>(crps_ring_n);
  }
  s.mean_pinball = pinball.count() == 0 ? 0.0 : pinball.mean();
  s.z_mean = z.count() == 0 ? 0.0 : z.mean();
  s.z_sd = z.sd();
  s.abs_z_quantile = abs_z.value();
  s.point_predictions = points;
  return s;
}

AccuracyLedger::AccuracyLedger(LedgerOptions options)
    : options_(options), overall_(options) {
  SSPRED_REQUIRE(
      options_.nominal_coverage > 0.0 && options_.nominal_coverage < 1.0,
      "nominal coverage must be in (0, 1)");
  SSPRED_REQUIRE(options_.coverage_window >= 1,
                 "coverage window must hold at least one observation");
}

void AccuracyLedger::record(const std::string& model_id,
                            const stoch::StochasticValue& predicted,
                            double observed) {
  const std::lock_guard lock(mutex_);
  overall_.record(predicted, observed, options_);
  auto it = per_model_.find(model_id);
  if (it == per_model_.end()) {
    it = per_model_.emplace(model_id, Entry(options_)).first;
  }
  it->second.record(predicted, observed, options_);
}

CalibrationSnapshot AccuracyLedger::snapshot() const {
  const std::lock_guard lock(mutex_);
  return overall_.snapshot(options_);
}

CalibrationSnapshot AccuracyLedger::snapshot(
    const std::string& model_id) const {
  const std::lock_guard lock(mutex_);
  const auto it = per_model_.find(model_id);
  SSPRED_REQUIRE(it != per_model_.end(),
                 "no observations recorded for model '" + model_id + "'");
  return it->second.snapshot(options_);
}

bool AccuracyLedger::has(const std::string& model_id) const {
  const std::lock_guard lock(mutex_);
  return per_model_.find(model_id) != per_model_.end();
}

std::vector<std::string> AccuracyLedger::model_ids() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(per_model_.size());
  for (const auto& [id, _] : per_model_) ids.push_back(id);
  return ids;
}

}  // namespace sspred::calib
