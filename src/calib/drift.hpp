// Drift detection over prediction-residual streams.
//
// A structural model parameterized from NWS forecasts goes stale when a
// machine's load regime shifts faster than the forecasters track (the
// paper's §2.1.2 bursty machines are exactly this hazard). Two detectors
// watch for that from opposite angles:
//
//   * PageHinkley: the classic two-sided Page-Hinkley test on the
//     standardized-residual stream — flags a persistent shift of the
//     residual mean away from its running average (model bias appearing).
//   * WindowedCoverageDetector: flags when empirical coverage over a
//     fixed window falls below an acceptance floor (intervals no longer
//     bracketing reality, whatever the bias).
//
// DriftMonitor runs both per model id and records alarms stamped with an
// injected support::Clock, so tests drive the whole pipeline off a
// FakeClock and assert exact alarm times.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/clock.hpp"

namespace sspred::calib {

struct PageHinkleyOptions {
  /// Magnitude tolerance: deviations smaller than this are absorbed.
  double delta = 0.05;
  /// Alarm threshold on the cumulative deviation statistic.
  double lambda = 12.0;
  /// Observations required before the test may fire.
  std::size_t min_samples = 16;
};

/// Two-sided Page-Hinkley mean-shift test. The alarm is latched: once
/// triggered it stays triggered until reset().
class PageHinkley {
 public:
  explicit PageHinkley(PageHinkleyOptions options = {});

  /// Feeds one value; returns true exactly when the alarm first fires.
  bool update(double x) noexcept;

  [[nodiscard]] bool triggered() const noexcept { return triggered_; }
  [[nodiscard]] std::uint64_t samples() const noexcept { return n_; }
  /// Current max of the two one-sided cumulative statistics.
  [[nodiscard]] double statistic() const noexcept;

  void reset() noexcept;

 private:
  PageHinkleyOptions options_;
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double cum_up_ = 0.0;   ///< cumulative deviations, upward-shift side
  double min_up_ = 0.0;
  double cum_dn_ = 0.0;   ///< cumulative deviations, downward-shift side
  double max_dn_ = 0.0;
  bool triggered_ = false;
};

struct WindowedCoverageOptions {
  std::size_t window = 64;
  /// Alarm when rolling coverage over a full window drops below this.
  double min_coverage = 0.80;
};

/// Flags a model whose interval coverage collapses. Latched like
/// PageHinkley; only fires once the window has filled.
class WindowedCoverageDetector {
 public:
  explicit WindowedCoverageDetector(WindowedCoverageOptions options = {});

  /// Feeds one hit/miss; returns true exactly when the alarm first fires.
  bool update(bool inside) noexcept;

  [[nodiscard]] bool triggered() const noexcept { return triggered_; }
  [[nodiscard]] double rolling_coverage() const noexcept;
  [[nodiscard]] std::uint64_t samples() const noexcept { return n_; }

  void reset() noexcept;

 private:
  WindowedCoverageOptions options_;
  std::vector<std::uint8_t> ring_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t n_ = 0;
  bool triggered_ = false;
};

struct DriftMonitorOptions {
  PageHinkleyOptions page_hinkley;
  WindowedCoverageOptions coverage;
};

/// Per-model drift detection with clock-stamped alarms.
class DriftMonitor {
 public:
  /// A null clock selects support::real_clock().
  explicit DriftMonitor(DriftMonitorOptions options = {},
                        std::shared_ptr<support::Clock> clock = nullptr);

  struct Alarm {
    std::string model_id;
    std::string detector;       ///< "page_hinkley" or "coverage"
    std::uint64_t observation;  ///< 1-based index within the model's stream
    double time;                ///< clock reading when the alarm fired
  };

  /// Feeds one observation's standardized residual and interval hit;
  /// returns true when this observation raised at least one new alarm.
  bool update(const std::string& model_id, double z, bool inside);

  [[nodiscard]] bool triggered(const std::string& model_id) const;
  [[nodiscard]] std::vector<Alarm> alarms() const;

  /// Re-arms both detectors for `model_id` (recorded alarms remain).
  void reset(const std::string& model_id);

 private:
  struct State {
    explicit State(const DriftMonitorOptions& options)
        : page_hinkley(options.page_hinkley), coverage(options.coverage) {}
    PageHinkley page_hinkley;
    WindowedCoverageDetector coverage;
    std::uint64_t count = 0;
  };

  DriftMonitorOptions options_;
  std::shared_ptr<support::Clock> clock_;
  mutable std::mutex mutex_;
  std::map<std::string, State> states_;
  std::vector<Alarm> alarms_;
};

}  // namespace sspred::calib
