// Conformal interval recalibration.
//
// When the ledger shows coverage slipping (or a drift detector fires),
// the structural model itself is usually still right about the *shape*
// of the computation — it is the parameter uncertainty that is under- or
// over-stated. The recalibrator fixes the symptom without touching the
// model: it maintains, per model id, a rolling window of normalized
// nonconformity scores
//
//     s_i = |observed_i - mean_i| / halfwidth_i
//
// and emits the split-conformal empirical quantile of that window at the
// nominal level as a *scale factor* for the predicted ± half-widths. An
// interval mean ± scale·halfwidth then re-attains nominal coverage over
// the window by construction (the standard conformal argument, with the
// (n+1)-corrected rank), and adapts when the error regime shifts because
// old scores age out of the window.
//
// The same factor can be pushed upstream: binding_transform() returns a
// function that widens the half-widths of a bindings map, suitable for
// serve::NwsBridge::set_transform, so every published epoch already
// carries recalibrated parameter uncertainty.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "stoch/stochastic_value.hpp"

namespace sspred::calib {

struct RecalibratorOptions {
  /// Target interval coverage.
  double nominal = 0.95;
  /// Scores kept per model (split-conformal calibration window).
  std::size_t window = 128;
  /// Scores required before scale() leaves 1.0.
  std::size_t min_samples = 20;
  /// Clamp on the emitted scale factor (guards against a degenerate
  /// window shrinking intervals to nothing or exploding them).
  double min_scale = 0.25;
  double max_scale = 10.0;
};

class ConformalRecalibrator {
 public:
  explicit ConformalRecalibrator(RecalibratorOptions options = {});

  /// Ingests one observation. Point predictions (half-width 0) carry no
  /// normalized score and are ignored.
  void record(const std::string& model_id,
              const stoch::StochasticValue& predicted, double observed);

  /// Half-width scale factor for `model_id`: 1.0 until min_samples scores
  /// exist, then the clamped conformal quantile of the rolling window.
  [[nodiscard]] double scale(const std::string& model_id) const;

  /// Scale over every model's scores pooled (used for epoch transforms,
  /// which are not model-specific).
  [[nodiscard]] double overall_scale() const;

  /// The recalibrated interval: mean ± scale(model_id)·halfwidth.
  [[nodiscard]] stoch::StochasticValue apply(
      const std::string& model_id,
      const stoch::StochasticValue& predicted) const;

  /// Scores currently held for `model_id` (min(observations, window)).
  [[nodiscard]] std::uint64_t count(const std::string& model_id) const;

  /// In-place widening of a bindings map by overall_scale(), compatible
  /// with serve::NwsBridge::set_transform. Half-widths are capped at 98%
  /// of the mean so load-like bindings keep a strictly positive lower
  /// bound (structural models divide by them). The returned function
  /// captures `this`; the recalibrator must outlive it.
  using BindingTransform =
      std::function<void(std::map<std::string, stoch::StochasticValue>&)>;
  [[nodiscard]] BindingTransform binding_transform() const;

  [[nodiscard]] const RecalibratorOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Window {
    std::vector<double> ring;
    std::size_t pos = 0;
    std::size_t filled = 0;
  };

  /// Conformal quantile of the window's scores ((n+1)-corrected rank).
  [[nodiscard]] double window_scale(const Window& window) const;

  RecalibratorOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Window> per_model_;
  Window overall_;
};

}  // namespace sspred::calib
