// Platform assembly: heterogeneous machines + a shared ethernet segment.
//
// Ships the paper's two production testbeds:
//   Platform 1 (§3.1): two Sparc-2s, a Sparc-5 and a Sparc-10; tri-modal
//     CPU load (Fig. 5) with long dwells, so a run stays within one mode.
//   Platform 2 (§3.2): a Sparc-5, a Sparc-10 and two UltraSparcs; 4-modal
//     *bursty* load (Figs. 10-11) with short dwells.
// plus a dedicated platform for the "within 2%" baseline validation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "net/ethernet.hpp"
#include "net/switched.hpp"
#include "sim/engine.hpp"

namespace sspred::cluster {

/// Which network fabric connects the hosts.
enum class FabricKind {
  kSharedSegment,  ///< the paper's shared 10 Mbit ethernet
  kSwitched,       ///< full-duplex switched ethernet (per-NIC contention)
};

/// One host: its machine spec and its load (availability) process.
struct HostSpec {
  machine::MachineSpec machine;
  stats::ModalProcessSpec load;
  support::Seconds load_interval = 1.0;  ///< load resample period
};

/// A complete platform description (pure data, reusable across trials).
struct PlatformSpec {
  std::string name;
  std::vector<HostSpec> hosts;
  FabricKind fabric = FabricKind::kSharedSegment;
  net::EthernetSpec ethernet;        ///< used when fabric == kSharedSegment
  net::SwitchedSpec switched;        ///< used when fabric == kSwitched
  /// Length of the pre-generated per-host load traces. Runs that outlast
  /// this see the final load value persist.
  support::Seconds trace_duration = 4000.0;
};

/// Load process of a dedicated (single-user) host.
[[nodiscard]] stats::ModalProcessSpec dedicated_load();

/// The tri-modal Platform-1 load (modes near 0.33 / 0.49-longtail / 0.94,
/// long dwells). `center_only` restricts to the 0.48-mean centre mode — the
/// regime of the paper's §3.1 experiment.
[[nodiscard]] stats::ModalProcessSpec platform1_load(bool center_only = false);

/// The 4-modal bursty Platform-2 load (short dwells, Figs. 10-11).
[[nodiscard]] stats::ModalProcessSpec platform2_load();

/// Long-tailed production cross-traffic for the shared ethernet (Fig. 3:
/// available bandwidth ~5.25 of 10 Mbit with a tail toward low values).
[[nodiscard]] stats::ModalProcessSpec production_ethernet_availability();

/// Dedicated platform: `size` identical Sparc-10s, uncontended network.
[[nodiscard]] PlatformSpec dedicated_platform(std::size_t size = 4);

/// The paper's Platform 1. When `slow_host_center_mode` is true the
/// slowest host's load is pinned to the centre mode (paper §3.1) and the
/// others to their quiet mode, so runs stay "within a single mode".
[[nodiscard]] PlatformSpec platform1(bool slow_host_center_mode = true);

/// The paper's Platform 2 (bursty).
[[nodiscard]] PlatformSpec platform2();

/// A platform instance bound to an engine: generated load traces and a
/// live shared-ethernet model, ready to run applications.
class Platform {
 public:
  /// Generates per-host traces (seeded deterministically from `seed`) and
  /// attaches the ethernet model to `engine`.
  Platform(sim::Engine& engine, PlatformSpec spec, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return machines_.size(); }
  [[nodiscard]] machine::Machine& machine(std::size_t i);
  [[nodiscard]] const machine::Machine& machine(std::size_t i) const;
  /// The network fabric (whichever kind the spec selected).
  [[nodiscard]] net::Fabric& fabric() noexcept { return *fabric_; }
  /// The shared segment; only valid when the spec selected it.
  [[nodiscard]] net::SharedEthernet& ethernet();
  [[nodiscard]] const PlatformSpec& spec() const noexcept { return spec_; }

  /// Index of the host with the largest dedicated per-element time.
  [[nodiscard]] std::size_t slowest_host() const;

 private:
  PlatformSpec spec_;
  std::vector<machine::Machine> machines_;
  std::unique_ptr<net::Fabric> fabric_;
};

}  // namespace sspred::cluster
