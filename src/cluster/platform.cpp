#include "cluster/platform.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sspred::cluster {

using stats::ModalProcessSpec;
using stats::ModeShape;
using stats::ModeState;
using stats::Tail;

namespace {

ModeState make_mode(double center, double sd, Tail tail, double dwell,
                    double weight) {
  ModeState m;
  m.shape.center = center;
  m.shape.sd = sd;
  m.shape.tail = tail;
  m.mean_dwell = dwell;
  m.weight = weight;
  return m;
}

}  // namespace

ModalProcessSpec dedicated_load() {
  ModalProcessSpec spec;
  spec.modes.push_back(make_mode(0.995, 2e-3, Tail::kNone, 1e9, 1.0));
  spec.lo = 0.9;
  spec.hi = 1.0;
  return spec;
}

ModalProcessSpec platform1_load(bool center_only) {
  // Fig. 5: three modes — normal at 0.33, long-tailed at ~0.49, normal at
  // 0.94 — with dwells long enough that one SOR run stays inside one mode.
  ModalProcessSpec spec;
  if (!center_only) {
    spec.modes.push_back(make_mode(0.33, 0.015, Tail::kNone, 900.0, 0.25));
  }
  spec.modes.push_back(make_mode(0.48, 0.025, Tail::kDown, 900.0, 0.35));
  if (!center_only) {
    spec.modes.push_back(make_mode(0.94, 0.012, Tail::kNone, 900.0, 0.40));
  }
  spec.lo = 0.02;
  spec.hi = 1.0;
  return spec;
}

ModalProcessSpec platform2_load() {
  // Figs. 10-11: four modes swept by bursty switching. Dwells are minutes
  // — bursty on the experiment's ~25-minute horizon, yet persistent
  // enough that a single SOR run sees one or two modes, which is the
  // regime the paper's per-trial NWS forecasts operate in.
  ModalProcessSpec spec;
  spec.modes.push_back(make_mode(0.27, 0.035, Tail::kNone, 60.0, 0.30));
  spec.modes.push_back(make_mode(0.46, 0.040, Tail::kDown, 45.0, 0.25));
  spec.modes.push_back(make_mode(0.66, 0.040, Tail::kNone, 45.0, 0.20));
  spec.modes.push_back(make_mode(0.90, 0.030, Tail::kNone, 70.0, 0.25));
  spec.lo = 0.02;
  spec.hi = 1.0;
  return spec;
}

ModalProcessSpec production_ethernet_availability() {
  // Fig. 3: available bandwidth ~5.25 of 10 Mbit, long tail toward low
  // values (the availability fraction inherits the same shape).
  ModalProcessSpec spec;
  spec.modes.push_back(make_mode(0.525, 0.06, Tail::kDown, 30.0, 1.0));
  spec.lo = 0.05;
  spec.hi = 1.0;
  return spec;
}

PlatformSpec dedicated_platform(std::size_t size) {
  SSPRED_REQUIRE(size >= 1, "platform needs at least one host");
  PlatformSpec spec;
  spec.name = "dedicated";
  for (std::size_t i = 0; i < size; ++i) {
    spec.hosts.push_back(
        {machine::sparc10_spec("sparc10-" + std::to_string(i)),
         dedicated_load(), 1.0});
  }
  spec.ethernet.availability = net::dedicated_availability();
  return spec;
}

PlatformSpec platform1(bool slow_host_center_mode) {
  PlatformSpec spec;
  spec.name = "platform1";
  // Two Sparc-2s, a Sparc-5, a Sparc-10 (paper §3.1). Host 0 (a Sparc-2)
  // is the consistently slowest machine whose load the experiment tracks.
  const auto slow_load =
      slow_host_center_mode ? platform1_load(/*center_only=*/true)
                            : platform1_load();
  // Quieter hosts sit in the high-availability mode.
  ModalProcessSpec quiet;
  quiet.modes.push_back(make_mode(0.92, 0.015, Tail::kNone, 900.0, 1.0));
  quiet.lo = 0.02;
  quiet.hi = 1.0;

  spec.hosts.push_back({machine::sparc2_spec("sparc2-a"), slow_load, 1.0});
  spec.hosts.push_back({machine::sparc2_spec("sparc2-b"), quiet, 1.0});
  spec.hosts.push_back({machine::sparc5_spec("sparc5"), quiet, 1.0});
  spec.hosts.push_back({machine::sparc10_spec("sparc10"), quiet, 1.0});
  spec.ethernet.availability = production_ethernet_availability();
  return spec;
}

PlatformSpec platform2() {
  PlatformSpec spec;
  spec.name = "platform2";
  spec.hosts.push_back({machine::sparc5_spec("sparc5"), platform2_load(), 1.0});
  spec.hosts.push_back(
      {machine::sparc10_spec("sparc10"), platform2_load(), 1.0});
  spec.hosts.push_back(
      {machine::ultrasparc_spec("ultra-a"), platform2_load(), 1.0});
  spec.hosts.push_back(
      {machine::ultrasparc_spec("ultra-b"), platform2_load(), 1.0});
  spec.ethernet.availability = production_ethernet_availability();
  return spec;
}

Platform::Platform(sim::Engine& engine, PlatformSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)) {
  SSPRED_REQUIRE(!spec_.hosts.empty(), "platform needs at least one host");
  std::uint64_t sm = seed;
  machines_.reserve(spec_.hosts.size());
  for (const auto& host : spec_.hosts) {
    const std::uint64_t host_seed = support::splitmix64(sm);
    const auto count = static_cast<std::size_t>(spec_.trace_duration /
                                                host.load_interval) + 1;
    machines_.emplace_back(
        host.machine,
        machine::LoadTrace::generate(host.load, count, host.load_interval,
                                     host_seed));
  }
  if (spec_.fabric == FabricKind::kSharedSegment) {
    const std::uint64_t eth_seed = support::splitmix64(sm);
    fabric_ = std::make_unique<net::SharedEthernet>(engine, spec_.ethernet,
                                                    eth_seed);
  } else {
    net::SwitchedSpec sw = spec_.switched;
    sw.hosts = spec_.hosts.size();
    fabric_ = std::make_unique<net::SwitchedEthernet>(engine, sw);
  }
}

net::SharedEthernet& Platform::ethernet() {
  SSPRED_REQUIRE(spec_.fabric == FabricKind::kSharedSegment,
                 "platform does not use a shared segment");
  return static_cast<net::SharedEthernet&>(*fabric_);
}

machine::Machine& Platform::machine(std::size_t i) {
  SSPRED_REQUIRE(i < machines_.size(), "host index out of range");
  return machines_[i];
}

const machine::Machine& Platform::machine(std::size_t i) const {
  SSPRED_REQUIRE(i < machines_.size(), "host index out of range");
  return machines_[i];
}

std::size_t Platform::slowest_host() const {
  std::size_t slowest = 0;
  for (std::size_t i = 1; i < machines_.size(); ++i) {
    if (machines_[i].spec().bm_seconds_per_element >
        machines_[slowest].spec().bm_seconds_per_element) {
      slowest = i;
    }
  }
  return slowest;
}

}  // namespace sspred::cluster
