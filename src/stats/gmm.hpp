// 1-D Gaussian mixture fitting via EM, with BIC model selection.
//
// This is the machinery behind the paper's modal-data handling (§2.1.2):
// a load histogram is decomposed into modes, each summarized as a normal
// M_i ± SD_i with a weight P_i, which the stochastic calculus then mixes.
#pragma once

#include <span>
#include <vector>

#include "support/rng.hpp"

namespace sspred::stats {

/// One mixture component.
struct GmmComponent {
  double weight = 0.0;  ///< P_i, sums to 1 across components
  double mean = 0.0;    ///< M_i
  double sd = 0.0;      ///< SD_i
};

/// A fitted 1-D Gaussian mixture.
struct GmmFit {
  std::vector<GmmComponent> components;  ///< sorted by ascending mean
  double log_likelihood = 0.0;
  double bic = 0.0;
  std::size_t iterations = 0;
  bool converged = false;

  /// Mixture density at x.
  [[nodiscard]] double pdf(double x) const noexcept;
  /// Index of the component with the highest responsibility for x.
  [[nodiscard]] std::size_t classify(double x) const noexcept;
};

/// EM options.
struct GmmOptions {
  std::size_t max_iterations = 300;
  double tolerance = 1e-7;    ///< relative log-likelihood change
  double min_sd = 1e-4;       ///< variance floor to avoid collapse
  std::uint64_t seed = 42;    ///< k-means++-style initialization seed
  std::size_t restarts = 3;   ///< best-of-N random restarts
};

/// Fits a k-component mixture to `xs`. Requires xs.size() >= 2*k.
[[nodiscard]] GmmFit fit_gmm(std::span<const double> xs, std::size_t k,
                             const GmmOptions& opts = {});

/// Fits mixtures for k in [1, max_k] and returns the fit with lowest BIC.
[[nodiscard]] GmmFit fit_gmm_auto(std::span<const double> xs,
                                  std::size_t max_k = 5,
                                  const GmmOptions& opts = {});

}  // namespace sspred::stats
