// Modal stochastic process generator.
//
// The paper's production platforms exhibit CPU-load and bandwidth
// distributions that are mixtures of modes — some normal, some long-tailed
// (§2.1.1-2.1.2, Figs. 3, 5, 10) — with semi-Markov switching between
// modes ("bursty" on Platform 2, slow on Platform 1). ModalProcess
// generates exactly that shape.
#pragma once

#include <span>
#include <vector>

#include "support/rng.hpp"

namespace sspred::stats {

/// Within-mode tail shape.
enum class Tail {
  kNone,     ///< symmetric normal around the centre
  kDown,     ///< bounded above near the centre, heavy tail toward low values
  kUp,       ///< bounded below near the centre, heavy tail toward high values
  kLaplace,  ///< asymmetric Laplace: peaked centre, exponential tails with
             ///< the heavier side toward low values (leptokurtic — the
             ///< ±2sd interval covers ~91-94% instead of a normal's ~95%)
};

/// Shape of a single mode.
struct ModeShape {
  double center = 0.5;  ///< mode location (distribution mean)
  double sd = 0.05;     ///< within-mode spread
  Tail tail = Tail::kNone;
  double tail_alpha = 2.5;  ///< Pareto shape for long-tailed modes (>1)
};

/// Draws one value from a mode. Long-tailed modes use a shifted Pareto:
/// x = center ± sd*(mean_excess - Pareto(1, alpha)), which keeps the mean
/// at `center`, bounds one side near the centre, and gives the other side
/// a power-law tail (median lands between the bound and the mean, as the
/// paper describes for its bandwidth data).
[[nodiscard]] double sample_mode(const ModeShape& shape, support::Rng& rng);

/// One state of the semi-Markov modal process.
struct ModeState {
  ModeShape shape;
  double mean_dwell = 60.0;  ///< mean seconds per visit (exponential dwell)
  double weight = 1.0;       ///< relative visit frequency
};

/// Configuration for a modal process.
struct ModalProcessSpec {
  std::vector<ModeState> modes;  ///< at least one
  double lo = 0.0;               ///< clamp floor for emitted values
  double hi = 1.0;               ///< clamp ceiling for emitted values
};

/// Stateful generator: each call to next(dt) advances the process by dt
/// seconds (switching modes when the dwell expires) and emits one value.
class ModalProcess {
 public:
  ModalProcess(ModalProcessSpec spec, std::uint64_t seed);

  /// Advances by dt seconds and samples the current mode.
  [[nodiscard]] double next(double dt);

  /// Index of the currently occupied mode.
  [[nodiscard]] std::size_t current_mode() const noexcept { return mode_; }

  /// Expected long-run occupancy fraction of each mode
  /// (weight_i * dwell_i, normalized).
  [[nodiscard]] std::vector<double> stationary_occupancy() const;

  [[nodiscard]] const ModalProcessSpec& spec() const noexcept { return spec_; }

 private:
  void switch_mode();

  ModalProcessSpec spec_;
  support::Rng rng_;
  std::size_t mode_ = 0;
  double remaining_dwell_ = 0.0;
};

/// Generates `count` samples spaced dt apart.
[[nodiscard]] std::vector<double> generate_samples(ModalProcess& process,
                                                   std::size_t count,
                                                   double dt);

}  // namespace sspred::stats
