// Goodness-of-fit tests used to decide whether a sample is "close enough"
// to normal for the paper's normality assumption (§2.1).
#pragma once

#include <span>

namespace sspred::stats {

/// Result of a goodness-of-fit test.
struct GofResult {
  double statistic = 0.0;  ///< test statistic
  double p_value = 0.0;    ///< approximate p-value (asymptotic)
  bool reject_at_05 = false;  ///< reject H0 "sample is normal" at alpha=0.05
};

/// One-sample Kolmogorov-Smirnov test against N(mu, sigma) with
/// *specified* parameters (not estimated from the sample).
[[nodiscard]] GofResult ks_test_normal(std::span<const double> xs, double mu,
                                       double sigma);

/// Lilliefors variant: parameters estimated from the sample; critical
/// values adjusted accordingly (Dallal-Wilkinson approximation).
[[nodiscard]] GofResult lilliefors_test(std::span<const double> xs);

/// Anderson-Darling test of composite normality (case 3: both parameters
/// estimated), with Stephens' small-sample modification and p-value fit.
[[nodiscard]] GofResult anderson_darling_normal(std::span<const double> xs);

/// Chi-square goodness-of-fit vs N(mu, sigma) using equiprobable bins.
[[nodiscard]] GofResult chi_square_normal(std::span<const double> xs, double mu,
                                          double sigma, std::size_t bins = 10);

/// Jarque-Bera normality test (skewness + kurtosis based).
[[nodiscard]] GofResult jarque_bera(std::span<const double> xs);

/// Kolmogorov distribution survival function Q(t) = P(D > t) (asymptotic).
[[nodiscard]] double kolmogorov_q(double t) noexcept;

/// Chi-square distribution survival function (upper tail) with k dof.
[[nodiscard]] double chi_square_sf(double x, double k);

}  // namespace sspred::stats
