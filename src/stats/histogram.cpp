#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "support/error.hpp"

namespace sspred::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  SSPRED_REQUIRE(lo < hi, "histogram range must be non-empty");
  SSPRED_REQUIRE(bins >= 1, "histogram needs at least one bin");
}

Histogram Histogram::from_data(std::span<const double> xs, std::size_t bins) {
  SSPRED_REQUIRE(!xs.empty(), "histogram needs data");
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  double lo = *mn;
  double hi = *mx;
  if (!(lo < hi)) {
    lo -= 0.5;
    hi += 0.5;
  } else {
    // Widen slightly so the maximum lands inside the last bin.
    hi += (hi - lo) * 1e-9;
  }
  Histogram h(lo, hi, bins);
  h.add_all(xs);
  return h;
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<long>(std::floor((x - lo_) / width_));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t i) const {
  SSPRED_REQUIRE(i < counts_.size(), "bin index out of range");
  return counts_[i];
}

double Histogram::center(std::size_t i) const {
  SSPRED_REQUIRE(i < counts_.size(), "bin index out of range");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

std::vector<double> Histogram::edges() const {
  std::vector<double> e(counts_.size() + 1);
  for (std::size_t i = 0; i <= counts_.size(); ++i) {
    e[i] = lo_ + static_cast<double>(i) * width_;
  }
  return e;
}

std::vector<double> Histogram::counts_as_double() const {
  std::vector<double> c(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    c[i] = static_cast<double>(counts_[i]);
  }
  return c;
}

std::vector<double> Histogram::density() const {
  std::vector<double> d = counts_as_double();
  const double norm = static_cast<double>(std::max<std::size_t>(total_, 1)) * width_;
  for (double& v : d) v /= norm;
  return d;
}

std::vector<double> Histogram::percentages() const {
  std::vector<double> p = counts_as_double();
  const double norm = static_cast<double>(std::max<std::size_t>(total_, 1));
  for (double& v : p) v = v / norm * 100.0;
  return p;
}

Ecdf::Ecdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  SSPRED_REQUIRE(!sorted_.empty(), "ECDF needs data");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const { return quantile_sorted(sorted_, q); }

}  // namespace sspred::stats
