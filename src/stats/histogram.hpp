// Histograms and empirical CDFs — the representations behind the paper's
// PDF/CDF figures (Figs. 1-5, 10).
#pragma once

#include <span>
#include <vector>

namespace sspred::stats {

/// Fixed-width histogram over [lo, hi) with values clamped into the
/// boundary bins (so no sample is silently dropped).
class Histogram {
 public:
  /// Explicit range and bin count. Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Builds a histogram spanning the sample range with `bins` bins
  /// and accumulates the sample.
  static Histogram from_data(std::span<const double> xs, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

  /// Raw count in bin i.
  [[nodiscard]] std::size_t count(std::size_t i) const;
  /// Bin centre of bin i.
  [[nodiscard]] double center(std::size_t i) const;
  /// Bin edges (bin_count()+1 values).
  [[nodiscard]] std::vector<double> edges() const;
  /// Counts as doubles (for plotting).
  [[nodiscard]] std::vector<double> counts_as_double() const;
  /// Density estimate per bin: count / (total * bin_width).
  [[nodiscard]] std::vector<double> density() const;
  /// Percentage of values per bin, in [0, 100] (the paper's PDF y-axis).
  [[nodiscard]] std::vector<double> percentages() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Empirical cumulative distribution function of a sample.
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> xs);

  /// P(X <= x) under the empirical distribution.
  [[nodiscard]] double operator()(double x) const noexcept;

  /// Inverse ECDF (empirical quantile), q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
};

}  // namespace sspred::stats
