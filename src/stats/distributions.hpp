// Analytic distributions: pdf / cdf / quantile for the families used by the
// paper (normal everywhere; lognormal & Pareto as long-tailed generators).
#pragma once

namespace sspred::stats {

/// Standard-normal CDF Phi(z).
[[nodiscard]] double normal_cdf(double z) noexcept;

/// Standard-normal PDF phi(z).
[[nodiscard]] double normal_pdf(double z) noexcept;

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). Requires p in (0, 1).
[[nodiscard]] double normal_quantile(double p);

/// Normal distribution with mean mu, standard deviation sigma > 0.
class Normal {
 public:
  Normal(double mu, double sigma);

  [[nodiscard]] double mean() const noexcept { return mu_; }
  [[nodiscard]] double sd() const noexcept { return sigma_; }
  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double quantile(double p) const;
  /// P(lo <= X <= hi).
  [[nodiscard]] double probability_in(double lo, double hi) const noexcept;

 private:
  double mu_;
  double sigma_;
};

/// Log-normal: X = exp(N(mu, sigma)); mu/sigma are log-space parameters.
class LogNormal {
 public:
  LogNormal(double mu, double sigma);

  /// Distribution mean exp(mu + sigma^2/2).
  [[nodiscard]] double mean() const noexcept;
  /// Distribution standard deviation.
  [[nodiscard]] double sd() const noexcept;
  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double quantile(double p) const;

  /// Log-space parameters that hit a target (mean, sd) in value space.
  static LogNormal from_moments(double mean, double sd);

 private:
  double mu_;
  double sigma_;
};

/// Pareto with scale x_m > 0 and shape alpha > 0.
class Pareto {
 public:
  Pareto(double x_m, double alpha);

  /// Mean; infinite for alpha <= 1 (returns +inf).
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double quantile(double p) const;

 private:
  double x_m_;
  double alpha_;
};

/// Exponential with rate lambda > 0.
class Exponential {
 public:
  explicit Exponential(double rate);

  [[nodiscard]] double mean() const noexcept { return 1.0 / rate_; }
  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double quantile(double p) const;

 private:
  double rate_;
};

}  // namespace sspred::stats
