#include "stats/distributions.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "support/error.hpp"

namespace sspred::stats {

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double normal_pdf(double z) noexcept {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_quantile(double p) {
  SSPRED_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile needs p in (0,1)");
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step for near machine-precision results.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x -= u / (1.0 + x * u / 2.0);
  return x;
}

Normal::Normal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  SSPRED_REQUIRE(sigma > 0.0, "Normal sigma must be positive");
}

double Normal::pdf(double x) const noexcept {
  return normal_pdf((x - mu_) / sigma_) / sigma_;
}

double Normal::cdf(double x) const noexcept {
  return normal_cdf((x - mu_) / sigma_);
}

double Normal::quantile(double p) const {
  return mu_ + sigma_ * normal_quantile(p);
}

double Normal::probability_in(double lo, double hi) const noexcept {
  return cdf(hi) - cdf(lo);
}

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  SSPRED_REQUIRE(sigma > 0.0, "LogNormal sigma must be positive");
}

double LogNormal::mean() const noexcept {
  return std::exp(mu_ + sigma_ * sigma_ / 2.0);
}

double LogNormal::sd() const noexcept {
  const double s2 = sigma_ * sigma_;
  return mean() * std::sqrt(std::exp(s2) - 1.0);
}

double LogNormal::pdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return normal_pdf((std::log(x) - mu_) / sigma_) / (x * sigma_);
}

double LogNormal::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

LogNormal LogNormal::from_moments(double mean, double sd) {
  SSPRED_REQUIRE(mean > 0.0, "LogNormal mean must be positive");
  SSPRED_REQUIRE(sd > 0.0, "LogNormal sd must be positive");
  const double cv2 = (sd / mean) * (sd / mean);
  const double sigma2 = std::log(1.0 + cv2);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return LogNormal(mu, std::sqrt(sigma2));
}

Pareto::Pareto(double x_m, double alpha) : x_m_(x_m), alpha_(alpha) {
  SSPRED_REQUIRE(x_m > 0.0, "Pareto scale must be positive");
  SSPRED_REQUIRE(alpha > 0.0, "Pareto shape must be positive");
}

double Pareto::mean() const noexcept {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * x_m_ / (alpha_ - 1.0);
}

double Pareto::pdf(double x) const noexcept {
  if (x < x_m_) return 0.0;
  return alpha_ * std::pow(x_m_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double Pareto::cdf(double x) const noexcept {
  if (x < x_m_) return 0.0;
  return 1.0 - std::pow(x_m_ / x, alpha_);
}

double Pareto::quantile(double p) const {
  SSPRED_REQUIRE(p >= 0.0 && p < 1.0, "Pareto quantile needs p in [0,1)");
  return x_m_ / std::pow(1.0 - p, 1.0 / alpha_);
}

Exponential::Exponential(double rate) : rate_(rate) {
  SSPRED_REQUIRE(rate > 0.0, "Exponential rate must be positive");
}

double Exponential::pdf(double x) const noexcept {
  return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
}

double Exponential::cdf(double x) const noexcept {
  return x < 0.0 ? 0.0 : 1.0 - std::exp(-rate_ * x);
}

double Exponential::quantile(double p) const {
  SSPRED_REQUIRE(p >= 0.0 && p < 1.0, "Exponential quantile needs p in [0,1)");
  return -std::log(1.0 - p) / rate_;
}

}  // namespace sspred::stats
