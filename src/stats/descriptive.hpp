// Descriptive statistics: batch summaries, online (Welford) accumulation,
// quantiles and autocorrelation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sspred::stats {

/// Batch summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;   ///< unbiased (n-1) sample variance
  double sd = 0.0;         ///< sqrt(variance)
  double min = 0.0;
  double max = 0.0;
  double skewness = 0.0;   ///< standardized third moment (biased estimator)
  double kurtosis = 0.0;   ///< excess kurtosis (biased estimator)
};

/// Computes the full batch summary of `xs`. Requires at least one value.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Arithmetic mean. Requires a non-empty sample.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance; 0 for samples of size < 2.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation; 0 for samples of size < 2.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Sorts a copy internally.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Quantile over an already ascending-sorted sample (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Median (quantile 0.5).
[[nodiscard]] double median(std::span<const double> xs);

/// Lag-k sample autocorrelation; requires xs.size() > k.
[[nodiscard]] double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Numerically stable online accumulator (Welford) with min/max tracking.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when count() < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double sd() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fraction of values inside the closed interval [lo, hi].
[[nodiscard]] double fraction_within(std::span<const double> xs, double lo,
                                     double hi);

/// Streaming estimate of one quantile in O(1) memory (the P² algorithm of
/// Jain & Chlamtac, CACM 1985): five markers track the running min, max,
/// target quantile and its two flanking quantiles, adjusted towards their
/// ideal positions with a piecewise-parabolic fit after every observation.
/// Exact for the first five observations; converges to the empirical
/// quantile as the stream grows. Shared by the calibration ledger
/// (calib/ledger.hpp), which cannot afford to buffer residual streams.
class P2Quantile {
 public:
  /// `p` is the tracked quantile, in (0, 1).
  explicit P2Quantile(double p);

  void add(double x) noexcept;

  /// Current estimate; exact while count() <= 5. Returns 0 when empty.
  [[nodiscard]] double value() const noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_total_; }
  [[nodiscard]] double p() const noexcept { return p_; }

 private:
  double p_;
  std::size_t n_total_ = 0;
  double heights_[5] = {};   ///< marker heights (ascending)
  double positions_[5] = {}; ///< actual marker positions (1-based)
  double desired_[5] = {};   ///< desired marker positions
  double increments_[5] = {};///< desired-position increment per observation
};

}  // namespace sspred::stats
