#include "stats/modal_sampler.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace sspred::stats {

double sample_mode(const ModeShape& shape, support::Rng& rng) {
  switch (shape.tail) {
    case Tail::kNone:
      return rng.normal(shape.center, shape.sd);
    case Tail::kDown: {
      const double mean_excess = shape.tail_alpha / (shape.tail_alpha - 1.0);
      const double e = rng.pareto(1.0, shape.tail_alpha);
      return shape.center + shape.sd * (mean_excess - e);
    }
    case Tail::kUp: {
      const double mean_excess = shape.tail_alpha / (shape.tail_alpha - 1.0);
      const double e = rng.pareto(1.0, shape.tail_alpha);
      return shape.center - shape.sd * (mean_excess - e);
    }
    case Tail::kLaplace: {
      // Asymmetric Laplace with the down-side scale twice the up-side,
      // shifted to keep the mean at the centre.
      constexpr double kUpScale = 1.0;
      constexpr double kDownScale = 2.0;
      constexpr double kUpProb = kDownScale / (kUpScale + kDownScale);
      const double mean_offset =
          kUpProb * kUpScale - (1.0 - kUpProb) * kDownScale;
      const double draw = rng.uniform() < kUpProb
                              ? rng.exponential(1.0 / kUpScale)
                              : -rng.exponential(1.0 / kDownScale);
      return shape.center + shape.sd * (draw - mean_offset);
    }
  }
  SSPRED_REQUIRE(false, "unknown Tail");
  return shape.center;  // unreachable
}

ModalProcess::ModalProcess(ModalProcessSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  SSPRED_REQUIRE(!spec_.modes.empty(), "modal process needs at least one mode");
  SSPRED_REQUIRE(spec_.lo < spec_.hi, "modal clamp range must be non-empty");
  for (const auto& m : spec_.modes) {
    SSPRED_REQUIRE(m.shape.sd > 0.0, "mode sd must be positive");
    SSPRED_REQUIRE(m.shape.tail_alpha > 1.0, "tail alpha must exceed 1");
    SSPRED_REQUIRE(m.mean_dwell > 0.0, "mean dwell must be positive");
    SSPRED_REQUIRE(m.weight >= 0.0, "mode weight must be >= 0");
  }
  switch_mode();
}

void ModalProcess::switch_mode() {
  std::vector<double> weights;
  weights.reserve(spec_.modes.size());
  for (const auto& m : spec_.modes) weights.push_back(m.weight);
  mode_ = rng_.choose(weights);
  remaining_dwell_ = rng_.exponential(1.0 / spec_.modes[mode_].mean_dwell);
}

double ModalProcess::next(double dt) {
  SSPRED_REQUIRE(dt > 0.0, "dt must be positive");
  remaining_dwell_ -= dt;
  while (remaining_dwell_ <= 0.0) {
    const double deficit = remaining_dwell_;
    switch_mode();
    remaining_dwell_ += deficit;  // carry overshoot into the new dwell
    if (remaining_dwell_ <= 0.0 && spec_.modes.size() == 1) break;
  }
  const double v = sample_mode(spec_.modes[mode_].shape, rng_);
  return std::clamp(v, spec_.lo, spec_.hi);
}

std::vector<double> ModalProcess::stationary_occupancy() const {
  std::vector<double> occ;
  occ.reserve(spec_.modes.size());
  double total = 0.0;
  for (const auto& m : spec_.modes) {
    occ.push_back(m.weight * m.mean_dwell);
    total += occ.back();
  }
  for (double& o : occ) o /= total;
  return occ;
}

std::vector<double> generate_samples(ModalProcess& process, std::size_t count,
                                     double dt) {
  std::vector<double> xs;
  xs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) xs.push_back(process.next(dt));
  return xs;
}

}  // namespace sspred::stats
