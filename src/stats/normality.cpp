#include "stats/normality.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "support/error.hpp"

namespace sspred::stats {

namespace {

/// KS statistic of a sorted sample against the standard-normal CDF after
/// standardization with (mu, sigma).
[[nodiscard]] double ks_statistic(std::span<const double> sorted, double mu,
                                  double sigma) {
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = normal_cdf((sorted[i] - mu) / sigma);
    const double d_plus = (static_cast<double>(i) + 1.0) / n - f;
    const double d_minus = f - static_cast<double>(i) / n;
    d = std::max({d, d_plus, d_minus});
  }
  return d;
}

/// Regularized lower incomplete gamma P(a, x) by series / continued fraction.
[[nodiscard]] double gamma_p(double a, double x) {
  if (x <= 0.0) return 0.0;
  const double gln = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::abs(del) < std::abs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - gln);
  }
  // Continued fraction for Q(a, x), then P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::abs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - gln) * h;
  return 1.0 - q;
}

}  // namespace

double kolmogorov_q(double t) noexcept {
  if (t <= 0.0) return 1.0;
  // Q(t) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 t^2)
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * t * t);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

double chi_square_sf(double x, double k) {
  SSPRED_REQUIRE(k > 0.0, "chi-square dof must be positive");
  if (x <= 0.0) return 1.0;
  return 1.0 - gamma_p(k / 2.0, x / 2.0);
}

GofResult ks_test_normal(std::span<const double> xs, double mu, double sigma) {
  SSPRED_REQUIRE(xs.size() >= 5, "KS test needs at least 5 samples");
  SSPRED_REQUIRE(sigma > 0.0, "KS test sigma must be positive");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  GofResult r;
  r.statistic = ks_statistic(sorted, mu, sigma);
  const double n = static_cast<double>(xs.size());
  const double t = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * r.statistic;
  r.p_value = kolmogorov_q(t);
  r.reject_at_05 = r.p_value < 0.05;
  return r;
}

GofResult lilliefors_test(std::span<const double> xs) {
  SSPRED_REQUIRE(xs.size() >= 5, "Lilliefors test needs at least 5 samples");
  const Summary s = summarize(xs);
  SSPRED_REQUIRE(s.sd > 0.0, "Lilliefors test needs non-degenerate sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  GofResult r;
  r.statistic = ks_statistic(sorted, s.mean, s.sd);
  // Dallal-Wilkinson (1986) p-value approximation.
  const double n = static_cast<double>(xs.size());
  const double d = r.statistic;
  const double nd = n > 100.0 ? 100.0 : n;
  const double dd = n > 100.0 ? d * std::pow(n / 100.0, 0.49) : d;
  double p = std::exp(-7.01256 * dd * dd * (nd + 2.78019) +
                      2.99587 * dd * std::sqrt(nd + 2.78019) - 0.122119 +
                      0.974598 / std::sqrt(nd) + 1.67997 / nd);
  r.p_value = std::clamp(p, 0.0, 1.0);
  r.reject_at_05 = r.p_value < 0.05;
  return r;
}

GofResult anderson_darling_normal(std::span<const double> xs) {
  SSPRED_REQUIRE(xs.size() >= 8, "AD test needs at least 8 samples");
  const Summary s = summarize(xs);
  SSPRED_REQUIRE(s.sd > 0.0, "AD test needs non-degenerate sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double a2 = -n;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double zi = normal_cdf((sorted[i] - s.mean) / s.sd);
    const double zni =
        normal_cdf((sorted[sorted.size() - 1 - i] - s.mean) / s.sd);
    const double fi = std::clamp(zi, 1e-15, 1.0 - 1e-15);
    const double fni = std::clamp(zni, 1e-15, 1.0 - 1e-15);
    a2 -= (2.0 * static_cast<double>(i) + 1.0) / n *
          (std::log(fi) + std::log(1.0 - fni));
  }
  // Stephens' modification for estimated parameters.
  const double a2_star = a2 * (1.0 + 0.75 / n + 2.25 / (n * n));
  GofResult r;
  r.statistic = a2_star;
  // D'Agostino (1986) p-value fit.
  double p = 0.0;
  if (a2_star < 0.2) {
    p = 1.0 - std::exp(-13.436 + 101.14 * a2_star - 223.73 * a2_star * a2_star);
  } else if (a2_star < 0.34) {
    p = 1.0 - std::exp(-8.318 + 42.796 * a2_star - 59.938 * a2_star * a2_star);
  } else if (a2_star < 0.6) {
    p = std::exp(0.9177 - 4.279 * a2_star - 1.38 * a2_star * a2_star);
  } else {
    p = std::exp(1.2937 - 5.709 * a2_star + 0.0186 * a2_star * a2_star);
  }
  r.p_value = std::clamp(p, 0.0, 1.0);
  r.reject_at_05 = r.p_value < 0.05;
  return r;
}

GofResult chi_square_normal(std::span<const double> xs, double mu, double sigma,
                            std::size_t bins) {
  SSPRED_REQUIRE(bins >= 3, "chi-square test needs at least 3 bins");
  SSPRED_REQUIRE(xs.size() >= 5 * bins,
                 "chi-square test needs >= 5 samples per bin");
  SSPRED_REQUIRE(sigma > 0.0, "chi-square sigma must be positive");
  const Normal dist(mu, sigma);
  const double expected = static_cast<double>(xs.size()) /
                          static_cast<double>(bins);
  std::vector<std::size_t> observed(bins, 0);
  for (double x : xs) {
    const double u = dist.cdf(x);
    auto idx = static_cast<std::size_t>(u * static_cast<double>(bins));
    idx = std::min(idx, bins - 1);
    ++observed[idx];
  }
  double stat = 0.0;
  for (std::size_t o : observed) {
    const double d = static_cast<double>(o) - expected;
    stat += d * d / expected;
  }
  GofResult r;
  r.statistic = stat;
  r.p_value = chi_square_sf(stat, static_cast<double>(bins - 1));
  r.reject_at_05 = r.p_value < 0.05;
  return r;
}

GofResult jarque_bera(std::span<const double> xs) {
  SSPRED_REQUIRE(xs.size() >= 8, "Jarque-Bera needs at least 8 samples");
  const Summary s = summarize(xs);
  const double n = static_cast<double>(xs.size());
  GofResult r;
  r.statistic =
      n / 6.0 * (s.skewness * s.skewness + s.kurtosis * s.kurtosis / 4.0);
  r.p_value = chi_square_sf(r.statistic, 2.0);
  r.reject_at_05 = r.p_value < 0.05;
  return r;
}

}  // namespace sspred::stats
