#include "stats/sequential.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sspred::stats {

std::size_t next_block_width(std::size_t done, const StopRule& rule,
                             std::size_t block_cap) noexcept {
  if (done >= rule.max_trials || block_cap == 0) return 0;
  std::size_t width = block_cap;
  if (rule.target > 0.0) {
    // Doubling checkpoints: the first block lands exactly on the min
    // clamp, then each block doubles the sample count until the cap
    // takes over. Depends only on `done` and the rule, never on the
    // sampled values, so solo and fused runs share trial counts.
    const std::size_t min_eff = std::max<std::size_t>(rule.min_trials, 2);
    width = done == 0 ? min_eff : done;
  }
  return std::min({width, block_cap, rule.max_trials - done});
}

double SequentialEstimator::ci_halfwidth() const noexcept {
  if (stats_.count() < 2) return std::numeric_limits<double>::infinity();
  return rule_.confidence_z * stats_.sd() /
         std::sqrt(static_cast<double>(stats_.count()));
}

bool SequentialEstimator::precision_met() const noexcept {
  if (rule_.target <= 0.0 || stats_.count() < 2) return false;
  const double threshold =
      rule_.relative ? rule_.target * std::abs(stats_.mean()) : rule_.target;
  return ci_halfwidth() <= threshold;
}

bool SequentialEstimator::should_stop() const noexcept {
  if (stats_.count() >= rule_.max_trials) return true;
  return stats_.count() >= rule_.min_trials && precision_met();
}

QuantileRanks quantile_ci_ranks(std::size_t n, double q, double z) noexcept {
  QuantileRanks ranks;
  if (n == 0 || q <= 0.0 || q >= 1.0 || z <= 0.0) return ranks;
  // Normal approximation to the binomial: the number of samples below
  // the true q-quantile is Binomial(n, q), so order statistics at ranks
  // nq -+ z*sqrt(nq(1-q)) bracket it with ~z-sigma confidence.
  const double nd = static_cast<double>(n);
  const double center = nd * q;
  const double spread = z * std::sqrt(nd * q * (1.0 - q));
  const double lo = std::floor(center - spread);
  const double hi = std::ceil(center + spread);
  if (lo < 1.0 || hi > nd) return ranks;  // interval sticks out of the sample
  ranks.lo = static_cast<std::size_t>(lo) - 1;  // 1-based rank -> 0-based idx
  ranks.hi = static_cast<std::size_t>(hi) - 1;
  ranks.valid = true;
  return ranks;
}

double SequentialQuantile::value() const {
  if (xs_.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(xs_);
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q_);
}

double SequentialQuantile::ci_halfwidth() const {
  const QuantileRanks ranks =
      quantile_ci_ranks(xs_.size(), q_, rule_.confidence_z);
  if (!ranks.valid) return std::numeric_limits<double>::infinity();
  std::vector<double> sorted(xs_);
  std::sort(sorted.begin(), sorted.end());
  return 0.5 * (sorted[ranks.hi] - sorted[ranks.lo]);
}

bool SequentialQuantile::precision_met() const {
  if (rule_.target <= 0.0 || xs_.size() < 2) return false;
  const double threshold =
      rule_.relative ? rule_.target * std::abs(value()) : rule_.target;
  return ci_halfwidth() <= threshold;
}

bool SequentialQuantile::should_stop() const {
  if (xs_.size() >= rule_.max_trials) return true;
  return xs_.size() >= rule_.min_trials && precision_met();
}

}  // namespace sspred::stats
