#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "support/error.hpp"

namespace sspred::stats {

Kde::Kde(std::span<const double> xs, double bandwidth)
    : data_(xs.begin(), xs.end()), h_(bandwidth) {
  SSPRED_REQUIRE(data_.size() >= 2, "KDE needs at least 2 samples");
  if (h_ <= 0.0) {
    // Silverman's rule with the IQR refinement.
    const double sd = stddev(data_);
    std::vector<double> sorted = data_;
    std::sort(sorted.begin(), sorted.end());
    const double iqr =
        quantile_sorted(sorted, 0.75) - quantile_sorted(sorted, 0.25);
    double spread = sd;
    if (iqr > 0.0) spread = std::min(sd, iqr / 1.34);
    if (spread <= 0.0) spread = std::max(sd, 1e-9);
    h_ = 0.9 * spread * std::pow(static_cast<double>(data_.size()), -0.2);
    if (h_ <= 0.0) h_ = 1e-9;
  }
}

double Kde::operator()(double x) const noexcept {
  double sum = 0.0;
  for (double xi : data_) sum += normal_pdf((x - xi) / h_);
  return sum / (static_cast<double>(data_.size()) * h_);
}

std::pair<std::vector<double>, std::vector<double>> Kde::grid(
    std::size_t points) const {
  SSPRED_REQUIRE(points >= 8, "KDE grid needs at least 8 points");
  const auto [mn, mx] = std::minmax_element(data_.begin(), data_.end());
  const double lo = *mn - 3.0 * h_;
  const double hi = *mx + 3.0 * h_;
  std::vector<double> xs(points);
  std::vector<double> ds(points);
  for (std::size_t i = 0; i < points; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(points - 1);
    ds[i] = (*this)(xs[i]);
  }
  return {std::move(xs), std::move(ds)};
}

std::vector<DensityPeak> Kde::peaks(std::size_t points,
                                    double min_relative) const {
  const auto [xs, ds] = grid(points);
  const double global_max = *std::max_element(ds.begin(), ds.end());
  std::vector<DensityPeak> result;
  for (std::size_t i = 1; i + 1 < ds.size(); ++i) {
    if (ds[i] > ds[i - 1] && ds[i] >= ds[i + 1] &&
        ds[i] >= min_relative * global_max) {
      result.push_back({xs[i], ds[i]});
    }
  }
  std::sort(result.begin(), result.end(),
            [](const DensityPeak& a, const DensityPeak& b) {
              return a.density > b.density;
            });
  return result;
}

}  // namespace sspred::stats
