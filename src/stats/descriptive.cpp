#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace sspred::stats {

Summary summarize(std::span<const double> xs) {
  SSPRED_REQUIRE(!xs.empty(), "summarize needs a non-empty sample");
  Summary s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  const double n = static_cast<double>(xs.size());
  s.variance = xs.size() > 1 ? m2 / (n - 1.0) : 0.0;
  s.sd = std::sqrt(s.variance);
  const double pop_var = m2 / n;
  if (pop_var > 0.0) {
    s.skewness = (m3 / n) / std::pow(pop_var, 1.5);
    s.kurtosis = (m4 / n) / (pop_var * pop_var) - 3.0;
  }
  return s;
}

double mean(std::span<const double> xs) {
  SSPRED_REQUIRE(!xs.empty(), "mean needs a non-empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - m) * (x - m);
  return m2 / (static_cast<double>(xs.size()) - 1.0);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile_sorted(std::span<const double> sorted, double q) {
  SSPRED_REQUIRE(!sorted.empty(), "quantile needs a non-empty sample");
  SSPRED_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * (static_cast<double>(sorted.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  SSPRED_REQUIRE(xs.size() > lag, "autocorrelation lag exceeds sample size");
  const double m = mean(xs);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    num += (xs[i] - m) * (xs[i + lag] - m);
  }
  for (double x : xs) den += (x - m) * (x - m);
  return den > 0.0 ? num / den : 0.0;
}

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / (static_cast<double>(n_) - 1.0) : 0.0;
}

double OnlineStats::sd() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

P2Quantile::P2Quantile(double p) : p_(p) {
  SSPRED_REQUIRE(p > 0.0 && p < 1.0, "P2Quantile needs p in (0, 1)");
  const double inc[5] = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
  for (int i = 0; i < 5; ++i) {
    increments_[i] = inc[i];
    desired_[i] = 1.0 + 2.0 * (p + 1.0) * inc[i];
  }
}

void P2Quantile::add(double x) noexcept {
  if (n_total_ < 5) {
    heights_[n_total_++] = x;
    std::sort(heights_, heights_ + n_total_);
    if (n_total_ == 5) {
      for (int i = 0; i < 5; ++i) positions_[i] = double(i + 1);
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * p_;
      desired_[2] = 1.0 + 4.0 * p_;
      desired_[3] = 3.0 + 2.0 * p_;
      desired_[4] = 5.0;
    }
    return;
  }
  ++n_total_;

  // Locate the cell containing x, extending the extremes when needed.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Nudge interior markers towards their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic estimate of the height at the moved position.
      const double q =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((below + s) * (heights_[i + 1] - heights_[i]) / above +
               (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < q && q < heights_[i + 1]) {
        heights_[i] = q;
      } else {
        // Parabolic fit left the bracket: fall back to linear.
        const int j = i + (s > 0.0 ? 1 : -1);
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (n_total_ == 0) return 0.0;
  if (n_total_ <= 5) {
    // Exact quantile over the buffered (sorted) prefix.
    return quantile_sorted(std::span<const double>(heights_, n_total_), p_);
  }
  return heights_[2];
}

double fraction_within(std::span<const double> xs, double lo, double hi) {
  SSPRED_REQUIRE(!xs.empty(), "fraction_within needs a non-empty sample");
  std::size_t inside = 0;
  for (double x : xs) {
    if (x >= lo && x <= hi) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(xs.size());
}

}  // namespace sspred::stats
