#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace sspred::stats {

Summary summarize(std::span<const double> xs) {
  SSPRED_REQUIRE(!xs.empty(), "summarize needs a non-empty sample");
  Summary s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  const double n = static_cast<double>(xs.size());
  s.variance = xs.size() > 1 ? m2 / (n - 1.0) : 0.0;
  s.sd = std::sqrt(s.variance);
  const double pop_var = m2 / n;
  if (pop_var > 0.0) {
    s.skewness = (m3 / n) / std::pow(pop_var, 1.5);
    s.kurtosis = (m4 / n) / (pop_var * pop_var) - 3.0;
  }
  return s;
}

double mean(std::span<const double> xs) {
  SSPRED_REQUIRE(!xs.empty(), "mean needs a non-empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - m) * (x - m);
  return m2 / (static_cast<double>(xs.size()) - 1.0);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile_sorted(std::span<const double> sorted, double q) {
  SSPRED_REQUIRE(!sorted.empty(), "quantile needs a non-empty sample");
  SSPRED_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * (static_cast<double>(sorted.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  SSPRED_REQUIRE(xs.size() > lag, "autocorrelation lag exceeds sample size");
  const double m = mean(xs);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    num += (xs[i] - m) * (xs[i + lag] - m);
  }
  for (double x : xs) den += (x - m) * (x - m);
  return den > 0.0 ? num / den : 0.0;
}

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / (static_cast<double>(n_) - 1.0) : 0.0;
}

double OnlineStats::sd() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double fraction_within(std::span<const double> xs, double lo, double hi) {
  SSPRED_REQUIRE(!xs.empty(), "fraction_within needs a non-empty sample");
  std::size_t inside = 0;
  for (double x : xs) {
    if (x >= lo && x <= hi) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(xs.size());
}

}  // namespace sspred::stats
