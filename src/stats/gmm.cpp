#include "stats/gmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "support/error.hpp"

namespace sspred::stats {

double GmmFit::pdf(double x) const noexcept {
  double p = 0.0;
  for (const auto& c : components) {
    p += c.weight * normal_pdf((x - c.mean) / c.sd) / c.sd;
  }
  return p;
}

std::size_t GmmFit::classify(double x) const noexcept {
  std::size_t best = 0;
  double best_resp = -1.0;
  for (std::size_t i = 0; i < components.size(); ++i) {
    const auto& c = components[i];
    const double resp = c.weight * normal_pdf((x - c.mean) / c.sd) / c.sd;
    if (resp > best_resp) {
      best_resp = resp;
      best = i;
    }
  }
  return best;
}

namespace {

/// k-means++-style seeding: spread initial means across the data.
std::vector<double> init_means(std::span<const double> xs, std::size_t k,
                               support::Rng& rng) {
  std::vector<double> means;
  means.reserve(k);
  means.push_back(xs[rng.uniform_int(xs.size())]);
  std::vector<double> d2(xs.size());
  while (means.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (double m : means) best = std::min(best, (xs[i] - m) * (xs[i] - m));
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      means.push_back(xs[rng.uniform_int(xs.size())]);
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t pick = xs.size() - 1;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      r -= d2[i];
      if (r < 0.0) {
        pick = i;
        break;
      }
    }
    means.push_back(xs[pick]);
  }
  return means;
}

GmmFit run_em(std::span<const double> xs, std::size_t k, const GmmOptions& opts,
              support::Rng& rng) {
  const std::size_t n = xs.size();
  GmmFit fit;
  fit.components.resize(k);
  const double global_sd = std::max(stddev(xs), opts.min_sd);
  const auto means = init_means(xs, k, rng);
  for (std::size_t j = 0; j < k; ++j) {
    fit.components[j].weight = 1.0 / static_cast<double>(k);
    fit.components[j].mean = means[j];
    fit.components[j].sd = global_sd;
  }

  std::vector<double> resp(n * k);
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    // E step.
    double ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double row_sum = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        const auto& c = fit.components[j];
        const double p =
            c.weight * normal_pdf((xs[i] - c.mean) / c.sd) / c.sd;
        resp[i * k + j] = p;
        row_sum += p;
      }
      row_sum = std::max(row_sum, 1e-300);
      for (std::size_t j = 0; j < k; ++j) resp[i * k + j] /= row_sum;
      ll += std::log(row_sum);
    }
    fit.log_likelihood = ll;
    fit.iterations = iter + 1;
    if (std::abs(ll - prev_ll) <= opts.tolerance * std::abs(ll)) {
      fit.converged = true;
      break;
    }
    prev_ll = ll;

    // M step.
    for (std::size_t j = 0; j < k; ++j) {
      double nk = 0.0;
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        nk += resp[i * k + j];
        sum += resp[i * k + j] * xs[i];
      }
      nk = std::max(nk, 1e-12);
      auto& c = fit.components[j];
      c.weight = nk / static_cast<double>(n);
      c.mean = sum / nk;
      double var = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d = xs[i] - c.mean;
        var += resp[i * k + j] * d * d;
      }
      c.sd = std::max(std::sqrt(var / nk), opts.min_sd);
    }
  }

  std::sort(fit.components.begin(), fit.components.end(),
            [](const GmmComponent& a, const GmmComponent& b) {
              return a.mean < b.mean;
            });
  const double params = static_cast<double>(3 * k - 1);
  fit.bic = params * std::log(static_cast<double>(n)) - 2.0 * fit.log_likelihood;
  return fit;
}

}  // namespace

GmmFit fit_gmm(std::span<const double> xs, std::size_t k,
               const GmmOptions& opts) {
  SSPRED_REQUIRE(k >= 1, "GMM needs at least one component");
  SSPRED_REQUIRE(xs.size() >= 2 * k, "GMM needs at least 2k samples");
  support::Rng rng(opts.seed);
  GmmFit best;
  best.log_likelihood = -std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < std::max<std::size_t>(opts.restarts, 1); ++r) {
    GmmFit fit = run_em(xs, k, opts, rng);
    if (fit.log_likelihood > best.log_likelihood) best = std::move(fit);
  }
  return best;
}

GmmFit fit_gmm_auto(std::span<const double> xs, std::size_t max_k,
                    const GmmOptions& opts) {
  SSPRED_REQUIRE(max_k >= 1, "fit_gmm_auto needs max_k >= 1");
  GmmFit best;
  double best_bic = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= max_k && xs.size() >= 2 * k; ++k) {
    GmmFit fit = fit_gmm(xs, k, opts);
    if (fit.bic < best_bic) {
      best_bic = fit.bic;
      best = std::move(fit);
    }
  }
  return best;
}

}  // namespace sspred::stats
