// Sequential stopping for Monte-Carlo estimation.
//
// A `StopRule` names a precision target (CI half-width of the estimated
// mean, absolute or relative) plus min/max-trial clamps; a
// `SequentialEstimator` streams samples through Welford accumulators and
// answers "have we sampled enough?". The stopping decision is a pure
// function of the sampled values and the rule — no clocks, no global
// state — so a fixed RNG seed reproduces the exact trial count, run
// after run. That determinism is load-bearing: the blocked MC engine
// (model/ir.*) and the serving tier both lean on it for bit-exact
// fused-vs-solo differentials and reproducible artifacts.
//
// Quantile targets use distribution-free order-statistic (binomial) CI
// bounds: `quantile_ci_ranks` gives the rank interval whose order
// statistics bracket the q-quantile with ~z-sigma confidence, and
// `SequentialQuantile` buffers samples to drive the same stop rule off
// that interval's width.
//
// The shared block schedule lives here too (`next_block_width`): callers
// check the stop rule only between blocks, and both the IR engine and
// stoch::empirical_* must grow their sample counts through the SAME
// checkpoints or solo and fused runs of one request would stop at
// different trial counts.
#pragma once

#include <cstddef>
#include <span>

#include "stats/descriptive.hpp"

namespace sspred::stats {

/// When to stop drawing Monte-Carlo trials.
///
/// `target <= 0` disables the precision stop: the run executes exactly
/// `max_trials` trials (and `min_trials` is ignored), which makes a
/// fixed trial count just another rule (`StopRule::fixed`). With a
/// target, sampling stops at the first between-block checkpoint where
/// `n >= min_trials` and the CI half-width of the estimated mean,
/// `z * sd / sqrt(n)`, is at or below the target — or unconditionally
/// at `max_trials`.
struct StopRule {
  double target = 0.0;          ///< CI half-width target; <= 0: fixed count
  bool relative = false;        ///< target is a fraction of |estimate|
  std::size_t min_trials = 2;   ///< precision stop not consulted before this
  std::size_t max_trials = 2000;  ///< hard clamp, always honoured
  double confidence_z = 2.0;    ///< half-width = z * sd / sqrt(n)

  /// Exactly `trials` trials, no precision stop.
  [[nodiscard]] static StopRule fixed(std::size_t trials) noexcept {
    StopRule r;
    r.max_trials = trials;
    return r;
  }
  /// Stop when the CI half-width of the mean is <= `halfwidth`.
  [[nodiscard]] static StopRule absolute(double halfwidth,
                                         std::size_t max_trials,
                                         std::size_t min_trials = 64) noexcept {
    StopRule r;
    r.target = halfwidth;
    r.min_trials = min_trials;
    r.max_trials = max_trials;
    return r;
  }
  /// Stop when the CI half-width is <= `fraction * |mean|`.
  [[nodiscard]] static StopRule relative_width(
      double fraction, std::size_t max_trials,
      std::size_t min_trials = 64) noexcept {
    StopRule r;
    r.target = fraction;
    r.relative = true;
    r.min_trials = min_trials;
    r.max_trials = max_trials;
    return r;
  }
};

/// Width of the next sampling block under `rule` after `done` samples,
/// capped at `block_cap` (the engine's SoA lane width); 0 once done.
///
/// Fixed rules (no target) advance in straight `block_cap` blocks with a
/// partial last block — byte-for-byte the schedule of
/// `ir::Program::sample_trials`, so a fixed-rule adaptive run consumes
/// the RNG identically to the non-adaptive engine. Precision rules use
/// doubling checkpoints (min, 2*min, 4*min, ... then every `block_cap`)
/// so easy targets can stop after a few hundred trials instead of a full
/// 1024-lane block, with at most ~2x overshoot past the ideal stop.
[[nodiscard]] std::size_t next_block_width(std::size_t done,
                                           const StopRule& rule,
                                           std::size_t block_cap) noexcept;

/// Streaming mean/variance with the stop rule attached.
class SequentialEstimator {
 public:
  explicit SequentialEstimator(StopRule rule) noexcept : rule_(rule) {}

  void add(double x) noexcept { stats_.add(x); }
  void add(std::span<const double> xs) noexcept {
    for (const double x : xs) stats_.add(x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return stats_.count(); }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double variance() const noexcept { return stats_.variance(); }
  [[nodiscard]] double sd() const noexcept { return stats_.sd(); }
  [[nodiscard]] const StopRule& rule() const noexcept { return rule_; }

  /// z * sd / sqrt(n); +infinity until two samples exist.
  [[nodiscard]] double ci_halfwidth() const noexcept;

  /// CI half-width at or below the (absolute or relative) target.
  /// Always false when the rule has no target or fewer than two samples.
  [[nodiscard]] bool precision_met() const noexcept;

  /// Stop now: precision met past the min clamp, or max clamp reached.
  [[nodiscard]] bool should_stop() const noexcept;

 private:
  StopRule rule_;
  OnlineStats stats_;
};

/// Distribution-free rank interval for the q-quantile of an n-sample:
/// order statistics x_(lo) .. x_(hi) (1-based ranks, here 0-based
/// indices) bracket the true q-quantile with roughly z-sigma binomial
/// confidence. `valid` is false while n is too small for both ranks to
/// land strictly inside the sample.
struct QuantileRanks {
  std::size_t lo = 0;   ///< 0-based index of the lower order statistic
  std::size_t hi = 0;   ///< 0-based index of the upper order statistic
  bool valid = false;
};

[[nodiscard]] QuantileRanks quantile_ci_ranks(std::size_t n, double q,
                                              double z) noexcept;

/// Buffering quantile estimator driving the same stop rule off the
/// order-statistic CI width. O(n) memory (the sample buffer) — meant
/// for offline/bench use, not the serving hot path.
class SequentialQuantile {
 public:
  SequentialQuantile(double q, StopRule rule) : q_(q), rule_(rule) {}

  void add(double x) { xs_.push_back(x); }
  void add(std::span<const double> xs) {
    xs_.insert(xs_.end(), xs.begin(), xs.end());
  }

  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
  [[nodiscard]] double q() const noexcept { return q_; }
  [[nodiscard]] const StopRule& rule() const noexcept { return rule_; }

  /// Empirical q-quantile (interpolated; NaN while empty).
  [[nodiscard]] double value() const;
  /// Half the spread between the bracketing order statistics;
  /// +infinity until the rank interval is valid.
  [[nodiscard]] double ci_halfwidth() const;
  [[nodiscard]] bool precision_met() const;
  [[nodiscard]] bool should_stop() const;

 private:
  double q_;
  StopRule rule_;
  std::vector<double> xs_;
};

}  // namespace sspred::stats
