// Gaussian kernel density estimation with mode (peak) detection — used to
// recover the modal structure of CPU-load traces (paper §2.1.2, Figs. 5/10).
#pragma once

#include <span>
#include <vector>

namespace sspred::stats {

/// A local maximum of the estimated density.
struct DensityPeak {
  double location = 0.0;  ///< x at the peak
  double density = 0.0;   ///< estimated density at the peak
};

/// Gaussian KDE over a 1-D sample.
class Kde {
 public:
  /// bandwidth <= 0 selects Silverman's rule of thumb.
  explicit Kde(std::span<const double> xs, double bandwidth = 0.0);

  [[nodiscard]] double bandwidth() const noexcept { return h_; }

  /// Density estimate at x.
  [[nodiscard]] double operator()(double x) const noexcept;

  /// Evaluates the density on `points` equally spaced values across
  /// [min - 3h, max + 3h]; returns (xs, densities).
  [[nodiscard]] std::pair<std::vector<double>, std::vector<double>> grid(
      std::size_t points = 256) const;

  /// Local maxima of the gridded density, highest first, dropping peaks
  /// below `min_relative` times the global maximum.
  [[nodiscard]] std::vector<DensityPeak> peaks(std::size_t points = 256,
                                               double min_relative = 0.05) const;

 private:
  std::vector<double> data_;
  double h_;
};

}  // namespace sspred::stats
