#include "sim/sync.hpp"

#include "sim/engine.hpp"

namespace sspred::sim {

namespace detail {
void schedule_resume(Engine& engine, std::coroutine_handle<> h) {
  engine.schedule_in(0.0, [h] { h.resume(); });
}
}  // namespace detail

void Trigger::notify_all() {
  std::vector<std::coroutine_handle<>> to_wake;
  to_wake.swap(waiters_);
  for (auto h : to_wake) detail::schedule_resume(*engine_, h);
}

void Trigger::notify_one() {
  if (waiters_.empty()) return;
  auto h = waiters_.front();
  waiters_.erase(waiters_.begin());
  detail::schedule_resume(*engine_, h);
}

void Semaphore::release() {
  if (!waiters_.empty()) {
    auto h = waiters_.front();
    waiters_.pop_front();
    detail::schedule_resume(*engine_, h);
    return;
  }
  ++count_;
}

}  // namespace sspred::sim
