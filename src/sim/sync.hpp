// Synchronization primitives for simulation processes: broadcast triggers,
// counting semaphores and typed FIFO channels.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "support/error.hpp"

namespace sspred::sim {

class Engine;

/// Broadcast wakeup: processes wait(); notify_all()/notify_one() resume
/// them via zero-delay engine events (so wakeups are ordered after the
/// notifying event completes).
class Trigger {
 public:
  explicit Trigger(Engine& engine) noexcept : engine_(&engine) {}

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Trigger& trigger;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        trigger.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void notify_all();
  void notify_one();

  /// Registers an already-suspending coroutine (for custom awaiters that
  /// want Trigger-backed wakeup without the wait() awaitable).
  void add_waiter(std::coroutine_handle<> h) { waiters_.push_back(h); }

  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  Engine* engine_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore over virtual time.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::size_t initial) noexcept
      : engine_(&engine), count_(initial) {}

  /// Awaitable acquire of one unit.
  [[nodiscard]] auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      [[nodiscard]] bool await_ready() const noexcept {
        if (sem.count_ > 0) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Releases one unit, waking the oldest waiter if any.
  void release();

  [[nodiscard]] std::size_t available() const noexcept { return count_; }
  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  Engine* engine_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

namespace detail {
/// Schedules a zero-delay resume of `h` on `engine` (defined in sync.cpp to
/// keep Engine out of this header for the Channel template).
void schedule_resume(Engine& engine, std::coroutine_handle<> h);
}  // namespace detail

/// Unbounded typed FIFO channel. recv() suspends while empty; send()
/// delivers directly into the oldest waiting receiver's slot, so a value
/// handed to a receiver can never be stolen by a later recv().
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) noexcept : engine_(&engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T value) {
    if (!receivers_.empty()) {
      RecvAwaiter* waiter = receivers_.front();
      receivers_.pop_front();
      waiter->slot.emplace(std::move(value));
      detail::schedule_resume(*engine_, waiter->handle);
      return;
    }
    items_.push_back(std::move(value));
  }

  [[nodiscard]] auto recv() { return RecvAwaiter{this, nullptr, {}}; }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t waiting() const noexcept {
    return receivers_.size();
  }

 private:
  struct RecvAwaiter {
    Channel* ch;
    std::coroutine_handle<> handle;
    std::optional<T> slot;

    [[nodiscard]] bool await_ready() const noexcept {
      return !ch->items_.empty();
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch->receivers_.push_back(this);
    }
    [[nodiscard]] T await_resume() {
      if (slot.has_value()) return std::move(*slot);
      SSPRED_REQUIRE(!ch->items_.empty(), "channel woke with no item");
      T v = std::move(ch->items_.front());
      ch->items_.pop_front();
      return v;
    }
  };

  Engine* engine_;
  std::deque<T> items_;
  std::deque<RecvAwaiter*> receivers_;
};

}  // namespace sspred::sim
