// sim::Process — the coroutine type for simulation processes.
//
// A Process body runs inside the engine's event loop, suspending on
// engine/sync awaitables. Errors thrown inside a process propagate out of
// Engine::run() (fail loudly; see promise_type::unhandled_exception).
#pragma once

#include <coroutine>
#include <utility>
#include <vector>

namespace sspred::sim {

class Process {
 public:
  struct promise_type {
    bool done = false;
    std::vector<std::coroutine_handle<>> joiners;

    Process get_return_object() {
      return Process(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
      return {};
    }
    // Final suspend resumes joiners inline; the frame stays alive until the
    // owning Process destroys it.
    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        auto& p = h.promise();
        p.done = true;
        // Move out first: a joiner may itself finish and re-enter.
        std::vector<std::coroutine_handle<>> to_resume;
        to_resume.swap(p.joiners);
        for (auto j : to_resume) j.resume();
      }
      void await_resume() const noexcept {}
    };
    [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_void() noexcept {}
    // Rethrow: per [dcl.fct.def.coroutine], the coroutine is then treated
    // as suspended at its final point, so the frame remains destroyable
    // while the error propagates out of Engine::run().
    void unhandled_exception() { throw; }
  };

  Process() = default;
  explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Process(Process&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept {
    return handle_ != nullptr && handle_.promise().done;
  }

  /// Starts or resumes the coroutine (used by the engine).
  void resume() const { handle_.resume(); }

  [[nodiscard]] std::coroutine_handle<promise_type> handle() const noexcept {
    return handle_;
  }

  /// Awaitable completing when this process finishes. The awaiting process
  /// must not outlive the awaited one.
  [[nodiscard]] auto join() const {
    struct Awaiter {
      std::coroutine_handle<promise_type> target;
      [[nodiscard]] bool await_ready() const noexcept {
        return target.promise().done;
      }
      void await_suspend(std::coroutine_handle<> h) const {
        target.promise().joiners.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace sspred::sim
