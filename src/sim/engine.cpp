#include "sim/engine.hpp"

#include <limits>

#include "support/error.hpp"

namespace sspred::sim {

Engine::~Engine() = default;

EventId Engine::schedule_at(Time t, std::function<void()> fn) {
  SSPRED_REQUIRE(t >= now_, "cannot schedule an event in the past");
  const EventId id = next_id_++;
  queue_.push(Item{t, next_seq_++, id, std::move(fn)});
  return id;
}

EventId Engine::schedule_in(Time dt, std::function<void()> fn) {
  SSPRED_REQUIRE(dt >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + dt, std::move(fn));
}

void Engine::cancel(EventId id) { cancelled_.insert(id); }

bool Engine::step(Time horizon) {
  while (!queue_.empty()) {
    if (queue_.top().t > horizon) return false;
    // priority_queue::top() is const; the item is moved out via const_cast
    // which is safe because pop() immediately removes it.
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(item.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = item.t;
    ++processed_;
    item.fn();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step(std::numeric_limits<Time>::infinity())) {
  }
}

bool Engine::step_one() {
  return step(std::numeric_limits<Time>::infinity());
}

void Engine::run_until(Time t) {
  SSPRED_REQUIRE(t >= now_, "cannot run to a time in the past");
  while (step(t)) {
  }
  now_ = t;
}

void Engine::spawn(Process process) {
  SSPRED_REQUIRE(process.valid(), "cannot spawn an empty process");
  processes_.push_back(std::move(process));
  const auto h = processes_.back().handle();
  schedule_in(0.0, [h] { h.resume(); });
}

}  // namespace sspred::sim
