// Discrete-event simulation engine with C++20 coroutine processes.
//
// Virtual time is a double in seconds. Events are (time, sequence) ordered,
// so same-time events run in schedule order — the whole simulation is
// deterministic. Processes are coroutines (`sim::Process`) that suspend on
// awaitables (delay, triggers, channels) and are resumed by the engine.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/process.hpp"
#include "support/units.hpp"

namespace sspred::sim {

using Time = support::Seconds;

/// Handle for a scheduled event, usable with Engine::cancel().
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current virtual time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time t (>= now). Returns a cancellable id.
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` after a non-negative delay.
  EventId schedule_in(Time dt, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or unknown id is
  /// a no-op.
  void cancel(EventId id);

  /// Runs until the event queue is empty.
  void run();

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void run_until(Time t);

  /// Executes exactly one pending event; false when the queue is empty.
  /// Lets callers run the engine until an application-level condition
  /// holds (e.g. "all ranks finished") while background processes —
  /// sensors, probes — keep their own schedules.
  bool step_one();

  /// Total events executed so far (for tests and the DES microbenchmark).
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

  /// Takes ownership of a process coroutine and schedules its first resume
  /// at the current time.
  void spawn(Process process);

  /// Awaitable: suspends the calling process for `dt` virtual seconds.
  [[nodiscard]] auto delay(Time dt) {
    struct Awaiter {
      Engine& engine;
      Time dt;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.schedule_in(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  /// Awaitable: suspends until absolute virtual time t (no-op if past).
  [[nodiscard]] auto until(Time t) {
    struct Awaiter {
      Engine& engine;
      Time t;
      [[nodiscard]] bool await_ready() const noexcept {
        return t <= engine.now();
      }
      void await_suspend(std::coroutine_handle<> h) {
        engine.schedule_at(t, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, t};
  }

 private:
  struct Item {
    Time t;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    [[nodiscard]] bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs the next non-cancelled event; false when queue is empty
  /// or the next event is after `horizon`.
  bool step(Time horizon);

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  std::vector<Process> processes_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t processed_ = 0;
};

}  // namespace sspred::sim
