// sim::Task<T> — an awaitable sub-coroutine for composing simulation logic.
//
// A Process is the root of a simulated activity; a Task is a callee it can
// `co_await` (and Tasks can await further Tasks). The caller's handle is
// resumed by symmetric transfer when the Task completes, so composition
// adds no events to the engine queue.
#pragma once

#include <coroutine>
#include <optional>
#include <utility>

namespace sspred::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
    return {};
  }
  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    template <typename Promise>
    [[nodiscard]] std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) const noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  // Propagate errors out of Engine::run() (see sim::Process).
  void unhandled_exception() { throw; }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  [[nodiscard]] std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> caller) noexcept {
    handle_.promise().continuation = caller;
    return handle_;  // start the task by symmetric transfer
  }
  [[nodiscard]] T await_resume() { return std::move(*handle_.promise().value); }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() const noexcept {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  [[nodiscard]] std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> caller) noexcept {
    handle_.promise().continuation = caller;
    return handle_;
  }
  void await_resume() const noexcept {}

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace sspred::sim
