#include "serve/program_cache.hpp"

#include <sstream>

#include "support/error.hpp"

namespace sspred::serve {

namespace {

using Impl = std::variant<predict::SorStructuralModel,
                          predict::BlockStructuralModel,
                          predict::JacobiStructuralModel>;

Impl make_impl(const ModelSpec& spec) {
  switch (spec.app) {
    case ModelSpec::App::kSor:
      return Impl(std::in_place_index<0>, spec.platform, spec.config,
                  spec.options);
    case ModelSpec::App::kBlockSor:
      return Impl(std::in_place_index<1>, spec.platform, spec.config.n,
                  spec.config.iterations, spec.pr, spec.pc, spec.options);
    case ModelSpec::App::kJacobi:
      return Impl(std::in_place_index<2>, spec.platform, spec.config.n,
                  spec.config.iterations, spec.options);
  }
  throw support::Error("unknown ModelSpec app");
}

}  // namespace

std::string ModelSpec::structure_key() const {
  std::ostringstream key;
  key.precision(17);
  switch (app) {
    case App::kSor: key << "sor"; break;
    case App::kBlockSor: key << "block"; break;
    case App::kJacobi: key << "jacobi"; break;
  }
  key << "|n=" << config.n << "|it=" << config.iterations;
  if (!config.rows_per_rank.empty()) {
    key << "|rows=";
    for (std::size_t r : config.rows_per_rank) key << r << ',';
  }
  if (app == App::kBlockSor) key << "|grid=" << pr << 'x' << pc;
  key << "|dep=" << static_cast<int>(options.iteration_dependence)
      << static_cast<int>(options.phase_dependence)
      << "|pol=" << static_cast<int>(options.max_policy)
      << "|form=" << static_cast<int>(options.compute_form)
      << "|ops=" << options.ops_per_element
      << "|mem=" << options.account_memory;
  key << "|fabric=" << static_cast<int>(platform.fabric);
  if (platform.fabric == cluster::FabricKind::kSharedSegment) {
    key << '/' << platform.ethernet.nominal_bandwidth << '/'
        << platform.ethernet.latency;
  } else {
    key << '/' << platform.switched.link_bandwidth << '/'
        << platform.switched.latency;
  }
  for (const auto& host : platform.hosts) {
    key << "|h=" << host.machine.name << ','
        << host.machine.bm_seconds_per_element << ','
        << host.machine.ops_per_second << ',' << host.machine.memory_elements
        << ',' << host.machine.thrash_slope;
  }
  return key.str();
}

CompiledModel::CompiledModel(const ModelSpec& spec)
    : spec_(spec), impl_(make_impl(spec)) {
  const auto& prog = program();
  load_slots_.reserve(spec_.platform.hosts.size());
  for (const auto& host : spec_.platform.hosts) {
    load_slots_.push_back(prog.slot("load/" + host.machine.name));
  }
  const std::string bw = predict::SorStructuralModel::bwavail_param();
  if (prog.has_slot(bw)) bwavail_slot_ = prog.slot(bw);
}

const model::ir::Program& CompiledModel::program() const noexcept {
  return std::visit(
      [](const auto& m) -> const model::ir::Program& { return m.program(); },
      impl_);
}

std::uint32_t CompiledModel::load_slot(std::size_t p) const {
  SSPRED_REQUIRE(p < load_slots_.size(), "host index out of range");
  return load_slots_[p];
}

std::uint32_t CompiledModel::bwavail_slot() const {
  SSPRED_REQUIRE(bwavail_slot_ != kNoSlot,
                 "model has no bandwidth parameter");
  return bwavail_slot_;
}

ProgramCache::Lookup ProgramCache::get_or_compile(const ModelSpec& spec) {
  const std::string key = spec.structure_key();
  std::shared_ptr<Slot> slot;
  bool compiler = false;
  {
    const std::lock_guard lock(mutex_);
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      slot = std::make_shared<Slot>();
      slots_.emplace(key, slot);
      compiler = true;
    } else {
      slot = it->second;
    }
  }

  if (compiler) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    compiles_.fetch_add(1, std::memory_order_relaxed);
    CompiledModelPtr model;
    std::string error;
    try {
      model = std::make_shared<const CompiledModel>(spec);
    } catch (const std::exception& e) {
      error = e.what();
    }
    {
      const std::lock_guard lock(slot->m);
      slot->model = model;
      slot->error = error;
      slot->done = true;
    }
    slot->cv.notify_all();
    if (!error.empty()) throw support::Error("model compilation failed: " + error);
    return {model, false};
  }

  std::unique_lock lock(slot->m);
  slot->cv.wait(lock, [&] { return slot->done; });
  if (!slot->error.empty()) {
    throw support::Error("model compilation failed: " + slot->error);
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return {slot->model, true};
}

std::size_t ProgramCache::size() const {
  const std::lock_guard lock(mutex_);
  return slots_.size();
}

void ProgramCache::clear() {
  const std::lock_guard lock(mutex_);
  slots_.clear();
}

}  // namespace sspred::serve
