#include "serve/program_cache.hpp"

#include "model/fingerprint.hpp"
#include "support/error.hpp"

namespace sspred::serve {

namespace {

using Impl = std::variant<predict::SorStructuralModel,
                          predict::BlockStructuralModel,
                          predict::JacobiStructuralModel>;

Impl make_impl(const ModelSpec& spec) {
  switch (spec.app) {
    case ModelSpec::App::kSor:
      return Impl(std::in_place_index<0>, spec.platform, spec.config,
                  spec.options);
    case ModelSpec::App::kBlockSor:
      return Impl(std::in_place_index<1>, spec.platform, spec.config.n,
                  spec.config.iterations, spec.pr, spec.pc, spec.options);
    case ModelSpec::App::kJacobi:
      return Impl(std::in_place_index<2>, spec.platform, spec.config.n,
                  spec.config.iterations, spec.options);
  }
  throw support::Error("unknown ModelSpec app");
}

}  // namespace

std::string ModelSpec::structure_key() const {
  // One canonical builder (model/fingerprint.hpp) serializes every
  // structural input; registration, the cache and the shard router all
  // consume this same key, so they can never disagree about structure.
  model::Fingerprint fp;
  switch (app) {
    case App::kSor: fp.tag("sor"); break;
    case App::kBlockSor: fp.tag("block"); break;
    case App::kJacobi: fp.tag("jacobi"); break;
  }
  fp.field("n", config.n).field("it", config.iterations);
  for (std::size_t r : config.rows_per_rank) fp.field("rows", r);
  if (app == App::kBlockSor) fp.field("pr", pr).field("pc", pc);
  fp.field("idep", options.iteration_dependence)
      .field("pdep", options.phase_dependence)
      .field("pol", options.max_policy)
      .field("form", options.compute_form)
      .field("ops", options.ops_per_element)
      .field("mem", options.account_memory);
  fp.field("fabric", platform.fabric);
  if (platform.fabric == cluster::FabricKind::kSharedSegment) {
    fp.field("bw", platform.ethernet.nominal_bandwidth)
        .field("lat", platform.ethernet.latency);
  } else {
    fp.field("bw", platform.switched.link_bandwidth)
        .field("lat", platform.switched.latency);
  }
  for (const auto& host : platform.hosts) {
    fp.field("h", host.machine.name)
        .field("bm", host.machine.bm_seconds_per_element)
        .field("ops", host.machine.ops_per_second)
        .field("memel", host.machine.memory_elements)
        .field("thrash", host.machine.thrash_slope);
  }
  return fp.str();
}

CompiledModel::CompiledModel(const ModelSpec& spec)
    : spec_(spec), impl_(make_impl(spec)) {
  const auto& prog = program();
  load_slots_.reserve(spec_.platform.hosts.size());
  for (const auto& host : spec_.platform.hosts) {
    load_slots_.push_back(prog.slot("load/" + host.machine.name));
  }
  const std::string bw = predict::SorStructuralModel::bwavail_param();
  if (prog.has_slot(bw)) bwavail_slot_ = prog.slot(bw);
}

const model::ir::Program& CompiledModel::program() const noexcept {
  return std::visit(
      [](const auto& m) -> const model::ir::Program& { return m.program(); },
      impl_);
}

std::uint32_t CompiledModel::load_slot(std::size_t p) const {
  SSPRED_REQUIRE(p < load_slots_.size(), "host index out of range");
  return load_slots_[p];
}

std::uint32_t CompiledModel::bwavail_slot() const {
  SSPRED_REQUIRE(bwavail_slot_ != kNoSlot,
                 "model has no bandwidth parameter");
  return bwavail_slot_;
}

ProgramCache::Lookup ProgramCache::get_or_compile(const ModelSpec& spec) {
  return get_or_compile(spec, spec.structure_key());
}

ProgramCache::Lookup ProgramCache::get_or_compile(const ModelSpec& spec,
                                                  const std::string& key) {
  std::shared_ptr<Slot> slot;
  bool compiler = false;
  {
    const std::lock_guard lock(mutex_);
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      slot = std::make_shared<Slot>();
      slots_.emplace(key, slot);
      compiler = true;
    } else {
      slot = it->second;
    }
  }

  if (compiler) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    compiles_.fetch_add(1, std::memory_order_relaxed);
    CompiledModelPtr model;
    std::string error;
    try {
      model = std::make_shared<const CompiledModel>(spec);
    } catch (const std::exception& e) {
      error = e.what();
    }
    {
      const std::lock_guard lock(slot->m);
      slot->model = model;
      slot->error = error;
      slot->done = true;
    }
    slot->cv.notify_all();
    if (!error.empty()) throw support::Error("model compilation failed: " + error);
    return {model, false};
  }

  std::unique_lock lock(slot->m);
  slot->cv.wait(lock, [&] { return slot->done; });
  if (!slot->error.empty()) {
    throw support::Error("model compilation failed: " + slot->error);
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return {slot->model, true};
}

std::size_t ProgramCache::size() const {
  const std::lock_guard lock(mutex_);
  return slots_.size();
}

void ProgramCache::clear() {
  const std::lock_guard lock(mutex_);
  slots_.clear();
}

}  // namespace sspred::serve
