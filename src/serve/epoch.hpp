// Versioned load-bindings epochs: consistent NWS snapshots for serving.
//
// A prediction parameterized from live NWS forecasts must not see loads
// from two different instants — half the hosts "now", half from five
// seconds ago — and two requests coalesced into one evaluation must agree
// on every binding. BindingsEpoch is the unit of that consistency: an
// immutable resource->value map stamped with a monotonically increasing
// version. The NwsBridge turns the mutable nws::Service into a sequence
// of epochs: publish() forecasts every tracked resource once and installs
// the result; in-flight requests keep the shared_ptr of the epoch they
// were admitted under, so a publish never mutates what a worker is
// reading.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nws/service.hpp"
#include "stoch/stochastic_value.hpp"

namespace sspred::serve {

/// Immutable snapshot of stochastic load bindings, by resource name.
class BindingsEpoch {
 public:
  BindingsEpoch(std::uint64_t version,
                std::map<std::string, stoch::StochasticValue> values)
      : version_(version), values_(std::move(values)) {}

  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  [[nodiscard]] bool contains(const std::string& resource) const {
    return values_.contains(resource);
  }

  /// Throws support::Error naming the resource and the epoch version when
  /// the resource was not part of the snapshot.
  [[nodiscard]] const stoch::StochasticValue& lookup(
      const std::string& resource) const;

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// The full snapshot, for fan-out layers that re-encode the epoch
  /// (the cluster frontend ships it to nodes over the wire codec).
  [[nodiscard]] const std::map<std::string, stoch::StochasticValue>& values()
      const noexcept {
    return values_;
  }

 private:
  std::uint64_t version_;
  std::map<std::string, stoch::StochasticValue> values_;
};

using EpochPtr = std::shared_ptr<const BindingsEpoch>;

/// Publishes consistent epochs from a live nws::Service.
///
/// Single conceptual writer (whoever calls publish()), many readers
/// (current() from any thread). The bridge reads the service under its
/// reader/writer lock resource by resource; the epoch itself is the
/// atomicity boundary requests rely on.
class NwsBridge {
 public:
  /// In-place rewrite of a publish's bindings before they are frozen
  /// into an epoch — the hook the conformal recalibrator
  /// (calib/recalibrate.hpp, binding_transform()) plugs into so every
  /// published epoch already carries recalibrated uncertainty.
  using EpochTransform =
      std::function<void(std::map<std::string, stoch::StochasticValue>&)>;

  /// `resources` are the NWS resource names to snapshot each publish.
  NwsBridge(const nws::Service& service, std::vector<std::string> resources);

  /// Forecasts every tracked resource and installs the result as the new
  /// current epoch. Resources with insufficient history are skipped (a
  /// request needing one gets a structured lookup error, not a crash).
  /// Returns the published epoch.
  EpochPtr publish();

  /// Installs (or, with a null transform, removes) the transform applied
  /// to every subsequent publish's bindings.
  void set_transform(EpochTransform transform);

  /// The most recently published epoch; null before the first publish().
  [[nodiscard]] EpochPtr current() const;

  [[nodiscard]] const std::vector<std::string>& resources() const noexcept {
    return resources_;
  }

 private:
  const nws::Service& service_;
  std::vector<std::string> resources_;
  mutable std::mutex mutex_;  ///< guards current_, next_version_, transform_
  EpochPtr current_;
  std::uint64_t next_version_ = 1;
  EpochTransform transform_;
};

}  // namespace sspred::serve
