// Frontend wire protocol: a versioned, length-prefixed binary codec for
// PredictRequest/PredictResult.
//
// The serving stack's frontend layer is transport-agnostic: this codec
// only defines BYTES. A frame is
//
//   u32   payload length (little-endian, excludes these 4 bytes)
//   u16   magic 0x5350 ("SP")
//   u8    protocol version (kWireVersion)
//   u8    message type (1 = request, 2 = response)
//   u64   client tag, echoed verbatim in the response (the client's
//         correlation handle for pipelined requests)
//   ...   body (request or response fields, fixed field order)
//
// and travels over anything that moves bytes in order — an in-process
// pipe, a loopback socket pair (the load generator and tests exercise
// both), or a real network transport a deployment wires up. All integers
// are little-endian; doubles are IEEE binary64 bit patterns. Strings and
// vectors are u32-length-prefixed.
//
// Decoding is strict: a bad magic, unknown version, wrong message type,
// truncated body, or trailing garbage throws support::Error with a
// structured message — a malformed client can never crash the stack or
// smuggle a half-parsed request into it. FrameBuffer incrementally
// reassembles frames from arbitrary byte chunks (the "read whatever the
// socket gives you" loop) with a configurable frame size cap so a
// corrupt length prefix cannot balloon memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "stoch/stochastic_value.hpp"

namespace sspred::serve {

inline constexpr std::uint16_t kWireMagic = 0x5350;  // "SP"
/// Version 2 appended the serving-source byte to the response body
/// (PredictResult::source). Version 3 appended the adaptive-precision
/// fields: precision/precision_relative/min_trials to the request body,
/// mc_trials/mc_ci_halfwidth/precision_met to the response body.
/// Decoding is strict per version.
inline constexpr std::uint8_t kWireVersion = 3;

enum class WireType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  // Cluster control plane (src/dserve/): the frontend speaks to its
  // nodes in the same framed codec the data plane uses, so one
  // FrameBuffer + one strictness contract covers every byte a node
  // ever receives.
  kHeartbeat = 3,     ///< frontend -> node liveness/epoch probe
  kHeartbeatAck = 4,  ///< node -> frontend probe reply
  kEpochPublish = 5,  ///< frontend -> node bindings-epoch fan-out
  kEpochAck = 6,      ///< node -> frontend epoch install confirmation
};

/// Validated peek at a complete frame payload's message type: checks the
/// magic and protocol version, throws support::Error on malformation or
/// an unknown type byte. Dispatchers (a ServingNode demultiplexing its
/// inbound stream) call this before the type-specific decoder.
[[nodiscard]] WireType frame_type(const std::uint8_t* data, std::size_t size);

/// One frame's payload, ready to send (length prefix included).
[[nodiscard]] std::vector<std::uint8_t> encode_request(
    const PredictRequest& request, std::uint64_t client_tag);
[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const PredictResult& result, std::uint64_t client_tag);

struct DecodedRequest {
  PredictRequest request;
  std::uint64_t client_tag = 0;
};
struct DecodedResponse {
  PredictResult result;
  std::uint64_t client_tag = 0;
};

/// Decodes one complete frame (WITHOUT the 4-byte length prefix; the
/// FrameBuffer strips it). Throws support::Error on any malformation.
[[nodiscard]] DecodedRequest decode_request(const std::uint8_t* data,
                                            std::size_t size);
[[nodiscard]] DecodedResponse decode_response(const std::uint8_t* data,
                                              std::size_t size);

// --- Cluster control frames (heartbeat / epoch fan-out) ----------------

/// Node's reply to a heartbeat probe: its current bindings-epoch version
/// (0: none installed) and admission backlog — the frontend's raw health
/// and rebalance signals.
struct HeartbeatAck {
  std::uint64_t client_tag = 0;
  std::uint64_t epoch_version = 0;
  std::uint64_t queue_depth = 0;
};

/// One bindings epoch on the wire: the frontend fans a published epoch
/// out to every node as (version, resource -> value) so a node restarted
/// from scratch can be rebalanced onto the cluster's current snapshot.
struct EpochFrame {
  std::uint64_t client_tag = 0;
  std::uint64_t version = 0;
  std::map<std::string, stoch::StochasticValue> bindings;
};

struct EpochAck {
  std::uint64_t client_tag = 0;
  std::uint64_t version = 0;  ///< version the node installed
};

[[nodiscard]] std::vector<std::uint8_t> encode_heartbeat(
    std::uint64_t client_tag);
[[nodiscard]] std::vector<std::uint8_t> encode_heartbeat_ack(
    const HeartbeatAck& ack);
[[nodiscard]] std::vector<std::uint8_t> encode_epoch_publish(
    const EpochFrame& frame);
[[nodiscard]] std::vector<std::uint8_t> encode_epoch_ack(const EpochAck& ack);

/// Control-frame decoders; same strictness contract as the data plane
/// (payload without the length prefix, support::Error on malformation).
[[nodiscard]] std::uint64_t decode_heartbeat(const std::uint8_t* data,
                                             std::size_t size);
[[nodiscard]] HeartbeatAck decode_heartbeat_ack(const std::uint8_t* data,
                                                std::size_t size);
[[nodiscard]] EpochFrame decode_epoch_publish(const std::uint8_t* data,
                                              std::size_t size);
[[nodiscard]] EpochAck decode_epoch_ack(const std::uint8_t* data,
                                        std::size_t size);

/// Incremental frame reassembly: feed byte chunks as they arrive,
/// take_frame() yields each complete payload (length prefix stripped) in
/// order. Throws support::Error when a length prefix exceeds the cap.
class FrameBuffer {
 public:
  explicit FrameBuffer(std::size_t max_frame_bytes = 1u << 20)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const std::uint8_t* data, std::size_t size);

  /// Next complete frame payload, or nullopt when more bytes are needed.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> take_frame();

  /// Bytes buffered but not yet consumed as frames.
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
};

}  // namespace sspred::serve
