#include "serve/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/table.hpp"

namespace sspred::serve {

LatencyHistogram::LatencyHistogram(double hi, std::size_t bins)
    : hist_(0.0, hi, bins) {}

void LatencyHistogram::observe(double v) noexcept {
  const std::lock_guard lock(mutex_);
  hist_.add(v);
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

std::uint64_t LatencyHistogram::count() const {
  const std::lock_guard lock(mutex_);
  return count_;
}

double LatencyHistogram::mean() const {
  const std::lock_guard lock(mutex_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LatencyHistogram::min() const {
  const std::lock_guard lock(mutex_);
  return min_;
}

double LatencyHistogram::max() const {
  const std::lock_guard lock(mutex_);
  return max_;
}

double LatencyHistogram::quantile(double q) const {
  SSPRED_REQUIRE(q >= 0.0 && q <= 1.0, "quantile requires q in [0, 1]");
  const std::lock_guard lock(mutex_);
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < hist_.bin_count(); ++i) {
    const auto c = static_cast<double>(hist_.count(i));
    if (cumulative + c >= target && c > 0.0) {
      // Interpolate within the bucket, clamped to the observed extremes.
      const double frac = (target - cumulative) / c;
      const double lo_edge = hist_.lo() + hist_.bin_width() * double(i);
      const double v = lo_edge + frac * hist_.bin_width();
      return std::clamp(v, min_, max_);
    }
    cumulative += c;
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard lock(mutex_);
  return gauges_[name];
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                             double hi, std::size_t bins) {
  const std::lock_guard lock(mutex_);
  return histograms_.try_emplace(name, hi, bins).first->second;
}

void MetricsRegistry::add_child(const std::string& label,
                                const MetricsRegistry* child) {
  SSPRED_REQUIRE(child != nullptr && child != this,
                 "metrics child must be a distinct registry");
  const std::lock_guard lock(mutex_);
  children_.emplace_back(label, child);
}

void MetricsRegistry::remove_child(const std::string& label) {
  const std::lock_guard lock(mutex_);
  std::erase_if(children_,
                [&](const auto& entry) { return entry.first == label; });
}

void MetricsRegistry::clear_children() {
  const std::lock_guard lock(mutex_);
  children_.clear();
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  std::vector<std::pair<std::string, const MetricsRegistry*>> children;
  {
    const std::lock_guard lock(mutex_);
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, c] : counters_) {
      out.push_back({name, "counter", static_cast<double>(c.value())});
    }
    for (const auto& [name, g] : gauges_) {
      out.push_back({name, "gauge", static_cast<double>(g.value())});
    }
    for (const auto& [name, h] : histograms_) {
      MetricSample s{name, "histogram", static_cast<double>(h.count())};
      s.p50 = h.quantile(0.50);
      s.p95 = h.quantile(0.95);
      s.p99 = h.quantile(0.99);
      s.mean = h.mean();
      out.push_back(s);
    }
    children = children_;
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  // Children after the roll-up, each block contiguous under its label
  // (recursing outside mutex_: the child takes its own lock).
  for (const auto& [label, child] : children) {
    for (MetricSample s : child->snapshot()) {
      if (!label.empty()) s.name = label + "/" + s.name;
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n  \"metrics\": [";
  bool first = true;
  for (const auto& s : snapshot()) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << s.name << "\", \"kind\": \"" << s.kind
       << "\", \"value\": " << s.value;
    if (s.kind == "histogram") {
      os << ", \"mean\": " << s.mean << ", \"p50\": " << s.p50
         << ", \"p95\": " << s.p95 << ", \"p99\": " << s.p99;
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string MetricsRegistry::render() const {
  support::Table t({"metric", "kind", "value", "p50", "p95", "p99"});
  for (const auto& s : snapshot()) {
    std::ostringstream value;
    value << s.value;
    if (s.kind == "histogram") {
      t.add_row({s.name, s.kind, value.str(), support::fmt(s.p50, 4),
                 support::fmt(s.p95, 4), support::fmt(s.p99, 4)});
    } else {
      t.add_row({s.name, s.kind, value.str(), "", "", ""});
    }
  }
  return t.render();
}

}  // namespace sspred::serve
