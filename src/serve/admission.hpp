// Lock-free bounded admission queue (the serving stack's ingress).
//
// A bounded multi-producer/multi-consumer ring (Vyukov's array queue)
// with an exact capacity gate in front: submitters admit or shed a
// request with a handful of atomic operations and NEVER take a mutex, so
// admission cannot convoy behind a shard's dequeue scan or a slow worker.
// Shedding stays exact — `capacity` is enforced by a dedicated size
// counter, not by the (power-of-two) ring size — because admission
// control is a contract the tests pin ("capacity 4 admits exactly 4"),
// not a best-effort hint.
//
// Memory ordering: a producer writes the element, then releases the
// cell's sequence number; a consumer acquires the sequence number before
// reading the element. The size counter is sequentially consistent so
// the shard's sleep/wake protocol (see shard.cpp: producers read the
// idle-worker count after their push; sleepers re-check emptiness after
// advertising idleness) cannot lose a wakeup.
//
// close() makes every subsequent push fail with kClosed; elements already
// admitted remain poppable (shutdown drains and rejects them).
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace sspred::serve {

template <typename T>
class AdmissionQueue {
 public:
  enum class Push { kOk, kFull, kClosed };

  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
    SSPRED_REQUIRE(capacity >= 1, "admission queue needs capacity >= 1");
    std::size_t ring = 1;
    while (ring < capacity) ring <<= 1;
    mask_ = ring - 1;
    cells_ = std::vector<Cell>(ring);
    for (std::size_t i = 0; i < ring; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits `item` or reports why not. Lock-free; on kFull/kClosed the
  /// item is left untouched so the caller can still reject its promise.
  [[nodiscard]] Push try_push(T& item) {
    if (closed_.load(std::memory_order_acquire)) return Push::kClosed;
    // Exact capacity gate: claim a slot in the count first, back out on
    // overflow. The ring (>= capacity cells) then always has room.
    if (size_.fetch_add(1, std::memory_order_seq_cst) >=
        static_cast<std::ptrdiff_t>(capacity_)) {
      size_.fetch_sub(1, std::memory_order_seq_cst);
      return Push::kFull;
    }
    const std::size_t pos = enqueue_pos_.fetch_add(1, std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    // The cell is free once its sequence catches up to our ticket; the
    // capacity gate guarantees this happens after at most one in-flight
    // pop's epilogue, so the wait is a few cycles, not a spin lock.
    std::size_t spins = 0;
    while (cell.seq.load(std::memory_order_acquire) != pos) {
      if (++spins > 64) std::this_thread::yield();
    }
    cell.item = std::move(item);
    cell.seq.store(pos + 1, std::memory_order_release);
    return Push::kOk;
  }

  /// Pops the oldest element into `out`; false when the queue is empty.
  [[nodiscard]] bool try_pop(T& out) {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell* cell;
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::ptrdiff_t>(seq) -
                       static_cast<std::ptrdiff_t>(pos + 1);
      if (dif < 0) return false;  // empty (or a producer mid-publish)
      if (dif == 0 && dequeue_pos_.compare_exchange_weak(
                          pos, pos + 1, std::memory_order_relaxed)) {
        break;
      }
      // dif > 0 or CAS failure: another consumer advanced; `pos` was
      // reloaded by compare_exchange_weak, retry from there.
    }
    out = std::move(cell->item);
    cell->item = T{};  // drop promises/buffers eagerly, not on wraparound
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    size_.fetch_sub(1, std::memory_order_seq_cst);
    return true;
  }

  void close() { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// Elements admitted and not yet popped. Transiently overshoots by
  /// in-flight pushes that will back out; never undershoots an admitted,
  /// unpopped element (sized for the sleep/wake emptiness check).
  [[nodiscard]] std::size_t size() const {
    const auto n = size_.load(std::memory_order_seq_cst);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T item{};
  };

  std::size_t capacity_;
  std::size_t mask_ = 0;
  std::vector<Cell> cells_;
  // Hot indices on their own cache lines: producers share enqueue_pos_,
  // consumers share dequeue_pos_; false sharing between the two sides
  // would serialize them again.
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
  alignas(64) std::atomic<std::ptrdiff_t> size_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace sspred::serve
