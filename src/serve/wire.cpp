#include "serve/wire.hpp"

#include <cstring>

#include "support/error.hpp"

namespace sspred::serve {

namespace {

// --- Encoding ---------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  SSPRED_REQUIRE(s.size() <= 0xffffffffu, "wire string too long");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_value(std::vector<std::uint8_t>& out,
               const stoch::StochasticValue& v) {
  put_f64(out, v.mean());
  put_f64(out, v.halfwidth());
}

/// Prepends the length prefix and the common header.
std::vector<std::uint8_t> begin_frame(WireType type, std::uint64_t tag) {
  std::vector<std::uint8_t> out;
  put_u32(out, 0);  // length, patched by end_frame
  put_u16(out, kWireMagic);
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u64(out, tag);
  return out;
}

void end_frame(std::vector<std::uint8_t>& out) {
  const auto payload = static_cast<std::uint32_t>(out.size() - 4);
  for (int i = 0; i < 4; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload >> (8 * i));
  }
}

// --- Decoding ---------------------------------------------------------

/// Bounds-checked little-endian reader over one frame's payload.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1, "u8");
    return data_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    need(2, "u16");
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    need(n, "string bytes");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  [[nodiscard]] stoch::StochasticValue value() {
    const double mean = f64();
    const double half = f64();
    return {mean, half};
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return size_ - pos_;
  }

  /// Guards a declared element count against the bytes actually present
  /// BEFORE any reserve()/loop: each element needs at least
  /// `min_bytes_each`, so a forged count can never balloon an allocation
  /// past the frame it arrived in.
  void need_count(std::uint32_t count, std::size_t min_bytes_each,
                  const char* what) const {
    if (static_cast<std::uint64_t>(count) * min_bytes_each > remaining()) {
      throw support::Error(std::string("wire: declared ") + what +
                           " count " + std::to_string(count) +
                           " exceeds frame size");
    }
  }

  void expect_done(const char* what) const {
    if (pos_ != size_) {
      throw support::Error(std::string("wire: trailing bytes after ") + what);
    }
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (size_ - pos_ < n) {
      throw support::Error(std::string("wire: truncated frame reading ") +
                           what);
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::uint8_t decode_preamble(Reader& r) {
  const std::uint16_t magic = r.u16();
  if (magic != kWireMagic) {
    throw support::Error("wire: bad magic 0x" + std::to_string(magic));
  }
  const std::uint8_t version = r.u8();
  if (version != kWireVersion) {
    throw support::Error("wire: unsupported protocol version " +
                         std::to_string(version) + " (speaking " +
                         std::to_string(kWireVersion) + ")");
  }
  return r.u8();  // message type
}

std::uint64_t decode_header(Reader& r, WireType expected) {
  const std::uint8_t type = decode_preamble(r);
  if (type != static_cast<std::uint8_t>(expected)) {
    throw support::Error("wire: unexpected message type " +
                         std::to_string(type));
  }
  return r.u64();  // client tag
}

}  // namespace

WireType frame_type(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  const std::uint8_t type = decode_preamble(r);
  if (type < static_cast<std::uint8_t>(WireType::kRequest) ||
      type > static_cast<std::uint8_t>(WireType::kEpochAck)) {
    throw support::Error("wire: unknown message type " +
                         std::to_string(type));
  }
  return static_cast<WireType>(type);
}

std::vector<std::uint8_t> encode_request(const PredictRequest& request,
                                         std::uint64_t client_tag) {
  auto out = begin_frame(WireType::kRequest, client_tag);
  put_string(out, request.model_id);
  put_u8(out, static_cast<std::uint8_t>(request.mode));
  SSPRED_REQUIRE(request.loads.size() <= 0xffffffffu &&
                     request.resources.size() <= 0xffffffffu,
                 "wire request binds too many loads");
  put_u32(out, static_cast<std::uint32_t>(request.loads.size()));
  for (const auto& v : request.loads) put_value(out, v);
  put_u32(out, static_cast<std::uint32_t>(request.resources.size()));
  for (const auto& s : request.resources) put_string(out, s);
  put_value(out, request.bwavail);
  put_string(out, request.bwavail_resource);
  put_u64(out, request.trials);
  put_u64(out, request.seed);
  put_f64(out, request.precision);
  put_u8(out, request.precision_relative ? 1 : 0);
  put_u64(out, request.min_trials);
  end_frame(out);
  return out;
}

std::vector<std::uint8_t> encode_response(const PredictResult& result,
                                          std::uint64_t client_tag) {
  auto out = begin_frame(WireType::kResponse, client_tag);
  put_u8(out, static_cast<std::uint8_t>(result.status));
  put_string(out, result.error);
  put_value(out, result.value);
  put_f64(out, result.point);
  put_u64(out, result.request_id);
  put_u64(out, result.epoch_version);
  put_u64(out, static_cast<std::uint64_t>(result.batch_size));
  put_f64(out, result.latency_seconds);
  put_u8(out, result.source);
  put_u64(out, static_cast<std::uint64_t>(result.mc_trials));
  put_f64(out, result.mc_ci_halfwidth);
  put_u8(out, result.precision_met ? 1 : 0);
  end_frame(out);
  return out;
}

DecodedRequest decode_request(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  DecodedRequest out;
  out.client_tag = decode_header(r, WireType::kRequest);
  out.request.model_id = r.str();
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(Mode::kMonteCarlo)) {
    throw support::Error("wire: unknown prediction mode " +
                         std::to_string(mode));
  }
  out.request.mode = static_cast<Mode>(mode);
  const std::uint32_t loads = r.u32();
  r.need_count(loads, 16, "load");  // 2 doubles per value
  out.request.loads.reserve(loads);
  for (std::uint32_t i = 0; i < loads; ++i) {
    out.request.loads.push_back(r.value());
  }
  const std::uint32_t resources = r.u32();
  r.need_count(resources, 4, "resource");  // length prefix per string
  out.request.resources.reserve(resources);
  for (std::uint32_t i = 0; i < resources; ++i) {
    out.request.resources.push_back(r.str());
  }
  out.request.bwavail = r.value();
  out.request.bwavail_resource = r.str();
  out.request.trials = r.u64();
  out.request.seed = r.u64();
  out.request.precision = r.f64();
  out.request.precision_relative = r.u8() != 0;
  out.request.min_trials = r.u64();
  r.expect_done("request");
  return out;
}

DecodedResponse decode_response(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  DecodedResponse out;
  out.client_tag = decode_header(r, WireType::kResponse);
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(PredictResult::Status::kRejected)) {
    throw support::Error("wire: unknown result status " +
                         std::to_string(status));
  }
  out.result.status = static_cast<PredictResult::Status>(status);
  out.result.error = r.str();
  out.result.value = r.value();
  out.result.point = r.f64();
  out.result.request_id = r.u64();
  out.result.epoch_version = r.u64();
  out.result.batch_size = r.u64();
  out.result.latency_seconds = r.f64();
  out.result.source = r.u8();
  out.result.mc_trials = r.u64();
  out.result.mc_ci_halfwidth = r.f64();
  out.result.precision_met = r.u8() != 0;
  r.expect_done("response");
  return out;
}

std::vector<std::uint8_t> encode_heartbeat(std::uint64_t client_tag) {
  auto out = begin_frame(WireType::kHeartbeat, client_tag);
  end_frame(out);
  return out;
}

std::vector<std::uint8_t> encode_heartbeat_ack(const HeartbeatAck& ack) {
  auto out = begin_frame(WireType::kHeartbeatAck, ack.client_tag);
  put_u64(out, ack.epoch_version);
  put_u64(out, ack.queue_depth);
  end_frame(out);
  return out;
}

std::vector<std::uint8_t> encode_epoch_publish(const EpochFrame& frame) {
  auto out = begin_frame(WireType::kEpochPublish, frame.client_tag);
  put_u64(out, frame.version);
  SSPRED_REQUIRE(frame.bindings.size() <= 0xffffffffu,
                 "wire epoch carries too many bindings");
  put_u32(out, static_cast<std::uint32_t>(frame.bindings.size()));
  for (const auto& [name, value] : frame.bindings) {
    put_string(out, name);
    put_value(out, value);
  }
  end_frame(out);
  return out;
}

std::vector<std::uint8_t> encode_epoch_ack(const EpochAck& ack) {
  auto out = begin_frame(WireType::kEpochAck, ack.client_tag);
  put_u64(out, ack.version);
  end_frame(out);
  return out;
}

std::uint64_t decode_heartbeat(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  const std::uint64_t tag = decode_header(r, WireType::kHeartbeat);
  r.expect_done("heartbeat");
  return tag;
}

HeartbeatAck decode_heartbeat_ack(const std::uint8_t* data,
                                  std::size_t size) {
  Reader r(data, size);
  HeartbeatAck ack;
  ack.client_tag = decode_header(r, WireType::kHeartbeatAck);
  ack.epoch_version = r.u64();
  ack.queue_depth = r.u64();
  r.expect_done("heartbeat ack");
  return ack;
}

EpochFrame decode_epoch_publish(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  EpochFrame out;
  out.client_tag = decode_header(r, WireType::kEpochPublish);
  out.version = r.u64();
  const std::uint32_t count = r.u32();
  r.need_count(count, 4 + 16, "binding");  // name prefix + value
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = r.str();
    auto value = r.value();
    out.bindings.insert_or_assign(std::move(name), value);
  }
  r.expect_done("epoch publish");
  return out;
}

EpochAck decode_epoch_ack(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  EpochAck ack;
  ack.client_tag = decode_header(r, WireType::kEpochAck);
  ack.version = r.u64();
  r.expect_done("epoch ack");
  return ack;
}

void FrameBuffer::feed(const std::uint8_t* data, std::size_t size) {
  // Compact lazily: only when the dead prefix dominates, so a busy
  // connection isn't memmoving per frame.
  if (consumed_ > 0 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<std::vector<std::uint8_t>> FrameBuffer::take_frame() {
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(
               buffer_[consumed_ + static_cast<std::size_t>(i)])
           << (8 * i);
  }
  if (len > max_frame_bytes_) {
    throw support::Error("wire: frame length " + std::to_string(len) +
                         " exceeds cap " + std::to_string(max_frame_bytes_));
  }
  if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  std::vector<std::uint8_t> frame(
      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 4),
      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 4 + len));
  consumed_ += 4 + len;
  return frame;
}

}  // namespace sspred::serve
