// Consistent-hash routing of requests to prediction shards.
//
// The serving stack shards by *model structure*: every request carries a
// structure key (the canonical fingerprint of the model it evaluates, see
// model/fingerprint.hpp), and all requests for one structure land on one
// shard. That affinity is what makes sharding an algorithmic win rather
// than just a parallelism one — a shard's dequeue-time fusion scan only
// ever sees requests that can actually fuse with each other, its program
// cache holds exactly the structures it serves, and its completed-
// prediction FIFOs never interleave families.
//
// The ring is the classic consistent-hash construction: each shard owns
// `vnodes` pseudo-random points on the 64-bit ring; a key routes to the
// first shard point clockwise from the key's hash. With vnodes ~ 64 the
// keyspace splits evenly (CV of shard share ~ 1/sqrt(vnodes)), and
// adding/removing a shard moves only ~1/S of the keyspace — routing for
// surviving shards is stable, which keeps their caches warm.
//
// The router is immutable after construction; lookups are lock-free
// binary searches, safe from any thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace sspred::serve {

class ShardRouter {
 public:
  /// Builds the ring for `shards` shards with `vnodes` points each.
  explicit ShardRouter(std::size_t shards, std::size_t vnodes = 64);

  /// Shard owning `structure_key`'s hash. O(log(S * vnodes)).
  [[nodiscard]] std::size_t route(std::string_view structure_key) const;

  /// Shard owning a precomputed key hash (requests carry the hash so the
  /// hot path never re-hashes the key string).
  [[nodiscard]] std::size_t route_hash(std::uint64_t key_hash) const;

  /// R-way replica set for a key: the first `replicas` DISTINCT shards
  /// clockwise from the key's hash (the primary — route()'s answer —
  /// first, then its failover successors in ring order). Capped at the
  /// shard count; the order is deterministic, so every frontend derives
  /// the same failover sequence for a key.
  [[nodiscard]] std::vector<std::size_t> replica_set(
      std::string_view structure_key, std::size_t replicas) const;
  [[nodiscard]] std::vector<std::size_t> replica_set_hash(
      std::uint64_t key_hash, std::size_t replicas) const;

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t shard;
  };

  std::size_t shards_;
  std::vector<Point> ring_;  ///< sorted by position
};

}  // namespace sspred::serve
