// The serving stack's request/result vocabulary.
//
// Shared by every layer — admission (admission.hpp), routing
// (router.hpp), the per-shard execution engine (shard.hpp), the facade
// (service.hpp) and the wire codec (wire.hpp) — so it lives below all of
// them. Nothing here knows about queues, shards or workers: these are
// plain value types.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stoch/stochastic_value.hpp"

namespace sspred::serve {

/// How the prediction is computed.
enum class Mode {
  kStochastic,  ///< compiled §2.3 stochastic calculus
  kPoint,       ///< conventional point prediction (means only)
  kMonteCarlo,  ///< sampled mean ± 2sd, chunked across workers
};

/// One prediction query. Loads are bound either explicitly (`loads`,
/// one stochastic value per host) or by NWS resource name (`resources`,
/// resolved against the bindings epoch current at admission); exactly
/// one of the two must be provided. The bandwidth parameter defaults to
/// a dedicated segment and may likewise come from the epoch.
struct PredictRequest {
  std::string model_id;
  Mode mode = Mode::kStochastic;
  std::vector<stoch::StochasticValue> loads;
  std::vector<std::string> resources;
  stoch::StochasticValue bwavail = stoch::StochasticValue(1.0);
  std::string bwavail_resource;  ///< overrides `bwavail` when non-empty
  std::size_t trials = 2000;     ///< kMonteCarlo: trial count; with a
                                 ///< precision target, the max-trial clamp
  std::uint64_t seed = 1;        ///< kMonteCarlo only
  /// kMonteCarlo precision target: when > 0 trials run in blocks and stop
  /// at the first checkpoint where the CI half-width of the predicted
  /// mean is at or below this value (sequential stopping), clamped to
  /// [min_trials, trials]. Hitting the `trials` clamp with the target
  /// unmet is a structured partial-precision outcome (kOk with
  /// `precision_met` false), never an error. 0 keeps the fixed count.
  double precision = 0.0;
  bool precision_relative = false;  ///< `precision` is a fraction of |mean|
  std::size_t min_trials = 64;      ///< floor before the precision stop may
                                    ///< fire (ignored when precision == 0)
};

struct PredictResult {
  enum class Status {
    kOk,
    kError,     ///< structured failure; `error` says what went wrong
    kRejected,  ///< shed by admission control, routing, or shutdown
  };
  Status status = Status::kOk;
  std::string error;
  stoch::StochasticValue value;   ///< prediction (point: halfwidth 0)
  double point = 0.0;             ///< mean shortcut
  std::uint64_t request_id = 0;   ///< ticket for report_observation()
  /// Which predictor produced `value`: 0 structural, 1 learned, 2 blended
  /// (learn::Source numbering; always 0 when learning is disabled).
  std::uint8_t source = 0;
  std::uint64_t epoch_version = 0;  ///< bindings epoch served under (0: none)
  std::size_t batch_size = 1;     ///< requests sharing this evaluation
  double latency_seconds = 0.0;   ///< submit -> completion, service clock
  // Monte-Carlo execution detail (zero / defaulted for other modes):
  std::size_t mc_trials = 0;      ///< trials actually executed
  double mc_ci_halfwidth = 0.0;   ///< achieved CI half-width of the mean
  /// False only for a precision-target request whose target was still
  /// unmet at the `trials` clamp (partial precision; status stays kOk).
  bool precision_met = true;

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
};

}  // namespace sspred::serve
