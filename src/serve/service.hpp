// PredictionService — the facade over the layered, sharded serving stack.
//
// The public API is unchanged from the monolithic service:
//
//   submit(PredictRequest) -> std::future<PredictResult>
//
// but behind it the stack is now four layers (DESIGN.md §13):
//
//   admission  — per-shard lock-free bounded queue with exact,
//                per-reason shedding                    (admission.hpp)
//   routing    — consistent-hash ShardRouter sending every request for
//                one model structure to one shard        (router.hpp)
//   execution  — S PredictionShards, each a complete engine: worker
//                pool, program cache, coalescing/fusion, MC chunk
//                fan-out, epoch pin, observation FIFO      (shard.hpp)
//   frontend   — optional wire codec for remote clients     (wire.hpp)
//
// The facade itself only registers models (ModelTable, shared by all
// shards), stamps request ids (shard index in the low kShardBits so
// report_observation routes back to the owning shard), fans epoch
// publishes out to every shard, and aggregates metrics (service-wide
// rolled-up registry plus per-shard child registries).
//
// Determinism: routing is a pure function of the model's structure key
// and each shard processes its slice exactly as the monolith processed
// the whole stream, so for a fixed request set per-request results are
// bit-exact at ANY shard count (shard_test.cpp pins this).
//
// Error contract (unchanged): a request that cannot be served — unknown
// model id, wrong binding count, resource missing from the epoch, a
// worker-side exception of any kind — resolves its future with a
// structured PredictResult (status kError and a message); worker threads
// never die on a bad request. Rejection (queue full / service stopped /
// shard unavailable) resolves with status kRejected, counted per reason.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/epoch.hpp"
#include "serve/metrics.hpp"
#include "serve/program_cache.hpp"
#include "serve/request.hpp"
#include "serve/router.hpp"
#include "serve/shard.hpp"
#include "support/clock.hpp"

namespace sspred::serve {

class PredictionService {
 public:
  /// Low bits of every request id carry the owning shard's index.
  static constexpr std::size_t kShardBits = 8;
  static constexpr std::size_t kMaxShards = std::size_t{1} << kShardBits;

  explicit PredictionService(ServiceOptions options = {});
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Registers (or replaces) a model id. Ids are aliases: two ids with
  /// structurally identical specs share one cached program.
  void register_model(const std::string& id, ModelSpec spec);
  [[nodiscard]] std::vector<std::string> model_ids() const;

  /// Admits a request. Always returns a future that will be resolved —
  /// with kRejected immediately when the routed shard's queue is full,
  /// the shard is unavailable, or the service has stopped.
  [[nodiscard]] std::future<PredictResult> submit(PredictRequest request);

  /// Installs `epoch` as the bindings epoch for subsequently submitted
  /// requests on EVERY shard; in-flight requests keep the epoch they
  /// were admitted with (each pins exactly one epoch snapshot).
  void publish_epoch(EpochPtr epoch);
  [[nodiscard]] EpochPtr current_epoch() const;

  /// Pauses/resumes worker dequeueing on all shards (submissions still
  /// queue; in-flight work finishes). Used by tests to stage states.
  void pause();
  void resume();

  /// Blocks until every shard's queues are empty and workers idle.
  void drain();

  /// Closes the predict→observe loop: reports that the work predicted by
  /// the (completed, kOk) request `request_id` actually took
  /// `observed_seconds`, feeding the configured accuracy ledger on the
  /// shard that served the request. Returns false — and counts the
  /// report as unmatched — when no ledger is configured, the id is
  /// unknown, already reported, or was evicted.
  bool report_observation(std::uint64_t request_id, double observed_seconds);

  /// Service-wide registry: rolled-up totals under the monolith's metric
  /// names, plus per-shard "shard<k>/..." children when shards > 1 and a
  /// "learn/..." subtree when learning is enabled.
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

  // --- Learning surface -------------------------------------------------

  /// The learned-predictor bank / arbiter serving this service; null when
  /// learning is disabled. Shared across every shard, so arbitration is
  /// per model id service-wide whatever the shard count.
  [[nodiscard]] learn::PredictorBank* bank() const noexcept {
    return options_.bank.get();
  }
  [[nodiscard]] learn::Arbiter* arbiter() const noexcept {
    return options_.arbiter.get();
  }
  /// The learn/ metrics subtree (also attached under metrics() when
  /// learning is enabled).
  [[nodiscard]] MetricsRegistry& learn_metrics() noexcept {
    return learn_metrics_;
  }

  // --- Sharding surface -------------------------------------------------

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// Shard 0's program cache (the whole service's cache when shards==1,
  /// preserving the monolithic accessor).
  [[nodiscard]] ProgramCache& cache() noexcept { return cache(0); }
  [[nodiscard]] ProgramCache& cache(std::size_t shard);
  [[nodiscard]] MetricsRegistry& shard_metrics(std::size_t shard);
  [[nodiscard]] const ShardRouter& router() const noexcept { return router_; }
  /// Shard the CURRENT registration of `model_id` routes to (unknown ids
  /// route by id text so they still shed/err deterministically).
  [[nodiscard]] std::size_t shard_of(const std::string& model_id) const;
  /// Owning shard encoded in a request id.
  [[nodiscard]] static constexpr std::size_t shard_of_id(
      std::uint64_t request_id) noexcept {
    return request_id & (kMaxShards - 1);
  }

  /// Marks a shard (un)available to the routing layer. Requests routed
  /// to an unavailable shard are shed with rejected_shard_unavailable —
  /// structure affinity is a cache-locality contract, so the router
  /// sheds rather than silently rehoming a structure's stream.
  void set_shard_available(std::size_t shard, bool available);

 private:
  ServiceOptions options_;
  std::shared_ptr<support::Clock> clock_;
  MetricsRegistry metrics_;
  MetricsRegistry learn_metrics_;  ///< learn/ subtree (shards dual-write)
  ModelTable models_;
  ShardRouter router_;
  Counter& epochs_published_;
  Counter& observations_unmatched_;
  Counter& requests_stolen_;
  std::vector<std::unique_ptr<PredictionShard>> shards_;
  std::unique_ptr<std::atomic<bool>[]> available_;

  mutable std::mutex epoch_mutex_;
  EpochPtr epoch_;

  std::atomic<std::uint64_t> next_seq_{1};
};

}  // namespace sspred::serve
