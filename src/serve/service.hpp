// PredictionService — the concurrent serving layer over compiled models.
//
// Turns the library's one-shot prediction calls into a service:
//
//   submit(PredictRequest) -> std::future<PredictResult>
//
// with a fixed worker pool, a bounded admission queue (overload sheds
// rejected requests instead of growing without bound), a structure-keyed
// compiled-program cache (program_cache.hpp), request coalescing
// (identical requests against the same bindings epoch share a single
// evaluation), Monte-Carlo chunk fan-out across workers, versioned NWS
// bindings epochs (epoch.hpp) and a metrics registry (metrics.hpp).
//
// Error contract: a request that cannot be served — unknown model id,
// wrong binding count, resource missing from the epoch, a worker-side
// exception of any kind — resolves its future with a structured
// PredictResult (status kError and a message); worker threads never die
// on a bad request. Rejection (queue full / service stopped) resolves
// with status kRejected.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "calib/ledger.hpp"
#include "serve/epoch.hpp"
#include "serve/metrics.hpp"
#include "serve/program_cache.hpp"
#include "support/clock.hpp"
#include "support/rng.hpp"

namespace sspred::serve {

/// How the prediction is computed.
enum class Mode {
  kStochastic,  ///< compiled §2.3 stochastic calculus
  kPoint,       ///< conventional point prediction (means only)
  kMonteCarlo,  ///< sampled mean ± 2sd, chunked across workers
};

/// One prediction query. Loads are bound either explicitly (`loads`,
/// one stochastic value per host) or by NWS resource name (`resources`,
/// resolved against the bindings epoch current at submit time); exactly
/// one of the two must be provided. The bandwidth parameter defaults to
/// a dedicated segment and may likewise come from the epoch.
struct PredictRequest {
  std::string model_id;
  Mode mode = Mode::kStochastic;
  std::vector<stoch::StochasticValue> loads;
  std::vector<std::string> resources;
  stoch::StochasticValue bwavail = stoch::StochasticValue(1.0);
  std::string bwavail_resource;  ///< overrides `bwavail` when non-empty
  std::size_t trials = 2000;     ///< kMonteCarlo only
  std::uint64_t seed = 1;        ///< kMonteCarlo only
};

struct PredictResult {
  enum class Status {
    kOk,
    kError,     ///< structured failure; `error` says what went wrong
    kRejected,  ///< shed by admission control or service shutdown
  };
  Status status = Status::kOk;
  std::string error;
  stoch::StochasticValue value;   ///< prediction (point: halfwidth 0)
  double point = 0.0;             ///< mean shortcut
  std::uint64_t request_id = 0;   ///< ticket for report_observation()
  std::uint64_t epoch_version = 0;  ///< bindings epoch served under (0: none)
  std::size_t batch_size = 1;     ///< requests sharing this evaluation
  double latency_seconds = 0.0;   ///< submit -> completion, service clock

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
};

struct ServiceOptions {
  std::size_t workers = 4;
  /// Queued external requests beyond this are rejected, not queued.
  std::size_t queue_capacity = 1024;
  /// Share compiled programs across requests/ids (the program cache).
  /// Off: every request compiles its model from scratch (bench baseline).
  bool enable_cache = true;
  /// Coalesce identical queued (model, epoch, bindings) requests into one
  /// evaluation at dequeue time.
  bool enable_coalescing = true;
  /// Fuse queued structure-equal requests with *distinct* bindings into the
  /// lanes of one request-major kernel sweep at dequeue time (bit-exact per
  /// request; see ir::Program::sample_fused). Needs the program cache
  /// (fusion shares one compiled program across lanes), so enable_cache
  /// off disables it too.
  bool enable_fusion = true;
  std::size_t max_batch = 64;  ///< coalesced/fused requests per evaluation
  /// Monte-Carlo requests with more trials than this are split into
  /// chunks executed across the pool (when workers > 1).
  std::size_t mc_chunk_trials = 2048;
  /// Time source for latency metrics; null selects support::real_clock().
  std::shared_ptr<support::Clock> clock;
  /// Accuracy ledger fed by report_observation(); null disables the
  /// predict→observe feedback loop (see calib/ledger.hpp).
  std::shared_ptr<calib::AccuracyLedger> ledger;
  /// Completed predictions kept (FIFO) awaiting their observation; a
  /// report arriving after eviction counts as unmatched.
  std::size_t observation_capacity = 4096;
  /// Top of the latency histogram range, seconds.
  double latency_range_seconds = 1.0;
  /// Construct with workers blocked; resume() starts processing. Lets
  /// tests (and benchmarks) stage a queue deterministically.
  bool start_paused = false;
};

class PredictionService {
 public:
  explicit PredictionService(ServiceOptions options = {});
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Registers (or replaces) a model id. Ids are aliases: two ids with
  /// structurally identical specs share one cached program.
  void register_model(const std::string& id, ModelSpec spec);
  [[nodiscard]] std::vector<std::string> model_ids() const;

  /// Admits a request. Always returns a future that will be resolved —
  /// with kRejected immediately when the queue is full.
  [[nodiscard]] std::future<PredictResult> submit(PredictRequest request);

  /// Installs `epoch` as the bindings epoch for subsequently submitted
  /// requests; in-flight requests keep the epoch they were admitted with.
  void publish_epoch(EpochPtr epoch);
  [[nodiscard]] EpochPtr current_epoch() const;

  /// Pauses/resumes worker dequeueing (submissions still queue; in-flight
  /// work finishes). Used by tests to stage coalescing/admission states.
  void pause();
  void resume();

  /// Blocks until the queue is empty and every worker is idle.
  void drain();

  /// Closes the predict→observe loop: reports that the work predicted by
  /// the (completed, kOk) request `request_id` actually took
  /// `observed_seconds`, feeding the configured accuracy ledger. Returns
  /// false — and counts the report as unmatched — when no ledger is
  /// configured, the id is unknown, already reported, or was evicted.
  bool report_observation(std::uint64_t request_id, double observed_seconds);

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] ProgramCache& cache() noexcept { return cache_; }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

 private:
  /// One queued external request.
  struct Job {
    PredictRequest request;
    std::promise<PredictResult> promise;
    EpochPtr epoch;
    std::uint64_t id = 0;  ///< stamped at submit; returned in the result
    double enqueue_time = 0.0;
    /// Structure key of the registered model at submit time (empty when
    /// the id is unknown). Lets the dequeue scan group structure-equal
    /// requests across model ids without touching the model table.
    std::string structure_key;
  };

  /// A promise awaiting resolution, tagged with its request id.
  struct Pending {
    std::uint64_t id = 0;
    std::promise<PredictResult> promise;
  };

  /// One lane of a fused request-major evaluation: a distinct-bindings
  /// request plus the promises of identical requests collapsed onto it
  /// (those fan the lane's single result out).
  struct FusedLane {
    Job job;
    std::vector<Pending> extra;
  };

  /// Shared state of one fanned-out Monte-Carlo evaluation.
  struct McShared {
    CompiledModelPtr model;
    std::string model_id;
    std::vector<stoch::StochasticValue> loads;  ///< resolved bindings
    stoch::StochasticValue bwavail;
    std::uint64_t seed = 0;
    std::size_t total_trials = 0;
    std::uint64_t epoch_version = 0;
    double enqueue_time = 0.0;
    std::vector<Pending> promises;  ///< whole batch

    std::mutex m;
    /// Per-chunk (sum, sum of squares); combined in index order at the
    /// end so the result is independent of worker scheduling.
    std::vector<std::pair<double, double>> partials;
    std::size_t remaining = 0;
  };

  /// One queued Monte-Carlo chunk (internal; not admission-controlled).
  struct McChunk {
    std::shared_ptr<McShared> shared;
    std::size_t index = 0;
    std::size_t trials = 0;
  };

  using Task = std::variant<Job, McChunk>;

  /// Per-worker reusable evaluation state (slot environments keyed by
  /// compiled model, one workspace) — keeps the hot path allocation-free.
  struct WorkerState {
    std::map<const CompiledModel*,
             std::pair<CompiledModelPtr, model::ir::SlotEnvironment>>
        envs;
    model::ir::EvalWorkspace ws;
    // Fused-path pools, reused across batches (allocation-free once warm).
    model::ir::LaneEnvironment lane_env;
    std::vector<support::Rng> rngs;
    std::vector<stoch::StochasticValue> fused_values;
    std::vector<double> fused_points;
    std::vector<stoch::StochasticValue> lane_loads;

    [[nodiscard]] model::ir::SlotEnvironment& env_for(
        const CompiledModelPtr& model);
  };

  void worker_loop();
  void execute_job(Job&& job, std::vector<Pending>&& extra,
                   WorkerState& state);
  /// Runs `lanes` (>= 2, pairwise fusable) as one fused sweep; falls back
  /// to per-lane execute_job — the canonical solo path — when the batch
  /// cannot be served as one sweep (model churn, binding errors, an
  /// evaluation throw in any lane).
  void execute_fused(std::vector<FusedLane>&& lanes, WorkerState& state);
  void execute_chunk(const McChunk& chunk, WorkerState& state);
  /// Resolves the request's model (cache or fresh compile per options).
  [[nodiscard]] CompiledModelPtr resolve_model(const PredictRequest& request);
  /// Resolves load/bandwidth bindings against the job's epoch; throws
  /// support::Error with a structured message on any mismatch.
  void resolve_bindings(const Job& job, const CompiledModel& model,
                        std::vector<stoch::StochasticValue>& loads,
                        stoch::StochasticValue& bwavail) const;
  void bind(model::ir::SlotEnvironment& env, const CompiledModel& model,
            std::span<const stoch::StochasticValue> loads,
            const stoch::StochasticValue& bwavail) const;
  /// Fulfills the batch's promises with `base` (per-promise request id);
  /// successful results are remembered for report_observation().
  void finish_batch(std::vector<Pending>& promises, PredictResult base,
                    double enqueue_time, const std::string& model_id);
  /// Remembers a completed prediction until its observation arrives
  /// (bounded FIFO; no-op without a ledger).
  void remember_prediction(std::uint64_t request_id,
                           const std::string& model_id,
                           const stoch::StochasticValue& value);
  [[nodiscard]] bool coalescable(const Job& a, const Job& b) const;
  /// Whether two non-identical jobs can share one fused sweep: same mode
  /// and epoch version, same compiled structure (same model id or equal
  /// non-empty structure keys), and for Monte-Carlo the same unchunked
  /// trial count (chunked requests keep the fan-out path).
  [[nodiscard]] bool fusable(const Job& a, const Job& b) const;
  [[nodiscard]] double now() const noexcept { return clock_->now(); }

  ServiceOptions options_;
  std::shared_ptr<support::Clock> clock_;
  MetricsRegistry metrics_;
  ProgramCache cache_;

  /// A registered model plus its precomputed structure fingerprint (the
  /// fused grouping key, stamped onto jobs at submit).
  struct RegisteredModel {
    ModelSpec spec;
    std::string structure_key;
  };
  mutable std::mutex models_mutex_;
  std::map<std::string, RegisteredModel> models_;

  mutable std::mutex epoch_mutex_;
  EpochPtr epoch_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;  ///< work available / state change
  std::condition_variable idle_cv_;   ///< queue empty + workers idle
  std::deque<Task> queue_;
  std::size_t queued_jobs_ = 0;  ///< external Jobs in queue_ (not chunks)
  bool paused_ = false;
  bool stop_ = false;
  std::size_t busy_ = 0;

  std::vector<std::thread> threads_;

  std::atomic<std::uint64_t> next_request_id_{1};

  /// Completed predictions awaiting report_observation(), FIFO-bounded
  /// by options_.observation_capacity.
  struct CompletedPrediction {
    std::string model_id;
    stoch::StochasticValue value;
  };
  std::mutex observations_mutex_;
  std::map<std::uint64_t, CompletedPrediction> completed_;
  std::deque<std::uint64_t> completed_order_;

  // Hot-path instrument handles (stable addresses inside metrics_).
  Counter& requests_total_;
  Counter& requests_ok_;
  Counter& requests_error_;
  Counter& requests_rejected_;
  Counter& coalesced_;
  Counter& requests_fused_;
  Counter& mc_chunks_;
  Counter& epochs_published_;
  Counter& cache_hits_;
  Counter& cache_misses_;
  Counter& observations_recorded_;
  Counter& observations_unmatched_;
  Gauge& queue_depth_;
  Gauge& workers_busy_;
  LatencyHistogram& latency_;
  LatencyHistogram& batch_sizes_;
  LatencyHistogram& fused_occupancy_;
};

}  // namespace sspred::serve
