// Compiled-program cache for the prediction service.
//
// Compiling a structural model (authoring the Expr tree + lowering it to
// the flat IR) is orders of magnitude more expensive than evaluating the
// compiled program once, so a service that recompiles per request wastes
// almost its whole budget on compilation. The cache keys compiled models
// by *structure* — two registered model ids that describe the same
// (application, platform, problem, options) tuple share one compiled
// program — and single-flights first compilation: when N threads race to
// compile a cold key, exactly one compiles and the rest block on the
// resulting entry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "cluster/platform.hpp"
#include "predict/sor_model.hpp"
#include "sor/distributed.hpp"

namespace sspred::serve {

/// Everything that determines a compiled program's structure. The
/// platform's load *processes* are deliberately excluded from the key:
/// loads are runtime bindings, not structure.
struct ModelSpec {
  enum class App { kSor, kBlockSor, kJacobi };
  App app = App::kSor;
  cluster::PlatformSpec platform;
  sor::SorConfig config;           ///< n/iterations(/rows_per_rank) used
  std::size_t pr = 1, pc = 1;      ///< process grid (kBlockSor only)
  predict::SorModelOptions options;

  /// Canonical fingerprint of the structural inputs; equal keys compile
  /// to interchangeable programs (same nodes, same slot table).
  [[nodiscard]] std::string structure_key() const;
};

/// A compiled structural model with uniform slot accessors over the
/// three application model classes. Immutable after construction;
/// concurrent evaluation is safe with per-thread SlotEnvironment +
/// EvalWorkspace (see model/ir.hpp).
class CompiledModel {
 public:
  explicit CompiledModel(const ModelSpec& spec);

  [[nodiscard]] const ModelSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const model::ir::Program& program() const noexcept;

  [[nodiscard]] std::size_t hosts() const noexcept {
    return load_slots_.size();
  }
  /// Slot id of host p's load parameter.
  [[nodiscard]] std::uint32_t load_slot(std::size_t p) const;
  [[nodiscard]] bool uses_bandwidth() const noexcept {
    return bwavail_slot_ != kNoSlot;
  }
  /// Slot id of the bandwidth-availability parameter; requires
  /// uses_bandwidth().
  [[nodiscard]] std::uint32_t bwavail_slot() const;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  ModelSpec spec_;
  std::variant<predict::SorStructuralModel, predict::BlockStructuralModel,
               predict::JacobiStructuralModel>
      impl_;
  std::vector<std::uint32_t> load_slots_;
  std::uint32_t bwavail_slot_ = kNoSlot;
};

using CompiledModelPtr = std::shared_ptr<const CompiledModel>;

/// Structure-keyed cache of compiled models with single-flight misses.
class ProgramCache {
 public:
  struct Lookup {
    CompiledModelPtr model;
    bool hit = false;  ///< true when no compilation happened on this call's key
  };

  /// Returns the cached model for spec's structure, compiling it (once,
  /// however many threads race here) on a cold key. A compilation failure
  /// is cached and rethrown to every waiter — the spec is structurally
  /// bad, retrying cannot help.
  [[nodiscard]] Lookup get_or_compile(const ModelSpec& spec);

  /// Same, with spec's structure key already serialized (the service
  /// fingerprints a model once at registration and passes the stamped key
  /// here, so the hot path never re-serializes the spec — per-request key
  /// serialization used to be the dominant service-side cost). `key` MUST
  /// equal spec.structure_key().
  [[nodiscard]] Lookup get_or_compile(const ModelSpec& spec,
                                      const std::string& key);

  /// Number of compilations actually performed (== distinct keys seen,
  /// counting failed ones).
  [[nodiscard]] std::uint64_t compile_count() const noexcept {
    return compiles_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t hit_count() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t miss_count() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t size() const;

  void clear();

 private:
  /// One cache slot; created on first lookup of a key, filled by the
  /// single compiling thread, waited on by everyone else.
  struct Slot {
    std::mutex m;
    std::condition_variable cv;
    CompiledModelPtr model;   ///< set on success
    bool done = false;
    std::string error;        ///< set instead when compilation threw
  };

  mutable std::mutex mutex_;  ///< guards slots_ (not the slots themselves)
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> compiles_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace sspred::serve
