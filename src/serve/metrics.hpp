// Service metrics: counters, gauges and latency histograms.
//
// The serving layer's observability surface. Counters and gauges are
// lock-free atomics so the request hot path never contends on a metrics
// mutex; latency histograms take a short lock per observation (bucketed
// into a fixed-width stats::Histogram plus exact min/max/sum, quantiles
// interpolated from the buckets). A MetricsRegistry names and owns the
// instruments and renders a one-shot snapshot for CLIs and tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "stats/histogram.hpp"

namespace sspred::serve {

/// Monotonically increasing event count.
class Counter {
 public:
  void increment(std::uint64_t by = 1) noexcept {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, busy workers).
class Gauge {
 public:
  void add(std::int64_t by) noexcept {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  void sub(std::int64_t by) noexcept { add(-by); }
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Latency (or any size-like) distribution over a fixed range [0, hi),
/// bucketed into a stats::Histogram. Values beyond `hi` clamp into the
/// last bucket (stats::Histogram semantics), so quantiles saturate at the
/// range top instead of being dropped.
class LatencyHistogram {
 public:
  /// `hi` is the top of the tracked range, `bins` the bucket count.
  explicit LatencyHistogram(double hi = 1.0, std::size_t bins = 256);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Quantile q in [0,1], interpolated within the owning bucket; exact
  /// min/max for q==0/1. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

 private:
  mutable std::mutex mutex_;
  stats::Histogram hist_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One rendered metric line of a snapshot.
struct MetricSample {
  std::string name;
  std::string kind;  ///< "counter", "gauge" or "histogram"
  double value = 0.0;               ///< counter/gauge value, histogram count
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, mean = 0.0;  ///< histograms only
};

/// Named instrument registry. Instruments are created on first use and
/// have stable addresses for the registry's lifetime, so hot paths can
/// cache `Counter&` references and bump them without any lookup.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// First use fixes the histogram's range/bins; later calls ignore them.
  [[nodiscard]] LatencyHistogram& histogram(const std::string& name,
                                            double hi = 1.0,
                                            std::size_t bins = 256);

  /// Attaches `child` so snapshots (and both renderings) include its
  /// instruments as "label/name" rows after this registry's own — how
  /// the sharded service reports per-shard p50/p95/p99 next to the
  /// rolled-up totals, and how the cluster frontend nests a node's
  /// registry (whose own children yield "node0/shard1/..." rows:
  /// prefixes compose per attachment level). An EMPTY label merges the
  /// child's rows unprefixed — a stable parent registry can front a
  /// replaceable one. `child` is not owned and must stay alive until
  /// detached (remove_child()/clear_children()) or the registry dies.
  void add_child(const std::string& label, const MetricsRegistry* child);
  /// Detaches every child attached under `label`.
  void remove_child(const std::string& label);
  void clear_children();

  /// All instruments, name-sorted (histograms summarized as p50/p95/p99),
  /// followed by each attached child's instruments label-prefixed.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Snapshot rendered as an aligned text table.
  [[nodiscard]] std::string render() const;

  /// Snapshot rendered as JSON: {"metrics": [{"name", "kind", "value",
  /// and for histograms "mean"/"p50"/"p95"/"p99"}, ...]} — the
  /// machine-readable counterpart of render().
  [[nodiscard]] std::string render_json() const;

 private:
  mutable std::mutex mutex_;  ///< guards the maps, not the instruments
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
  /// Attached sub-registries, rendered label-prefixed (never snapshotted
  /// while holding mutex_ — children take their own locks).
  std::vector<std::pair<std::string, const MetricsRegistry*>> children_;
};

}  // namespace sspred::serve
