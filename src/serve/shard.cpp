#include "serve/shard.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "learn/feature.hpp"
#include "model/fingerprint.hpp"
#include "support/error.hpp"

namespace sspred::serve {

namespace {

/// Independent, deterministic RNG seed for Monte-Carlo chunk `index`:
/// fixed (request seed, index) -> fixed stream, whatever worker runs it.
[[nodiscard]] std::uint64_t chunk_seed(std::uint64_t seed,
                                       std::size_t index) noexcept {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return support::splitmix64(state);
}

}  // namespace

// --- ModelTable --------------------------------------------------------

void ModelTable::insert(const std::string& id, ModelSpec spec) {
  auto entry = std::make_shared<Entry>();
  entry->structure_key = spec.structure_key();  // outside the lock
  entry->key_hash = model::hash_bytes(entry->structure_key);
  entry->spec = std::move(spec);
  const std::unique_lock lock(mutex_);
  models_.insert_or_assign(id, std::move(entry));
}

ModelTable::EntryPtr ModelTable::find(const std::string& id) const {
  const std::shared_lock lock(mutex_);
  const auto it = models_.find(id);
  return it == models_.end() ? nullptr : it->second;
}

std::vector<std::string> ModelTable::ids() const {
  const std::shared_lock lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(models_.size());
  for (const auto& [id, _] : models_) ids.push_back(id);
  return ids;
}

void ModelTable::throw_unknown(const std::string& id) const {
  std::ostringstream msg;
  msg << "unknown model id '" << id << "' (registered:";
  {
    const std::shared_lock lock(mutex_);
    for (const auto& [known, _] : models_) msg << ' ' << known;
  }
  msg << ')';
  throw support::Error(msg.str());
}

// --- PredictionShard ---------------------------------------------------

model::ir::SlotEnvironment& PredictionShard::WorkerState::env_for(
    const CompiledModelPtr& model) {
  auto it = envs.find(model.get());
  if (it == envs.end()) {
    it = envs
             .emplace(model.get(),
                      std::make_pair(model, model->program().make_environment()))
             .first;
  }
  return it->second.second;
}

PredictionShard::PredictionShard(std::size_t index,
                                 const ServiceOptions& options,
                                 std::shared_ptr<support::Clock> clock,
                                 const ModelTable& models,
                                 MetricsRegistry& global,
                                 MetricsRegistry& learn_global)
    : index_(index),
      options_(options),
      clock_(std::move(clock)),
      models_(models),
      ring_(options.queue_capacity),
      requests_total_{global.counter("requests_total"),
                      local_.counter("requests_total")},
      requests_ok_{global.counter("requests_ok"),
                   local_.counter("requests_ok")},
      requests_error_{global.counter("requests_error"),
                      local_.counter("requests_error")},
      requests_rejected_{global.counter("requests_rejected"),
                         local_.counter("requests_rejected")},
      rejected_queue_full_{global.counter("rejected_queue_full"),
                           local_.counter("rejected_queue_full")},
      rejected_stopped_{global.counter("rejected_stopped"),
                        local_.counter("rejected_stopped")},
      rejected_shard_unavailable_{
          global.counter("rejected_shard_unavailable"),
          local_.counter("rejected_shard_unavailable")},
      coalesced_{global.counter("requests_coalesced"),
                 local_.counter("requests_coalesced")},
      requests_fused_{global.counter("requests_fused"),
                      local_.counter("requests_fused")},
      mc_chunks_{global.counter("mc_chunks_executed"),
                 local_.counter("mc_chunks_executed")},
      mc_trials_saved_{global.counter("mc_trials_saved"),
                       local_.counter("mc_trials_saved")},
      epochs_published_(local_.counter("epochs_published")),
      cache_hits_{global.counter("cache_hits"), local_.counter("cache_hits")},
      cache_misses_{global.counter("cache_misses"),
                    local_.counter("cache_misses")},
      observations_recorded_{global.counter("observations_recorded"),
                             local_.counter("observations_recorded")},
      observations_unmatched_{global.counter("observations_unmatched"),
                              local_.counter("observations_unmatched")},
      predictions_served_structural_{
          learn_global.counter("predictions_served_structural"),
          local_.counter("predictions_served_structural")},
      predictions_served_learned_{
          learn_global.counter("predictions_served_learned"),
          local_.counter("predictions_served_learned")},
      predictions_served_blended_{
          learn_global.counter("predictions_served_blended"),
          local_.counter("predictions_served_blended")},
      observations_trained_{learn_global.counter("observations_trained"),
                            local_.counter("observations_trained")},
      arbiter_flips_{learn_global.counter("arbiter_flips"),
                     local_.counter("arbiter_flips")},
      queue_depth_{global.gauge("queue_depth"), local_.gauge("queue_depth")},
      workers_busy_{global.gauge("workers_busy"),
                    local_.gauge("workers_busy")},
      latency_{global.histogram("latency_seconds",
                                options.latency_range_seconds, 512),
               local_.histogram("latency_seconds",
                                options.latency_range_seconds, 512)},
      batch_sizes_{
          global.histogram("batch_size",
                           static_cast<double>(options.max_batch) + 1.0,
                           std::max<std::size_t>(options.max_batch, 1)),
          local_.histogram("batch_size",
                           static_cast<double>(options.max_batch) + 1.0,
                           std::max<std::size_t>(options.max_batch, 1))},
      fused_occupancy_{
          global.histogram("fused_batch_occupancy",
                           static_cast<double>(options.max_batch) + 1.0,
                           std::max<std::size_t>(options.max_batch, 1)),
          local_.histogram("fused_batch_occupancy",
                           static_cast<double>(options.max_batch) + 1.0,
                           std::max<std::size_t>(options.max_batch, 1))},
      mc_trials_{global.histogram("mc_trials_executed", 32769.0, 256),
                 local_.histogram("mc_trials_executed", 32769.0, 256)} {
  SSPRED_REQUIRE(options_.workers >= 1, "shard needs at least one worker");
  SSPRED_REQUIRE(options_.mc_chunk_trials >= 2,
                 "mc_chunk_trials must be at least 2");
  paused_ = options_.start_paused;
  threads_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

PredictionShard::~PredictionShard() {
  ring_.close();  // subsequent submits shed as "service stopped"
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();

  // Resolve whatever was still queued so no future is left broken.
  stage_admitted();  // workers are gone; safe without the lock
  std::int64_t drained = 0;
  for (auto& job : staging_) {
    ++drained;
    reject(std::move(job), rejected_stopped_, "service stopped");
  }
  staging_.clear();
  queue_depth_.add(-drained);
  for (auto& chunk : chunks_) {
    auto& shared = *chunk.shared;
    const std::lock_guard lock(shared.m);
    if (shared.promises.empty()) continue;
    requests_rejected_.increment(shared.promises.size());
    rejected_stopped_.increment(shared.promises.size());
    PredictResult rejected;
    rejected.status = PredictResult::Status::kRejected;
    rejected.error = "service stopped";
    for (auto& p : shared.promises) {
      rejected.request_id = p.id;
      p.promise.set_value(rejected);
    }
    shared.promises.clear();
  }
  idle_cv_.notify_all();
}

void PredictionShard::reject(Job&& job, DualCounter& why, std::string reason) {
  requests_rejected_.increment();
  why.increment();
  PredictResult rejected;
  rejected.status = PredictResult::Status::kRejected;
  rejected.error = std::move(reason);
  rejected.request_id = job.id;
  job.promise.set_value(std::move(rejected));
}

void PredictionShard::submit(Job job) {
  requests_total_.increment();
  {
    // The bindings epoch is pinned here, at shard admission: the job
    // holds this one immutable snapshot for its whole life, so no
    // request can ever observe two epochs however publishes interleave.
    const std::lock_guard lock(epoch_mutex_);
    job.epoch = epoch_;
  }
  switch (ring_.try_push(job)) {
    case AdmissionQueue<Job>::Push::kOk: {
      queue_depth_.add(1);
      // Mutex-free fast path: only when some worker advertised idleness
      // does the producer touch the shard lock (empty critical section —
      // it fences the sleeper's check-then-wait window, see admission.hpp)
      // and signal. Under load idle_ is zero and submission is a handful
      // of atomics end to end.
      if (idle_.load(std::memory_order_seq_cst) > 0) {
        { const std::lock_guard lock(mutex_); }
        cv_.notify_one();
      }
      return;
    }
    case AdmissionQueue<Job>::Push::kFull:
      reject(std::move(job), rejected_queue_full_,
             "queue full (capacity " +
                 std::to_string(options_.queue_capacity) + ")");
      return;
    case AdmissionQueue<Job>::Push::kClosed:
      reject(std::move(job), rejected_stopped_, "service stopped");
      return;
  }
}

void PredictionShard::reject_unavailable(Job job) {
  requests_total_.increment();
  reject(std::move(job), rejected_shard_unavailable_,
         "shard " + std::to_string(index_) + " unavailable");
}

void PredictionShard::publish_epoch(EpochPtr epoch) {
  {
    const std::lock_guard lock(epoch_mutex_);
    epoch_ = std::move(epoch);
  }
  epochs_published_.increment();
}

EpochPtr PredictionShard::current_epoch() const {
  const std::lock_guard lock(epoch_mutex_);
  return epoch_;
}

void PredictionShard::pause() {
  const std::lock_guard lock(mutex_);
  paused_ = true;
}

void PredictionShard::resume() {
  {
    const std::lock_guard lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

bool PredictionShard::has_work() const {
  return !chunks_.empty() || !staging_.empty() || ring_.size() > 0;
}

void PredictionShard::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return stop_ || (!has_work() && busy_ == 0); });
}

void PredictionShard::stage_admitted() {
  Job job;
  while (ring_.try_pop(job)) staging_.push_back(std::move(job));
}

bool PredictionShard::coalescable(const Job& a, const Job& b) const {
  const auto& ra = a.request;
  const auto& rb = b.request;
  const std::uint64_t ea = a.epoch ? a.epoch->version() : 0;
  const std::uint64_t eb = b.epoch ? b.epoch->version() : 0;
  if (ra.model_id != rb.model_id || ra.mode != rb.mode || ea != eb) {
    return false;
  }
  if (ra.loads != rb.loads || ra.resources != rb.resources ||
      ra.bwavail != rb.bwavail || ra.bwavail_resource != rb.bwavail_resource) {
    return false;
  }
  if (ra.mode == Mode::kMonteCarlo &&
      (ra.trials != rb.trials || ra.seed != rb.seed ||
       ra.precision != rb.precision ||
       ra.precision_relative != rb.precision_relative ||
       ra.min_trials != rb.min_trials)) {
    return false;
  }
  return true;
}

bool PredictionShard::fusable(const Job& a, const Job& b) const {
  const auto& ra = a.request;
  const auto& rb = b.request;
  if (ra.mode != rb.mode) return false;
  const std::uint64_t ea = a.epoch ? a.epoch->version() : 0;
  const std::uint64_t eb = b.epoch ? b.epoch->version() : 0;
  if (ea != eb) return false;
  if (ra.mode == Mode::kMonteCarlo) {
    // Each lane runs its own trial schedule (the adaptive fused sweep
    // legalizes unequal trial counts and mixed fixed-count +
    // precision-target batches; distinct seeds drive per-lane RNG
    // substreams either way). Chunked requests (trials >
    // mc_chunk_trials) keep the fan-out path — for a precision target
    // `trials` is the max clamp, so an oversized clamp runs solo
    // adaptive instead — and sampling needs at least 2 trials.
    if (ra.trials < 2 || ra.trials > options_.mc_chunk_trials) return false;
    if (rb.trials < 2 || rb.trials > options_.mc_chunk_trials) return false;
  }
  if (ra.model_id == rb.model_id) return true;
  // Submit-time registration stamps prove structural equality without
  // touching the model table (unknown ids carry no stamp, never fuse).
  return a.model && b.model &&
         (a.model == b.model ||
          a.model->structure_key == b.model->structure_key);
}

void PredictionShard::worker_loop() {
  WorkerState state;
  std::unique_lock lock(mutex_);
  for (;;) {
    // Sleep protocol (the consumer half of the mutex-free submit path):
    // advertise idleness FIRST, re-check the ring AFTER — seq_cst on
    // idle_ and the ring's size counter gives a total order in which
    // either this re-check sees the producer's push, or the producer's
    // post-push idle_ read sees our advertisement and signals.
    for (;;) {
      if (stop_) return;
      if (!paused_) {
        if (!chunks_.empty() || !staging_.empty()) break;
        stage_admitted();
        if (!staging_.empty()) break;
      }
      idle_.fetch_add(1, std::memory_order_seq_cst);
      if (!paused_ && !stop_ && ring_.size() > 0) {
        idle_.fetch_sub(1, std::memory_order_seq_cst);
        continue;  // a push landed between the drain and the advert
      }
      cv_.wait(lock);
      idle_.fetch_sub(1, std::memory_order_seq_cst);
    }

    if (!chunks_.empty()) {
      // Internal Monte-Carlo chunks jump the external queue: they
      // complete requests that were already admitted.
      const McChunk chunk = std::move(chunks_.front());
      chunks_.pop_front();
      ++busy_;
      workers_busy_.add(1);
      lock.unlock();
      execute_chunk(chunk, state);
    } else {
      std::vector<FusedLane> lanes;
      lanes.push_back(FusedLane{std::move(staging_.front()), {}});
      staging_.pop_front();
      std::int64_t taken = 1;
      // Dequeue-time grouping. Each staged job first tries to collapse
      // onto ANY open lane with identical bindings (one evaluation, result
      // fanned out) and only then to open a new lane of the fused sweep —
      // so mixed streams of identical and merely structure-equal requests
      // fill lanes instead of starving the fused path. Fusion needs the
      // program cache: the sweep shares one compiled program.
      const bool fuse = options_.enable_fusion && options_.enable_cache;
      if (options_.enable_coalescing || fuse) {
        stage_admitted();  // scan late arrivals too, like the old queue
        for (auto it = staging_.begin(); it != staging_.end();) {
          Job& other = *it;
          bool taken_one = false;
          if (options_.enable_coalescing) {
            for (auto& lane : lanes) {
              if (lane.extra.size() + 1 < options_.max_batch &&
                  coalescable(lane.job, other)) {
                lane.extra.push_back(
                    Pending{other.id, std::move(other.promise)});
                taken_one = true;
                break;
              }
            }
          }
          if (!taken_one && fuse && lanes.size() < options_.max_batch &&
              fusable(lanes.front().job, other)) {
            lanes.push_back(FusedLane{std::move(other), {}});
            taken_one = true;
          }
          if (taken_one) {
            it = staging_.erase(it);
            ++taken;
          } else {
            ++it;
          }
        }
      }
      queue_depth_.add(-taken);
      ++busy_;
      workers_busy_.add(1);
      lock.unlock();

      if (lanes.size() > 1) {
        execute_fused(std::move(lanes), state);
      } else {
        execute_job(std::move(lanes.front().job),
                    std::move(lanes.front().extra), state);
      }
    }

    lock.lock();
    --busy_;
    workers_busy_.add(-1);
    if (busy_ == 0 && !has_work()) idle_cv_.notify_all();
  }
}

CompiledModelPtr PredictionShard::resolve_model(const PredictRequest& request,
                                                ModelTable::EntryPtr* entry_out) {
  // Execute-time resolution against the CURRENT registration — an id
  // re-registered between submit and dequeue serves the new structure,
  // and the Entry snapshot guarantees spec and key agree (the cache can
  // never be asked for a stale key's program).
  const ModelTable::EntryPtr entry = models_.find(request.model_id);
  if (!entry) models_.throw_unknown(request.model_id);
  if (entry_out != nullptr) *entry_out = entry;
  if (options_.enable_cache) {
    const auto lookup = cache_.get_or_compile(entry->spec, entry->structure_key);
    (lookup.hit ? cache_hits_ : cache_misses_).increment();
    return lookup.model;
  }
  cache_misses_.increment();
  return std::make_shared<const CompiledModel>(entry->spec);
}

void PredictionShard::resolve_bindings(
    const Job& job, const CompiledModel& model,
    std::vector<stoch::StochasticValue>& loads,
    stoch::StochasticValue& bwavail) const {
  const auto& request = job.request;
  SSPRED_REQUIRE(request.loads.empty() || request.resources.empty(),
                 "request binds loads both explicitly and by resource name");
  SSPRED_REQUIRE(!request.loads.empty() || !request.resources.empty(),
                 "request binds no loads (set loads or resources)");
  const std::size_t given =
      request.loads.empty() ? request.resources.size() : request.loads.size();
  SSPRED_REQUIRE(given == model.hosts(),
                 "model '" + request.model_id + "' needs " +
                     std::to_string(model.hosts()) + " load bindings, got " +
                     std::to_string(given));
  if (!request.loads.empty()) {
    loads = request.loads;
  } else {
    SSPRED_REQUIRE(job.epoch != nullptr,
                   "request binds loads by resource name but no bindings "
                   "epoch has been published");
    loads.reserve(request.resources.size());
    for (const auto& resource : request.resources) {
      loads.push_back(job.epoch->lookup(resource));
    }
  }
  if (!request.bwavail_resource.empty()) {
    SSPRED_REQUIRE(job.epoch != nullptr,
                   "request binds bandwidth by resource name but no bindings "
                   "epoch has been published");
    bwavail = job.epoch->lookup(request.bwavail_resource);
  } else {
    bwavail = request.bwavail;
  }
}

void PredictionShard::bind(model::ir::SlotEnvironment& env,
                           const CompiledModel& model,
                           std::span<const stoch::StochasticValue> loads,
                           const stoch::StochasticValue& bwavail) const {
  for (std::size_t p = 0; p < loads.size(); ++p) {
    env.bind(model.load_slot(p), loads[p]);
  }
  if (model.uses_bandwidth()) env.bind(model.bwavail_slot(), bwavail);
}

void PredictionShard::apply_learning(const std::string& structure_key,
                                     const std::string& model_id,
                                     PredictResult& base,
                                     LearnOverlay& overlay) {
  if (!learning_active()) return;
  overlay.active = true;
  overlay.structure_key = structure_key;
  overlay.structural = base.value;
  const std::optional<learn::LearnedPrediction> learned =
      options_.bank->predict(structure_key, overlay.features);
  learn::Source source = learn::Source::kStructural;
  if (learned.has_value()) {
    overlay.has_learned = true;
    overlay.learned = learned->value;
    source = options_.arbiter->source(model_id);
    switch (source) {
      case learn::Source::kStructural:
        break;
      case learn::Source::kLearned:
        base.value = learned->value;
        break;
      case learn::Source::kBlended:
        base.value = learn::blend(overlay.structural, learned->value,
                                  options_.arbiter->blend_weight(model_id));
        break;
    }
    base.point = base.value.mean();
  }
  base.source = static_cast<std::uint8_t>(source);
}

void PredictionShard::finish_batch(std::vector<Pending>& promises,
                                   PredictResult base, double enqueue_time,
                                   const std::string& model_id,
                                   LearnOverlay overlay) {
  base.latency_seconds = now() - enqueue_time;
  latency_.observe(base.latency_seconds);
  const auto n = static_cast<std::uint64_t>(promises.size());
  const bool ok = base.status == PredictResult::Status::kOk;
  if (ok) {
    requests_ok_.increment(n);
  } else {
    requests_error_.increment(n);
  }
  if (ok && overlay.active) {
    switch (static_cast<learn::Source>(base.source)) {
      case learn::Source::kStructural:
        predictions_served_structural_.increment(n);
        break;
      case learn::Source::kLearned:
        predictions_served_learned_.increment(n);
        break;
      case learn::Source::kBlended:
        predictions_served_blended_.increment(n);
        break;
    }
  }
  for (auto& p : promises) {
    base.request_id = p.id;
    if (ok) remember_prediction(p.id, model_id, base.value, overlay);
    p.promise.set_value(base);
  }
  promises.clear();
}

void PredictionShard::remember_prediction(std::uint64_t request_id,
                                          const std::string& model_id,
                                          const stoch::StochasticValue& value,
                                          const LearnOverlay& overlay) {
  if ((!options_.ledger && !learning_active()) ||
      options_.observation_capacity == 0) {
    return;
  }
  const std::lock_guard lock(observations_mutex_);
  if (completed_
          .emplace(request_id, CompletedPrediction{model_id, value, overlay})
          .second) {
    completed_order_.push_back(request_id);
  }
  // Bounding the FIFO bounds the map too (ids reported meanwhile are
  // already gone from the map and just fall off the deque).
  while (completed_order_.size() > options_.observation_capacity) {
    completed_.erase(completed_order_.front());
    completed_order_.pop_front();
  }
}

bool PredictionShard::report_observation(std::uint64_t request_id,
                                         double observed_seconds) {
  CompletedPrediction prediction;
  {
    const std::lock_guard lock(observations_mutex_);
    const auto it = completed_.find(request_id);
    if (it == completed_.end()) {
      observations_unmatched_.increment();
      return false;
    }
    prediction = std::move(it->second);
    completed_.erase(it);
    // completed_order_ keeps the stale id; eviction skips ids already
    // erased, so the FIFO stays bounded without a linear scan here.
  }
  // The ledger scores the SERVED value — the number a consumer actually
  // acted on, whichever candidate produced it.
  if (options_.ledger) {
    options_.ledger->record(prediction.model_id, prediction.value,
                            observed_seconds);
  }
  // The candidates are scored and the bank trained from the same
  // observation: arbitration first (scoring the prediction the bank made
  // BEFORE seeing this outcome), then the training step.
  if (learning_active() && prediction.overlay.active) {
    const bool flipped = options_.arbiter->record(
        prediction.model_id, prediction.overlay.structural,
        prediction.overlay.has_learned ? &prediction.overlay.learned : nullptr,
        observed_seconds);
    if (flipped) arbiter_flips_.increment();
    options_.bank->observe(prediction.overlay.structure_key,
                           prediction.overlay.features, observed_seconds);
    observations_trained_.increment();
  }
  observations_recorded_.increment();
  return true;
}

void PredictionShard::execute_job(Job&& job, std::vector<Pending>&& extra,
                                  WorkerState& state) {
  PredictResult base;
  base.batch_size = 1 + extra.size();
  base.epoch_version = job.epoch ? job.epoch->version() : 0;
  std::vector<Pending> promises;
  promises.reserve(base.batch_size);
  promises.push_back(Pending{job.id, std::move(job.promise)});
  for (auto& p : extra) promises.push_back(std::move(p));
  if (!extra.empty()) coalesced_.increment(extra.size());
  batch_sizes_.observe(static_cast<double>(base.batch_size));

  LearnOverlay overlay;
  try {
    ModelTable::EntryPtr entry;
    const CompiledModelPtr model = resolve_model(job.request, &entry);
    std::vector<stoch::StochasticValue> loads;
    stoch::StochasticValue bwavail;
    resolve_bindings(job, *model, loads, bwavail);

    const auto& request = job.request;
    if (request.mode == Mode::kMonteCarlo && request.precision <= 0.0 &&
        request.trials > options_.mc_chunk_trials) {
      // Fan the trials out as chunk tasks; the last chunk to finish
      // combines the partials and resolves the whole batch. Chunking is
      // NOT gated on the worker count: per-chunk seeds make the result a
      // pure function of (seed, trials, chunk size), so one worker
      // draining the chunks bit-matches any pool size.
      auto shared = std::make_shared<McShared>();
      shared->model = model;
      shared->model_id = request.model_id;
      shared->structure_key = entry->structure_key;
      shared->loads = std::move(loads);
      shared->bwavail = bwavail;
      shared->seed = request.seed;
      shared->total_trials = request.trials;
      shared->epoch_version = base.epoch_version;
      shared->enqueue_time = job.enqueue_time;
      shared->promises = std::move(promises);
      const std::size_t chunk = options_.mc_chunk_trials;
      const std::size_t chunks = (request.trials + chunk - 1) / chunk;
      shared->partials.resize(chunks);
      shared->remaining = chunks;
      {
        const std::lock_guard lock(mutex_);
        for (std::size_t i = 0; i < chunks; ++i) {
          const std::size_t begin = i * chunk;
          chunks_.push_back(McChunk{
              shared, i, std::min(chunk, request.trials - begin)});
        }
      }
      cv_.notify_all();
      return;
    }

    std::optional<model::ir::SlotEnvironment> local;
    if (!options_.enable_cache) local.emplace(model->program().make_environment());
    model::ir::SlotEnvironment& env =
        options_.enable_cache ? state.env_for(model) : *local;
    bind(env, *model, loads, bwavail);

    switch (request.mode) {
      case Mode::kStochastic: {
        base.value = model->program().evaluate(env, state.ws);
        base.point = base.value.mean();
        break;
      }
      case Mode::kPoint: {
        base.point = model->program().evaluate_point(env, state.ws);
        base.value = stoch::StochasticValue(base.point);
        break;
      }
      case Mode::kMonteCarlo: {
        support::Rng rng(request.seed);
        if (request.precision > 0.0) {
          // Sequential stopping: run trial blocks until the CI target is
          // met, clamped to [min_trials, trials]. Precision targets
          // bypass the chunk fan-out above — the stop rule needs the
          // single-stream block schedule, and it typically finishes far
          // below any clamp worth chunking. Hitting the clamp with the
          // target unmet is a partial-precision kOk, never an error.
          const model::ir::AdaptiveResult adaptive =
              model->program().sample_adaptive(
                  env, rng, stop_rule_for(request), state.ws);
          base.value = adaptive.value;
          base.mc_trials = adaptive.trials;
          base.mc_ci_halfwidth = adaptive.ci_halfwidth;
          base.precision_met = adaptive.converged;
        } else {
          base.value = model->program().sample_trials(env, rng,
                                                      request.trials,
                                                      state.ws);
          base.mc_trials = request.trials;
          base.mc_ci_halfwidth =
              base.value.halfwidth() /
              std::sqrt(static_cast<double>(request.trials));
        }
        record_mc(request, base.mc_trials);
        base.point = base.value.mean();
        break;
      }
    }
    base.status = PredictResult::Status::kOk;
    if (learning_active()) {
      learn::extract_features(loads, bwavail, model->uses_bandwidth(),
                              overlay.features);
      apply_learning(entry->structure_key, request.model_id, base, overlay);
    }
  } catch (const std::exception& e) {
    base.status = PredictResult::Status::kError;
    base.error = e.what();
  }
  finish_batch(promises, std::move(base), job.enqueue_time,
               job.request.model_id, std::move(overlay));
}

void PredictionShard::execute_fused(std::vector<FusedLane>&& lanes,
                                    WorkerState& state) {
  const std::size_t requests = lanes.size();
  const Mode mode = lanes.front().job.request.mode;

  // Any condition that prevents serving the whole batch as one sweep —
  // model churn between submit and dequeue, a binding error in any lane,
  // an evaluation throw (e.g. sampled division by zero) — falls back to
  // the per-lane solo path. Solo is the canonical semantics the fused
  // sweep is bit-exact against, so the fallback preserves per-request
  // results and error isolation; it only costs the batching win.
  const auto fall_back_solo = [&] {
    for (auto& lane : lanes) {
      execute_job(std::move(lane.job), std::move(lane.extra), state);
    }
  };

  CompiledModelPtr model;
  ModelTable::EntryPtr leader_entry;
  bool mc_adaptive = false;
  try {
    // One registry pass validates the whole sweep instead of a per-lane
    // resolve: fusable() already proved structural equality from the
    // submit-time stamps, so here it only remains to guard against a
    // model id re-registered to a NEW structure between submit and now.
    // Every lane's id must currently map to the leader's structure key;
    // then the leader's program is resolved ONCE and shared.
    const ModelTable::EntryPtr leader =
        models_.find(lanes.front().job.request.model_id);
    bool structure_stable = leader != nullptr;
    for (std::size_t k = 1; structure_stable && k < requests; ++k) {
      const auto& id = lanes[k].job.request.model_id;
      if (id == lanes.front().job.request.model_id) continue;
      const ModelTable::EntryPtr entry = models_.find(id);
      structure_stable =
          entry != nullptr && entry->structure_key == leader->structure_key;
    }
    if (!structure_stable) {
      fall_back_solo();
      return;
    }
    // The stamped key skips re-serializing the spec — resolving the
    // program for a warm sweep is one map lookup, paid once per sweep
    // rather than once per lane. (execute_fused only runs with the cache
    // enabled; fusion needs it.)
    const auto lookup =
        cache_.get_or_compile(leader->spec, leader->structure_key);
    (lookup.hit ? cache_hits_ : cache_misses_).increment();
    model = lookup.model;
    leader_entry = leader;

    state.lane_env.reset(model->program(), requests);
    const bool learning = learning_active();
    if (learning) state.lane_features.resize(requests);
    for (std::size_t k = 0; k < requests; ++k) {
      state.lane_loads.clear();
      stoch::StochasticValue bwavail;
      resolve_bindings(lanes[k].job, *model, state.lane_loads, bwavail);
      for (std::size_t p = 0; p < state.lane_loads.size(); ++p) {
        state.lane_env.bind(k, model->load_slot(p), state.lane_loads[p]);
      }
      if (model->uses_bandwidth()) {
        state.lane_env.bind(k, model->bwavail_slot(), bwavail);
      }
      if (learning) {
        // Per-lane features extracted now, while the lane's resolved
        // bindings are in scope; consumed at result fan-out below.
        learn::extract_features(state.lane_loads, bwavail,
                                model->uses_bandwidth(),
                                state.lane_features[k]);
      }
    }

    switch (mode) {
      case Mode::kStochastic: {
        state.fused_values.resize(requests);
        model->program().evaluate_fused(
            state.lane_env, state.ws,
            {state.fused_values.data(), requests});
        break;
      }
      case Mode::kPoint: {
        state.fused_points.resize(requests);
        model->program().evaluate_point_fused(
            state.lane_env, state.ws,
            {state.fused_points.data(), requests});
        break;
      }
      case Mode::kMonteCarlo: {
        state.fused_values.resize(requests);
        state.rngs.clear();
        for (const auto& lane : lanes) {
          state.rngs.emplace_back(lane.job.request.seed);
        }
        for (const auto& lane : lanes) {
          const auto& r = lane.job.request;
          if (r.precision > 0.0 ||
              r.trials != lanes.front().job.request.trials) {
            mc_adaptive = true;
            break;
          }
        }
        if (mc_adaptive) {
          // Mixed fixed/precision lanes (or unequal trial counts): the
          // adaptive fused sweep runs each lane's own stop rule,
          // retiring converged lanes at block boundaries; every lane
          // stays bit-exact against its solo run.
          state.rules.clear();
          for (const auto& lane : lanes) {
            state.rules.push_back(stop_rule_for(lane.job.request));
          }
          state.adaptive.resize(requests);
          model->program().sample_adaptive_fused(
              state.lane_env, {state.rngs.data(), requests},
              {state.rules.data(), requests}, state.ws,
              {state.adaptive.data(), requests});
          for (std::size_t k = 0; k < requests; ++k) {
            state.fused_values[k] = state.adaptive[k].value;
          }
        } else {
          model->program().sample_fused(
              state.lane_env, {state.rngs.data(), requests},
              lanes.front().job.request.trials, state.ws,
              {state.fused_values.data(), requests});
        }
        break;
      }
    }
  } catch (const std::exception&) {
    fall_back_solo();
    return;
  }

  fused_occupancy_.observe(static_cast<double>(requests));
  for (std::size_t k = 0; k < requests; ++k) {
    auto& lane = lanes[k];
    PredictResult base;
    base.status = PredictResult::Status::kOk;
    base.epoch_version = lane.job.epoch ? lane.job.epoch->version() : 0;
    base.batch_size = 1 + lane.extra.size();
    if (mode == Mode::kPoint) {
      base.point = state.fused_points[k];
      base.value = stoch::StochasticValue(base.point);
    } else {
      base.value = state.fused_values[k];
      base.point = base.value.mean();
    }
    if (mode == Mode::kMonteCarlo) {
      const auto& request = lane.job.request;
      if (mc_adaptive && request.precision > 0.0) {
        base.mc_trials = state.adaptive[k].trials;
        base.mc_ci_halfwidth = state.adaptive[k].ci_halfwidth;
        base.precision_met = state.adaptive[k].converged;
      } else {
        // Fixed-count lanes stamp the same derived width as the solo
        // sample_trials path, keeping fused and solo results identical
        // field for field.
        base.mc_trials = request.trials;
        base.mc_ci_halfwidth =
            base.value.halfwidth() /
            std::sqrt(static_cast<double>(request.trials));
      }
      record_mc(request, base.mc_trials);
    }
    LearnOverlay overlay;
    if (learning_active()) {
      overlay.features = std::move(state.lane_features[k]);
      apply_learning(leader_entry->structure_key, lane.job.request.model_id,
                     base, overlay);
    }
    if (!lane.extra.empty()) coalesced_.increment(lane.extra.size());
    batch_sizes_.observe(static_cast<double>(base.batch_size));
    requests_fused_.increment(base.batch_size);
    lane.extra.push_back(Pending{lane.job.id, std::move(lane.job.promise)});
    finish_batch(lane.extra, std::move(base), lane.job.enqueue_time,
                 lane.job.request.model_id, std::move(overlay));
  }
}

stats::StopRule PredictionShard::stop_rule_for(const PredictRequest& request) {
  stats::StopRule rule;
  rule.target = request.precision;
  rule.relative = request.precision_relative;
  rule.max_trials = request.trials;
  rule.min_trials = std::min(std::max<std::size_t>(request.min_trials, 2),
                             request.trials);
  return rule;
}

void PredictionShard::record_mc(const PredictRequest& request,
                                std::size_t executed) {
  mc_trials_.observe(static_cast<double>(executed));
  if (request.precision > 0.0 && executed < request.trials) {
    mc_trials_saved_.increment(request.trials - executed);
  }
}

void PredictionShard::execute_chunk(const McChunk& chunk, WorkerState& state) {
  auto& shared = *chunk.shared;
  mc_chunks_.increment();

  PredictResult failure;
  double sum = 0.0;
  double sum_sq = 0.0;
  try {
    std::optional<model::ir::SlotEnvironment> local;
    if (!options_.enable_cache) {
      local.emplace(shared.model->program().make_environment());
    }
    model::ir::SlotEnvironment& env =
        options_.enable_cache ? state.env_for(shared.model) : *local;
    bind(env, *shared.model, shared.loads, shared.bwavail);
    support::Rng rng(chunk_seed(shared.seed, chunk.index));
    // Whole-block execution on the worker's pooled SoA arenas: after the
    // first chunk of a model's shape, the Monte-Carlo path allocates
    // nothing. Per-chunk seeds plus index-ordered combine keep the result
    // deterministic for a fixed request seed at any worker count.
    state.ws.trial_results.resize(chunk.trials);
    shared.model->program().sample_into(env, rng, state.ws.trial_results,
                                        state.ws);
    for (const double x : state.ws.trial_results) {
      sum += x;
      sum_sq += x * x;
    }
  } catch (const std::exception& e) {
    failure.status = PredictResult::Status::kError;
    failure.error = e.what();
  }

  bool last = false;
  {
    const std::lock_guard lock(shared.m);
    shared.partials[chunk.index] = {sum, sum_sq};
    last = (--shared.remaining == 0);
    if (failure.status == PredictResult::Status::kError &&
        !shared.promises.empty()) {
      // First failing chunk resolves the batch; stragglers see promises
      // already cleared and just finish their arithmetic.
      failure.epoch_version = shared.epoch_version;
      failure.batch_size = shared.promises.size();
      finish_batch(shared.promises, std::move(failure), shared.enqueue_time,
                   shared.model_id, LearnOverlay{});
      return;
    }
  }
  if (!last) return;

  const std::lock_guard lock(shared.m);
  if (shared.promises.empty()) return;  // a failing chunk already resolved it
  double total = 0.0;
  double total_sq = 0.0;
  for (const auto& [s, q] : shared.partials) {
    total += s;
    total_sq += q;
  }
  const auto n = static_cast<double>(shared.total_trials);
  const double mean = total / n;
  const double var =
      std::max(0.0, (total_sq - n * mean * mean) / (n - 1.0));
  PredictResult base;
  base.status = PredictResult::Status::kOk;
  base.value = stoch::StochasticValue::from_mean_sd(mean, std::sqrt(var));
  base.point = mean;
  base.mc_trials = shared.total_trials;
  base.mc_ci_halfwidth = base.value.halfwidth() / std::sqrt(n);
  mc_trials_.observe(n);
  base.epoch_version = shared.epoch_version;
  base.batch_size = shared.promises.size();
  LearnOverlay overlay;
  if (learning_active()) {
    learn::extract_features(shared.loads, shared.bwavail,
                            shared.model->uses_bandwidth(), overlay.features);
    apply_learning(shared.structure_key, shared.model_id, base, overlay);
  }
  finish_batch(shared.promises, std::move(base), shared.enqueue_time,
               shared.model_id, std::move(overlay));
}

}  // namespace sspred::serve
