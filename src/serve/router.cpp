#include "serve/router.hpp"

#include <algorithm>
#include <string>

#include "model/fingerprint.hpp"
#include "support/error.hpp"

namespace sspred::serve {

ShardRouter::ShardRouter(std::size_t shards, std::size_t vnodes)
    : shards_(shards) {
  SSPRED_REQUIRE(shards >= 1, "router needs at least one shard");
  SSPRED_REQUIRE(vnodes >= 1, "router needs at least one vnode per shard");
  if (shards == 1) return;  // ring unused; route() short-circuits
  ring_.reserve(shards * vnodes);
  std::string label;
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      // The vnode position is the digest of a canonical "shard/vnode"
      // label, so ring layout is deterministic across runs and across
      // ring sizes (shard s's points don't move when shard s+1 joins).
      label.assign("shard-");
      label += std::to_string(s);
      label += "/vnode-";
      label += std::to_string(v);
      ring_.push_back({model::hash_bytes(label), static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const Point& a, const Point& b) {
              return a.position < b.position ||
                     (a.position == b.position && a.shard < b.shard);
            });
}

std::size_t ShardRouter::route(std::string_view structure_key) const {
  return route_hash(model::hash_bytes(structure_key));
}

std::size_t ShardRouter::route_hash(std::uint64_t key_hash) const {
  if (shards_ == 1) return 0;
  // First ring point at or after the hash, wrapping past the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key_hash,
      [](const Point& p, std::uint64_t h) { return p.position < h; });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

std::vector<std::size_t> ShardRouter::replica_set(
    std::string_view structure_key, std::size_t replicas) const {
  return replica_set_hash(model::hash_bytes(structure_key), replicas);
}

std::vector<std::size_t> ShardRouter::replica_set_hash(
    std::uint64_t key_hash, std::size_t replicas) const {
  const std::size_t want = std::min(std::max<std::size_t>(replicas, 1),
                                    shards_);
  std::vector<std::size_t> set;
  set.reserve(want);
  if (shards_ == 1) {
    set.push_back(0);
    return set;
  }
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key_hash,
      [](const Point& p, std::uint64_t h) { return p.position < h; });
  // Walk clockwise (wrapping) collecting distinct shards; one full lap
  // visits every shard's vnodes, so the loop always terminates with
  // `want` members.
  for (std::size_t steps = 0; steps < ring_.size() && set.size() < want;
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    const std::size_t shard = it->shard;
    if (std::find(set.begin(), set.end(), shard) == set.end()) {
      set.push_back(shard);
    }
    ++it;
  }
  return set;
}

}  // namespace sspred::serve
