#include "serve/epoch.hpp"

#include "support/error.hpp"

namespace sspred::serve {

const stoch::StochasticValue& BindingsEpoch::lookup(
    const std::string& resource) const {
  const auto it = values_.find(resource);
  SSPRED_REQUIRE(it != values_.end(),
                 "resource '" + resource + "' not bound in epoch " +
                     std::to_string(version_) +
                     " (insufficient NWS history or not tracked)");
  return it->second;
}

NwsBridge::NwsBridge(const nws::Service& service,
                     std::vector<std::string> resources)
    : service_(service), resources_(std::move(resources)) {}

EpochPtr NwsBridge::publish() {
  std::map<std::string, stoch::StochasticValue> values;
  for (const auto& resource : resources_) {
    // forecast() requires warmup history; a resource that is not ready
    // yet is simply absent from this epoch.
    try {
      values.emplace(resource, service_.forecast(resource).sv());
    } catch (const support::Error&) {
    }
  }
  EpochTransform transform;
  {
    const std::lock_guard lock(mutex_);
    transform = transform_;
  }
  if (transform) transform(values);
  const std::lock_guard lock(mutex_);
  auto epoch =
      std::make_shared<const BindingsEpoch>(next_version_++, std::move(values));
  current_ = epoch;
  return epoch;
}

void NwsBridge::set_transform(EpochTransform transform) {
  const std::lock_guard lock(mutex_);
  transform_ = std::move(transform);
}

EpochPtr NwsBridge::current() const {
  const std::lock_guard lock(mutex_);
  return current_;
}

}  // namespace sspred::serve
