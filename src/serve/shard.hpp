// PredictionShard — one self-contained execution engine of the serving
// stack, plus the model table every shard reads.
//
// The layered decomposition (DESIGN.md §13): the facade
// (service.hpp) owns a ShardRouter and S PredictionShards; each shard
// owns the full per-request machinery the old monolith had — a
// lock-free bounded AdmissionQueue, a worker pool, a structure-keyed
// ProgramCache, dequeue-time coalescing/fusion, Monte-Carlo chunk
// fan-out, its own bindings-epoch pin and completed-prediction FIFO —
// over a *structure-affine* slice of the request stream: consistent-hash
// routing sends every request for one model structure to one shard, so a
// shard's fusion scan only ever sees requests that can actually fuse,
// and its program cache holds exactly the structures it serves.
//
// Determinism: a shard processes its slice exactly as the unsharded
// service processed the whole stream (same scan, same kernels, same
// chunk seeding), and routing is a pure function of the structure key —
// so for a fixed request set, per-request results are bit-exact at any
// shard count.
//
// Metrics are dual-written: every instrument bumps both the service-wide
// registry (rolled-up totals, the names tests and dashboards already
// know) and the shard's own registry (attached to the global one as
// "shard<k>/..." when there is more than one shard).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "calib/ledger.hpp"
#include "learn/arbiter.hpp"
#include "learn/bank.hpp"
#include "serve/admission.hpp"
#include "serve/epoch.hpp"
#include "serve/metrics.hpp"
#include "serve/program_cache.hpp"
#include "serve/request.hpp"
#include "support/clock.hpp"
#include "support/rng.hpp"

namespace sspred::serve {

/// Serving-stack configuration. Worker/queue sizes are PER SHARD: a
/// service with shards=4, workers=2 runs 8 workers and admits up to
/// 4 * queue_capacity requests. Defined here (the lowest layer that
/// consumes it); service.hpp re-exports it to API users.
struct ServiceOptions {
  std::size_t shards = 1;  ///< prediction shards (structure-affine slices)
  std::size_t workers = 4;  ///< worker threads per shard
  /// Queued external requests beyond this (per shard) are rejected.
  std::size_t queue_capacity = 1024;
  /// Virtual nodes per shard on the routing ring (see router.hpp).
  std::size_t router_vnodes = 64;
  /// Share compiled programs across requests/ids (the program cache).
  /// Off: every request compiles its model from scratch (bench baseline).
  bool enable_cache = true;
  /// Coalesce identical queued (model, epoch, bindings) requests into one
  /// evaluation at dequeue time.
  bool enable_coalescing = true;
  /// Fuse queued structure-equal requests with *distinct* bindings into the
  /// lanes of one request-major kernel sweep at dequeue time (bit-exact per
  /// request; see ir::Program::sample_fused). Needs the program cache
  /// (fusion shares one compiled program across lanes), so enable_cache
  /// off disables it too.
  bool enable_fusion = true;
  std::size_t max_batch = 64;  ///< coalesced/fused requests per evaluation
  /// Work stealing between co-located shards: when the routed shard's
  /// admission backlog exceeds the least-loaded available shard's by at
  /// least this many requests, the request is submitted to that shard
  /// instead (counted as requests_stolen). Trades structure affinity
  /// (fusion/cache locality on the thief) for queue balance under skewed
  /// family load; per-request results stay bit-exact on any shard.
  /// 0 disables stealing — affinity is strict.
  std::size_t steal_threshold = 0;
  /// Monte-Carlo requests with more trials than this are split into
  /// chunks executed across the shard's pool (when workers > 1).
  std::size_t mc_chunk_trials = 2048;
  /// Time source for latency metrics; null selects support::real_clock().
  std::shared_ptr<support::Clock> clock;
  /// Accuracy ledger fed by report_observation(); null disables the
  /// predict→observe feedback loop (see calib/ledger.hpp).
  std::shared_ptr<calib::AccuracyLedger> ledger;
  /// Completed predictions kept per shard (FIFO) awaiting their
  /// observation; a report arriving after eviction counts as unmatched.
  std::size_t observation_capacity = 4096;
  /// Graybox learned predictors (learn/): when true, every successful
  /// prediction also consults the predictor bank and the arbiter may
  /// swap the served value to the learned or blended candidate; every
  /// reported observation trains the bank and scores the candidates.
  /// With `bank`/`arbiter` left null the service constructs its own
  /// node-local instances — deliberately NOT stored back into a caller's
  /// options, so a restarted node starts from a blank bank and
  /// re-converges from fresh observations.
  bool enable_learning = false;
  std::shared_ptr<learn::PredictorBank> bank;
  std::shared_ptr<learn::Arbiter> arbiter;
  /// Top of the latency histogram range, seconds.
  double latency_range_seconds = 1.0;
  /// Construct with workers blocked; resume() starts processing. Lets
  /// tests (and benchmarks) stage a queue deterministically.
  bool start_paused = false;
};

/// Registered models, shared (read-mostly) by the facade and every
/// shard. Entries are immutable snapshots behind shared_ptr: a request
/// resolves its model to one Entry and can never observe a spec and a
/// structure key from two different registrations — the property the
/// program cache's stale-key guard rests on. The structure key and its
/// 64-bit routing hash are stamped once at registration, so neither the
/// submit path nor the cache ever re-serializes a spec.
class ModelTable {
 public:
  struct Entry {
    ModelSpec spec;
    std::string structure_key;
    std::uint64_t key_hash = 0;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  /// Registers (or replaces) an id. Ids are aliases: two ids with
  /// structurally identical specs share one cached program.
  void insert(const std::string& id, ModelSpec spec);

  /// Current registration of `id`; null when unknown.
  [[nodiscard]] EntryPtr find(const std::string& id) const;

  [[nodiscard]] std::vector<std::string> ids() const;

  /// Throws the structured unknown-model error for `id`.
  [[noreturn]] void throw_unknown(const std::string& id) const;

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, EntryPtr> models_;
};

class PredictionShard {
 public:
  /// One external request owned by the stack. The facade stamps id,
  /// enqueue_time and the submit-time model entry (null: unknown id —
  /// never fuses; the solo path reports the structured error); the shard
  /// pins the bindings epoch at admission.
  struct Job {
    PredictRequest request;
    std::promise<PredictResult> promise;
    EpochPtr epoch;
    ModelTable::EntryPtr model;  ///< submit-time registration snapshot
    std::uint64_t id = 0;
    double enqueue_time = 0.0;
  };

  /// `global` is the service-wide registry every instrument dual-writes;
  /// `learn_global` is the service's learn/ subtree registry the learning
  /// instruments dual-write instead of `global`. `models` and all three
  /// referenced registries must outlive the shard.
  PredictionShard(std::size_t index, const ServiceOptions& options,
                  std::shared_ptr<support::Clock> clock,
                  const ModelTable& models, MetricsRegistry& global,
                  MetricsRegistry& learn_global);
  ~PredictionShard();

  PredictionShard(const PredictionShard&) = delete;
  PredictionShard& operator=(const PredictionShard&) = delete;

  /// Admits `job` (pinning the shard's current epoch) or sheds it with a
  /// per-reason rejection count; the job's promise is always resolved.
  /// Lock-free on the admit path (see admission.hpp).
  void submit(Job job);

  /// Routing-layer shed: accounts the job against this shard
  /// (rejected_shard_unavailable) and resolves its promise.
  void reject_unavailable(Job job);

  /// Installs `epoch` for subsequently admitted requests; requests
  /// already admitted keep the epoch they were pinned with.
  void publish_epoch(EpochPtr epoch);
  [[nodiscard]] EpochPtr current_epoch() const;

  void pause();
  void resume();
  /// Blocks until the shard's queues are empty and every worker is idle.
  void drain();

  /// Feeds the configured ledger with the observation for `request_id`
  /// (an id routed to this shard); see service.hpp.
  bool report_observation(std::uint64_t request_id, double observed_seconds);

  [[nodiscard]] ProgramCache& cache() noexcept { return cache_; }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return local_; }
  [[nodiscard]] std::size_t index() const noexcept { return index_; }

  /// Admitted requests not yet staged for execution — the lock-free
  /// imbalance signal the facade's work stealing compares across
  /// co-located shards (transiently overshoots by in-flight pushes,
  /// see AdmissionQueue::size()).
  [[nodiscard]] std::size_t queue_depth() const { return ring_.size(); }

 private:
  // Dual instruments: one bump updates the rolled-up service-wide
  // instrument and the shard-local one. Both sides are lock-free.
  struct DualCounter {
    Counter& global;
    Counter& local;
    void increment(std::uint64_t by = 1) noexcept {
      global.increment(by);
      local.increment(by);
    }
  };
  struct DualGauge {
    Gauge& global;
    Gauge& local;
    // Deltas, not set(): S shards share the global gauge.
    void add(std::int64_t by) noexcept {
      global.add(by);
      local.add(by);
    }
  };
  struct DualHistogram {
    LatencyHistogram& global;
    LatencyHistogram& local;
    void observe(double v) noexcept {
      global.observe(v);
      local.observe(v);
    }
  };

  /// A promise awaiting resolution, tagged with its request id.
  struct Pending {
    std::uint64_t id = 0;
    std::promise<PredictResult> promise;
  };

  /// One lane of a fused request-major evaluation: a distinct-bindings
  /// request plus the promises of identical requests collapsed onto it
  /// (those fan the lane's single result out).
  struct FusedLane {
    Job job;
    std::vector<Pending> extra;
  };

  /// Learning payload of one successful evaluation: the candidate values
  /// and feature vector carried from execute time to report_observation
  /// (where the bank trains and the arbiter scores). Inactive (and
  /// empty) when learning is disabled.
  struct LearnOverlay {
    bool active = false;
    std::string structure_key;
    std::vector<double> features;
    stoch::StochasticValue structural;  ///< candidate the model computed
    stoch::StochasticValue learned;     ///< bank candidate (has_learned)
    bool has_learned = false;
  };

  /// Shared state of one fanned-out Monte-Carlo evaluation.
  struct McShared {
    CompiledModelPtr model;
    std::string model_id;
    std::string structure_key;  ///< bank training key (learning only)
    std::vector<stoch::StochasticValue> loads;  ///< resolved bindings
    stoch::StochasticValue bwavail;
    std::uint64_t seed = 0;
    std::size_t total_trials = 0;
    std::uint64_t epoch_version = 0;
    double enqueue_time = 0.0;
    std::vector<Pending> promises;  ///< whole batch

    std::mutex m;
    /// Per-chunk (sum, sum of squares); combined in index order at the
    /// end so the result is independent of worker scheduling.
    std::vector<std::pair<double, double>> partials;
    std::size_t remaining = 0;
  };

  /// One queued Monte-Carlo chunk (internal; not admission-controlled).
  struct McChunk {
    std::shared_ptr<McShared> shared;
    std::size_t index = 0;
    std::size_t trials = 0;
  };

  /// Per-worker reusable evaluation state (slot environments keyed by
  /// compiled model, one workspace) — keeps the hot path allocation-free.
  struct WorkerState {
    std::map<const CompiledModel*,
             std::pair<CompiledModelPtr, model::ir::SlotEnvironment>>
        envs;
    model::ir::EvalWorkspace ws;
    // Fused-path pools, reused across batches (allocation-free once warm).
    model::ir::LaneEnvironment lane_env;
    std::vector<support::Rng> rngs;
    std::vector<stoch::StochasticValue> fused_values;
    std::vector<double> fused_points;
    std::vector<stoch::StochasticValue> lane_loads;
    std::vector<std::vector<double>> lane_features;  ///< learning only
    // Adaptive-precision pools (mixed fixed/precision fused sweeps).
    std::vector<stats::StopRule> rules;
    std::vector<model::ir::AdaptiveResult> adaptive;

    [[nodiscard]] model::ir::SlotEnvironment& env_for(
        const CompiledModelPtr& model);
  };

  void worker_loop();
  void execute_job(Job&& job, std::vector<Pending>&& extra,
                   WorkerState& state);
  /// Runs `lanes` (>= 2, pairwise fusable) as one fused sweep; falls back
  /// to per-lane execute_job — the canonical solo path — when the batch
  /// cannot be served as one sweep (model churn, binding errors, an
  /// evaluation throw in any lane).
  void execute_fused(std::vector<FusedLane>&& lanes, WorkerState& state);
  void execute_chunk(const McChunk& chunk, WorkerState& state);
  /// The request's sequential stop rule: precision target + relative flag,
  /// `min_trials` floor, `trials` as the max clamp (a fixed rule when no
  /// target is set).
  [[nodiscard]] static stats::StopRule stop_rule_for(
      const PredictRequest& request);
  /// Observes the executed-trials histogram and, for precision targets,
  /// the trials-saved counter (clamp minus executed). Once per evaluation.
  void record_mc(const PredictRequest& request, std::size_t executed);
  /// Resolves the request's model against the CURRENT registration
  /// (cache or fresh compile per options); submit-time stamps only group.
  /// `entry_out` (optional) receives the registration snapshot resolved
  /// against — the learning overlay reads its stamped structure key.
  [[nodiscard]] CompiledModelPtr resolve_model(
      const PredictRequest& request,
      ModelTable::EntryPtr* entry_out = nullptr);
  /// True when the learned-predictor overlay participates in serving.
  [[nodiscard]] bool learning_active() const noexcept {
    return options_.enable_learning && options_.bank && options_.arbiter;
  }
  /// Consults the bank/arbiter for a successful evaluation whose
  /// structural result is already in `base.value`: fills the rest of
  /// `overlay` (whose `features` the caller extracted), may swap
  /// base.value/point to the learned or blended candidate, and stamps
  /// base.source. No-op when learning is inactive.
  void apply_learning(const std::string& structure_key,
                      const std::string& model_id, PredictResult& base,
                      LearnOverlay& overlay);
  /// Resolves load/bandwidth bindings against the job's epoch; throws
  /// support::Error with a structured message on any mismatch.
  void resolve_bindings(const Job& job, const CompiledModel& model,
                        std::vector<stoch::StochasticValue>& loads,
                        stoch::StochasticValue& bwavail) const;
  void bind(model::ir::SlotEnvironment& env, const CompiledModel& model,
            std::span<const stoch::StochasticValue> loads,
            const stoch::StochasticValue& bwavail) const;
  /// Fulfills the batch's promises with `base` (per-promise request id);
  /// successful results are remembered for report_observation().
  void finish_batch(std::vector<Pending>& promises, PredictResult base,
                    double enqueue_time, const std::string& model_id,
                    LearnOverlay overlay);
  /// Remembers a completed prediction until its observation arrives
  /// (bounded FIFO; no-op without a ledger or learning).
  void remember_prediction(std::uint64_t request_id,
                           const std::string& model_id,
                           const stoch::StochasticValue& value,
                           const LearnOverlay& overlay);
  [[nodiscard]] bool coalescable(const Job& a, const Job& b) const;
  /// Whether two non-identical jobs can share one fused sweep: same mode
  /// and epoch version, same compiled structure (same model id or equal
  /// submit-time structure stamps), and for Monte-Carlo the same
  /// unchunked trial count (chunked requests keep the fan-out path).
  [[nodiscard]] bool fusable(const Job& a, const Job& b) const;
  /// Rejects `job` with `reason` text, bumping `why` (and the rolled-up
  /// rejection counters).
  void reject(Job&& job, DualCounter& why, std::string reason);
  /// Drains the admission ring into staging_ (dequeue-time view refresh).
  void stage_admitted();
  [[nodiscard]] bool has_work() const;
  [[nodiscard]] double now() const noexcept { return clock_->now(); }

  std::size_t index_;
  ServiceOptions options_;
  std::shared_ptr<support::Clock> clock_;
  const ModelTable& models_;
  MetricsRegistry local_;  ///< shard-scoped registry (metrics())
  ProgramCache cache_;

  // --- Admission layer -------------------------------------------------
  AdmissionQueue<Job> ring_;
  /// Workers that advertised idleness and (re)checked for work; a
  /// producer only touches mutex_/cv_ when this is nonzero, so the
  /// loaded admit path never serializes on the shard lock. seq_cst
  /// against the ring's size counter (see admission.hpp).
  std::atomic<std::int64_t> idle_{0};

  // --- Worker-side state (guarded by mutex_) ---------------------------
  mutable std::mutex mutex_;
  std::condition_variable cv_;       ///< work available / state change
  std::condition_variable idle_cv_;  ///< queues empty + workers idle
  /// Admitted jobs staged for the dequeue-time coalesce/fuse scan (the
  /// ring itself is not scannable; workers drain it here first).
  std::deque<Job> staging_;
  std::deque<McChunk> chunks_;  ///< internal MC chunks; jump the queue
  bool paused_ = false;
  bool stop_ = false;
  std::size_t busy_ = 0;

  mutable std::mutex epoch_mutex_;  ///< sharded: one per shard
  EpochPtr epoch_;

  /// Completed predictions awaiting report_observation(), FIFO-bounded
  /// by options_.observation_capacity.
  struct CompletedPrediction {
    std::string model_id;
    stoch::StochasticValue value;  ///< SERVED value (what the ledger scores)
    LearnOverlay overlay;          ///< training payload (learning only)
  };
  std::mutex observations_mutex_;
  std::map<std::uint64_t, CompletedPrediction> completed_;
  std::deque<std::uint64_t> completed_order_;

  // Dual hot-path instruments (stable addresses inside both registries).
  DualCounter requests_total_;
  DualCounter requests_ok_;
  DualCounter requests_error_;
  DualCounter requests_rejected_;
  DualCounter rejected_queue_full_;
  DualCounter rejected_stopped_;
  DualCounter rejected_shard_unavailable_;
  DualCounter coalesced_;
  DualCounter requests_fused_;
  DualCounter mc_chunks_;
  /// Trials a precision target let the engine skip (request clamp minus
  /// executed count, summed over adaptive evaluations).
  DualCounter mc_trials_saved_;
  /// Local only: the facade counts one service-wide publish, not one
  /// per shard it fanned out to.
  Counter& epochs_published_;
  DualCounter cache_hits_;
  DualCounter cache_misses_;
  DualCounter observations_recorded_;
  DualCounter observations_unmatched_;
  // Learning instruments: the "global" half lives in the service's
  // learn/ subtree registry rather than the rolled-up one.
  DualCounter predictions_served_structural_;
  DualCounter predictions_served_learned_;
  DualCounter predictions_served_blended_;
  DualCounter observations_trained_;
  DualCounter arbiter_flips_;
  DualGauge queue_depth_;
  DualGauge workers_busy_;
  DualHistogram latency_;
  DualHistogram batch_sizes_;
  DualHistogram fused_occupancy_;
  /// Monte-Carlo trials actually executed per evaluation (adaptive stops
  /// show up as mass below the requested clamp).
  DualHistogram mc_trials_;

  std::vector<std::thread> threads_;  ///< last member: joins see all state
};

}  // namespace sspred::serve
