#include "serve/service.hpp"

#include "model/fingerprint.hpp"
#include "support/error.hpp"

namespace sspred::serve {

PredictionService::PredictionService(ServiceOptions options)
    : options_(options),
      clock_(options.clock ? options.clock : support::real_clock()),
      router_(options.shards, options.router_vnodes),
      epochs_published_(metrics_.counter("epochs_published")),
      observations_unmatched_(metrics_.counter("observations_unmatched")),
      requests_stolen_(metrics_.counter("requests_stolen")) {
  SSPRED_REQUIRE(options_.shards >= 1 && options_.shards <= kMaxShards,
                 "service needs 1.." + std::to_string(kMaxShards) +
                     " shards");
  SSPRED_REQUIRE(options_.queue_capacity >= 1,
                 "service needs queue capacity >= 1");
  if (options_.enable_learning) {
    // Node-local learn state: filled into OUR options copy only, so a
    // caller holding the original options (e.g. a dserve node that will
    // restart() us) keeps its nulls and a replacement service starts
    // from a blank bank, re-converging from fresh observations.
    if (!options_.bank) {
      options_.bank = std::make_shared<learn::PredictorBank>();
    }
    if (!options_.arbiter) {
      options_.arbiter = std::make_shared<learn::Arbiter>();
    }
    metrics_.add_child("learn", &learn_metrics_);
  }
  shards_.reserve(options_.shards);
  available_ = std::make_unique<std::atomic<bool>[]>(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<PredictionShard>(
        s, options_, clock_, models_, metrics_, learn_metrics_));
    available_[s].store(true, std::memory_order_relaxed);
  }
  if (options_.shards > 1) {
    // With one shard the rolled-up registry IS the shard's story; the
    // per-shard breakdown only earns its render space beyond that.
    for (std::size_t s = 0; s < options_.shards; ++s) {
      metrics_.add_child("shard" + std::to_string(s),
                         &shards_[s]->metrics());
    }
  }
}

PredictionService::~PredictionService() {
  shards_.clear();  // joins every worker; shard registries die with them
  metrics_.clear_children();
}

void PredictionService::register_model(const std::string& id, ModelSpec spec) {
  models_.insert(id, std::move(spec));
}

std::vector<std::string> PredictionService::model_ids() const {
  return models_.ids();
}

std::size_t PredictionService::shard_of(const std::string& model_id) const {
  const ModelTable::EntryPtr entry = models_.find(model_id);
  return entry ? router_.route_hash(entry->key_hash)
               : router_.route(model_id);
}

std::future<PredictResult> PredictionService::submit(PredictRequest request) {
  PredictionShard::Job job;
  job.request = std::move(request);
  // Submit-time registration stamp: gives the router the structure key's
  // hash and the shard's fusion scan a table-free equality proof. Null
  // (unknown id) routes by id text — deterministically, so the shard
  // that reports the structured error is stable too.
  job.model = models_.find(job.request.model_id);
  job.enqueue_time = clock_->now();
  const std::size_t routed = job.model
                                 ? router_.route_hash(job.model->key_hash)
                                 : router_.route(job.request.model_id);
  std::size_t shard = routed;
  // Work stealing: when one family's stream has piled its home shard's
  // queue `steal_threshold` deeper than the least-loaded shard, spill
  // onto that shard. Fusion/cache affinity is lost for the stolen
  // request, but a result now beats a perfectly-fused result later —
  // and per-request values are shard-independent, so correctness is
  // untouched. Only available shards are candidates: stealing balances
  // load, it never overrides an operator's unavailability mark.
  if (options_.steal_threshold > 0 && shards_.size() > 1 &&
      available_[routed].load(std::memory_order_acquire)) {
    const std::size_t depth = shards_[routed]->queue_depth();
    if (depth >= options_.steal_threshold) {
      std::size_t best = routed;
      std::size_t best_depth = depth;
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (s == routed ||
            !available_[s].load(std::memory_order_acquire)) {
          continue;
        }
        const std::size_t d = shards_[s]->queue_depth();
        if (d < best_depth) {
          best = s;
          best_depth = d;
        }
      }
      if (best != routed && best_depth + options_.steal_threshold <= depth) {
        shard = best;
        requests_stolen_.increment();
      }
    }
  }
  job.id = (next_seq_.fetch_add(1, std::memory_order_relaxed) << kShardBits) |
           shard;
  auto future = job.promise.get_future();
  if (available_[shard].load(std::memory_order_acquire)) {
    shards_[shard]->submit(std::move(job));
  } else {
    shards_[shard]->reject_unavailable(std::move(job));
  }
  return future;
}

void PredictionService::publish_epoch(EpochPtr epoch) {
  {
    const std::lock_guard lock(epoch_mutex_);
    epoch_ = epoch;
  }
  // Fan out in shard order. A publish concurrent with submissions is
  // naturally racy per shard (a request admitted "around" the publish
  // pins either the old or the new epoch — never a mix: each job pins
  // exactly one immutable snapshot at its shard's admission).
  for (auto& shard : shards_) shard->publish_epoch(epoch);
  epochs_published_.increment();
}

EpochPtr PredictionService::current_epoch() const {
  const std::lock_guard lock(epoch_mutex_);
  return epoch_;
}

void PredictionService::pause() {
  for (auto& shard : shards_) shard->pause();
}

void PredictionService::resume() {
  for (auto& shard : shards_) shard->resume();
}

void PredictionService::drain() {
  for (auto& shard : shards_) shard->drain();
}

bool PredictionService::report_observation(std::uint64_t request_id,
                                           double observed_seconds) {
  const std::size_t shard = shard_of_id(request_id);
  if (shard >= shards_.size()) {
    observations_unmatched_.increment();
    return false;
  }
  return shards_[shard]->report_observation(request_id, observed_seconds);
}

ProgramCache& PredictionService::cache(std::size_t shard) {
  SSPRED_REQUIRE(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->cache();
}

MetricsRegistry& PredictionService::shard_metrics(std::size_t shard) {
  SSPRED_REQUIRE(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->metrics();
}

void PredictionService::set_shard_available(std::size_t shard,
                                            bool available) {
  SSPRED_REQUIRE(shard < shards_.size(), "shard index out of range");
  available_[shard].store(available, std::memory_order_release);
}

}  // namespace sspred::serve
