// Predict-then-execute experiment harnesses — the machinery behind the
// paper's §3 evaluation (Figs. 8-9 and 12-17) and the "within 2%"
// dedicated-setting claim.
//
// A trial: (1) the NWS clone ingests the recent load history of every
// host; (2) the structural model is parameterized with the resulting
// stochastic loads (or their means, for the point baseline); (3) the real
// distributed SOR runs on the simulated platform; (4) predicted range vs
// actual time is recorded.
#pragma once

#include <cstdint>
#include <vector>

#include "predict/sor_model.hpp"
#include "stoch/metrics.hpp"

namespace sspred::predict {

/// One predict-then-execute outcome.
struct TrialOutcome {
  double start_time = 0.0;               ///< virtual timestamp of the run
  double actual = 0.0;                   ///< measured execution time
  stoch::StochasticValue predicted;      ///< stochastic prediction
  std::vector<double> load_at_start;     ///< availability per host at start
  std::vector<stoch::StochasticValue> load_params;  ///< bound load values

  /// The paper's point baseline: the mean of the stochastic prediction.
  [[nodiscard]] double point_predicted() const { return predicted.mean(); }
};

/// How trial load parameters are derived.
enum class LoadParameterSource {
  /// One-step NWS forecast over the trailing history window. Best when
  /// the load is persistent on the run's timescale.
  kNwsForecast,
  /// The host's current mode summarized as mean ± 2sd of recent samples
  /// within the window (Platform-1 single-mode regime, paper §3.1).
  kRecentSample,
  /// The paper's §2.1.2 bursty regime: fit a Gaussian mixture to the
  /// trailing window and average the modes by occupancy,
  /// Σ Pᵢ(Mᵢ ± SDᵢ) — appropriate when the run outlasts the mode dwell.
  kModalMix,
  /// Dedicated: all loads are the point value 1.0.
  kDedicated,
};

/// How the stochastic prediction is produced from the compiled model.
enum class PredictionMethod {
  /// The §2.3 stochastic calculus (the paper's contribution) — exact
  /// interval arithmetic over the compiled program.
  kCalculus,
  /// Monte-Carlo ground truth: sample the parameters, run the blocked
  /// trial-major engine, summarize as mean ± 2sd. Useful for validating
  /// the calculus on a series and for models where the calculus is
  /// conservative (e.g. group-Max policies).
  kMonteCarlo,
};

/// How the bandwidth-availability parameter is derived.
enum class BandwidthSource {
  /// Use SeriesConfig::bwavail as-is (e.g. a known segment profile).
  kFixed,
  /// Live NWS bandwidth probes through the shared segment; each trial is
  /// parameterized from the probe service's forecast.
  kNwsProbe,
};

struct SeriesConfig {
  cluster::PlatformSpec platform;
  sor::SorConfig sor;
  SorModelOptions model;
  std::size_t trials = 10;
  support::Seconds spacing = 150.0;        ///< gap between trial starts
  support::Seconds first_start = 400.0;    ///< history must exist before it
  support::Seconds history_window = 300.0; ///< NWS lookback per trial
  support::Seconds sample_interval = 5.0;  ///< NWS sampling period
  LoadParameterSource load_source = LoadParameterSource::kNwsForecast;
  /// Bandwidth-availability parameter for the comm model (kFixed source).
  stoch::StochasticValue bwavail = stoch::StochasticValue(1.0);
  BandwidthSource bw_source = BandwidthSource::kFixed;
  support::Seconds bw_probe_interval = 15.0;   ///< kNwsProbe period
  support::Bytes bw_probe_bytes = 32.0 * 1024.0;
  /// Prediction routing: calculus (default) or blocked Monte-Carlo.
  PredictionMethod method = PredictionMethod::kCalculus;
  std::size_t mc_trials = 10'000;          ///< trials for kMonteCarlo
  std::uint64_t seed = 20260707;
};

/// Runs a series of trials at successive start times over one continuous
/// platform load history (the paper's time-stamped series, Figs. 12-17).
[[nodiscard]] std::vector<TrialOutcome> run_series(const SeriesConfig& config);

/// Runs one trial per problem size at a fixed start time (Fig. 9's
/// execution-time-vs-problem-size view).
[[nodiscard]] std::vector<TrialOutcome> run_size_sweep(
    const SeriesConfig& config, std::span<const std::size_t> sizes);

/// Convenience: scores a series against the paper's metrics.
[[nodiscard]] stoch::PredictionScore score(
    std::span<const TrialOutcome> outcomes);

}  // namespace sspred::predict
