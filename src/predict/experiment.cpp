#include "predict/experiment.hpp"

#include <algorithm>

#include "nws/sensor.hpp"
#include "nws/service.hpp"
#include "stats/gmm.hpp"
#include "stoch/modes.hpp"
#include "support/error.hpp"

namespace sspred::predict {

namespace {

/// Derives the per-host load parameters for a trial starting at `start`.
std::vector<stoch::StochasticValue> load_parameters(
    const SeriesConfig& config, cluster::Platform& platform,
    support::Seconds start) {
  std::vector<stoch::StochasticValue> loads;
  loads.reserve(platform.size());
  switch (config.load_source) {
    case LoadParameterSource::kDedicated: {
      for (std::size_t p = 0; p < platform.size(); ++p) {
        loads.emplace_back(1.0);
      }
      break;
    }
    case LoadParameterSource::kNwsForecast: {
      nws::Service service;
      for (std::size_t p = 0; p < platform.size(); ++p) {
        auto& m = platform.machine(p);
        nws::ingest_cpu_history(m, service,
                                std::max(0.0, start - config.history_window),
                                start, config.sample_interval);
        loads.push_back(service.forecast(nws::cpu_resource(m)).sv());
      }
      break;
    }
    case LoadParameterSource::kRecentSample: {
      for (std::size_t p = 0; p < platform.size(); ++p) {
        auto& m = platform.machine(p);
        std::vector<double> window;
        for (support::Seconds t = std::max(0.0, start - config.history_window);
             t < start; t += config.sample_interval) {
          window.push_back(m.availability(t));
        }
        SSPRED_REQUIRE(window.size() >= 2, "history window too small");
        loads.push_back(stoch::StochasticValue::from_sample(window));
      }
      break;
    }
    case LoadParameterSource::kModalMix: {
      for (std::size_t p = 0; p < platform.size(); ++p) {
        auto& m = platform.machine(p);
        std::vector<double> window;
        for (support::Seconds t = std::max(0.0, start - config.history_window);
             t < start; t += config.sample_interval) {
          window.push_back(m.availability(t));
        }
        SSPRED_REQUIRE(window.size() >= 8, "history window too small");
        const auto fit = stats::fit_gmm_auto(window, 4);
        const auto modes = stoch::modes_from_gmm(fit);
        loads.push_back(stoch::mixture_moments(modes));
      }
      break;
    }
  }
  // A load forecast (or its error spread) can stray out of the physical
  // (0, 1] range; the model divides by the load, so clip the mean into
  // range and cap the halfwidth so the interval stays strictly positive.
  for (auto& l : loads) {
    const double mean = std::clamp(l.mean(), 0.05, 1.0);
    const double half = std::min(l.halfwidth(), mean - 0.02);
    l = stoch::StochasticValue(mean, std::max(half, 0.0));
  }
  return loads;
}

/// Derives the trial's bandwidth-availability parameter.
stoch::StochasticValue bandwidth_parameter(const SeriesConfig& config,
                                           const nws::Service& bw_service) {
  if (config.bw_source == BandwidthSource::kFixed) return config.bwavail;
  const auto fc = bw_service.forecast(nws::ethernet_resource());
  const double mean = std::clamp(fc.value, 0.05, 1.0);
  const double half = std::min(2.0 * fc.error_sd, mean - 0.02);
  return stoch::StochasticValue(mean, std::max(half, 0.0));
}

/// Shared trial state for Monte-Carlo prediction: one RNG stream over the
/// whole series (trials stay reproducible for a fixed SeriesConfig::seed)
/// and one workspace so the blocked engine's SoA arenas are reused across
/// trials instead of reallocated.
struct McState {
  explicit McState(std::uint64_t seed) : rng(seed) {}
  support::Rng rng;
  model::ir::EvalWorkspace ws;
};

TrialOutcome run_one(const SeriesConfig& config, sim::Engine& engine,
                     cluster::Platform& platform,
                     const SorStructuralModel& model,
                     const sor::SorConfig& sor_cfg,
                     const nws::Service& bw_service, support::Seconds start,
                     McState& mc) {
  // Advance to the trial start first so live sensors (bandwidth probes)
  // have produced their history before the model is parameterized.
  engine.run_until(start);
  TrialOutcome outcome;
  outcome.start_time = start;
  outcome.load_params = load_parameters(config, platform, start);
  for (std::size_t p = 0; p < platform.size(); ++p) {
    outcome.load_at_start.push_back(platform.machine(p).availability(start));
  }
  // Bind the trial's parameters by slot id into the compiled program —
  // no string lookups inside the trial loop.
  const model::ir::SlotEnvironment env = model.make_slot_env(
      outcome.load_params, bandwidth_parameter(config, bw_service));
  outcome.predicted =
      config.method == PredictionMethod::kMonteCarlo
          ? model.predict_monte_carlo(env, mc.rng, config.mc_trials, mc.ws)
          : model.predict(env);
  const sor::SorResult result =
      sor::run_distributed_sor(engine, platform, sor_cfg, start);
  outcome.actual = result.total_time;
  return outcome;
}

}  // namespace

std::vector<TrialOutcome> run_series(const SeriesConfig& config) {
  SSPRED_REQUIRE(config.trials >= 1, "need at least one trial");
  sim::Engine engine;
  cluster::PlatformSpec spec = config.platform;
  const support::Seconds horizon =
      config.first_start +
      static_cast<double>(config.trials) * config.spacing + 2000.0;
  spec.trace_duration = std::max(spec.trace_duration, horizon);
  cluster::Platform platform(engine, spec, config.seed);

  nws::Service bw_service;
  if (config.bw_source == BandwidthSource::kNwsProbe) {
    engine.spawn(nws::bandwidth_sensor(engine, platform.ethernet(),
                                       bw_service, config.bw_probe_bytes,
                                       config.bw_probe_interval, horizon));
  }

  // The problem configuration is fixed for the series, so author and
  // compile the structural model once; trials only rebind its slots.
  const SorStructuralModel model(config.platform, config.sor, config.model);

  // Distinct stream from the platform's trace RNG (same seed would
  // correlate the sampled loads with the simulated load signal).
  McState mc(config.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<TrialOutcome> outcomes;
  outcomes.reserve(config.trials);
  for (std::size_t i = 0; i < config.trials; ++i) {
    const support::Seconds start =
        std::max(config.first_start + static_cast<double>(i) * config.spacing,
                 engine.now());
    outcomes.push_back(run_one(config, engine, platform, model, config.sor,
                               bw_service, start, mc));
  }
  return outcomes;
}

std::vector<TrialOutcome> run_size_sweep(const SeriesConfig& config,
                                         std::span<const std::size_t> sizes) {
  SSPRED_REQUIRE(!sizes.empty(), "need at least one size");
  sim::Engine engine;
  cluster::PlatformSpec spec = config.platform;
  const support::Seconds horizon =
      config.first_start +
      static_cast<double>(sizes.size()) * config.spacing + 2000.0;
  spec.trace_duration = std::max(spec.trace_duration, horizon);
  cluster::Platform platform(engine, spec, config.seed);

  nws::Service bw_service;
  if (config.bw_source == BandwidthSource::kNwsProbe) {
    engine.spawn(nws::bandwidth_sensor(engine, platform.ethernet(),
                                       bw_service, config.bw_probe_bytes,
                                       config.bw_probe_interval, horizon));
  }

  McState mc(config.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<TrialOutcome> outcomes;
  outcomes.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    sor::SorConfig sor_cfg = config.sor;
    sor_cfg.n = sizes[i];
    // The problem size changes every trial here, so each size gets its
    // own compiled model (unlike run_series, which hoists one).
    const SorStructuralModel model(config.platform, sor_cfg, config.model);
    const support::Seconds start =
        std::max(config.first_start + static_cast<double>(i) * config.spacing,
                 engine.now());
    outcomes.push_back(run_one(config, engine, platform, model, sor_cfg,
                               bw_service, start, mc));
  }
  return outcomes;
}

stoch::PredictionScore score(std::span<const TrialOutcome> outcomes) {
  std::vector<stoch::StochasticValue> predictions;
  std::vector<double> actuals;
  predictions.reserve(outcomes.size());
  actuals.reserve(outcomes.size());
  for (const auto& o : outcomes) {
    predictions.push_back(o.predicted);
    actuals.push_back(o.actual);
  }
  return stoch::score_predictions(predictions, actuals);
}

}  // namespace sspred::predict
