// The paper's structural model for distributed Red-Black SOR (§2.2.1),
// instantiated for a platform + problem configuration:
//
//   ExTime = Σ_{i=1}^{NumIts} [ Max_p{RedComp_p} + Max_p{RedComm_p}
//                             + Max_p{BlackComp_p} + Max_p{BlackComm_p} ]
//
//   Comp_p  = (NumElt_p / 2) · BM(Elt_p) / load_p        (benchmark form)
//   Comm_p  = C · NumElt_msg · Size(Elt) / (BWAvail · DedBW) + 2·Latency
//
// `load_p` and `BWAvail` are model parameters that may be bound to point
// or stochastic values; everything else is a compile-time point value.
//
// Two-phase lifecycle: each model authors its expression as an Expr tree,
// then compiles it once at construction to the flat slot-indexed IR
// (model/ir.hpp). predict()/predict_point()/breakdown() are served from
// the compiled program; the tree stays reachable through expr() as the
// authoring form and differential-testing oracle.
//
// Substitution note (documented in DESIGN.md): on a shared segment the
// per-pair "dedicated bandwidth" during a phase is the segment bandwidth
// divided by the number of simultaneous transfers, so PtToPt carries the
// concurrency factor C = 2·(P-1). The paper's measured BWAvail on real
// ethernet folds the same effect in.
#pragma once

#include <string>
#include <vector>

#include "cluster/platform.hpp"
#include "model/compile.hpp"
#include "model/expr.hpp"
#include "sor/block.hpp"
#include "sor/decomposition.hpp"
#include "sor/distributed.hpp"

namespace sspred::predict {

/// The two computation component forms the paper offers (§2.2.1):
/// benchmarking (Comp_p2 = NumElt·BM(Elt)) or operation counting
/// (Comp_p1 = NumElt·Op(p,Elt)/CPU_p).
enum class ComputeForm {
  kBenchmark,
  kOpCount,
};

/// Dependence/policy choices for assembling the model (ablation surface).
struct SorModelOptions {
  /// How per-iteration terms accumulate across NumIts. kRelated (default)
  /// models persistent load: a slow machine stays slow all run.
  stoch::Dependence iteration_dependence = stoch::Dependence::kRelated;
  /// How the four phase maxima combine within an iteration.
  stoch::Dependence phase_dependence = stoch::Dependence::kUnrelated;
  /// Group-Max resolution policy (§2.3.3).
  stoch::ExtremePolicy max_policy = stoch::ExtremePolicy::kLargestMean;
  /// Computation component form (§2.2.1 offers both).
  ComputeForm compute_form = ComputeForm::kBenchmark;
  /// Op(p, Elt) for the op-count form: operations per element update.
  double ops_per_element = 6.0;
  /// Fold each host's memory-thrashing multiplier into the compute
  /// components. The paper's model does NOT (its Fig. 9 predictions hold
  /// only "for problem sizes which fit within main memory"); enabling
  /// this extends validity beyond the memory boundary.
  bool account_memory = false;
};

class SorStructuralModel {
 public:
  SorStructuralModel(const cluster::PlatformSpec& platform,
                     const sor::SorConfig& config,
                     SorModelOptions options = {});

  /// The authored expression tree (parameters: load params + "bwavail").
  [[nodiscard]] const model::ExprPtr& expr() const noexcept { return expr_; }
  /// The compiled program that serves predictions.
  [[nodiscard]] const model::ir::Program& program() const noexcept {
    return program_;
  }

  /// Parameter name for host p's CPU availability.
  [[nodiscard]] const std::string& load_param(std::size_t host) const;
  /// Slot id of host p's load parameter in program().
  [[nodiscard]] std::uint32_t load_slot(std::size_t host) const;
  [[nodiscard]] std::size_t hosts() const noexcept {
    return load_params_.size();
  }
  /// Parameter name for the bandwidth availability fraction.
  [[nodiscard]] static std::string bwavail_param() { return "bwavail"; }
  /// True when the model has a bandwidth parameter (more than one host).
  [[nodiscard]] bool uses_bandwidth() const noexcept {
    return program_.has_slot(bwavail_param());
  }

  /// Environment with all loads and bwavail bound (string-keyed bridge).
  [[nodiscard]] model::Environment make_env(
      std::span<const stoch::StochasticValue> loads,
      stoch::StochasticValue bwavail) const;

  /// Slot environment with all loads and bwavail bound by slot id — the
  /// allocation-light path for per-trial rebinding in experiment loops.
  [[nodiscard]] model::ir::SlotEnvironment make_slot_env(
      std::span<const stoch::StochasticValue> loads,
      stoch::StochasticValue bwavail) const;

  /// Stochastic execution-time prediction (compiled §2.3 calculus).
  [[nodiscard]] stoch::StochasticValue predict(
      const model::ir::SlotEnvironment& env) const;
  [[nodiscard]] stoch::StochasticValue predict(
      const model::Environment& env) const;
  /// Conventional point prediction (all parameters collapse to means).
  [[nodiscard]] double predict_point(
      const model::ir::SlotEnvironment& env) const;
  [[nodiscard]] double predict_point(const model::Environment& env) const;

  /// Monte-Carlo prediction: `trials` samples of the compiled program
  /// summarized as mean ± 2sd. Runs the blocked trial-major engine by
  /// default; pass kScalarCompat to reproduce the per-trial scalar stream
  /// (see ir::SampleOrder). The workspace-less form allocates one
  /// workspace per call — reuse `ws` in loops.
  [[nodiscard]] stoch::StochasticValue predict_monte_carlo(
      const model::ir::SlotEnvironment& env, support::Rng& rng,
      std::size_t trials, model::ir::EvalWorkspace& ws,
      model::ir::SampleOrder order = model::ir::SampleOrder::kBlocked) const;
  [[nodiscard]] stoch::StochasticValue predict_monte_carlo(
      const model::ir::SlotEnvironment& env, support::Rng& rng,
      std::size_t trials = 10'000,
      model::ir::SampleOrder order = model::ir::SampleOrder::kBlocked) const;

  [[nodiscard]] const sor::StripDecomposition& decomposition() const noexcept {
    return decomp_;
  }

  /// Where a prediction comes from: per-host compute components and the
  /// shared communication component, per iteration and for the whole run.
  struct Breakdown {
    std::vector<stoch::StochasticValue> comp_per_host;  ///< one phase each
    stoch::StochasticValue comm_per_phase;
    stoch::StochasticValue per_iteration;
    stoch::StochasticValue total;
    std::size_t dominant_host = 0;  ///< argmax of comp means
  };

  /// Evaluates the component models separately (same calculus as
  /// predict()) so users can see which host/phase drives the prediction.
  /// Component programs share the main program's slot table, so one slot
  /// environment drives all of them.
  [[nodiscard]] Breakdown breakdown(const model::ir::SlotEnvironment& env) const;
  [[nodiscard]] Breakdown breakdown(const model::Environment& env) const;

 private:
  sor::StripDecomposition decomp_;
  std::vector<std::string> load_params_;
  std::vector<model::ExprPtr> comp_exprs_;  ///< one phase, per host
  model::ExprPtr comm_expr_;                ///< one phase, shared
  model::ExprPtr iteration_expr_;
  model::ExprPtr expr_;
  model::ir::Program program_;                     ///< compiled expr_
  std::vector<model::ir::Program> comp_programs_;  ///< compiled comp_exprs_
  model::ir::Program comm_program_;
  model::ir::Program iteration_program_;
  std::vector<std::uint32_t> load_slots_;
};

/// Structural model for the 2-D block-decomposed SOR: same per-phase
/// compute as strips (half the local elements), but the ghost exchange
/// moves O(n·(pr+pc)) bytes instead of O(n·P).
class BlockStructuralModel {
 public:
  BlockStructuralModel(const cluster::PlatformSpec& platform, std::size_t n,
                       std::size_t iterations, std::size_t pr, std::size_t pc,
                       SorModelOptions options = {});

  [[nodiscard]] const model::ExprPtr& expr() const noexcept { return expr_; }
  [[nodiscard]] const model::ir::Program& program() const noexcept {
    return program_;
  }
  [[nodiscard]] model::Environment make_env(
      std::span<const stoch::StochasticValue> loads,
      stoch::StochasticValue bwavail) const;
  [[nodiscard]] model::ir::SlotEnvironment make_slot_env(
      std::span<const stoch::StochasticValue> loads,
      stoch::StochasticValue bwavail) const;
  [[nodiscard]] stoch::StochasticValue predict(
      const model::ir::SlotEnvironment& env) const;
  [[nodiscard]] stoch::StochasticValue predict(
      const model::Environment& env) const;
  [[nodiscard]] double predict_point(
      const model::ir::SlotEnvironment& env) const;
  [[nodiscard]] double predict_point(const model::Environment& env) const;

 private:
  std::vector<std::string> load_params_;
  model::ExprPtr expr_;
  model::ir::Program program_;
  std::vector<std::uint32_t> load_slots_;
};

/// Structural model for the distributed Jacobi application (one full
/// sweep + one ghost exchange per iteration):
///   ExTime = Σ_{i=1}^{NumIts} [ Max_p{Comp_p} + Comm ]
/// Demonstrates that structural modeling composes for applications beyond
/// the paper's SOR.
class JacobiStructuralModel {
 public:
  JacobiStructuralModel(const cluster::PlatformSpec& platform,
                        std::size_t n, std::size_t iterations,
                        SorModelOptions options = {});

  [[nodiscard]] const model::ExprPtr& expr() const noexcept { return expr_; }
  [[nodiscard]] const model::ir::Program& program() const noexcept {
    return program_;
  }
  [[nodiscard]] const std::string& load_param(std::size_t host) const;
  [[nodiscard]] model::Environment make_env(
      std::span<const stoch::StochasticValue> loads,
      stoch::StochasticValue bwavail) const;
  [[nodiscard]] model::ir::SlotEnvironment make_slot_env(
      std::span<const stoch::StochasticValue> loads,
      stoch::StochasticValue bwavail) const;
  [[nodiscard]] stoch::StochasticValue predict(
      const model::ir::SlotEnvironment& env) const;
  [[nodiscard]] stoch::StochasticValue predict(
      const model::Environment& env) const;
  [[nodiscard]] double predict_point(
      const model::ir::SlotEnvironment& env) const;
  [[nodiscard]] double predict_point(const model::Environment& env) const;

 private:
  std::vector<std::string> load_params_;
  model::ExprPtr expr_;
  model::ir::Program program_;
  std::vector<std::uint32_t> load_slots_;
};

}  // namespace sspred::predict
