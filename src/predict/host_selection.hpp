// Application-level host selection over stochastic predictions.
//
// The paper's setting is the authors' AppLeS project: an application-level
// scheduler that uses NWS data to pick resources. With stochastic
// execution-time predictions the choice becomes metric-driven (paper
// §1.2): rank every host subset by expected time, by a high quantile
// (penalized mispredictions), or by the worst case.
//
// Using MORE hosts is not always better: loaded or slow machines can drag
// the Max-composed SOR model above a smaller, cleaner subset.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "predict/decomposition_advisor.hpp"
#include "predict/sor_model.hpp"

namespace sspred::predict {

/// What "best" means for a plan.
enum class PlanMetric {
  kExpectedTime,  ///< minimize the prediction mean
  kP95Time,       ///< minimize the 95th-percentile time (risk-averse)
  kUpperBound,    ///< minimize mean + 2sd (the range's top)
};

/// One candidate execution plan.
struct CandidatePlan {
  std::vector<std::size_t> hosts;      ///< indices into the full platform
  std::vector<std::size_t> rows;       ///< strip heights per chosen host
  stoch::StochasticValue predicted;    ///< stochastic ExTime on this subset
  double score = 0.0;                  ///< metric value (lower is better)

  /// The platform spec restricted to this plan's hosts.
  [[nodiscard]] cluster::PlatformSpec subset_spec(
      const cluster::PlatformSpec& full) const;
};

/// Enumerates every non-empty host subset (platforms up to 16 hosts),
/// builds the SOR structural model on each with capacity-balanced strips,
/// and returns plans sorted by the metric (best first).
[[nodiscard]] std::vector<CandidatePlan> rank_host_subsets(
    const cluster::PlatformSpec& platform, const sor::SorConfig& config,
    std::span<const stoch::StochasticValue> loads,
    stoch::StochasticValue bwavail, PlanMetric metric,
    const SorModelOptions& options = {});

/// Convenience: the best plan under the metric.
[[nodiscard]] CandidatePlan select_hosts(
    const cluster::PlatformSpec& platform, const sor::SorConfig& config,
    std::span<const stoch::StochasticValue> loads,
    stoch::StochasticValue bwavail, PlanMetric metric,
    const SorModelOptions& options = {});

}  // namespace sspred::predict
