// Time-balancing strip decomposition (paper footnote 2): "To balance load
// in a distributed setting, we may assign more work to processors with
// greater capacity, with the goal of having all processors complete at
// the same time."
//
// Capacity is load / BM(Elt): with stochastic loads the advisor can
// balance on the means or — when mispredictions are penalized (paper
// §1.2) — on pessimistic capacities, giving high-variance machines less
// work.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cluster/platform.hpp"
#include "stoch/stochastic_value.hpp"

namespace sspred::predict {

enum class BalanceStrategy {
  kUniform,       ///< equal strips, ignore capacities
  kMeanCapacity,  ///< rows ∝ load_mean / bm
  kConservative,  ///< rows ∝ max(load_lower, eps) / bm: distrust swingy hosts
};

/// Recommends rows-per-rank for an n-row grid on `platform` given each
/// host's stochastic load.
[[nodiscard]] std::vector<std::size_t> recommend_rows(
    const cluster::PlatformSpec& platform, std::size_t n,
    std::span<const stoch::StochasticValue> loads, BalanceStrategy strategy);

/// Expected per-iteration compute imbalance of a decomposition: the ratio
/// of the slowest rank's expected phase time to the mean phase time
/// (1.0 = perfectly balanced).
[[nodiscard]] double imbalance(const cluster::PlatformSpec& platform,
                               std::size_t n,
                               std::span<const std::size_t> rows,
                               std::span<const stoch::StochasticValue> loads);

}  // namespace sspred::predict
