#include "predict/host_selection.hpp"

#include <algorithm>

#include "stoch/service_range.hpp"
#include "support/error.hpp"

namespace sspred::predict {

cluster::PlatformSpec CandidatePlan::subset_spec(
    const cluster::PlatformSpec& full) const {
  cluster::PlatformSpec spec = full;
  spec.hosts.clear();
  for (std::size_t h : hosts) {
    SSPRED_REQUIRE(h < full.hosts.size(), "host index out of range");
    spec.hosts.push_back(full.hosts[h]);
  }
  return spec;
}

namespace {

double plan_score(const stoch::StochasticValue& predicted, PlanMetric metric) {
  switch (metric) {
    case PlanMetric::kExpectedTime:
      return predicted.mean();
    case PlanMetric::kP95Time:
      return predicted.is_point() ? predicted.mean()
                                  : stoch::quantile(predicted, 0.95);
    case PlanMetric::kUpperBound:
      return predicted.upper();
  }
  SSPRED_REQUIRE(false, "unknown PlanMetric");
  return 0.0;
}

}  // namespace

std::vector<CandidatePlan> rank_host_subsets(
    const cluster::PlatformSpec& platform, const sor::SorConfig& config,
    std::span<const stoch::StochasticValue> loads,
    stoch::StochasticValue bwavail, PlanMetric metric,
    const SorModelOptions& options) {
  const std::size_t host_count = platform.hosts.size();
  SSPRED_REQUIRE(host_count >= 1 && host_count <= 16,
                 "subset enumeration supports 1..16 hosts");
  SSPRED_REQUIRE(loads.size() == host_count, "need one load per host");

  std::vector<CandidatePlan> plans;
  const auto subsets = (std::size_t{1} << host_count) - 1;
  for (std::size_t mask = 1; mask <= subsets; ++mask) {
    CandidatePlan plan;
    std::vector<stoch::StochasticValue> subset_loads;
    for (std::size_t h = 0; h < host_count; ++h) {
      if (mask & (std::size_t{1} << h)) {
        plan.hosts.push_back(h);
        subset_loads.push_back(loads[h]);
      }
    }
    if (config.n < plan.hosts.size()) continue;  // more hosts than rows

    const cluster::PlatformSpec spec = plan.subset_spec(platform);
    plan.rows = recommend_rows(spec, config.n, subset_loads,
                               BalanceStrategy::kMeanCapacity);
    sor::SorConfig subset_cfg = config;
    subset_cfg.rows_per_rank = plan.rows;
    const SorStructuralModel model(spec, subset_cfg, options);
    plan.predicted = model.predict(model.make_slot_env(subset_loads, bwavail));
    plan.score = plan_score(plan.predicted, metric);
    plans.push_back(std::move(plan));
  }
  std::sort(plans.begin(), plans.end(),
            [](const CandidatePlan& a, const CandidatePlan& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.hosts.size() < b.hosts.size();
            });
  return plans;
}

CandidatePlan select_hosts(const cluster::PlatformSpec& platform,
                           const sor::SorConfig& config,
                           std::span<const stoch::StochasticValue> loads,
                           stoch::StochasticValue bwavail, PlanMetric metric,
                           const SorModelOptions& options) {
  const auto plans =
      rank_host_subsets(platform, config, loads, bwavail, metric, options);
  SSPRED_REQUIRE(!plans.empty(), "no feasible plan");
  return plans.front();
}

}  // namespace sspred::predict
