#include "predict/decomposition_advisor.hpp"

#include <algorithm>

#include "sor/decomposition.hpp"
#include "support/error.hpp"

namespace sspred::predict {

std::vector<std::size_t> recommend_rows(
    const cluster::PlatformSpec& platform, std::size_t n,
    std::span<const stoch::StochasticValue> loads, BalanceStrategy strategy) {
  const std::size_t hosts = platform.hosts.size();
  SSPRED_REQUIRE(loads.size() == hosts, "need one load value per host");
  SSPRED_REQUIRE(n >= hosts, "need at least one row per host");

  if (strategy == BalanceStrategy::kUniform) {
    const auto d = sor::StripDecomposition::uniform(n, hosts);
    std::vector<std::size_t> rows(hosts);
    for (std::size_t p = 0; p < hosts; ++p) rows[p] = d.rows(p);
    return rows;
  }

  std::vector<double> capacity(hosts);
  for (std::size_t p = 0; p < hosts; ++p) {
    const double load_estimate =
        strategy == BalanceStrategy::kMeanCapacity
            ? loads[p].mean()
            : std::max(loads[p].lower(), 0.05 * loads[p].mean());
    SSPRED_REQUIRE(load_estimate > 0.0, "load estimate must be positive");
    capacity[p] =
        load_estimate / platform.hosts[p].machine.bm_seconds_per_element;
  }
  const auto d = sor::StripDecomposition::weighted(n, capacity);
  std::vector<std::size_t> rows(hosts);
  for (std::size_t p = 0; p < hosts; ++p) rows[p] = d.rows(p);
  return rows;
}

double imbalance(const cluster::PlatformSpec& platform, std::size_t n,
                 std::span<const std::size_t> rows,
                 std::span<const stoch::StochasticValue> loads) {
  const std::size_t hosts = platform.hosts.size();
  SSPRED_REQUIRE(rows.size() == hosts && loads.size() == hosts,
                 "rows/loads must match host count");
  double worst = 0.0;
  double total = 0.0;
  for (std::size_t p = 0; p < hosts; ++p) {
    const double phase =
        static_cast<double>(rows[p]) * static_cast<double>(n) *
        platform.hosts[p].machine.bm_seconds_per_element /
        std::max(loads[p].mean(), 1e-9);
    worst = std::max(worst, phase);
    total += phase;
  }
  const double mean = total / static_cast<double>(hosts);
  return worst / mean;
}

}  // namespace sspred::predict
