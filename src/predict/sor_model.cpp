#include "predict/sor_model.hpp"

#include "mpi/comm.hpp"
#include "support/error.hpp"

namespace sspred::predict {

using model::constant;
using model::ExprPtr;
using model::param;
using model::quotient;
using model::vmax;
using stoch::Dependence;
using stoch::StochasticValue;

namespace {

/// Fabric-dependent communication profile for one ghost-exchange phase.
struct CommProfile {
  double concurrency;                   ///< simultaneous transfers per link
  support::BytesPerSecond bandwidth;    ///< the contended link's capacity
  support::Seconds latency;
};

[[nodiscard]] CommProfile comm_profile(const cluster::PlatformSpec& platform) {
  const double p_count = static_cast<double>(platform.hosts.size());
  if (platform.fabric == cluster::FabricKind::kSharedSegment) {
    // All 2(P-1) ghost messages of a phase share one segment.
    return {2.0 * (p_count - 1.0), platform.ethernet.nominal_bandwidth,
            platform.ethernet.latency};
  }
  // Switched: contention only at each NIC — at most 2 messages per
  // direction per host in a phase.
  return {std::min(2.0, p_count - 1.0), platform.switched.link_bandwidth,
          platform.switched.latency};
}

/// Binds loads (by cached slot id) and, when the model has one, the
/// bandwidth parameter into a fresh slot environment.
[[nodiscard]] model::ir::SlotEnvironment make_slot_env_for(
    const model::ir::Program& program,
    std::span<const std::uint32_t> load_slots,
    std::span<const StochasticValue> loads, StochasticValue bwavail) {
  SSPRED_REQUIRE(loads.size() == load_slots.size(),
                 "need one load value per host");
  model::ir::SlotEnvironment env = program.make_environment();
  for (std::size_t p = 0; p < loads.size(); ++p) {
    env.bind(load_slots[p], loads[p]);
  }
  if (program.has_slot(SorStructuralModel::bwavail_param())) {
    env.bind(program.slot(SorStructuralModel::bwavail_param()), bwavail);
  }
  return env;
}

/// Binds loads and bwavail into a string-keyed Environment (bridge path).
[[nodiscard]] model::Environment make_string_env(
    std::span<const std::string> load_params,
    std::span<const StochasticValue> loads, StochasticValue bwavail) {
  SSPRED_REQUIRE(loads.size() == load_params.size(),
                 "need one load value per host");
  model::Environment env;
  for (std::size_t p = 0; p < loads.size(); ++p) {
    env.bind(load_params[p], loads[p]);
  }
  env.bind(SorStructuralModel::bwavail_param(), bwavail);
  return env;
}

}  // namespace

SorStructuralModel::SorStructuralModel(const cluster::PlatformSpec& platform,
                                       const sor::SorConfig& config,
                                       SorModelOptions options)
    : decomp_(config.rows_per_rank.empty()
                  ? sor::StripDecomposition::uniform(config.n,
                                                     platform.hosts.size())
                  : sor::StripDecomposition(config.n, config.rows_per_rank)) {
  SSPRED_REQUIRE(!platform.hosts.empty(), "platform has no hosts");
  const std::size_t p_count = platform.hosts.size();
  load_params_.reserve(p_count);
  for (const auto& host : platform.hosts) {
    load_params_.push_back("load/" + host.machine.name);
  }

  // --- Computation components, one of the paper's two forms:
  //   benchmark: Comp_p = (NumElt_p / 2) · BM(Elt_p) / load_p
  //   op-count:  Comp_p = (NumElt_p / 2) · Op(p,Elt) / CPU_p / load_p
  // optionally inflated by the host's memory-thrashing multiplier.
  std::vector<ExprPtr> comp_terms;
  comp_terms.reserve(p_count);
  for (std::size_t p = 0; p < p_count; ++p) {
    const auto& mspec = platform.hosts[p].machine;
    const double per_element =
        options.compute_form == ComputeForm::kBenchmark
            ? mspec.bm_seconds_per_element
            : options.ops_per_element / mspec.ops_per_second;
    double dedicated_phase_seconds =
        decomp_.elements(p) / 2.0 * per_element;
    if (options.account_memory) {
      const double working_set =
          2.0 * static_cast<double>(decomp_.rows(p) + 2) *
          (static_cast<double>(config.n) + 2.0);
      dedicated_phase_seconds *= mspec.slowdown_factor(working_set);
    }
    comp_terms.push_back(quotient(constant(dedicated_phase_seconds),
                                  param(load_params_[p]),
                                  Dependence::kUnrelated));
  }
  comp_exprs_ = comp_terms;
  const ExprPtr max_comp = vmax(comp_terms, options.max_policy);

  // --- Communication components (identical across interior ranks once the
  // fabric's concurrency is folded in; see header note).
  //   bytes per ghost message: (n+2) elements + header
  //   C = simultaneous transfers on the contended link per phase
  //       (2·(P-1) on a shared segment; ≤2 per NIC when switched).
  const double msg_bytes =
      (static_cast<double>(config.n) + 2.0) * sizeof(double) +
      mpi::Comm::kHeaderBytes;
  const CommProfile profile = comm_profile(platform);
  const ExprPtr max_comm = [&]() -> ExprPtr {
    if (p_count < 2) {
      return constant(StochasticValue(0.0));  // single host: no comm
    }
    const double dedicated_phase_seconds =
        profile.concurrency * msg_bytes / profile.bandwidth;
    // In a phase all transfers start and complete together under fair
    // sharing, so a rank's comm phase ends one latency after the shared
    // bulk completes.
    return model::add(
        quotient(constant(dedicated_phase_seconds), param(bwavail_param()),
                 Dependence::kUnrelated),
        constant(profile.latency), Dependence::kRelated);
  }();

  // --- One iteration: red/black compute (same load params -> related) plus
  // red/black comm (same bandwidth -> related); compute vs comm unrelated.
  comm_expr_ = max_comm;
  const ExprPtr comp_both =
      model::add(max_comp, max_comp, Dependence::kRelated);
  const ExprPtr comm_both =
      model::add(max_comm, max_comm, Dependence::kRelated);
  iteration_expr_ = model::add(comp_both, comm_both, options.phase_dependence);

  // --- Full run: Σ over NumIts.
  expr_ = model::iterate(iteration_expr_, config.iterations,
                         options.iteration_dependence);

  // --- Compile once; all queries below are served from the flat program.
  // The component programs share the main program's slot table so one
  // slot environment drives predict() and breakdown() alike.
  program_ = model::compile(*expr_);
  comp_programs_.reserve(comp_exprs_.size());
  for (const auto& comp : comp_exprs_) {
    comp_programs_.push_back(model::compile(*comp, program_));
  }
  comm_program_ = model::compile(*comm_expr_, program_);
  iteration_program_ = model::compile(*iteration_expr_, program_);
  load_slots_.reserve(load_params_.size());
  for (const auto& name : load_params_) {
    load_slots_.push_back(program_.slot(name));
  }
}

const std::string& SorStructuralModel::load_param(std::size_t host) const {
  SSPRED_REQUIRE(host < load_params_.size(), "host index out of range");
  return load_params_[host];
}

std::uint32_t SorStructuralModel::load_slot(std::size_t host) const {
  SSPRED_REQUIRE(host < load_slots_.size(), "host index out of range");
  return load_slots_[host];
}

model::Environment SorStructuralModel::make_env(
    std::span<const StochasticValue> loads, StochasticValue bwavail) const {
  return make_string_env(load_params_, loads, bwavail);
}

model::ir::SlotEnvironment SorStructuralModel::make_slot_env(
    std::span<const StochasticValue> loads, StochasticValue bwavail) const {
  return make_slot_env_for(program_, load_slots_, loads, bwavail);
}

StochasticValue SorStructuralModel::predict(
    const model::ir::SlotEnvironment& env) const {
  return program_.evaluate(env);
}

StochasticValue SorStructuralModel::predict(
    const model::Environment& env) const {
  return program_.evaluate(model::bind_environment(program_, env));
}

double SorStructuralModel::predict_point(
    const model::ir::SlotEnvironment& env) const {
  return program_.evaluate_point(env);
}

double SorStructuralModel::predict_point(const model::Environment& env) const {
  return program_.evaluate_point(model::bind_environment(program_, env));
}

StochasticValue SorStructuralModel::predict_monte_carlo(
    const model::ir::SlotEnvironment& env, support::Rng& rng,
    std::size_t trials, model::ir::EvalWorkspace& ws,
    model::ir::SampleOrder order) const {
  return program_.sample_trials(env, rng, trials, ws, order);
}

StochasticValue SorStructuralModel::predict_monte_carlo(
    const model::ir::SlotEnvironment& env, support::Rng& rng,
    std::size_t trials, model::ir::SampleOrder order) const {
  return program_.sample_trials(env, rng, trials, order);
}

SorStructuralModel::Breakdown SorStructuralModel::breakdown(
    const model::ir::SlotEnvironment& env) const {
  Breakdown b;
  model::ir::EvalWorkspace ws;  // shared across the component programs
  b.comp_per_host.reserve(comp_programs_.size());
  double best_mean = -1.0;
  for (std::size_t p = 0; p < comp_programs_.size(); ++p) {
    b.comp_per_host.push_back(comp_programs_[p].evaluate(env, ws));
    if (b.comp_per_host.back().mean() > best_mean) {
      best_mean = b.comp_per_host.back().mean();
      b.dominant_host = p;
    }
  }
  b.comm_per_phase = comm_program_.evaluate(env, ws);
  b.per_iteration = iteration_program_.evaluate(env, ws);
  b.total = program_.evaluate(env, ws);
  return b;
}

SorStructuralModel::Breakdown SorStructuralModel::breakdown(
    const model::Environment& env) const {
  return breakdown(model::bind_environment(program_, env));
}

BlockStructuralModel::BlockStructuralModel(
    const cluster::PlatformSpec& platform, std::size_t n,
    std::size_t iterations, std::size_t pr, std::size_t pc,
    SorModelOptions options) {
  const std::size_t p_count = platform.hosts.size();
  SSPRED_REQUIRE(pr * pc == p_count, "pr*pc must equal the host count");
  load_params_.reserve(p_count);
  for (const auto& host : platform.hosts) {
    load_params_.push_back("load/" + host.machine.name);
  }

  // Comp_p: half the block's elements per color phase.
  std::vector<ExprPtr> comp_terms;
  comp_terms.reserve(p_count);
  for (std::size_t p = 0; p < p_count; ++p) {
    const std::size_t rows = sor::block_extent(n, pr, p / pc);
    const std::size_t cols = sor::block_extent(n, pc, p % pc);
    const auto& mspec = platform.hosts[p].machine;
    double dedicated = static_cast<double>(rows) *
                       static_cast<double>(cols) / 2.0 *
                       mspec.bm_seconds_per_element;
    if (options.account_memory) {
      const double working_set = 2.0 * static_cast<double>(rows + 2) *
                                 static_cast<double>(cols + 2);
      dedicated *= mspec.slowdown_factor(working_set);
    }
    comp_terms.push_back(quotient(constant(dedicated), param(load_params_[p]),
                                  Dependence::kUnrelated));
  }
  const ExprPtr max_comp = vmax(comp_terms, options.max_policy);

  // Comm per phase: boundary bytes scale with (pr-1)+(pc-1) grid cuts.
  const double msgs = 2.0 * static_cast<double>(pc) *
                          (static_cast<double>(pr) - 1.0) +
                      2.0 * static_cast<double>(pr) *
                          (static_cast<double>(pc) - 1.0);
  const double boundary_bytes =
      16.0 * static_cast<double>(n) *
          ((static_cast<double>(pr) - 1.0) + (static_cast<double>(pc) - 1.0)) +
      mpi::Comm::kHeaderBytes * msgs;
  const CommProfile profile = comm_profile(platform);
  const ExprPtr max_comm = [&]() -> ExprPtr {
    if (p_count < 2) return constant(StochasticValue(0.0));
    double dedicated_phase_seconds = 0.0;
    if (platform.fabric == cluster::FabricKind::kSharedSegment) {
      dedicated_phase_seconds = boundary_bytes / profile.bandwidth;
    } else {
      // Switched: an interior NIC carries up to 4 messages per phase.
      const double nic_bytes =
          (2.0 * static_cast<double>(n) / static_cast<double>(pc) +
           2.0 * static_cast<double>(n) / static_cast<double>(pr)) *
              sizeof(double) +
          4.0 * mpi::Comm::kHeaderBytes;
      dedicated_phase_seconds = nic_bytes / profile.bandwidth;
    }
    return model::add(
        quotient(constant(dedicated_phase_seconds),
                 param(SorStructuralModel::bwavail_param()),
                 Dependence::kUnrelated),
        constant(profile.latency), Dependence::kRelated);
  }();

  const ExprPtr comp_both = model::add(max_comp, max_comp,
                                       Dependence::kRelated);
  const ExprPtr comm_both = model::add(max_comm, max_comm,
                                       Dependence::kRelated);
  const ExprPtr iteration =
      model::add(comp_both, comm_both, options.phase_dependence);
  expr_ = model::iterate(iteration, iterations, options.iteration_dependence);

  program_ = model::compile(*expr_);
  load_slots_.reserve(load_params_.size());
  for (const auto& name : load_params_) {
    load_slots_.push_back(program_.slot(name));
  }
}

model::Environment BlockStructuralModel::make_env(
    std::span<const StochasticValue> loads, StochasticValue bwavail) const {
  return make_string_env(load_params_, loads, bwavail);
}

model::ir::SlotEnvironment BlockStructuralModel::make_slot_env(
    std::span<const StochasticValue> loads, StochasticValue bwavail) const {
  return make_slot_env_for(program_, load_slots_, loads, bwavail);
}

StochasticValue BlockStructuralModel::predict(
    const model::ir::SlotEnvironment& env) const {
  return program_.evaluate(env);
}

StochasticValue BlockStructuralModel::predict(
    const model::Environment& env) const {
  return program_.evaluate(model::bind_environment(program_, env));
}

double BlockStructuralModel::predict_point(
    const model::ir::SlotEnvironment& env) const {
  return program_.evaluate_point(env);
}

double BlockStructuralModel::predict_point(
    const model::Environment& env) const {
  return program_.evaluate_point(model::bind_environment(program_, env));
}

JacobiStructuralModel::JacobiStructuralModel(
    const cluster::PlatformSpec& platform, std::size_t n,
    std::size_t iterations, SorModelOptions options) {
  SSPRED_REQUIRE(!platform.hosts.empty(), "platform has no hosts");
  const std::size_t p_count = platform.hosts.size();
  const sor::StripDecomposition decomp =
      sor::StripDecomposition::uniform(n, p_count);
  load_params_.reserve(p_count);
  for (const auto& host : platform.hosts) {
    load_params_.push_back("load/" + host.machine.name);
  }

  // Comp_p: the full strip once per iteration.
  std::vector<ExprPtr> comp_terms;
  comp_terms.reserve(p_count);
  for (std::size_t p = 0; p < p_count; ++p) {
    const auto& mspec = platform.hosts[p].machine;
    double dedicated = decomp.elements(p) * mspec.bm_seconds_per_element;
    if (options.account_memory) {
      const double working_set =
          2.0 * static_cast<double>(decomp.rows(p) + 2) *
          (static_cast<double>(n) + 2.0);
      dedicated *= mspec.slowdown_factor(working_set);
    }
    comp_terms.push_back(quotient(constant(dedicated), param(load_params_[p]),
                                  Dependence::kUnrelated));
  }
  const ExprPtr max_comp = vmax(comp_terms, options.max_policy);

  // Comm: one ghost exchange per iteration on the platform's fabric.
  const double msg_bytes =
      (static_cast<double>(n) + 2.0) * sizeof(double) +
      mpi::Comm::kHeaderBytes;
  const CommProfile profile = comm_profile(platform);
  const ExprPtr comm = [&]() -> ExprPtr {
    if (p_count < 2) return constant(StochasticValue(0.0));
    return model::add(
        quotient(constant(profile.concurrency * msg_bytes /
                          profile.bandwidth),
                 param(SorStructuralModel::bwavail_param()),
                 Dependence::kUnrelated),
        constant(profile.latency), Dependence::kRelated);
  }();

  const ExprPtr iteration =
      model::add(max_comp, comm, options.phase_dependence);
  expr_ = model::iterate(iteration, iterations, options.iteration_dependence);

  program_ = model::compile(*expr_);
  load_slots_.reserve(load_params_.size());
  for (const auto& name : load_params_) {
    load_slots_.push_back(program_.slot(name));
  }
}

const std::string& JacobiStructuralModel::load_param(std::size_t host) const {
  SSPRED_REQUIRE(host < load_params_.size(), "host index out of range");
  return load_params_[host];
}

model::Environment JacobiStructuralModel::make_env(
    std::span<const StochasticValue> loads, StochasticValue bwavail) const {
  return make_string_env(load_params_, loads, bwavail);
}

model::ir::SlotEnvironment JacobiStructuralModel::make_slot_env(
    std::span<const StochasticValue> loads, StochasticValue bwavail) const {
  return make_slot_env_for(program_, load_slots_, loads, bwavail);
}

StochasticValue JacobiStructuralModel::predict(
    const model::ir::SlotEnvironment& env) const {
  return program_.evaluate(env);
}

StochasticValue JacobiStructuralModel::predict(
    const model::Environment& env) const {
  return program_.evaluate(model::bind_environment(program_, env));
}

double JacobiStructuralModel::predict_point(
    const model::ir::SlotEnvironment& env) const {
  return program_.evaluate_point(env);
}

double JacobiStructuralModel::predict_point(
    const model::Environment& env) const {
  return program_.evaluate_point(model::bind_environment(program_, env));
}

}  // namespace sspred::predict
