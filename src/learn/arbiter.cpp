#include "learn/arbiter.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "support/error.hpp"

namespace sspred::learn {

const char* source_name(Source source) noexcept {
  switch (source) {
    case Source::kStructural:
      return "structural";
    case Source::kLearned:
      return "learned";
    case Source::kBlended:
      return "blended";
  }
  return "unknown";
}

stoch::StochasticValue blend(const stoch::StochasticValue& structural,
                             const stoch::StochasticValue& learned,
                             double learned_weight) {
  const double w = std::clamp(learned_weight, 0.0, 1.0);
  const double ms = structural.mean();
  const double ml = learned.mean();
  const double vs = structural.sd() * structural.sd();
  const double vl = learned.sd() * learned.sd();
  const double mean = w * ml + (1.0 - w) * ms;
  // Mixture second moment: within-component variance plus the spread of
  // the component means around the mixture mean.
  const double var = w * (vl + ml * ml) + (1.0 - w) * (vs + ms * ms) -
                     mean * mean;
  return stoch::StochasticValue::from_mean_sd(mean,
                                              std::sqrt(std::max(var, 0.0)));
}

Arbiter::Arbiter(ArbiterOptions options)
    : options_(std::move(options)), ledger_(options_.ledger) {
  SSPRED_REQUIRE(options_.min_observations >= 1,
                 "arbiter min_observations must be >= 1");
  SSPRED_REQUIRE(options_.improvement >= 0.0 && options_.improvement < 1.0,
                 "arbiter improvement margin must be in [0, 1)");
  SSPRED_REQUIRE(options_.hysteresis >= 1, "arbiter hysteresis must be >= 1");
  SSPRED_REQUIRE(options_.min_blend_weight >= 0.0 &&
                     options_.min_blend_weight <= options_.max_blend_weight &&
                     options_.max_blend_weight <= 1.0,
                 "arbiter blend-weight bounds must satisfy 0 <= min <= max <= 1");
}

std::string Arbiter::candidate_id(const std::string& model_id, Source source) {
  return model_id + "#" + source_name(source);
}

Source Arbiter::source(const std::string& model_id) const {
  const std::lock_guard lock(mutex_);
  const auto it = states_.find(model_id);
  return it == states_.end() ? Source::kStructural : it->second.serving;
}

double Arbiter::blend_weight(const std::string& model_id) const {
  const std::lock_guard lock(mutex_);
  const auto it = states_.find(model_id);
  return it == states_.end() ? 0.5 : it->second.blend_w;
}

bool Arbiter::record(const std::string& model_id,
                     const stoch::StochasticValue& structural,
                     const stoch::StochasticValue* learned, double observed) {
  const std::lock_guard lock(mutex_);
  ModelState& state = states_[model_id];
  ++state.observations;

  ledger_.record(candidate_id(model_id, Source::kStructural), structural,
                 observed);
  if (learned == nullptr) {
    // Bank still warming up: nothing to arbitrate. Pin to structural so
    // a flip decided on stale evidence cannot outlive a restart of the
    // learned side.
    state.serving = Source::kStructural;
    state.challenger = Source::kStructural;
    state.streak = 0;
    return false;
  }
  ++state.learned_observations;
  // The blended candidate is scored with the weight that was current
  // BEFORE this observation — the weight the serving path would actually
  // have used — then the weight is refreshed for the next one.
  const stoch::StochasticValue blended =
      blend(structural, *learned, state.blend_w);
  ledger_.record(candidate_id(model_id, Source::kLearned), *learned, observed);
  ledger_.record(candidate_id(model_id, Source::kBlended), blended, observed);

  const calib::CalibrationSnapshot s_struct =
      ledger_.snapshot(candidate_id(model_id, Source::kStructural));
  const calib::CalibrationSnapshot s_learn =
      ledger_.snapshot(candidate_id(model_id, Source::kLearned));
  const calib::CalibrationSnapshot s_blend =
      ledger_.snapshot(candidate_id(model_id, Source::kBlended));

  // Learned share of the mixture from the rolling-CRPS ratio: the
  // candidate with the smaller score earns the larger weight.
  if (s_learn.rolling_crps_count >= options_.min_observations) {
    const double total = s_struct.rolling_crps + s_learn.rolling_crps;
    if (total > 0.0) {
      state.blend_w = std::clamp(s_struct.rolling_crps / total,
                                 options_.min_blend_weight,
                                 options_.max_blend_weight);
    }
  }

  // Best eligible candidate by rolling CRPS; fixed evaluation order
  // breaks exact ties deterministically in favor of the earlier source.
  struct Candidate {
    Source source;
    double crps;
    std::uint64_t window;
  };
  const std::array<Candidate, 3> candidates{{
      {Source::kStructural, s_struct.rolling_crps, s_struct.rolling_crps_count},
      {Source::kLearned, s_learn.rolling_crps, s_learn.rolling_crps_count},
      {Source::kBlended, s_blend.rolling_crps, s_blend.rolling_crps_count},
  }};
  double incumbent_crps = 0.0;
  for (const Candidate& c : candidates) {
    if (c.source == state.serving) incumbent_crps = c.crps;
  }
  Source best = state.serving;
  double best_crps = incumbent_crps;
  for (const Candidate& c : candidates) {
    if (c.source == state.serving) continue;
    if (c.window < options_.min_observations) continue;
    if (c.crps < best_crps) {
      best = c.source;
      best_crps = c.crps;
    }
  }

  bool flipped = false;
  if (best != state.serving &&
      best_crps < incumbent_crps * (1.0 - options_.improvement)) {
    if (state.challenger == best) {
      ++state.streak;
    } else {
      state.challenger = best;
      state.streak = 1;
    }
    if (state.streak >= options_.hysteresis) {
      state.serving = best;
      state.challenger = best;
      state.streak = 0;
      ++state.flips;
      ++flips_total_;
      flipped = true;
    }
  } else {
    state.challenger = state.serving;
    state.streak = 0;
  }
  return flipped;
}

std::vector<ModelArbitration> Arbiter::table() const {
  const std::lock_guard lock(mutex_);
  std::vector<ModelArbitration> out;
  out.reserve(states_.size());
  for (const auto& [model_id, state] : states_) {
    ModelArbitration row;
    row.model_id = model_id;
    row.serving = state.serving;
    row.observations = state.observations;
    row.flips = state.flips;
    row.streak = state.streak;
    row.blend_weight = state.blend_w;
    const auto fill = [&](Source source, CandidateScore& score) {
      const std::string id = candidate_id(model_id, source);
      if (!ledger_.has(id)) return;
      const calib::CalibrationSnapshot s = ledger_.snapshot(id);
      score.count = s.count;
      score.rolling_crps = s.rolling_crps;
      score.rolling_coverage = s.rolling_coverage;
    };
    fill(Source::kStructural, row.structural);
    fill(Source::kLearned, row.learned);
    fill(Source::kBlended, row.blended);
    out.push_back(std::move(row));
  }
  return out;
}

std::uint64_t Arbiter::flips_total() const {
  const std::lock_guard lock(mutex_);
  return flips_total_;
}

}  // namespace sspred::learn
