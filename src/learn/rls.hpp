// RlsPredictor — online recursive least squares with a forgetting factor.
//
// The graybox half of the predictor bank (DESIGN.md §15): where the
// structural models derive ExTime from first principles (§2.3 stochastic
// calculus over work/load/bandwidth), the RLS predictor LEARNS the map
//
//     ExTime ~= theta' x
//
// from observed (feature vector, runtime) pairs, one rank-one update per
// observation — the LLSP idea (online least squares over program
// features) applied to the serving stack's own observation stream. The
// forgetting factor lambda < 1 geometrically down-weights old
// observations, so the estimate tracks parameter drift that a
// once-parameterized structural model cannot follow; the price is a
// variance floor proportional to (1 - lambda).
//
// The predictor also keeps a forgetting-weighted estimate of the
// innovation variance (the one-step-ahead squared prediction error),
// which the bank combines with the streaming residual quantiles
// (quantile.hpp) into a full distributional prediction.
//
// Everything here is deterministic: a fixed observation sequence yields
// bit-identical coefficients on every run and build. Not thread-safe;
// the PredictorBank serializes access per model entry.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sspred::learn {

struct RlsOptions {
  /// Forgetting factor in (0, 1]: weight of an observation `k` steps in
  /// the past is lambda^k. 1.0 = ordinary (infinite-memory) RLS.
  double forgetting = 0.98;
  /// Initial covariance scale: P_0 = initial_covariance * I. Large
  /// values mean "no prior" — the first dim observations essentially
  /// solve the interpolation problem exactly.
  double initial_covariance = 1e4;
  /// EWMA weight for the innovation-variance estimate.
  double variance_forgetting = 0.95;
};

class RlsPredictor {
 public:
  /// `dim` is the fixed feature-vector length (see feature.hpp).
  explicit RlsPredictor(std::size_t dim, RlsOptions options = {});

  /// One recursive update with observation (x, y). x.size() must equal
  /// dim().
  void update(std::span<const double> x, double y);

  /// theta' x — the learned conditional mean.
  [[nodiscard]] double predict(std::span<const double> x) const;

  /// Forgetting-weighted estimate of the squared one-step-ahead
  /// prediction error (0 until the second observation).
  [[nodiscard]] double innovation_variance() const noexcept {
    return innovation_var_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::span<const double> coefficients() const noexcept {
    return theta_;
  }
  [[nodiscard]] const RlsOptions& options() const noexcept { return options_; }

 private:
  std::size_t dim_;
  RlsOptions options_;
  std::vector<double> theta_;  ///< learned coefficients, size dim
  std::vector<double> p_;      ///< covariance, row-major dim x dim
  std::vector<double> px_;     ///< scratch: P x
  std::uint64_t count_ = 0;
  double innovation_var_ = 0.0;
};

}  // namespace sspred::learn
