#include "learn/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace sspred::learn {

StreamingQuantiles::StreamingQuantiles(QuantileOptions options)
    : options_(std::move(options)) {
  SSPRED_REQUIRE(!options_.taus.empty(),
                 "streaming quantiles need at least one tau");
  for (const double tau : options_.taus) {
    SSPRED_REQUIRE(tau > 0.0 && tau < 1.0, "quantile tau must be in (0, 1)");
  }
  SSPRED_REQUIRE(options_.learning_rate > 0.0,
                 "quantile learning rate must be positive");
  SSPRED_REQUIRE(options_.scale_forgetting > 0.0 &&
                     options_.scale_forgetting < 1.0,
                 "quantile scale forgetting must be in (0, 1)");
  q_.assign(options_.taus.size(), 0.0);
  for (std::size_t i = 1; i < options_.taus.size(); ++i) {
    if (std::abs(options_.taus[i] - 0.5) <
        std::abs(options_.taus[median_index_] - 0.5)) {
      median_index_ = i;
    }
  }
}

void StreamingQuantiles::add(double r) {
  if (count_ == 0) {
    // Initialize every marker at the first observation; the gradient
    // steps separate them from there.
    std::fill(q_.begin(), q_.end(), r);
    scale_ = std::max(std::abs(r) * 0.1, 1e-12);
    ++count_;
    return;
  }
  const double beta = options_.scale_forgetting;
  const double dev = std::abs(r - q_[median_index_]);
  scale_ = std::max(beta * scale_ + (1.0 - beta) * dev, 1e-12);
  const double step = options_.learning_rate * scale_;
  for (std::size_t i = 0; i < q_.size(); ++i) {
    const double tau = options_.taus[i];
    q_[i] += step * (r < q_[i] ? tau - 1.0 : tau);
  }
  ++count_;
}

double StreamingQuantiles::quantile(std::size_t i) const {
  SSPRED_REQUIRE(i < q_.size(), "quantile index out of range");
  return q_[i];
}

std::vector<double> StreamingQuantiles::quantiles() const {
  // Return in tau order with monotonicity enforced: independent gradient
  // trackers can transiently cross right after a regime shift, and a
  // crossed interval (upper < lower) would be nonsense downstream.
  std::vector<std::pair<double, double>> by_tau;
  by_tau.reserve(q_.size());
  for (std::size_t i = 0; i < q_.size(); ++i) {
    by_tau.emplace_back(options_.taus[i], q_[i]);
  }
  std::vector<std::size_t> order(q_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return by_tau[a].first < by_tau[b].first;
  });
  std::vector<double> sorted_values;
  sorted_values.reserve(q_.size());
  for (const std::size_t i : order) sorted_values.push_back(by_tau[i].second);
  std::sort(sorted_values.begin(), sorted_values.end());
  std::vector<double> out(q_.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    out[order[k]] = sorted_values[k];
  }
  return out;
}

}  // namespace sspred::learn
