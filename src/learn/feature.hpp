// Feature extraction: resolved request bindings -> RLS feature vector.
//
// The structural models (predict/) compute ExTime from terms that are
// linear in 1/availability: work stretches by the reciprocal of the CPU
// fraction actually available, and transfer time by the reciprocal of
// available bandwidth (paper §2.3). The learned predictor keeps that
// functional form and learns only the coefficients, which is what makes
// it a *graybox*: for a model over H hosts the feature vector is
//
//     x = [ 1,  1/max(load_0, eps), ..., 1/max(load_{H-1}, eps),
//           uses_bw ? 1/max(bwavail, eps) : 0 ]
//
// of fixed dimension H + 2. The intercept absorbs load-independent cost;
// each reciprocal-availability term carries the per-host work (or the
// message volume, for the bandwidth slot) as its learned coefficient.
// Means only — binding uncertainty is handled downstream by the residual
// quantile tracker, not widened into the features.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stoch/stochastic_value.hpp"

namespace sspred::learn {

/// Availabilities at or below this floor are clamped before inversion so
/// a (mis)bound zero load cannot inject inf into the regression.
inline constexpr double kAvailabilityFloor = 1e-6;

/// Feature-vector length for a model over `hosts` hosts: intercept +
/// one reciprocal-load term per host + the bandwidth term (always
/// reserved, zeroed when the model has no bandwidth parameter, so the
/// dimension depends on structure only).
[[nodiscard]] constexpr std::size_t feature_dim(std::size_t hosts) noexcept {
  return hosts + 2;
}

/// Fills `out` (resized to feature_dim(loads.size())) from the resolved
/// bindings of one request. Deterministic, allocation-free once `out`
/// has capacity.
void extract_features(std::span<const stoch::StochasticValue> loads,
                      const stoch::StochasticValue& bwavail,
                      bool uses_bandwidth, std::vector<double>& out);

}  // namespace sspred::learn
