// StreamingQuantiles — online quantile tracking by pinball-loss gradient.
//
// The distributional half of a learned prediction (DESIGN.md §15,
// following Xu et al.'s distributional-outcome prediction for HPC
// variability): instead of assuming the runtime residual is normal, track
// its quantiles directly. Each tracked level tau follows the classic
// stochastic subgradient of the pinball (quantile) loss,
//
//     q_tau += step * (tau - 1{r < q_tau})
//
// whose fixed point is the true tau-quantile of the residual stream. The
// step is a constant fraction of an adaptive scale (an EWMA of |r - q50|),
// so the tracker converges on stationary streams but keeps adapting after
// a regime shift — exactly the drift case the predictor bank exists for.
// Unlike the P² sketch (stats/descriptive.hpp), which estimates a
// quantile of EVERYTHING it has seen, this tracker forgets.
//
// Deterministic for a fixed observation sequence; not thread-safe (the
// PredictorBank serializes access).
#pragma once

#include <cstdint>
#include <vector>

namespace sspred::learn {

struct QuantileOptions {
  /// Tracked levels, each in (0, 1). Order is preserved in quantiles().
  std::vector<double> taus{0.05, 0.5, 0.95};
  /// Step size as a fraction of the adaptive scale.
  double learning_rate = 0.08;
  /// EWMA weight of the |r - median| scale estimate.
  double scale_forgetting = 0.95;
};

class StreamingQuantiles {
 public:
  explicit StreamingQuantiles(QuantileOptions options = {});

  /// Ingests one residual observation.
  void add(double r);

  /// Current estimate for options().taus[i].
  [[nodiscard]] double quantile(std::size_t i) const;

  /// All tracked quantiles, monotonicity enforced (crossing estimates —
  /// possible transiently right after a shift — are sorted into order).
  [[nodiscard]] std::vector<double> quantiles() const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Adaptive spread scale the steps are proportional to.
  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] const QuantileOptions& options() const noexcept {
    return options_;
  }

 private:
  QuantileOptions options_;
  std::vector<double> q_;       ///< per-tau estimates
  std::size_t median_index_ = 0;  ///< tau closest to 0.5 (scale anchor)
  double scale_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace sspred::learn
