// PredictorBank — per-structure learned predictors beside the
// structural models.
//
// One (RlsPredictor, StreamingQuantiles) pair per model *structure key*
// (serve/program_cache.hpp): model ids sharing a compiled program share
// training data, exactly as they share the program. The bank trains
// from the same observation stream that feeds the accuracy ledger —
// PredictionService::report_observation hands it (features, observed
// runtime) pairs — and serves a full distributional prediction:
//
//     mean      = theta' x + q50          (median residual correction)
//     halfwidth = 2 * max(q95 - q50, q50 - q05) / 1.6449
//
// i.e. the wider residual-quantile flank scaled from a 95%-tail z-score
// to the ±2sd convention of stoch::StochasticValue. The half-width is
// floored so a learned prediction is never a degenerate point — the
// conformal recalibrator and the ledger's residual machinery both need
// halfwidth > 0.
//
// Thread safety: a single mutex over the key map; updates and
// predictions are O(dim^2) / O(dim) inside it. State is process-local
// by design — a restarted node rebuilds its bank from fresh
// observations (DESIGN.md §15).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "learn/quantile.hpp"
#include "learn/rls.hpp"
#include "stoch/stochastic_value.hpp"

namespace sspred::learn {

struct BankOptions {
  /// Observations a structure key needs before the bank offers
  /// predictions for it (the RLS estimate is pure prior until roughly
  /// dim observations arrive).
  std::size_t min_observations = 16;
  /// Half-width floor relative to |mean|, so learned predictions are
  /// never degenerate points.
  double min_relative_halfwidth = 1e-3;
  RlsOptions rls;
  QuantileOptions quantiles;
};

/// One learned distributional prediction.
struct LearnedPrediction {
  stoch::StochasticValue value;  ///< mean ± halfwidth, halfwidth > 0
  double q05 = 0.0;              ///< residual quantiles behind the value
  double q50 = 0.0;
  double q95 = 0.0;
  std::uint64_t observations = 0;  ///< training count for this structure
};

/// Summary row for introspection (CLI, tests).
struct BankSnapshot {
  std::string structure_key;
  std::uint64_t observations = 0;
  double innovation_sd = 0.0;  ///< sqrt of the RLS innovation variance
  std::vector<double> coefficients;
};

class PredictorBank {
 public:
  explicit PredictorBank(BankOptions options = {});

  /// Learned prediction for `structure_key` at feature point `x`, or
  /// nullopt while the key is still warming up (unknown or fewer than
  /// min_observations updates).
  [[nodiscard]] std::optional<LearnedPrediction> predict(
      const std::string& structure_key, std::span<const double> x) const;

  /// One training step: feature vector + observed runtime. Creates the
  /// key's predictors on first sight (dimension fixed at x.size()).
  void observe(const std::string& structure_key, std::span<const double> x,
               double observed);

  [[nodiscard]] std::uint64_t observations(
      const std::string& structure_key) const;
  [[nodiscard]] std::vector<BankSnapshot> snapshot() const;

  [[nodiscard]] const BankOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Entry {
    Entry(std::size_t dim, const BankOptions& options)
        : rls(dim, options.rls), residuals(options.quantiles) {}
    RlsPredictor rls;
    StreamingQuantiles residuals;
  };

  BankOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace sspred::learn
