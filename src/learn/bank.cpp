#include "learn/bank.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace sspred::learn {
namespace {

/// z-score of the 0.95 tail of the standard normal: maps the residual
/// q50->q95 (or q05->q50) flank back to one standard deviation, which
/// StochasticValue then doubles into its ±2sd half-width.
constexpr double kZ95 = 1.6448536269514722;

}  // namespace

PredictorBank::PredictorBank(BankOptions options)
    : options_(std::move(options)) {
  SSPRED_REQUIRE(options_.min_observations >= 2,
                 "predictor bank needs at least two warmup observations");
  SSPRED_REQUIRE(options_.min_relative_halfwidth > 0.0,
                 "predictor bank half-width floor must be positive");
  SSPRED_REQUIRE(options_.quantiles.taus.size() == 3,
                 "predictor bank expects exactly three taus (q05/q50/q95)");
}

std::optional<LearnedPrediction> PredictorBank::predict(
    const std::string& structure_key, std::span<const double> x) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(structure_key);
  if (it == entries_.end()) return std::nullopt;
  const Entry& entry = it->second;
  if (entry.rls.count() < options_.min_observations) return std::nullopt;

  const std::vector<double> qs = entry.residuals.quantiles();
  const double q05 = qs[0];
  const double q50 = qs[1];
  const double q95 = qs[2];
  const double mean = entry.rls.predict(x) + q50;
  // The wider residual flank sets the spread; asymmetric residuals get
  // the conservative side. Floors keep the value strictly stochastic.
  const double flank = std::max(q95 - q50, q50 - q05);
  const double halfwidth =
      std::max({2.0 * flank / kZ95,
                std::abs(mean) * options_.min_relative_halfwidth, 1e-9});

  LearnedPrediction out;
  out.value = stoch::StochasticValue(mean, halfwidth);
  out.q05 = q05;
  out.q50 = q50;
  out.q95 = q95;
  out.observations = entry.rls.count();
  return out;
}

void PredictorBank::observe(const std::string& structure_key,
                            std::span<const double> x, double observed) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(structure_key);
  if (it == entries_.end()) {
    it = entries_
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(structure_key),
                      std::forward_as_tuple(x.size(), options_))
             .first;
  }
  Entry& entry = it->second;
  // Residual against the pre-update coefficients (one-step-ahead error),
  // so the quantile tracker measures genuine predictive spread.
  const double residual = observed - entry.rls.predict(x);
  entry.rls.update(x, observed);
  // Skip the first residual: with P0 ~ "no prior" it is dominated by the
  // zero-initialized coefficients, not by noise.
  if (entry.rls.count() > 1) entry.residuals.add(residual);
}

std::uint64_t PredictorBank::observations(
    const std::string& structure_key) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(structure_key);
  return it == entries_.end() ? 0 : it->second.rls.count();
}

std::vector<BankSnapshot> PredictorBank::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<BankSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    BankSnapshot row;
    row.structure_key = key;
    row.observations = entry.rls.count();
    row.innovation_sd = std::sqrt(std::max(entry.rls.innovation_variance(), 0.0));
    const auto coeffs = entry.rls.coefficients();
    row.coefficients.assign(coeffs.begin(), coeffs.end());
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace sspred::learn
