// Arbiter — ledger-scored selection between structural, learned and
// blended predictions, per model id.
//
// The NWS picks its best forecaster by trailing MSE (nws/forecast.hpp);
// this lifts the same pattern to whole models. For every model id the
// arbiter maintains three *candidate children* inside one
// calib::AccuracyLedger — composed ids "<model>#structural",
// "<model>#learned", "<model>#blended" — each scoring its candidate's
// rolling CRPS and coverage against the shared observation stream. The
// serving source flips only with hysteresis: a challenger must beat the
// incumbent's rolling CRPS by a relative margin for a run of consecutive
// observations, so a lucky streak cannot thrash the serving path.
//
// The blended candidate is the two-component mixture of structural and
// learned, with the learned weight driven by the candidates' rolling
// CRPS ratio — it hedges regime boundaries, where neither pure candidate
// is reliable yet (the bench's mixed-regime segment).
//
// All state is deterministic for a fixed observation sequence and
// process-local; a restarted node re-converges from fresh observations.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "calib/ledger.hpp"
#include "stoch/stochastic_value.hpp"

namespace sspred::learn {

/// Serving prediction source. Values are the wire encoding
/// (serve::PredictResult::source) — do not reorder.
enum class Source : std::uint8_t {
  kStructural = 0,
  kLearned = 1,
  kBlended = 2,
};

[[nodiscard]] const char* source_name(Source source) noexcept;

struct ArbiterOptions {
  /// Observations a challenger candidate needs in the rolling window
  /// before it may challenge at all.
  std::size_t min_observations = 32;
  /// Relative rolling-CRPS margin the challenger must win by.
  double improvement = 0.10;
  /// Consecutive winning observations required before a flip.
  std::size_t hysteresis = 16;
  /// Bounds on the learned share of the blended mixture.
  double min_blend_weight = 0.05;
  double max_blend_weight = 0.95;
  /// Options for the candidate ledger (window = arbitration horizon).
  calib::LedgerOptions ledger;
};

/// One candidate's scores in the arbitration table.
struct CandidateScore {
  std::uint64_t count = 0;         ///< observations scored (cumulative)
  double rolling_crps = 0.0;       ///< mean CRPS over the rolling window
  double rolling_coverage = 0.0;   ///< coverage over the rolling window
};

/// One model's row in the arbitration table.
struct ModelArbitration {
  std::string model_id;
  Source serving = Source::kStructural;
  std::uint64_t observations = 0;  ///< total observations arbitrated
  std::uint64_t flips = 0;         ///< serving-source switches so far
  std::size_t streak = 0;          ///< current challenger win streak
  double blend_weight = 0.5;       ///< learned share of the mixture
  CandidateScore structural;
  CandidateScore learned;
  CandidateScore blended;
};

/// Moment-matched two-component normal mixture of the structural and
/// learned predictions; `learned_weight` in [0, 1]. The mixture variance
/// includes the between-means term, so disagreeing candidates yield a
/// wide (honest) blend.
[[nodiscard]] stoch::StochasticValue blend(
    const stoch::StochasticValue& structural,
    const stoch::StochasticValue& learned, double learned_weight);

class Arbiter {
 public:
  explicit Arbiter(ArbiterOptions options = {});

  /// Source to serve for `model_id`'s next prediction. kStructural for
  /// ids never recorded. The caller falls back to structural whenever
  /// the bank has no learned prediction yet, whatever this returns.
  [[nodiscard]] Source source(const std::string& model_id) const;

  /// Current learned share of the blended mixture for `model_id`.
  [[nodiscard]] double blend_weight(const std::string& model_id) const;

  /// Scores every candidate against one observation and advances the
  /// hysteresis state. `learned` may be null while the bank is warming
  /// up — then only the structural candidate is scored and the serving
  /// source pins to structural. Returns true when the serving source
  /// flipped on this observation.
  bool record(const std::string& model_id,
              const stoch::StochasticValue& structural,
              const stoch::StochasticValue* learned, double observed);

  /// Per-model arbitration table (sorted by model id).
  [[nodiscard]] std::vector<ModelArbitration> table() const;

  [[nodiscard]] std::uint64_t flips_total() const;

  /// The candidate ledger (children keyed "<model>#<source>").
  [[nodiscard]] const calib::AccuracyLedger& ledger() const noexcept {
    return ledger_;
  }
  [[nodiscard]] const ArbiterOptions& options() const noexcept {
    return options_;
  }

 private:
  struct ModelState {
    Source serving = Source::kStructural;
    Source challenger = Source::kStructural;
    std::size_t streak = 0;
    std::uint64_t flips = 0;
    std::uint64_t observations = 0;
    std::uint64_t learned_observations = 0;
    double blend_w = 0.5;
  };

  [[nodiscard]] static std::string candidate_id(const std::string& model_id,
                                                Source source);

  ArbiterOptions options_;
  calib::AccuracyLedger ledger_;
  mutable std::mutex mutex_;  ///< guards states_ (ledger_ self-locks)
  std::map<std::string, ModelState> states_;
  std::uint64_t flips_total_ = 0;
};

}  // namespace sspred::learn
