#include "learn/feature.hpp"

#include <algorithm>

namespace sspred::learn {

void extract_features(std::span<const stoch::StochasticValue> loads,
                      const stoch::StochasticValue& bwavail,
                      bool uses_bandwidth, std::vector<double>& out) {
  out.resize(feature_dim(loads.size()));
  out[0] = 1.0;
  for (std::size_t p = 0; p < loads.size(); ++p) {
    out[1 + p] = 1.0 / std::max(loads[p].mean(), kAvailabilityFloor);
  }
  out[1 + loads.size()] =
      uses_bandwidth ? 1.0 / std::max(bwavail.mean(), kAvailabilityFloor) : 0.0;
}

}  // namespace sspred::learn
