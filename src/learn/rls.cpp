#include "learn/rls.hpp"

#include "support/error.hpp"

namespace sspred::learn {

RlsPredictor::RlsPredictor(std::size_t dim, RlsOptions options)
    : dim_(dim), options_(options) {
  SSPRED_REQUIRE(dim_ >= 1, "RLS predictor needs at least one feature");
  SSPRED_REQUIRE(options_.forgetting > 0.0 && options_.forgetting <= 1.0,
                 "RLS forgetting factor must be in (0, 1]");
  SSPRED_REQUIRE(options_.initial_covariance > 0.0,
                 "RLS initial covariance must be positive");
  SSPRED_REQUIRE(options_.variance_forgetting > 0.0 &&
                     options_.variance_forgetting < 1.0,
                 "RLS variance forgetting must be in (0, 1)");
  theta_.assign(dim_, 0.0);
  p_.assign(dim_ * dim_, 0.0);
  for (std::size_t i = 0; i < dim_; ++i) {
    p_[i * dim_ + i] = options_.initial_covariance;
  }
  px_.assign(dim_, 0.0);
}

double RlsPredictor::predict(std::span<const double> x) const {
  SSPRED_REQUIRE(x.size() == dim_, "RLS feature dimension mismatch");
  double y = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) y += theta_[i] * x[i];
  return y;
}

void RlsPredictor::update(std::span<const double> x, double y) {
  SSPRED_REQUIRE(x.size() == dim_, "RLS feature dimension mismatch");
  const double lambda = options_.forgetting;

  // Innovation (a-priori error) against the current coefficients; its
  // EWMA is the spread estimate the bank reads. Tracked before the
  // coefficient update so it measures true one-step-ahead error.
  const double innovation = y - predict(x);
  if (count_ == 0) {
    innovation_var_ = 0.0;  // first innovation is pure prior, not error
  } else {
    const double beta = options_.variance_forgetting;
    innovation_var_ =
        beta * innovation_var_ + (1.0 - beta) * innovation * innovation;
  }
  ++count_;

  // Standard RLS rank-one update:
  //   k = P x / (lambda + x' P x)
  //   theta += k * innovation
  //   P = (P - k x' P) / lambda
  for (std::size_t i = 0; i < dim_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) s += p_[i * dim_ + j] * x[j];
    px_[i] = s;
  }
  double denom = lambda;
  for (std::size_t i = 0; i < dim_; ++i) denom += x[i] * px_[i];
  // denom >= lambda > 0 as long as P stays positive semi-definite, which
  // the symmetric update below preserves in exact arithmetic; the guard
  // keeps a long-degraded P from ever dividing by ~0.
  if (denom < 1e-300) return;

  for (std::size_t i = 0; i < dim_; ++i) {
    const double k_i = px_[i] / denom;
    theta_[i] += k_i * innovation;
  }
  for (std::size_t i = 0; i < dim_; ++i) {
    const double k_i = px_[i] / denom;
    for (std::size_t j = 0; j < dim_; ++j) {
      // (P - k x'P) / lambda, using the symmetric form k_i * px_j so the
      // update cannot break P's symmetry through rounding.
      p_[i * dim_ + j] = (p_[i * dim_ + j] - k_i * px_[j]) / lambda;
    }
  }
}

}  // namespace sspred::learn
