// MPI-like message passing over the simulated cluster.
//
// Ranks are coroutine processes pinned to platform hosts. Sends are eager
// (buffered): the payload is handed to the shared-ethernet model and
// delivered into the destination mailbox after transfer + latency. recv()
// matches by (source, tag) with wildcard support; barrier and the
// collectives are built from send/recv like a real MPI layered on
// point-to-point.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "cluster/platform.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace sspred::mpi {

/// Wildcard source/tag for recv matching (MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

using Payload = std::vector<double>;

struct Message {
  int source = 0;
  int tag = 0;
  Payload data;
};

class Comm;

/// Per-rank view handed to rank programs.
class RankCtx {
 public:
  RankCtx(Comm& comm, int rank) noexcept : comm_(&comm), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;
  [[nodiscard]] sim::Time now() const noexcept;
  /// The host this rank runs on.
  [[nodiscard]] const machine::Machine& machine() const;

  /// Awaitable: performs `dedicated_seconds` of CPU work, stretched by the
  /// host's availability trace (the production-load effect).
  [[nodiscard]] auto compute(support::Seconds dedicated_seconds);

  /// Awaitable: computes `elements` data elements at the host's dedicated
  /// benchmark rate, stretched by availability.
  [[nodiscard]] auto compute_elements(double elements);

  /// Eager (buffered) send: returns immediately; delivery happens after
  /// the shared-medium transfer plus latency.
  void send(int dst, int tag, Payload data);

  /// Awaitable receive matching (src, tag); wildcards allowed.
  [[nodiscard]] auto recv(int src = kAnySource, int tag = kAnyTag);

  /// All ranks must arrive; returns (same timestamp for all) when the last
  /// one does.
  [[nodiscard]] auto barrier();

  /// Collectives layered on point-to-point (root = 0 internally).
  [[nodiscard]] sim::Task<double> allreduce_sum(double value);
  [[nodiscard]] sim::Task<double> allreduce_max(double value);
  [[nodiscard]] sim::Task<Payload> gather(Payload local);  ///< root gets all
  [[nodiscard]] sim::Task<Payload> bcast(Payload data);    ///< from rank 0

 private:
  Comm* comm_;
  int rank_;
};

/// Communicator: mailboxes, barrier state, and the rank launcher.
class Comm {
 public:
  Comm(sim::Engine& engine, cluster::Platform& platform);

  /// Spawns one process per rank running `rank_main`. Call Engine::run()
  /// (or run_until) afterwards to execute them. The callable is stored in
  /// the communicator: rank coroutines reference its closure across
  /// suspension points, so it must outlive them (a temporary lambda passed
  /// by reference would dangle once the ranks first suspend).
  void launch(std::function<sim::Process(RankCtx)> rank_main);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(platform_->size());
  }
  [[nodiscard]] sim::Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] cluster::Platform& platform() noexcept { return *platform_; }

  /// Total messages delivered (for tests / stats).
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return delivered_;
  }

  /// Per-message wire overhead added to each payload (headers), bytes.
  static constexpr support::Bytes kHeaderBytes = 64.0;

 private:
  friend class RankCtx;

  struct RecvWaiter {
    int src;
    int tag;
    std::coroutine_handle<> handle;
    std::optional<Message> slot;
  };
  struct Mailbox {
    std::deque<Message> pending;
    std::vector<RecvWaiter*> waiters;
  };

  void post_send(int src, int dst, int tag, Payload data);
  void deliver(int dst, Message msg);
  [[nodiscard]] static bool matches(const RecvWaiter& w,
                                    const Message& m) noexcept {
    return (w.src == kAnySource || w.src == m.source) &&
           (w.tag == kAnyTag || w.tag == m.tag);
  }

  sim::Engine* engine_;
  cluster::Platform* platform_;
  std::vector<Mailbox> mailboxes_;
  // Barrier state.
  int barrier_arrived_ = 0;
  sim::Trigger barrier_trigger_;
  std::uint64_t delivered_ = 0;
  // Launched rank mains; deque keeps addresses stable because suspended
  // coroutine frames point into the stored closures.
  std::deque<std::function<sim::Process(RankCtx)>> rank_mains_;

 public:
  // Awaiter types (public so RankCtx's auto-returning members can name
  // them implicitly; not part of the supported API surface).
  struct RecvAwaiter {
    Comm* comm;
    int dst;
    RecvWaiter waiter;

    [[nodiscard]] bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    [[nodiscard]] Message await_resume();
  };
  struct BarrierAwaiter {
    Comm* comm;
    [[nodiscard]] bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
};

inline auto RankCtx::compute(support::Seconds dedicated_seconds) {
  const auto finish = machine().finish_time(now(), dedicated_seconds);
  return comm_->engine().until(finish);
}

inline auto RankCtx::compute_elements(double elements) {
  return compute(machine().element_work(elements));
}

inline auto RankCtx::recv(int src, int tag) {
  return Comm::RecvAwaiter{comm_, rank_,
                           Comm::RecvWaiter{src, tag, nullptr, std::nullopt}};
}

inline auto RankCtx::barrier() { return Comm::BarrierAwaiter{comm_}; }

}  // namespace sspred::mpi
