#include "mpi/benchmark.hpp"

#include <memory>

#include "mpi/comm.hpp"
#include "support/error.hpp"

namespace sspred::mpi {

namespace {

struct PingPongShared {
  std::vector<std::size_t> sizes;
  std::size_t repetitions = 0;
  int host_a = 0;
  int host_b = 0;
  std::vector<std::pair<double, double>> samples;  // (bytes, one-way s)
  int finished = 0;
};

sim::Process pingpong_rank(mpi::RankCtx ctx, PingPongShared* shared) {
  constexpr int kPingTag = 7'000'001;
  constexpr int kPongTag = 7'000'002;
  if (ctx.rank() == shared->host_a) {
    for (const std::size_t bytes : shared->sizes) {
      const auto doubles = std::max<std::size_t>(1, bytes / sizeof(double));
      for (std::size_t rep = 0; rep < shared->repetitions; ++rep) {
        const support::Seconds t0 = ctx.now();
        ctx.send(shared->host_b, kPingTag, Payload(doubles, 1.0));
        (void)co_await ctx.recv(shared->host_b, kPongTag);
        const support::Seconds round_trip = ctx.now() - t0;
        shared->samples.emplace_back(static_cast<double>(doubles) *
                                         sizeof(double),
                                     round_trip / 2.0);
      }
    }
    // Tell the echo side it is done.
    ctx.send(shared->host_b, kPingTag, Payload{0.0});
  } else if (ctx.rank() == shared->host_b) {
    const std::size_t total =
        shared->sizes.size() * shared->repetitions;
    for (std::size_t i = 0; i < total; ++i) {
      Message m = co_await ctx.recv(shared->host_a, kPingTag);
      ctx.send(shared->host_a, kPongTag, std::move(m.data));
    }
    (void)co_await ctx.recv(shared->host_a, kPingTag);  // the done marker
  }
  ++shared->finished;
  co_return;
}

}  // namespace

PointToPointProfile measure_point_to_point(
    sim::Engine& engine, cluster::Platform& platform, int a, int b,
    std::span<const std::size_t> message_bytes, std::size_t repetitions) {
  SSPRED_REQUIRE(a != b, "ping-pong needs two distinct hosts");
  SSPRED_REQUIRE(a >= 0 && static_cast<std::size_t>(a) < platform.size() &&
                     b >= 0 && static_cast<std::size_t>(b) < platform.size(),
                 "host index out of range");
  SSPRED_REQUIRE(message_bytes.size() >= 2,
                 "need at least two sizes to fit latency + bandwidth");
  SSPRED_REQUIRE(repetitions >= 1, "need at least one repetition");

  auto shared = std::make_unique<PingPongShared>();
  shared->sizes.assign(message_bytes.begin(), message_bytes.end());
  shared->repetitions = repetitions;
  shared->host_a = a;
  shared->host_b = b;

  Comm comm(engine, platform);
  comm.launch([ptr = shared.get()](RankCtx ctx) {
    return pingpong_rank(ctx, ptr);
  });
  while (shared->finished < comm.size() && engine.step_one()) {
  }
  SSPRED_REQUIRE(shared->finished == comm.size(), "ping-pong deadlocked");

  // Least-squares fit: time = latency + bytes / bandwidth.
  const auto& s = shared->samples;
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  const double n = static_cast<double>(s.size());
  for (const auto& [bytes, secs] : s) {
    sum_x += bytes;
    sum_y += secs;
    sum_xx += bytes * bytes;
    sum_xy += bytes * secs;
  }
  const double denom = n * sum_xx - sum_x * sum_x;
  SSPRED_REQUIRE(denom > 0.0, "degenerate size sweep");
  const double slope = (n * sum_xy - sum_x * sum_y) / denom;
  const double intercept = (sum_y - slope * sum_x) / n;

  PointToPointProfile profile;
  profile.latency = std::max(intercept, 0.0);
  SSPRED_REQUIRE(slope > 0.0, "non-physical bandwidth fit");
  profile.bandwidth = 1.0 / slope;
  profile.samples = std::move(shared->samples);
  return profile;
}

PointToPointProfile measure_point_to_point(sim::Engine& engine,
                                           cluster::Platform& platform, int a,
                                           int b) {
  const std::vector<std::size_t> sizes{1024, 4096, 16384, 65536, 262144};
  return measure_point_to_point(engine, platform, a, b, sizes);
}

}  // namespace sspred::mpi
