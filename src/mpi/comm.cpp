#include "mpi/comm.hpp"

#include <algorithm>
#include <memory>

#include "support/error.hpp"

namespace sspred::mpi {

namespace {
// Reserved tags for the collectives (apps should use small non-negative
// tags; these are far out of that range).
constexpr int kSumTag = 1'000'001;
constexpr int kMaxTag = 1'000'002;
constexpr int kGatherTag = 1'000'003;
constexpr int kBcastTag = 1'000'004;
}  // namespace

Comm::Comm(sim::Engine& engine, cluster::Platform& platform)
    : engine_(&engine),
      platform_(&platform),
      mailboxes_(platform.size()),
      barrier_trigger_(engine) {
  SSPRED_REQUIRE(platform.size() >= 1, "communicator needs at least one rank");
}

void Comm::launch(std::function<sim::Process(RankCtx)> rank_main) {
  const auto& main = rank_mains_.emplace_back(std::move(rank_main));
  for (int r = 0; r < size(); ++r) {
    engine_->spawn(main(RankCtx(*this, r)));
  }
}

void Comm::post_send(int src, int dst, int tag, Payload data) {
  SSPRED_REQUIRE(dst >= 0 && dst < size(), "send destination out of range");
  SSPRED_REQUIRE(tag >= 0, "message tags must be non-negative");
  const support::Bytes bytes =
      static_cast<double>(data.size()) * sizeof(double) + kHeaderBytes;
  auto msg = std::make_shared<Message>(Message{src, tag, std::move(data)});
  auto& fabric = platform_->fabric();
  const auto latency = fabric.latency();
  fabric.send(src, dst, bytes, [this, dst, msg, latency] {
    engine_->schedule_in(latency,
                         [this, dst, msg] { deliver(dst, std::move(*msg)); });
  });
}

void Comm::deliver(int dst, Message msg) {
  ++delivered_;
  auto& box = mailboxes_[static_cast<std::size_t>(dst)];
  for (auto it = box.waiters.begin(); it != box.waiters.end(); ++it) {
    if (matches(**it, msg)) {
      RecvWaiter* w = *it;
      box.waiters.erase(it);
      w->slot.emplace(std::move(msg));
      engine_->schedule_in(0.0, [h = w->handle] { h.resume(); });
      return;
    }
  }
  box.pending.push_back(std::move(msg));
}

bool Comm::RecvAwaiter::await_ready() {
  auto& box = comm->mailboxes_[static_cast<std::size_t>(dst)];
  for (auto it = box.pending.begin(); it != box.pending.end(); ++it) {
    if (matches(waiter, *it)) {
      waiter.slot.emplace(std::move(*it));
      box.pending.erase(it);
      return true;
    }
  }
  return false;
}

void Comm::RecvAwaiter::await_suspend(std::coroutine_handle<> h) {
  waiter.handle = h;
  comm->mailboxes_[static_cast<std::size_t>(dst)].waiters.push_back(&waiter);
}

Message Comm::RecvAwaiter::await_resume() {
  SSPRED_REQUIRE(waiter.slot.has_value(), "recv resumed without a message");
  return std::move(*waiter.slot);
}

bool Comm::BarrierAwaiter::await_ready() {
  ++comm->barrier_arrived_;
  if (comm->barrier_arrived_ == comm->size()) {
    comm->barrier_arrived_ = 0;
    comm->barrier_trigger_.notify_all();
    return true;  // last arriver proceeds immediately
  }
  return false;
}

void Comm::BarrierAwaiter::await_suspend(std::coroutine_handle<> h) {
  // Equivalent to Trigger::wait() but usable from a plain awaiter.
  comm->barrier_trigger_.add_waiter(h);
}

int RankCtx::size() const noexcept { return comm_->size(); }

sim::Time RankCtx::now() const noexcept { return comm_->engine().now(); }

const machine::Machine& RankCtx::machine() const {
  return comm_->platform().machine(static_cast<std::size_t>(rank_));
}

void RankCtx::send(int dst, int tag, Payload data) {
  comm_->post_send(rank_, dst, tag, std::move(data));
}

sim::Task<double> RankCtx::allreduce_sum(double value) {
  if (rank_ == 0) {
    double acc = value;
    for (int i = 1; i < size(); ++i) {
      Message m = co_await recv(kAnySource, kSumTag);
      acc += m.data.at(0);
    }
    for (int i = 1; i < size(); ++i) send(i, kSumTag, {acc});
    co_return acc;
  }
  send(0, kSumTag, {value});
  Message m = co_await recv(0, kSumTag);
  co_return m.data.at(0);
}

sim::Task<double> RankCtx::allreduce_max(double value) {
  if (rank_ == 0) {
    double acc = value;
    for (int i = 1; i < size(); ++i) {
      Message m = co_await recv(kAnySource, kMaxTag);
      acc = std::max(acc, m.data.at(0));
    }
    for (int i = 1; i < size(); ++i) send(i, kMaxTag, {acc});
    co_return acc;
  }
  send(0, kMaxTag, {value});
  Message m = co_await recv(0, kMaxTag);
  co_return m.data.at(0);
}

sim::Task<Payload> RankCtx::gather(Payload local) {
  if (rank_ == 0) {
    Payload all = std::move(local);
    std::vector<Payload> parts(static_cast<std::size_t>(size()));
    for (int i = 1; i < size(); ++i) {
      Message m = co_await recv(kAnySource, kGatherTag);
      parts[static_cast<std::size_t>(m.source)] = std::move(m.data);
    }
    for (int i = 1; i < size(); ++i) {
      auto& p = parts[static_cast<std::size_t>(i)];
      all.insert(all.end(), p.begin(), p.end());
    }
    co_return all;
  }
  send(0, kGatherTag, std::move(local));
  co_return Payload{};
}

sim::Task<Payload> RankCtx::bcast(Payload data) {
  if (rank_ == 0) {
    for (int i = 1; i < size(); ++i) send(i, kBcastTag, data);
    co_return data;
  }
  Message m = co_await recv(0, kBcastTag);
  co_return std::move(m.data);
}

}  // namespace sspred::mpi
