// Point-to-point benchmarking — how the paper's static model parameters
// DedBW(x,y) and latency are obtained in practice: run a ping-pong across
// message sizes and fit time = latency + bytes / bandwidth.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cluster/platform.hpp"
#include "sim/engine.hpp"

namespace sspred::mpi {

/// Result of a ping-pong sweep between two hosts.
struct PointToPointProfile {
  support::Seconds latency = 0.0;           ///< fitted one-way latency
  support::BytesPerSecond bandwidth = 0.0;  ///< fitted one-way bandwidth
  /// Raw (bytes, one-way seconds) observations behind the fit.
  std::vector<std::pair<double, double>> samples;
};

/// Runs `repetitions` ping-pongs between hosts `a` and `b` at each message
/// size and least-squares fits the one-way time model. The engine is run
/// to completion; other traffic present on the fabric perturbs the fit
/// exactly as it would a real benchmark.
[[nodiscard]] PointToPointProfile measure_point_to_point(
    sim::Engine& engine, cluster::Platform& platform, int a, int b,
    std::span<const std::size_t> message_bytes, std::size_t repetitions = 5);

/// Convenience: the default size sweep (1 KiB .. 256 KiB).
[[nodiscard]] PointToPointProfile measure_point_to_point(
    sim::Engine& engine, cluster::Platform& platform, int a = 0, int b = 1);

}  // namespace sspred::mpi
