// Regenerates the paper's §2.2.1 baseline claim: "In a dedicated setting,
// the structural model defined in this section predicted overall
// application execution times to within 2% of actual execution time."
//
// The structural model (point-valued parameters, loads = 1.0) is evaluated
// against full simulated runs across problem sizes and rank counts.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "predict/sor_model.hpp"
#include "sor/distributed.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;
}

int main() {
  bench::banner("§2.2.1 dedicated validation",
                "structural model vs simulated runs, dedicated platform");

  support::Table t({"grid", "ranks", "predicted (s)", "actual (s)", "error"});
  double worst = 0.0;

  for (const std::size_t ranks : {2, 4}) {
    for (const std::size_t n : {600, 1000, 1400, 2000}) {
      sor::SorConfig cfg;
      cfg.n = n;
      cfg.iterations = 20;
      cfg.real_numerics = false;
      const auto spec = cluster::dedicated_platform(ranks);
      const predict::SorStructuralModel model(spec, cfg);
      const std::vector<stoch::StochasticValue> loads(
          ranks, stoch::StochasticValue(1.0));
      const double predicted =
          model.predict_point(model.make_env(loads, {1.0}));

      sim::Engine engine;
      cluster::Platform platform(engine, spec, 17);
      const double actual =
          sor::run_distributed_sor(engine, platform, cfg).total_time;

      const double err = std::abs(predicted - actual) / actual;
      worst = std::max(worst, err);
      t.add_row({std::to_string(n) + "x" + std::to_string(n),
                 std::to_string(ranks), support::fmt(predicted, 2),
                 support::fmt(actual, 2), support::fmt_pct(err, 2)});
    }
  }
  std::cout << "\n" << t.render();

  bench::section("shape check vs paper");
  bench::compare_line("max dedicated prediction error", "< 2%",
                      support::fmt_pct(worst, 2));
  std::cout << (worst < 0.02 ? "\nWithin the paper's 2% envelope.\n"
                             : "\nWARNING: outside the 2% envelope!\n");
  return worst < 0.02 ? 0 : 1;
}
