// Ablation A5: time-balancing strip decomposition (paper footnote 2).
//
// On the heterogeneous Platform 1, uniform strips leave the Sparc-2
// saturated while the Sparc-10 idles. Balancing rows by capacity
// (load/BM) — with the load taken as a stochastic value — shortens runs
// substantially; the conservative variant additionally hedges against
// high-variance hosts.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "predict/decomposition_advisor.hpp"
#include "predict/sor_model.hpp"
#include "sor/distributed.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;

const char* strategy_name(predict::BalanceStrategy s) {
  switch (s) {
    case predict::BalanceStrategy::kUniform:
      return "uniform";
    case predict::BalanceStrategy::kMeanCapacity:
      return "capacity (mean load)";
    case predict::BalanceStrategy::kConservative:
      return "capacity (conservative)";
  }
  return "?";
}
}  // namespace

int main() {
  bench::banner("Ablation A5",
                "strip decomposition strategies on the heterogeneous "
                "Platform 1");

  const auto spec = cluster::platform1();
  // Stochastic loads as the NWS would report them: host 0 in its centre
  // mode, the rest quiet.
  const std::vector<stoch::StochasticValue> loads{
      stoch::StochasticValue(0.48, 0.05), stoch::StochasticValue(0.92, 0.03),
      stoch::StochasticValue(0.92, 0.03), stoch::StochasticValue(0.92, 0.03)};

  sor::SorConfig base;
  base.n = 1000;
  base.iterations = 15;
  base.real_numerics = false;

  support::Table t({"strategy", "rows per rank", "imbalance", "predicted",
                    "actual (s)", "vs uniform"});
  double t_uniform = 0.0;

  for (auto strategy : {predict::BalanceStrategy::kUniform,
                        predict::BalanceStrategy::kMeanCapacity,
                        predict::BalanceStrategy::kConservative}) {
    sor::SorConfig cfg = base;
    const auto rows = predict::recommend_rows(spec, cfg.n, loads, strategy);
    cfg.rows_per_rank.assign(rows.begin(), rows.end());

    const predict::SorStructuralModel model(spec, cfg);
    const auto predicted =
        model.predict(model.make_env(loads, {0.525, 0.12}));

    sim::Engine engine;
    cluster::Platform platform(engine, spec, 33);
    const double actual =
        sor::run_distributed_sor(engine, platform, cfg).total_time;
    if (strategy == predict::BalanceStrategy::kUniform) t_uniform = actual;

    std::string row_str;
    for (std::size_t p = 0; p < rows.size(); ++p) {
      if (p > 0) row_str += "/";
      row_str += std::to_string(rows[p]);
    }
    t.add_row({strategy_name(strategy), row_str,
               support::fmt(predict::imbalance(spec, cfg.n, rows, loads), 2),
               predicted.to_string(1), support::fmt(actual, 1),
               support::fmt(actual / t_uniform, 2) + "x"});
  }
  std::cout << "\nplatform1 hosts: sparc2-a (load 0.48±0.05), sparc2-b, "
               "sparc5, sparc10 (quiet)\n\n"
            << t.render();

  bench::section("reading");
  std::cout
      << "  * Uniform strips: the loaded Sparc-2 dominates every iteration "
         "(imbalance\n    ≈ the slow host's share of the mean phase time).\n"
      << "  * Capacity balancing with stochastic loads (the paper's "
         "footnote-2 goal:\n    \"all processors complete at the same "
         "time\") roughly halves the run.\n"
      << "  * The conservative variant trims rows from high-variance hosts "
         "— cheap\n    insurance when mispredictions carry a penalty "
         "(paper §1.2).\n";
  return 0;
}
