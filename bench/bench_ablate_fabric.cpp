// Ablation A8: shared-segment vs switched fabric.
//
// The paper's platforms share one 10 Mbit ethernet; a switched full-duplex
// network confines contention to each NIC. This bench quantifies what that
// changes for the SOR exchange pattern, and shows the fabric-aware
// structural model tracks both.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "predict/sor_model.hpp"
#include "sor/distributed.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;

struct Row {
  double actual;
  double predicted;
};

Row run_on(cluster::FabricKind fabric, std::size_t n) {
  cluster::PlatformSpec spec = cluster::dedicated_platform(4);
  spec.fabric = fabric;
  sor::SorConfig cfg;
  cfg.n = n;
  cfg.iterations = 12;
  cfg.real_numerics = false;

  const predict::SorStructuralModel model(spec, cfg);
  const std::vector<stoch::StochasticValue> loads(
      4, stoch::StochasticValue(1.0));
  const double predicted = model.predict_point(model.make_env(loads, {1.0}));

  sim::Engine engine;
  cluster::Platform platform(engine, spec, 61);
  const double actual =
      sor::run_distributed_sor(engine, platform, cfg).total_time;
  return {actual, predicted};
}

}  // namespace

int main() {
  bench::banner("Ablation A8",
                "shared 10 Mbit segment vs switched full-duplex fabric");

  support::Table t({"grid", "shared actual", "shared model", "switched actual",
                    "switched model", "fabric speedup"});
  for (const std::size_t n : {200, 400, 800, 1600}) {
    const Row shared = run_on(cluster::FabricKind::kSharedSegment, n);
    const Row switched = run_on(cluster::FabricKind::kSwitched, n);
    t.add_row({std::to_string(n) + "x" + std::to_string(n),
               support::fmt(shared.actual, 2),
               support::fmt(shared.predicted, 2),
               support::fmt(switched.actual, 2),
               support::fmt(switched.predicted, 2),
               support::fmt(shared.actual / switched.actual, 2) + "x"});
  }
  std::cout << "\n4x sparc10 (dedicated loads), 12 iterations\n\n"
            << t.render();

  bench::section("reading");
  std::cout
      << "  * On the shared segment all 2(P-1) ghost messages of a phase "
         "contend; a\n    switch cuts per-phase transfer time to ~2 "
         "messages per NIC.\n"
      << "  * Comm-bound grids gain the most; compute-bound grids barely "
         "notice —\n    the same crossover the overlap ablation shows.\n"
      << "  * The structural model only needs the fabric's concurrency "
         "profile to\n    track both networks.\n";
  return 0;
}
