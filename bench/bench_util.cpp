#include "bench_util.hpp"

#include <cstdio>
#include <iostream>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "support/ascii_plot.hpp"
#include "support/table.hpp"

namespace sspred::bench {

const char* build_type() noexcept {
#ifdef SSPRED_BUILD_TYPE
  return SSPRED_BUILD_TYPE;
#else
  return "unknown";
#endif
}

bool optimized_build() noexcept {
  const std::string t = build_type();
  return t == "Release" || t == "RelWithDebInfo" || t == "MinSizeRel";
}

void banner(const std::string& artifact, const std::string& description) {
  std::cout << "\n"
            << std::string(78, '=') << "\n"
            << artifact << " — " << description << "\n"
            << "build type: " << build_type()
            << (optimized_build() ? "" : "  (UNOPTIMIZED — timings not comparable)")
            << "\n"
            << std::string(78, '=') << "\n";
}

void section(const std::string& title) {
  std::cout << "\n--- " << title << " ---\n";
}

void compare_line(const std::string& metric, const std::string& paper,
                  const std::string& measured) {
  std::printf("  %-44s paper: %-14s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

void print_histogram_with_normal(std::span<const double> xs, std::size_t bins,
                                 const std::string& title,
                                 const std::string& x_label) {
  const auto summary = stats::summarize(xs);
  const stats::Normal fit(summary.mean, summary.sd);
  const stats::Histogram hist = stats::Histogram::from_data(xs, bins);
  const auto edges = hist.edges();
  const auto pct = hist.percentages();

  std::cout << title << "  (histogram % | fitted N(" << support::fmt(summary.mean)
            << ", " << support::fmt(summary.sd) << ") %)\n";
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    const double normal_pct =
        fit.probability_in(edges[b], edges[b + 1]) * 100.0;
    const int bar = static_cast<int>(pct[b] * 2.0 + 0.5);
    const int nbar = static_cast<int>(normal_pct * 2.0 + 0.5);
    std::printf("  [%7.3f,%7.3f) %5.1f%% |%-40s  normal %5.1f%% |%s\n",
                edges[b], edges[b + 1], pct[b],
                std::string(static_cast<std::size_t>(bar), '#').c_str(),
                normal_pct,
                std::string(static_cast<std::size_t>(nbar), '*').c_str());
  }
  std::cout << "  (" << x_label << ")\n";
}

void print_cdf_with_normal(std::span<const double> xs,
                           const std::string& title,
                           const std::string& x_label) {
  const auto summary = stats::summarize(xs);
  const stats::Normal fit(summary.mean, summary.sd);
  const stats::Ecdf ecdf(xs);

  support::Series empirical;
  empirical.name = "empirical CDF";
  empirical.glyph = 'o';
  support::Series normal;
  normal.name = "normal CDF";
  normal.glyph = '.';
  const double lo = summary.min;
  const double hi = summary.max;
  for (int i = 0; i <= 60; ++i) {
    const double x = lo + (hi - lo) * i / 60.0;
    empirical.xs.push_back(x);
    empirical.ys.push_back(ecdf(x) * 100.0);
    normal.xs.push_back(x);
    normal.ys.push_back(fit.cdf(x) * 100.0);
  }
  support::PlotOptions opts;
  opts.title = title;
  opts.x_label = x_label;
  opts.y_label = "% of values <= x";
  const std::vector<support::Series> series{empirical, normal};
  std::cout << support::render_xy(series, opts);
}

void print_series(std::span<const double> ys, const std::string& title,
                  const std::string& y_label) {
  support::PlotOptions opts;
  opts.title = title;
  opts.y_label = y_label;
  opts.x_label = "sample index";
  std::cout << support::render_series(ys, opts);
}

}  // namespace sspred::bench
