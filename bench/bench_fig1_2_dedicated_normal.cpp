// Regenerates paper Figures 1-2: PDF and CDF of runtimes of a sample
// sorting code on a dedicated workstation, with the fitted normal overlay.
//
// The "sorting code" is a real quicksort over fresh random inputs each
// run; its operation count varies run to run (random pivots), and a small
// dedicated-machine timing jitter is added. The claim being reproduced:
// in-core benchmarks on dedicated systems yield near-normal runtimes.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "support/table.hpp"
#include "stats/descriptive.hpp"
#include "stats/normality.hpp"
#include "support/rng.hpp"

namespace {

using namespace sspred;

/// Instrumented quicksort: returns the number of comparisons performed.
std::size_t quicksort_comparisons(std::vector<std::uint32_t>& v,
                                  support::Rng& rng) {
  std::size_t comparisons = 0;
  const std::function<void(std::size_t, std::size_t)> qsort_range =
      [&](std::size_t lo, std::size_t hi) {
        while (hi - lo > 1) {
          const std::size_t pivot_idx =
              lo + rng.uniform_int(hi - lo);
          const std::uint32_t pivot = v[pivot_idx];
          std::size_t i = lo;
          std::size_t j = hi - 1;
          std::swap(v[pivot_idx], v[j]);
          for (std::size_t k = lo; k < j; ++k) {
            ++comparisons;
            if (v[k] < pivot) std::swap(v[k], v[i++]);
          }
          std::swap(v[i], v[j]);
          // Recurse into the smaller side, loop on the larger.
          if (i - lo < hi - i - 1) {
            qsort_range(lo, i);
            lo = i + 1;
          } else {
            qsort_range(i + 1, hi);
            hi = i;
          }
        }
      };
  qsort_range(0, v.size());
  return comparisons;
}

}  // namespace

int main() {
  bench::banner("Figures 1-2",
                "PDF/CDF of dedicated-workstation sort runtimes with "
                "fitted normal");

  constexpr std::size_t kRuns = 400;
  constexpr std::size_t kInput = 40'000;
  // Per-comparison cost of the simulated dedicated workstation plus the
  // machine's timing jitter (scheduler ticks, cache state). The jitter
  // dominates the mildly right-skewed comparison-count variation, giving
  // the near-normal shape the paper observes on dedicated systems.
  constexpr double kSecPerComparison = 2.4e-5;
  constexpr double kJitterSd = 1.5;

  support::Rng rng(42);
  std::vector<double> runtimes;
  runtimes.reserve(kRuns);
  std::vector<std::uint32_t> input(kInput);
  for (std::size_t r = 0; r < kRuns; ++r) {
    for (auto& x : input) x = static_cast<std::uint32_t>(rng());
    const std::size_t comparisons = quicksort_comparisons(input, rng);
    const bool sorted = std::is_sorted(input.begin(), input.end());
    if (!sorted) {
      std::cerr << "sort failed!\n";
      return 1;
    }
    runtimes.push_back(static_cast<double>(comparisons) * kSecPerComparison +
                       rng.normal(0.0, kJitterSd));
  }

  bench::section("Figure 1 — runtime histogram with normal PDF");
  bench::print_histogram_with_normal(runtimes, 14, "sort runtimes",
                                     "runtime (sec)");

  bench::section("Figure 2 — runtime CDF with normal CDF");
  bench::print_cdf_with_normal(runtimes, "sort runtime CDF", "runtime (sec)");

  bench::section("normality checks");
  const auto s = stats::summarize(runtimes);
  std::printf("  mean %.2f s, sd %.2f s over %zu runs\n", s.mean, s.sd,
              runtimes.size());
  const auto lf = stats::lilliefors_test(runtimes);
  const auto ad = stats::anderson_darling_normal(runtimes);
  bench::compare_line("Lilliefors rejects normality?", "no",
                      lf.reject_at_05 ? "yes" : "no");
  bench::compare_line("Anderson-Darling rejects normality?", "no",
                      ad.reject_at_05 ? "yes" : "no");
  const double within = stats::fraction_within(runtimes, s.mean - 2.0 * s.sd,
                                               s.mean + 2.0 * s.sd);
  bench::compare_line("fraction within ±2sd", "~95%",
                      support::fmt_pct(within, 1));
  return 0;
}
