// Regenerates paper Table 2: the arithmetic combination rules for
// stochastic values, validated against Monte-Carlo ground truth.
//
// For each rule the closed form from §2.3 is printed next to a
// sequentially stopped empirical combination (independent sampling for
// the unrelated rules, comonotonic sampling for the related rules):
// sampling runs until the CI half-width of the empirical mean is at or
// below kMeanCiTarget, and each row reports the width it actually
// achieved (±w @ n) instead of a raw hand-picked n.
#include <cstdio>
#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "stoch/arithmetic.hpp"
#include "stoch/montecarlo.hpp"
#include "support/table.hpp"

namespace {

using namespace sspred;
using stoch::Dependence;
using stoch::StochasticValue;

// Absolute CI half-width target on the empirical mean. 0.005 on operands
// of scale ~10-50 resolves every Table-2 mean error well below the
// percent level; the stop rule escalates n on the long-tailed rules
// (products, division) and stops early on the easy ones.
constexpr double kMeanCiTarget = 0.005;
constexpr std::size_t kMaxSamples = 400'000;

stats::StopRule table_rule() {
  return stats::StopRule::absolute(kMeanCiTarget, kMaxSamples, 1'024);
}

void row(support::Table& t, const std::string& name,
         const StochasticValue& closed,
         const stoch::EmpiricalResult& empirical) {
  const double mean_err =
      empirical.value.mean() != 0.0
          ? std::abs(closed.mean() - empirical.value.mean()) /
                std::abs(empirical.value.mean())
          : std::abs(closed.mean() - empirical.value.mean());
  char achieved[64];
  std::snprintf(achieved, sizeof achieved, "±%.4f @ %zuk%s",
                empirical.ci_halfwidth, empirical.samples / 1'000,
                empirical.converged ? "" : " (clamped)");
  t.add_row({name, closed.to_string(), empirical.value.to_string(), achieved,
             support::fmt_pct(mean_err, 2)});
}

}  // namespace

int main() {
  bench::banner("Table 2",
                "arithmetic combinations of stochastic values, closed form "
                "vs Monte-Carlo");
  support::Rng rng(20260707);

  const StochasticValue x(10.0, 2.0);
  const StochasticValue y(5.0, 1.0);
  const double p = 4.0;

  const auto add_op = [](double a, double b) { return a + b; };
  const auto mul_op = [](double a, double b) { return a * b; };

  support::Table t(
      {"operation", "closed form", "monte-carlo", "mean CI", "mean err"});

  // Point-value rules.
  row(t, "(X±a) + P", stoch::add_point(x, p),
      stoch::empirical_combine(x, StochasticValue(p), add_op, rng,
          table_rule()));
  row(t, "P · (X±a)", stoch::scale(x, p),
      stoch::empirical_combine(x, StochasticValue(p), mul_op, rng,
          table_rule()));

  // Related (comonotonic) rules — conservative error sums.
  row(t, "add, related dists", stoch::add(x, y, Dependence::kRelated),
      stoch::empirical_combine_related(x, y, add_op, rng, table_rule()));
  row(t, "mul, related dists", stoch::mul(x, y, Dependence::kRelated),
      stoch::empirical_combine_related(x, y, mul_op, rng, table_rule()));

  // Unrelated (independent) rules — RSS forms.
  row(t, "add, unrelated dists", stoch::add(x, y, Dependence::kUnrelated),
      stoch::empirical_combine(x, y, add_op, rng, table_rule()));
  row(t, "mul, unrelated dists", stoch::mul(x, y, Dependence::kUnrelated),
      stoch::empirical_combine(x, y, mul_op, rng, table_rule()));

  // Division (via the delta-method inverse).
  row(t, "div, unrelated dists", stoch::div(x, y, Dependence::kUnrelated),
      stoch::empirical_combine(
          x, y, [](double a, double b) { return a / b; }, rng,
          table_rule()));

  std::cout << "\noperands: X = " << x << ", Y = " << y << ", P = " << p
            << "\n\n"
            << t.render();

  bench::section("notes");
  std::cout
      << "  * Related closed forms are intentionally conservative (paper "
         "§2.3.1):\n    their halfwidths bound the comonotonic ground truth, "
         "never undercut it.\n"
      << "  * The related-multiply halfwidth adds the ai·aj cross term, so "
         "it reads\n    slightly wider than the sampled two-sigma value.\n"
      << "  * Products of normals are long-tailed; the normal "
         "approximation is used\n    per §2.1.1.\n";

  // Coverage sanity: the ±2sd interval of a normal covers ~95%. The
  // adaptive rule targets a 0.2-point CI on the fraction itself.
  support::Rng rng2(7);
  const stoch::EmpiricalResult cover = stoch::empirical_coverage(
      x, x, rng2, stats::StopRule::absolute(0.002, kMaxSamples, 4'096));
  char cover_note[96];
  std::snprintf(cover_note, sizeof cover_note, "%s ±%.2fpt @ %zuk",
                support::fmt_pct(cover.value.mean(), 1).c_str(),
                100.0 * cover.ci_halfwidth, cover.samples / 1'000);
  bench::compare_line("±2sd coverage of a normal", "~95%", cover_note);
  return 0;
}
