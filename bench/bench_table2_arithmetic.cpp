// Regenerates paper Table 2: the arithmetic combination rules for
// stochastic values, validated against Monte-Carlo ground truth.
//
// For each rule the closed form from §2.3 is printed next to the empirical
// combination of 200k sampled operand pairs (independent sampling for the
// unrelated rules, comonotonic sampling for the related rules).
#include <cstdio>
#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "stoch/arithmetic.hpp"
#include "stoch/montecarlo.hpp"
#include "support/table.hpp"

namespace {

using namespace sspred;
using stoch::Dependence;
using stoch::StochasticValue;

constexpr std::size_t kSamples = 200'000;

void row(support::Table& t, const std::string& name,
         const StochasticValue& closed, const StochasticValue& empirical) {
  const double mean_err =
      empirical.mean() != 0.0
          ? std::abs(closed.mean() - empirical.mean()) /
                std::abs(empirical.mean())
          : std::abs(closed.mean() - empirical.mean());
  t.add_row({name, closed.to_string(), empirical.to_string(),
             support::fmt_pct(mean_err, 2)});
}

}  // namespace

int main() {
  bench::banner("Table 2",
                "arithmetic combinations of stochastic values, closed form "
                "vs Monte-Carlo");
  support::Rng rng(20260707);

  const StochasticValue x(10.0, 2.0);
  const StochasticValue y(5.0, 1.0);
  const double p = 4.0;

  const auto add_op = [](double a, double b) { return a + b; };
  const auto mul_op = [](double a, double b) { return a * b; };

  support::Table t({"operation", "closed form", "monte-carlo", "mean err"});

  // Point-value rules.
  row(t, "(X±a) + P", stoch::add_point(x, p),
      stoch::empirical_combine(x, StochasticValue(p), add_op, rng, kSamples));
  row(t, "P · (X±a)", stoch::scale(x, p),
      stoch::empirical_combine(x, StochasticValue(p), mul_op, rng, kSamples));

  // Related (comonotonic) rules — conservative error sums.
  row(t, "add, related dists", stoch::add(x, y, Dependence::kRelated),
      stoch::empirical_combine_related(x, y, add_op, rng, kSamples));
  row(t, "mul, related dists", stoch::mul(x, y, Dependence::kRelated),
      stoch::empirical_combine_related(x, y, mul_op, rng, kSamples));

  // Unrelated (independent) rules — RSS forms.
  row(t, "add, unrelated dists", stoch::add(x, y, Dependence::kUnrelated),
      stoch::empirical_combine(x, y, add_op, rng, kSamples));
  row(t, "mul, unrelated dists", stoch::mul(x, y, Dependence::kUnrelated),
      stoch::empirical_combine(x, y, mul_op, rng, kSamples));

  // Division (via the delta-method inverse).
  row(t, "div, unrelated dists", stoch::div(x, y, Dependence::kUnrelated),
      stoch::empirical_combine(
          x, y, [](double a, double b) { return a / b; }, rng, kSamples));

  std::cout << "\noperands: X = " << x << ", Y = " << y << ", P = " << p
            << "\n\n"
            << t.render();

  bench::section("notes");
  std::cout
      << "  * Related closed forms are intentionally conservative (paper "
         "§2.3.1):\n    their halfwidths bound the comonotonic ground truth, "
         "never undercut it.\n"
      << "  * The related-multiply halfwidth adds the ai·aj cross term, so "
         "it reads\n    slightly wider than the sampled two-sigma value.\n"
      << "  * Products of normals are long-tailed; the normal "
         "approximation is used\n    per §2.1.1.\n";

  // Coverage sanity: the ±2sd interval of a normal covers ~95%.
  support::Rng rng2(7);
  const double cover = stoch::empirical_coverage(x, x, rng2, kSamples);
  bench::compare_line("±2sd coverage of a normal", "~95%",
                      support::fmt_pct(cover, 1));
  return 0;
}
