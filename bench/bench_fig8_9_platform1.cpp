// Regenerates paper Figures 8-9 (Platform 1, §3.1): the single-mode load
// trace, and actual SOR execution times vs the stochastic prediction
// interval across problem sizes.
//
// Paper claims reproduced in shape: actual times fall within the
// stochastic interval (0% outside); the mean-vs-actual discrepancy stays
// below ~10% (paper: max 9.7%).
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "predict/experiment.hpp"
#include "support/ascii_plot.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;
}

int main() {
  bench::banner("Figures 8-9",
                "Platform 1: single-mode load and execution times vs "
                "stochastic interval");

  predict::SeriesConfig cfg;
  cfg.platform = cluster::platform1();
  cfg.sor.iterations = 20;
  cfg.sor.real_numerics = false;
  cfg.load_source = predict::LoadParameterSource::kRecentSample;
  cfg.bwavail = stoch::StochasticValue::from_mean_sd(0.525, 0.06);
  cfg.first_start = 400.0;
  cfg.spacing = 400.0;

  bench::section("Figure 8 — load of the slowest machine (stays in one mode)");
  {
    sim::Engine engine;
    cluster::Platform platform(engine, cfg.platform, cfg.seed);
    const auto samples = platform.machine(0).trace().samples();
    const std::vector<double> window(samples.begin(),
                                     samples.begin() + 600);
    bench::print_series(window, "CPU load, slowest host (sparc2-a)",
                        "availability");
    const auto sv = stoch::StochasticValue::from_sample(window);
    bench::compare_line("mode mean", "0.48", support::fmt(sv.mean(), 3));
    bench::compare_line("stochastic load value", "0.48 ± 0.05",
                        sv.to_string(3));
  }

  bench::section("Figure 9 — execution times vs problem size");
  const std::vector<std::size_t> sizes{1000, 1200, 1400, 1600, 1800, 2000};
  const auto outcomes = run_size_sweep(cfg, sizes);

  support::Table t({"size", "interval low", "mean point", "interval high",
                    "actual", "in range?", "mean err"});
  std::size_t outside = 0;
  double worst_mean_err = 0.0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    const bool in = o.predicted.contains(o.actual);
    if (!in) ++outside;
    const double mean_err = std::abs(o.point_predicted() - o.actual) / o.actual;
    worst_mean_err = std::max(worst_mean_err, mean_err);
    t.add_row({std::to_string(sizes[i]) + "x" + std::to_string(sizes[i]),
               support::fmt(o.predicted.lower(), 1),
               support::fmt(o.point_predicted(), 1),
               support::fmt(o.predicted.upper(), 1),
               support::fmt(o.actual, 1), in ? "yes" : "NO",
               support::fmt_pct(mean_err, 1)});
  }
  std::cout << t.render();

  // The Fig. 9 view: three curves over problem size.
  support::Series actual{"actual", {}, {}, 'A'};
  support::Series low{"interval low", {}, {}, '-'};
  support::Series high{"interval high", {}, {}, '+'};
  support::Series mean{"mean point value", {}, {}, 'm'};
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const double x = static_cast<double>(sizes[i]);
    actual.xs.push_back(x);
    actual.ys.push_back(outcomes[i].actual);
    low.xs.push_back(x);
    low.ys.push_back(outcomes[i].predicted.lower());
    high.xs.push_back(x);
    high.ys.push_back(outcomes[i].predicted.upper());
    mean.xs.push_back(x);
    mean.ys.push_back(outcomes[i].point_predicted());
  }
  support::PlotOptions opts;
  opts.title = "execution time vs problem size";
  opts.x_label = "problem size N";
  opts.y_label = "time (sec)";
  const std::vector<support::Series> series{low, high, mean, actual};
  std::cout << "\n" << support::render_xy(series, opts);

  std::filesystem::create_directories("bench_data");
  support::CsvWriter csv("bench_data/fig9.csv",
                         {"n", "interval_low", "mean_point", "interval_high",
                          "actual"});
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    csv.write_row({static_cast<double>(sizes[i]),
                   outcomes[i].predicted.lower(),
                   outcomes[i].point_predicted(),
                   outcomes[i].predicted.upper(), outcomes[i].actual});
  }
  std::cout << "  (raw series: bench_data/fig9.csv)\n";

  bench::section("shape check vs paper");
  bench::compare_line("actuals outside stochastic interval", "0%",
                      support::fmt_pct(static_cast<double>(outside) /
                                           static_cast<double>(outcomes.size()),
                                       0));
  bench::compare_line("max mean-vs-actual discrepancy", "9.7%",
                      support::fmt_pct(worst_mean_err, 1));
  return 0;
}
