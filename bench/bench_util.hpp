// Shared output helpers for the bench/experiment harness.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/histogram.hpp"
#include "stoch/stochastic_value.hpp"

namespace sspred::bench {

/// Prints a banner naming the paper artifact being regenerated.
void banner(const std::string& artifact, const std::string& description);

/// Prints a sub-section heading.
void section(const std::string& title);

/// Prints a "paper reports X / we measure Y" comparison line.
void compare_line(const std::string& metric, const std::string& paper,
                  const std::string& measured);

/// Renders a histogram of `xs` with a fitted-normal overlay column, the way
/// the paper's PDF figures pair the histogram with the normal curve.
void print_histogram_with_normal(std::span<const double> xs,
                                 std::size_t bins,
                                 const std::string& title,
                                 const std::string& x_label);

/// Renders the empirical CDF against the fitted normal CDF (the paper's
/// CDF figures).
void print_cdf_with_normal(std::span<const double> xs,
                           const std::string& title,
                           const std::string& x_label);

/// Renders a time series (paper's load/time-trace figures).
void print_series(std::span<const double> ys, const std::string& title,
                  const std::string& y_label);

}  // namespace sspred::bench
