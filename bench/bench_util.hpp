// Shared output helpers for the bench/experiment harness.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/histogram.hpp"
#include "stoch/stochastic_value.hpp"

namespace sspred::bench {

/// CMAKE_BUILD_TYPE the bench binaries were compiled with ("Release",
/// "RelWithDebInfo", "Debug", ...). Timing artifacts are only meaningful
/// from optimized builds, so every bench records this prominently: the
/// banner prints it, and the google-benchmark binaries add it as the
/// `build_type` context key (google-benchmark's own `library_build_type`
/// describes the benchmark LIBRARY, not this code).
[[nodiscard]] const char* build_type() noexcept;

/// True for build types that optimize (Release / RelWithDebInfo /
/// MinSizeRel): the ones whose timings are comparable across runs and
/// whose perf floors are worth asserting.
[[nodiscard]] bool optimized_build() noexcept;

/// Prints a banner naming the paper artifact being regenerated (and the
/// build type the numbers come from).
void banner(const std::string& artifact, const std::string& description);

/// Prints a sub-section heading.
void section(const std::string& title);

/// Prints a "paper reports X / we measure Y" comparison line.
void compare_line(const std::string& metric, const std::string& paper,
                  const std::string& measured);

/// Renders a histogram of `xs` with a fitted-normal overlay column, the way
/// the paper's PDF figures pair the histogram with the normal curve.
void print_histogram_with_normal(std::span<const double> xs,
                                 std::size_t bins,
                                 const std::string& title,
                                 const std::string& x_label);

/// Renders the empirical CDF against the fitted normal CDF (the paper's
/// CDF figures).
void print_cdf_with_normal(std::span<const double> xs,
                           const std::string& title,
                           const std::string& x_label);

/// Renders a time series (paper's load/time-trace figures).
void print_series(std::span<const double> ys, const std::string& title,
                  const std::string& y_label);

}  // namespace sspred::bench
