// Closed-loop calibration demo (src/calib/): coverage degradation under
// load-regime drift, drift detection, and conformal coverage restoration.
//
// Setup: a task of fixed dedicated work runs repeatedly on one machine
// whose CPU availability is a synthetic load trace (machine/load_trace).
// The predictor is parameterized once, from the warmup window — the
// production hazard where model parameters go stale — and predicts
// work / load with the §2.3 stochastic calculus. Ground truth comes from
// the trace itself (LoadTrace::finish_time). Mid-stream the trace shifts
// to a slower, noisier regime:
//
//   * raw intervals keep ~nominal coverage on the stationary control
//     trace but collapse after the drift point;
//   * the Page-Hinkley detector on standardized residuals fires within a
//     few observations of the shift (and never on the control trace);
//   * the conformal recalibrator's rolling window re-widens the
//     intervals, restoring steady-state coverage to 95% ± 2%.
//
// Numbers are recorded in BENCH_calibration.json; the process exits
// non-zero if any of the three claims fails, so the demo is self-checking.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "calib/drift.hpp"
#include "calib/ledger.hpp"
#include "calib/recalibrate.hpp"
#include "machine/load_trace.hpp"
#include "stoch/arithmetic.hpp"
#include "support/clock.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace sspred;

constexpr double kDt = 10.0;        // load sample interval, seconds
constexpr double kWork = 4.0;       // dedicated-seconds per task
constexpr std::size_t kWarmup = 64; // samples used to parameterize
constexpr std::size_t kTrials = 3000;
constexpr std::size_t kDriftAt = 1500;   // trial index of the regime shift
constexpr std::size_t kAdapt = 256;      // recalibration burn-in after drift
constexpr double kNominal = 0.95;

struct LoopResult {
  std::size_t trials = 0;
  std::size_t drift_point = 0;           // kTrials => no drift injected
  double coverage_raw_pre = 0.0;         // raw coverage before the shift
  double coverage_raw_post = 0.0;        // raw coverage after the shift
  double coverage_cal_steady = 0.0;      // recalibrated, post-adaptation
  double scale_steady = 0.0;             // conformal scale at the end
  std::size_t detection_index = 0;       // 0 => never fired
  calib::CalibrationSnapshot ledger;
};

machine::LoadTrace make_trace(bool drifting, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> samples;
  const std::size_t total = kWarmup + kTrials + 64;
  samples.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const bool shifted = drifting && i >= kWarmup + kDriftAt;
    const double a = shifted ? rng.normal(0.55, 0.10) : rng.normal(0.85, 0.04);
    samples.push_back(std::clamp(a, shifted ? 0.15 : 0.5, 1.0));
  }
  return machine::LoadTrace(kDt, samples);
}

LoopResult run_loop(const machine::LoadTrace& trace, std::size_t drift_point,
                    const std::string& model_id,
                    calib::AccuracyLedger& ledger,
                    calib::DriftMonitor& drift) {
  // Parameterize once from the warmup window (stale thereafter).
  const auto warmup = trace.samples().subspan(0, kWarmup);
  const auto load = stoch::StochasticValue::from_sample(warmup);
  const stoch::StochasticValue predicted = stoch::StochasticValue(kWork) / load;

  calib::RecalibratorOptions recal_options;
  recal_options.nominal = kNominal;
  recal_options.window = 128;
  recal_options.max_scale = 50.0;  // the regime shift needs ~15x widening
  calib::ConformalRecalibrator recal(recal_options);

  LoopResult r;
  r.trials = kTrials;
  r.drift_point = drift_point;
  std::size_t pre_hits = 0, pre_n = 0;
  std::size_t post_hits = 0, post_n = 0;
  std::size_t steady_hits = 0, steady_n = 0;
  for (std::size_t i = 0; i < kTrials; ++i) {
    const double start = double(kWarmup + i) * kDt;
    const double actual = trace.finish_time(start, kWork) - start;

    const auto scaled = recal.apply(model_id, predicted);
    const bool in_raw = predicted.contains(actual);
    const bool in_cal = scaled.contains(actual);
    if (i < drift_point) {
      ++pre_n;
      if (in_raw) ++pre_hits;
    } else {
      ++post_n;
      if (in_raw) ++post_hits;
      if (i >= drift_point + kAdapt) {
        ++steady_n;
        if (in_cal) ++steady_hits;
      }
    }

    const double z = (actual - predicted.mean()) / predicted.sd();
    if (drift.update(model_id, z, in_raw) && r.detection_index == 0) {
      r.detection_index = i + 1;
    }
    ledger.record(model_id, predicted, actual);
    recal.record(model_id, predicted, actual);
  }
  r.coverage_raw_pre = pre_n ? double(pre_hits) / double(pre_n) : 0.0;
  r.coverage_raw_post = post_n ? double(post_hits) / double(post_n) : 0.0;
  r.coverage_cal_steady =
      steady_n ? double(steady_hits) / double(steady_n) : 0.0;
  r.scale_steady = recal.scale(model_id);
  r.ledger = ledger.snapshot(model_id);
  return r;
}

void emit_json(const LoopResult& control, const LoopResult& drifted,
               bool control_fired, bool pass) {
  std::ofstream out("BENCH_calibration.json");
  out.precision(6);
  out << "{\n"
      << "  \"artifact\": \"bench_calibration\",\n"
      << "  \"build_type\": \"" << bench::build_type() << "\",\n"
      << "  \"nominal_coverage\": " << kNominal << ",\n"
      << "  \"trials\": " << kTrials << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << ",\n"
      << "  \"control\": {\n"
      << "    \"coverage_raw\": " << control.coverage_raw_pre << ",\n"
      << "    \"drift_detected\": " << (control_fired ? "true" : "false")
      << ",\n"
      << "    \"mean_crps\": " << control.ledger.mean_crps << "\n"
      << "  },\n"
      << "  \"drift\": {\n"
      << "    \"drift_point\": " << drifted.drift_point << ",\n"
      << "    \"coverage_raw_pre_drift\": " << drifted.coverage_raw_pre
      << ",\n"
      << "    \"coverage_raw_post_drift\": " << drifted.coverage_raw_post
      << ",\n"
      << "    \"coverage_recalibrated_steady_state\": "
      << drifted.coverage_cal_steady << ",\n"
      << "    \"detection_index\": " << drifted.detection_index << ",\n"
      << "    \"detection_delay\": "
      << (drifted.detection_index > drifted.drift_point
              ? drifted.detection_index - drifted.drift_point
              : 0)
      << ",\n"
      << "    \"conformal_scale_steady_state\": " << drifted.scale_steady
      << ",\n"
      << "    \"rolling_coverage_final\": "
      << drifted.ledger.rolling_coverage << "\n"
      << "  }\n"
      << "}\n";
}

}  // namespace

int main() {
  bench::banner("calibration closed loop",
                "coverage under drift: ledger -> drift detector -> "
                "conformal recalibration (src/calib/)");

  // z on this workload has sd well above 1 (the stochastic calculus is
  // conservative about tails), so tolerate a wide stationary band: delta
  // absorbs residual bias, lambda sits far above stationary excursions
  // while the post-drift z (~12 sd) still trips it within a few trials.
  calib::DriftMonitorOptions drift_options;
  drift_options.page_hinkley.delta = 0.25;
  drift_options.page_hinkley.lambda = 40.0;
  drift_options.coverage.window = 64;
  drift_options.coverage.min_coverage = 0.80;

  bench::section("stationary control trace");
  calib::AccuracyLedger control_ledger;
  calib::DriftMonitor control_drift(drift_options,
                                    std::make_shared<support::FakeClock>());
  const auto control = run_loop(make_trace(false, 42), kTrials, "unit-task",
                                control_ledger, control_drift);
  const bool control_fired = !control_drift.alarms().empty();
  std::printf("  raw coverage %.1f%% (nominal %.0f%%), drift alarms: %zu\n",
              100.0 * control.coverage_raw_pre, 100.0 * kNominal,
              control_drift.alarms().size());

  bench::section("drifting trace (regime shift at trial 1500)");
  calib::AccuracyLedger drift_ledger;
  calib::DriftMonitor drift_monitor(drift_options,
                                    std::make_shared<support::FakeClock>());
  const auto drifted = run_loop(make_trace(true, 42), kDriftAt, "unit-task",
                                drift_ledger, drift_monitor);
  support::Table t({"segment", "coverage", "note"});
  t.add_row({"raw, pre-drift",
             support::fmt(100.0 * drifted.coverage_raw_pre, 1) + "%",
             "stale parameters still valid"});
  t.add_row({"raw, post-drift",
             support::fmt(100.0 * drifted.coverage_raw_post, 1) + "%",
             "coverage collapses"});
  t.add_row({"recalibrated, steady state",
             support::fmt(100.0 * drifted.coverage_cal_steady, 1) + "%",
             "conformal scale " + support::fmt(drifted.scale_steady, 2)});
  std::printf("%s", t.render().c_str());
  if (drifted.detection_index > drifted.drift_point) {
    std::printf("  detector fired at trial %zu (drift at %zu, delay %zu)\n",
                drifted.detection_index, drifted.drift_point,
                drifted.detection_index - drifted.drift_point);
  } else {
    std::printf("  detector fired at trial %zu (drift at %zu)\n",
                drifted.detection_index, drifted.drift_point);
  }

  const bool degraded = drifted.coverage_raw_post < kNominal - 0.10;
  const bool detected = drifted.detection_index > drifted.drift_point &&
                        drifted.detection_index <= drifted.drift_point + 64;
  const bool restored = drifted.coverage_cal_steady >= kNominal - 0.02 &&
                        drifted.coverage_cal_steady <= kNominal + 0.02;
  const bool pass = degraded && detected && restored && !control_fired;

  bench::section("verdict");
  std::printf("  degrades below nominal: %s\n", degraded ? "yes" : "NO");
  std::printf("  detected within 64 obs: %s\n", detected ? "yes" : "NO");
  std::printf("  restored to 95%% +/- 2%%: %s (%.1f%%)\n",
              restored ? "yes" : "NO", 100.0 * drifted.coverage_cal_steady);
  std::printf("  control stays quiet:    %s\n", control_fired ? "NO" : "yes");
  std::printf("  => %s (BENCH_calibration.json written)\n",
              pass ? "PASS" : "FAIL");

  emit_json(control, drifted, control_fired, pass);
  return pass ? 0 : 1;
}
