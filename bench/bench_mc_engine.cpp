// Blocked vs scalar Monte-Carlo engine comparison (self-checking).
//
// Sweeps the compiled-program sampler across trial counts (1k / 10k /
// 100k) and model sizes (a handful-of-nodes expression, the Platform-2
// SOR structural model, and a 16-host wide SOR) in both RNG stream orders
// (ir::SampleOrder): kScalarCompat is the pre-batching per-trial
// interpreter, kBlocked the trial-major SoA engine with the ziggurat
// batch sampler. Numbers land in BENCH_mc_engine.json.
//
// Self-check: in optimized builds the blocked engine must be at least
// kSpeedupFloor x faster than scalar order on the 10k-trial SOR model
// (the ISSUE-5 acceptance bar); the process exits non-zero otherwise.
// Unoptimized builds report but do not assert — their timings are noise.
//
// Timing uses bench::measure_until (bench/measure.*): warm-up-trimmed,
// autocorrelation-corrected, CI-driven run length instead of the old
// hand-picked best-of-3 reps.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "measure.hpp"
#include "cluster/platform.hpp"
#include "model/compile.hpp"
#include "model/expr.hpp"
#include "model/ir.hpp"
#include "predict/sor_model.hpp"
#include "stoch/stochastic_value.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace sspred;
using stoch::StochasticValue;

constexpr double kSpeedupFloor = 4.0;
constexpr std::size_t kTrialCounts[] = {1'000, 10'000, 100'000};
// Every measurement samples this many trials in total (small counts loop
// more), so short calls still time a >= millisecond region.
constexpr std::size_t kTrialsPerMeasurement = 100'000;

struct Case {
  std::string name;
  model::ir::Program program;
  model::ir::SlotEnvironment env;
  std::size_t nodes = 0;
};

Case small_case() {
  // ExTime = work / load + const overhead: the calibration demo's model,
  // a few nodes — dominated by the per-trial draw cost.
  const auto expr = model::add(
      model::quotient(model::constant(StochasticValue(4.0)),
                      model::param("load")),
      model::constant(StochasticValue(0.2, 0.04)));
  model::ir::Program prog = model::compile(*expr);
  model::ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("load"), StochasticValue(0.8, 0.15));
  const std::size_t nodes = prog.node_count();
  return {"small-expr", std::move(prog), std::move(env), nodes};
}

Case sor_case(const std::string& name, const cluster::PlatformSpec& platform,
              std::size_t n, std::size_t iterations) {
  sor::SorConfig cfg;
  cfg.n = n;
  cfg.iterations = iterations;
  const predict::SorStructuralModel model(platform, cfg);
  const std::vector<StochasticValue> loads(platform.hosts.size(),
                                           StochasticValue(0.62, 0.08));
  model::ir::Program prog = model.program();
  model::ir::SlotEnvironment env =
      model.make_slot_env(loads, StochasticValue(0.525, 0.06));
  const std::size_t nodes = prog.node_count();
  return {name, std::move(prog), std::move(env), nodes};
}

/// Seconds per `trials`-trial sample_trials() call in `order`: CI-driven
/// repetition over inner loops sized to kTrialsPerMeasurement, with
/// warm-up removal and ESS correction done by bench::measure_until.
bench::Measurement measure(const Case& c, std::size_t trials,
                           model::ir::SampleOrder order) {
  support::Rng rng(20260806);
  model::ir::EvalWorkspace ws;
  const std::size_t inner =
      std::max<std::size_t>(1, kTrialsPerMeasurement / trials);
  bench::MeasureOptions options;
  options.rel_precision = 0.03;
  options.min_samples = 5;
  options.max_samples = 40;
  options.max_seconds = 1.5;
  return bench::measure_until(
      [&] {
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < inner; ++i) {
          (void)c.program.sample_trials(c.env, rng, trials, ws, order);
        }
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - start;
        return dt.count() / static_cast<double>(inner);
      },
      options);
}

struct Row {
  std::string model;
  std::size_t nodes = 0;
  std::size_t trials = 0;
  double scalar_s = 0.0;
  double blocked_s = 0.0;
  double scalar_ci = 0.0;   ///< CI half-width on scalar_s
  double blocked_ci = 0.0;  ///< CI half-width on blocked_s
  [[nodiscard]] double speedup() const { return scalar_s / blocked_s; }
  [[nodiscard]] double blocked_trials_per_s() const {
    return static_cast<double>(trials) / blocked_s;
  }
};

void emit_json(const std::vector<Row>& rows, double gate_speedup, bool pass) {
  std::ofstream out("BENCH_mc_engine.json");
  out.precision(6);
  out << "{\n"
      << "  \"artifact\": \"bench_mc_engine\",\n"
      << "  \"build_type\": \"" << bench::build_type() << "\",\n"
      << "  \"optimized_build\": " << (bench::optimized_build() ? "true" : "false")
      << ",\n"
      << "  \"speedup_floor\": " << kSpeedupFloor << ",\n"
      << "  \"gate\": \"sor-p2 @ 10000 trials\",\n"
      << "  \"gate_speedup\": " << gate_speedup << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << ",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"model\": \"" << r.model << "\", \"nodes\": " << r.nodes
        << ", \"trials\": " << r.trials << ", \"scalar_sec\": " << r.scalar_s
        << ", \"scalar_ci_sec\": " << r.scalar_ci
        << ", \"blocked_sec\": " << r.blocked_s
        << ", \"blocked_ci_sec\": " << r.blocked_ci
        << ", \"speedup\": " << r.speedup()
        << ", \"blocked_trials_per_sec\": " << r.blocked_trials_per_s() << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  bench::banner("mc engine: blocked vs scalar",
                "trial-major SoA batch kernels + ziggurat sampler vs the "
                "per-trial interpreter (model/ir.cpp)");

  std::vector<Case> cases;
  cases.push_back(small_case());
  cases.push_back(sor_case("sor-p2", cluster::platform2(), 600, 20));
  cases.push_back(sor_case("sor-wide16", cluster::dedicated_platform(16),
                           1'000, 30));

  std::vector<Row> rows;
  double gate_speedup = 0.0;
  for (const Case& c : cases) {
    bench::section(c.name + " (" + std::to_string(c.nodes) + " IR nodes)");
    support::Table t({"trials", "scalar", "blocked", "speedup", "blocked trials/s"});
    for (const std::size_t trials : kTrialCounts) {
      Row r;
      r.model = c.name;
      r.nodes = c.nodes;
      r.trials = trials;
      const bench::Measurement scalar =
          measure(c, trials, model::ir::SampleOrder::kScalarCompat);
      const bench::Measurement blocked =
          measure(c, trials, model::ir::SampleOrder::kBlocked);
      r.scalar_s = scalar.mean;
      r.blocked_s = blocked.mean;
      r.scalar_ci = scalar.ci_halfwidth;
      r.blocked_ci = blocked.ci_halfwidth;
      if (c.name == "sor-p2" && trials == 10'000) gate_speedup = r.speedup();
      t.add_row({std::to_string(trials),
                 support::fmt(r.scalar_s * 1e3, 2) + " ms",
                 support::fmt(r.blocked_s * 1e3, 2) + " ms ±" +
                     support::fmt(100.0 * r.blocked_ci /
                                      std::max(r.blocked_s, 1e-300), 1) + "%",
                 support::fmt(r.speedup(), 2) + "x",
                 support::fmt(r.blocked_trials_per_s() / 1e6, 2) + "M"});
      rows.push_back(r);
    }
    std::printf("%s", t.render().c_str());
  }

  bench::section("verdict");
  const bool gate_met = gate_speedup >= kSpeedupFloor;
  // Only optimized builds assert: debug/sanitizer timings say nothing
  // about the engine (the JSON still records which build produced it).
  const bool pass = gate_met || !bench::optimized_build();
  std::printf("  gate: sor-p2 @ 10k trials, blocked >= %.1fx scalar\n",
              kSpeedupFloor);
  std::printf("  measured: %.2fx (%s build)\n", gate_speedup,
              bench::build_type());
  if (!bench::optimized_build()) {
    std::printf("  unoptimized build: reporting only, floor not asserted\n");
  }
  std::printf("  => %s (BENCH_mc_engine.json written)\n",
              pass ? "PASS" : "FAIL");

  emit_json(rows, gate_speedup, pass);
  return pass ? 0 : 1;
}
