// Adaptive-precision Monte-Carlo headline artifact (self-checking).
//
// A mixed easy/hard model suite is evaluated two ways at the SAME
// worst-case precision target: a fixed trial budget sized for the
// hardest model (kFixedTrials = 2000, the pre-ISSUE-10 default), and
// the sequential stopping rule (stats::StopRule::relative_width via
// ir::Program::sample_adaptive), which spends trials where the model's
// variance actually demands them. Results land in BENCH_adaptive_mc.json.
//
// Three gates, all deterministic (fixed seeds), all asserted in every
// build type — nothing here is a timing:
//   1. savings:   mean over models of fixed/adaptive trial counts
//                 >= kReductionFloor (2x) at equal CI width,
//   2. coverage:  over kCoverageReps independent adaptive runs per
//                 model, the fraction whose reported CI covers a
//                 2^20-trial reference mean is within
//                 kCoverageTolerancePts of the z=2 nominal 95.45%,
//   3. determinism: re-running the adaptive pass with the same seeds
//                 reproduces the exact trial-count vector and means.
// Wall-clock suite times (adaptive vs fixed) are reported but never
// asserted.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/platform.hpp"
#include "model/compile.hpp"
#include "model/expr.hpp"
#include "model/ir.hpp"
#include "predict/sor_model.hpp"
#include "stats/sequential.hpp"
#include "stoch/stochastic_value.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace sspred;
using stoch::StochasticValue;

constexpr std::size_t kFixedTrials = 2'000;
constexpr std::size_t kMinTrials = 128;
constexpr std::size_t kMaxTrials = 32'768;
constexpr std::size_t kReferenceTrials = std::size_t{1} << 20;
constexpr std::size_t kCoverageReps = 400;
constexpr double kNominalCoverage = 0.9545;  // z = 2
constexpr double kCoverageTolerancePts = 2.0;
constexpr double kReductionFloor = 2.0;
constexpr std::uint64_t kSeed = 20260808;

struct Case {
  std::string name;
  model::ir::Program program;
  model::ir::SlotEnvironment env;
  std::size_t nodes = 0;
};

Case sor_case(const std::string& name, const StochasticValue& load,
              const StochasticValue& bandwidth) {
  sor::SorConfig cfg;
  cfg.n = 600;
  cfg.iterations = 20;
  const cluster::PlatformSpec platform = cluster::platform2();
  const predict::SorStructuralModel model(platform, cfg);
  const std::vector<StochasticValue> loads(platform.hosts.size(), load);
  model::ir::Program prog = model.program();
  model::ir::SlotEnvironment env = model.make_slot_env(loads, bandwidth);
  const std::size_t nodes = prog.node_count();
  return {name, std::move(prog), std::move(env), nodes};
}

Case overhead_case() {
  // work / load + overhead with a noisy load: moderate relative spread.
  const auto expr = model::add(
      model::quotient(model::constant(StochasticValue(4.0)),
                      model::param("load")),
      model::constant(StochasticValue(0.2, 0.04)));
  model::ir::Program prog = model::compile(*expr);
  model::ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("load"), StochasticValue(0.8, 0.3));
  const std::size_t nodes = prog.node_count();
  return {"overhead-mix", std::move(prog), std::move(env), nodes};
}

Case longtail_case() {
  // Product of two wide factors (cv 0.3 each): the right-skewed,
  // high-variance model that sizes the fixed budget for everyone else.
  const auto expr =
      model::mul(model::mul(model::constant(StochasticValue(1.0, 0.6)),
                            model::constant(StochasticValue(1.0, 0.6))),
                 model::constant(StochasticValue(5.0)));
  model::ir::Program prog = model::compile(*expr);
  model::ir::SlotEnvironment env = prog.make_environment();
  const std::size_t nodes = prog.node_count();
  return {"longtail-prod", std::move(prog), std::move(env), nodes};
}

struct Row {
  std::string model;
  std::size_t nodes = 0;
  double fixed_rel_width = 0.0;     ///< fixed-2000 achieved CI (relative)
  std::size_t adaptive_trials = 0;  ///< trials the stop rule spent
  double adaptive_rel_width = 0.0;  ///< adaptive achieved CI (relative)
  std::size_t covered = 0;          ///< coverage successes
  [[nodiscard]] double reduction() const {
    return static_cast<double>(kFixedTrials) /
           static_cast<double>(adaptive_trials);
  }
  [[nodiscard]] double coverage() const {
    return static_cast<double>(covered) / static_cast<double>(kCoverageReps);
  }
};

/// Achieved relative CI half-width of an n-trial fixed run (z = 2):
/// (halfwidth / sqrt(n)) / |mean|, matching the serve-layer stamp.
double fixed_rel_width(const StochasticValue& v, std::size_t n) {
  return (v.halfwidth() / std::sqrt(static_cast<double>(n))) /
         std::abs(v.mean());
}

void emit_json(const std::vector<Row>& rows, double target_rel,
               double mean_reduction, double pooled_coverage,
               bool deterministic, double fixed_suite_s,
               double adaptive_suite_s, bool pass) {
  std::ofstream out("BENCH_adaptive_mc.json");
  out.precision(6);
  out << "{\n"
      << "  \"artifact\": \"bench_adaptive_mc\",\n"
      << "  \"build_type\": \"" << bench::build_type() << "\",\n"
      << "  \"fixed_trials\": " << kFixedTrials << ",\n"
      << "  \"target_rel_width\": " << target_rel << ",\n"
      << "  \"reduction_floor\": " << kReductionFloor << ",\n"
      << "  \"mean_reduction\": " << mean_reduction << ",\n"
      << "  \"nominal_coverage\": " << kNominalCoverage << ",\n"
      << "  \"coverage_tolerance_pts\": " << kCoverageTolerancePts << ",\n"
      << "  \"coverage_reps_per_model\": " << kCoverageReps << ",\n"
      << "  \"pooled_coverage\": " << pooled_coverage << ",\n"
      << "  \"deterministic_trial_counts\": "
      << (deterministic ? "true" : "false") << ",\n"
      << "  \"fixed_suite_sec\": " << fixed_suite_s << ",\n"
      << "  \"adaptive_suite_sec\": " << adaptive_suite_s << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << ",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"model\": \"" << r.model << "\", \"nodes\": " << r.nodes
        << ", \"fixed_trials\": " << kFixedTrials
        << ", \"fixed_rel_width\": " << r.fixed_rel_width
        << ", \"adaptive_trials\": " << r.adaptive_trials
        << ", \"adaptive_rel_width\": " << r.adaptive_rel_width
        << ", \"reduction\": " << r.reduction()
        << ", \"coverage\": " << r.coverage() << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  bench::banner("adaptive mc: sequential stopping vs fixed budget",
                "stats::StopRule-driven sample_adaptive at the suite's "
                "worst-case precision target vs a fixed 2000-trial budget");

  std::vector<Case> cases;
  cases.push_back(sor_case("sor-tight", StochasticValue(0.62, 0.02),
                           StochasticValue(0.525, 0.01)));
  cases.push_back(sor_case("sor-base", StochasticValue(0.62, 0.08),
                           StochasticValue(0.525, 0.06)));
  cases.push_back(sor_case("sor-wide", StochasticValue(0.60, 0.20),
                           StochasticValue(0.50, 0.10)));
  cases.push_back(overhead_case());
  cases.push_back(longtail_case());

  std::vector<Row> rows(cases.size());
  model::ir::EvalWorkspace ws;

  // -- Calibration: the fixed-2000 budget was sized for the hardest
  // model, so the suite-wide precision target is the WORST fixed-2000
  // achieved relative CI width. Every adaptive run must hit that same
  // width; easy models get there in far fewer trials.
  double target_rel = 0.0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    support::Rng rng(kSeed + i);
    const StochasticValue v =
        cases[i].program.sample_trials(cases[i].env, rng, kFixedTrials, ws);
    rows[i].model = cases[i].name;
    rows[i].nodes = cases[i].nodes;
    rows[i].fixed_rel_width = fixed_rel_width(v, kFixedTrials);
    target_rel = std::max(target_rel, rows[i].fixed_rel_width);
  }
  const stats::StopRule rule =
      stats::StopRule::relative_width(target_rel, kMaxTrials, kMinTrials);

  bench::section("adaptive runs @ shared target (CI/|mean| <= " +
                 support::fmt(100.0 * target_rel, 2) + "%)");
  support::Table t({"model", "nodes", "fixed CI", "adaptive CI",
                    "trials", "reduction", "coverage"});

  // -- Headline adaptive pass (+ identical-seed rerun for gate 3).
  std::vector<std::size_t> trials_a(cases.size()), trials_b(cases.size());
  std::vector<double> means_a(cases.size()), means_b(cases.size());
  for (int pass_idx = 0; pass_idx < 2; ++pass_idx) {
    for (std::size_t i = 0; i < cases.size(); ++i) {
      support::Rng rng(kSeed + 500 + i);
      const model::ir::AdaptiveResult res =
          cases[i].program.sample_adaptive(cases[i].env, rng, rule, ws);
      (pass_idx == 0 ? trials_a : trials_b)[i] = res.trials;
      (pass_idx == 0 ? means_a : means_b)[i] = res.value.mean();
      if (pass_idx == 0) {
        rows[i].adaptive_trials = res.trials;
        rows[i].adaptive_rel_width =
            res.ci_halfwidth / std::abs(res.value.mean());
      }
    }
  }
  const bool deterministic = trials_a == trials_b && means_a == means_b;

  // -- Coverage: does the reported CI actually contain the truth at the
  // nominal rate? Truth is a 2^20-trial reference mean; each rep is an
  // independent adaptive run under the shared rule.
  for (std::size_t i = 0; i < cases.size(); ++i) {
    support::Rng ref_rng(kSeed + 900 + i);
    const double truth =
        cases[i]
            .program.sample_trials(cases[i].env, ref_rng, kReferenceTrials, ws)
            .mean();
    for (std::size_t rep = 0; rep < kCoverageReps; ++rep) {
      support::Rng rng(0x9E3779B97F4A7C15ULL ^ (kSeed + i * 1'000'003 + rep));
      const model::ir::AdaptiveResult res =
          cases[i].program.sample_adaptive(cases[i].env, rng, rule, ws);
      if (std::abs(res.value.mean() - truth) <= res.ci_halfwidth) {
        ++rows[i].covered;
      }
    }
  }

  // -- Wall-clock comparison, report-only: what the savings buy in time.
  double fixed_suite_s = 0.0;
  double adaptive_suite_s = 0.0;
  {
    constexpr std::size_t kTimeReps = 50;
    support::Rng rng(kSeed + 1'700);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < kTimeReps; ++rep) {
      for (const Case& c : cases) {
        (void)c.program.sample_trials(c.env, rng, kFixedTrials, ws);
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < kTimeReps; ++rep) {
      for (const Case& c : cases) {
        (void)c.program.sample_adaptive(c.env, rng, rule, ws);
      }
    }
    const auto t2 = std::chrono::steady_clock::now();
    fixed_suite_s =
        std::chrono::duration<double>(t1 - t0).count() / kTimeReps;
    adaptive_suite_s =
        std::chrono::duration<double>(t2 - t1).count() / kTimeReps;
  }

  std::size_t covered_total = 0;
  double reduction_sum = 0.0;
  for (const Row& r : rows) {
    covered_total += r.covered;
    reduction_sum += r.reduction();
    t.add_row({r.model, std::to_string(r.nodes),
               "±" + support::fmt(100.0 * r.fixed_rel_width, 2) + "%",
               "±" + support::fmt(100.0 * r.adaptive_rel_width, 2) + "%",
               std::to_string(r.adaptive_trials),
               support::fmt(r.reduction(), 1) + "x",
               support::fmt(100.0 * r.coverage(), 1) + "%"});
  }
  std::printf("%s", t.render().c_str());

  const double mean_reduction = reduction_sum / static_cast<double>(rows.size());
  const double pooled_coverage =
      static_cast<double>(covered_total) /
      static_cast<double>(rows.size() * kCoverageReps);
  const double coverage_err_pts =
      100.0 * std::abs(pooled_coverage - kNominalCoverage);

  bench::section("verdict");
  const bool savings_ok = mean_reduction >= kReductionFloor;
  const bool coverage_ok = coverage_err_pts <= kCoverageTolerancePts;
  const bool pass = savings_ok && coverage_ok && deterministic;
  std::printf("  mean trial reduction: %.1fx (floor %.1fx) %s\n",
              mean_reduction, kReductionFloor, savings_ok ? "ok" : "FAIL");
  std::printf("  pooled coverage: %.2f%% (nominal %.2f%%, |err| %.2fpt <= "
              "%.1fpt) %s\n",
              100.0 * pooled_coverage, 100.0 * kNominalCoverage,
              coverage_err_pts, kCoverageTolerancePts,
              coverage_ok ? "ok" : "FAIL");
  std::printf("  same-seed rerun: trial counts %s\n",
              deterministic ? "identical (ok)" : "DIFFER (FAIL)");
  std::printf("  suite wall-clock: fixed %.2fms, adaptive %.2fms (%.1fx, "
              "report-only)\n",
              fixed_suite_s * 1e3, adaptive_suite_s * 1e3,
              fixed_suite_s / adaptive_suite_s);
  std::printf("  => %s (BENCH_adaptive_mc.json written)\n",
              pass ? "PASS" : "FAIL");

  emit_json(rows, target_rel, mean_reduction, pooled_coverage, deterministic,
            fixed_suite_s, adaptive_suite_s, pass);
  return pass ? 0 : 1;
}
