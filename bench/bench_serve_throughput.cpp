// Serving-layer throughput (google-benchmark): a naive single-request
// loop that rebuilds the structural model per request (what callers did
// before src/serve/) versus the PredictionService with its compiled-
// program cache, worker pool, and request coalescing toggled on and off.
// Results are recorded in BENCH_serve_throughput.json; the headline
// comparison is BM_BaselineRecompileLoop vs the workers:4/cache:1 rows
// (items_per_second).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <future>
#include <vector>

#include "bench_util.hpp"
#include "cluster/platform.hpp"
#include "predict/sor_model.hpp"
#include "serve/service.hpp"
#include "stoch/stochastic_value.hpp"

namespace {

using namespace sspred;

constexpr std::size_t kHosts = 8;
constexpr std::size_t kBatch = 64;
// Rotating distinct load bindings: coalescing can only merge requests
// that happen to carry the same bindings, so the cache effect is not
// conflated with trivial all-identical merging.
constexpr std::size_t kDistinctLoads = 16;

serve::ModelSpec bench_spec() {
  serve::ModelSpec spec;
  spec.app = serve::ModelSpec::App::kSor;
  spec.platform = cluster::dedicated_platform(kHosts);
  spec.config.n = 1000;
  spec.config.iterations = 30;
  return spec;
}

std::vector<stoch::StochasticValue> loads_at(std::size_t i) {
  std::vector<stoch::StochasticValue> loads;
  for (std::size_t h = 0; h < kHosts; ++h) {
    loads.push_back(stoch::StochasticValue(
        0.5 + 0.02 * double((i + h) % kDistinctLoads), 0.1));
  }
  return loads;
}

// Baseline: what a caller without src/serve/ does — rebuild (and thus
// recompile) the structural model for every request, then evaluate.
void BM_BaselineRecompileLoop(benchmark::State& state) {
  const auto spec = bench_spec();
  std::size_t i = 0;
  for (auto _ : state) {
    const predict::SorStructuralModel model(spec.platform, spec.config,
                                            spec.options);
    benchmark::DoNotOptimize(model.predict(
        model.make_slot_env(loads_at(i++), stoch::StochasticValue(1.0))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BaselineRecompileLoop)->UseRealTime();

// Service: submit kBatch requests, wait for all. Arguments select the
// worker count and toggle the program cache and coalescing.
void BM_ServiceThroughput(benchmark::State& state) {
  serve::ServiceOptions options;
  options.workers = std::size_t(state.range(0));
  options.enable_cache = state.range(1) != 0;
  options.enable_coalescing = state.range(2) != 0;
  options.queue_capacity = 4 * kBatch;
  serve::PredictionService service(options);
  service.register_model("sor", bench_spec());

  std::size_t i = 0;
  for (auto _ : state) {
    std::vector<std::future<serve::PredictResult>> futures;
    futures.reserve(kBatch);
    for (std::size_t r = 0; r < kBatch; ++r) {
      serve::PredictRequest request;
      request.model_id = "sor";
      request.loads = loads_at(i++);
      futures.push_back(service.submit(std::move(request)));
    }
    for (auto& f : futures) {
      const auto result = f.get();
      if (!result.ok()) state.SkipWithError(result.error.c_str());
      benchmark::DoNotOptimize(result.value);
    }
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(kBatch));
  state.counters["cache_hits"] = double(
      service.metrics().counter("cache_hits").value());
  state.counters["coalesced"] = double(
      service.metrics().counter("requests_coalesced").value());
}
BENCHMARK(BM_ServiceThroughput)
    ->UseRealTime()
    ->ArgNames({"workers", "cache", "coalesce"})
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Args({1, 1, 1})
    ->Args({4, 0, 0})
    ->Args({4, 1, 0})
    ->Args({4, 1, 1});

// Monte-Carlo mode: the request fans out as fixed-size chunks executed on
// the workers' pooled SoA arenas by the blocked trial-major engine.
// items_per_second counts TRIALS (not requests), so this row is directly
// comparable across engine changes; the worker sweep shows the fan-out
// scaling.
void BM_ServiceMonteCarloTrials(benchmark::State& state) {
  serve::ServiceOptions options;
  options.workers = std::size_t(state.range(0));
  options.queue_capacity = 4 * kBatch;
  serve::PredictionService service(options);
  service.register_model("sor", bench_spec());

  constexpr std::size_t kTrials = 20'000;
  std::size_t i = 0;
  for (auto _ : state) {
    serve::PredictRequest request;
    request.model_id = "sor";
    request.loads = loads_at(i++);
    request.mode = serve::Mode::kMonteCarlo;
    request.trials = kTrials;
    request.seed = 99;
    const auto result = service.submit(std::move(request)).get();
    if (!result.ok()) state.SkipWithError(result.error.c_str());
    benchmark::DoNotOptimize(result.value);
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(kTrials));
}
BENCHMARK(BM_ServiceMonteCarloTrials)
    ->UseRealTime()
    ->ArgNames({"workers"})
    ->Arg(1)
    ->Arg(4);

}  // namespace

// BENCHMARK_MAIN plus the build-type context key (see bench_util.hpp).
int main(int argc, char** argv) {
  benchmark::AddCustomContext("build_type", sspred::bench::build_type());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
