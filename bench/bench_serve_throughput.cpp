// Serving-layer throughput (google-benchmark): a naive single-request
// loop that rebuilds the structural model per request (what callers did
// before src/serve/) versus the PredictionService with its compiled-
// program cache, worker pool, and request coalescing toggled on and off.
// Results are recorded in BENCH_serve_throughput.json; the headline
// comparison is BM_BaselineRecompileLoop vs the workers:4/cache:1 rows
// (items_per_second).
//
// Self-check (the ISSUE-6 acceptance bar): on the high-fan-in workload —
// waves of requests against one model family where every request carries
// DISTINCT bindings, so coalescing can merge nothing — the request-major
// fused engine must clear kFusedFloor x the unfused request rate. The
// gate runs hand-rolled timings before the google-benchmark sweep, lands
// its numbers in the JSON context block, and exits non-zero on failure.
// Unoptimized builds report but do not assert (timings are noise there).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "measure.hpp"
#include "cluster/platform.hpp"
#include "predict/sor_model.hpp"
#include "serve/service.hpp"
#include "stoch/stochastic_value.hpp"

namespace {

using namespace sspred;

constexpr std::size_t kHosts = 8;
constexpr std::size_t kBatch = 64;
// Rotating distinct load bindings: coalescing can only merge requests
// that happen to carry the same bindings, so the cache effect is not
// conflated with trivial all-identical merging.
constexpr std::size_t kDistinctLoads = 16;

serve::ModelSpec bench_spec() {
  serve::ModelSpec spec;
  spec.app = serve::ModelSpec::App::kSor;
  spec.platform = cluster::dedicated_platform(kHosts);
  spec.config.n = 1000;
  spec.config.iterations = 30;
  return spec;
}

std::vector<stoch::StochasticValue> loads_at(std::size_t i) {
  std::vector<stoch::StochasticValue> loads;
  for (std::size_t h = 0; h < kHosts; ++h) {
    loads.push_back(stoch::StochasticValue(
        0.5 + 0.02 * double((i + h) % kDistinctLoads), 0.1));
  }
  return loads;
}

// Baseline: what a caller without src/serve/ does — rebuild (and thus
// recompile) the structural model for every request, then evaluate.
void BM_BaselineRecompileLoop(benchmark::State& state) {
  const auto spec = bench_spec();
  std::size_t i = 0;
  for (auto _ : state) {
    const predict::SorStructuralModel model(spec.platform, spec.config,
                                            spec.options);
    benchmark::DoNotOptimize(model.predict(
        model.make_slot_env(loads_at(i++), stoch::StochasticValue(1.0))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BaselineRecompileLoop)->UseRealTime();

// Service: submit kBatch requests, wait for all. Arguments select the
// worker count and toggle the program cache and coalescing.
void BM_ServiceThroughput(benchmark::State& state) {
  serve::ServiceOptions options;
  options.workers = std::size_t(state.range(0));
  options.enable_cache = state.range(1) != 0;
  options.enable_coalescing = state.range(2) != 0;
  options.queue_capacity = 4 * kBatch;
  serve::PredictionService service(options);
  service.register_model("sor", bench_spec());

  std::size_t i = 0;
  for (auto _ : state) {
    std::vector<std::future<serve::PredictResult>> futures;
    futures.reserve(kBatch);
    for (std::size_t r = 0; r < kBatch; ++r) {
      serve::PredictRequest request;
      request.model_id = "sor";
      request.loads = loads_at(i++);
      futures.push_back(service.submit(std::move(request)));
    }
    for (auto& f : futures) {
      const auto result = f.get();
      if (!result.ok()) state.SkipWithError(result.error.c_str());
      benchmark::DoNotOptimize(result.value);
    }
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(kBatch));
  state.counters["cache_hits"] = double(
      service.metrics().counter("cache_hits").value());
  state.counters["coalesced"] = double(
      service.metrics().counter("requests_coalesced").value());
}
BENCHMARK(BM_ServiceThroughput)
    ->UseRealTime()
    ->ArgNames({"workers", "cache", "coalesce"})
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Args({1, 1, 1})
    ->Args({4, 0, 0})
    ->Args({4, 1, 0})
    ->Args({4, 1, 1});

// Monte-Carlo mode: the request fans out as fixed-size chunks executed on
// the workers' pooled SoA arenas by the blocked trial-major engine.
// items_per_second counts TRIALS (not requests), so this row is directly
// comparable across engine changes; the worker sweep shows the fan-out
// scaling.
void BM_ServiceMonteCarloTrials(benchmark::State& state) {
  serve::ServiceOptions options;
  options.workers = std::size_t(state.range(0));
  options.queue_capacity = 4 * kBatch;
  serve::PredictionService service(options);
  service.register_model("sor", bench_spec());

  constexpr std::size_t kTrials = 20'000;
  std::size_t i = 0;
  for (auto _ : state) {
    serve::PredictRequest request;
    request.model_id = "sor";
    request.loads = loads_at(i++);
    request.mode = serve::Mode::kMonteCarlo;
    request.trials = kTrials;
    request.seed = 99;
    const auto result = service.submit(std::move(request)).get();
    if (!result.ok()) state.SkipWithError(result.error.c_str());
    benchmark::DoNotOptimize(result.value);
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(kTrials));
}
BENCHMARK(BM_ServiceMonteCarloTrials)
    ->UseRealTime()
    ->ArgNames({"workers"})
    ->Arg(1)
    ->Arg(4);

// --- High fan-in: many distinct clients, one model family ---------------

constexpr std::size_t kFanIn = 256;     ///< distinct requests per wave
constexpr double kFusedFloor = 2.0;     ///< fused req/s >= floor x unfused

/// Per-request-unique load bindings (within any window of 2048 requests):
/// no two wave members are coalescable, so merging work across them is
/// the fused path's job alone.
std::vector<stoch::StochasticValue> distinct_loads_at(std::size_t i) {
  std::vector<stoch::StochasticValue> loads;
  for (std::size_t h = 0; h < kHosts; ++h) {
    loads.push_back(stoch::StochasticValue(
        0.4 + 0.0002 * double(i % 2048) + 0.04 * double(h), 0.08));
  }
  return loads;
}

/// Seconds to serve one staged wave of kFanIn distinct-bindings requests,
/// measured until the CI converges (bench::measure_until: warm-up waves —
/// program cache, worker arenas — are trimmed by the analysis, reps are
/// ESS-corrected and CI-driven rather than hand-picked best-of). Timed
/// resume -> drain (service-side throughput); futures are checked untimed
/// so main-thread wakeups don't mask the worker-side difference under
/// test.
sspred::bench::Measurement measure_fan_in_wave(bool fuse) {
  serve::ServiceOptions options;
  options.workers = 4;
  options.enable_fusion = fuse;
  options.queue_capacity = 4 * kFanIn;
  options.start_paused = true;
  serve::PredictionService service(options);
  service.register_model("sor", bench_spec());

  std::size_t i = 0;
  sspred::bench::MeasureOptions mopts;
  mopts.rel_precision = 0.05;
  mopts.min_samples = 6;
  mopts.max_samples = 30;
  mopts.max_seconds = 3.0;
  return sspred::bench::measure_until(
      [&] {
        service.pause();
        std::vector<std::future<serve::PredictResult>> futures;
        futures.reserve(kFanIn);
        for (std::size_t r = 0; r < kFanIn; ++r) {
          serve::PredictRequest request;
          request.model_id = "sor";
          request.loads = distinct_loads_at(i++);
          futures.push_back(service.submit(std::move(request)));
        }
        const auto start = std::chrono::steady_clock::now();
        service.resume();
        service.drain();
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - start;
        for (auto& f : futures) {
          const auto result = f.get();
          if (!result.ok()) {
            std::fprintf(stderr, "fan-in gate request failed: %s\n",
                         result.error.c_str());
            std::exit(1);
          }
          benchmark::DoNotOptimize(result.value);
        }
        return dt.count();
      },
      mopts);
}

// The same workload as a recorded google-benchmark row (fuse toggled), so
// BENCH_serve_throughput.json tracks absolute req/s over time alongside
// the gate's ratio.
void BM_ServiceFusedHighFanIn(benchmark::State& state) {
  serve::ServiceOptions options;
  options.workers = std::size_t(state.range(0));
  options.enable_fusion = state.range(1) != 0;
  options.queue_capacity = 4 * kFanIn;
  options.start_paused = true;
  serve::PredictionService service(options);
  service.register_model("sor", bench_spec());

  std::size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    service.pause();
    std::vector<std::future<serve::PredictResult>> futures;
    futures.reserve(kFanIn);
    for (std::size_t r = 0; r < kFanIn; ++r) {
      serve::PredictRequest request;
      request.model_id = "sor";
      request.loads = distinct_loads_at(i++);
      futures.push_back(service.submit(std::move(request)));
    }
    state.ResumeTiming();
    service.resume();
    for (auto& f : futures) {
      const auto result = f.get();
      if (!result.ok()) state.SkipWithError(result.error.c_str());
      benchmark::DoNotOptimize(result.value);
    }
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(kFanIn));
  state.counters["fused"] = double(
      service.metrics().counter("requests_fused").value());
  const auto& occupancy =
      service.metrics().histogram("fused_batch_occupancy");
  state.counters["sweep_lanes_mean"] =
      occupancy.count() > 0 ? occupancy.mean() : 0.0;
}
BENCHMARK(BM_ServiceFusedHighFanIn)
    ->UseRealTime()
    ->ArgNames({"workers", "fuse"})
    ->Args({4, 0})
    ->Args({4, 1});

std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

// Runs the fused-throughput gate first (its numbers become custom context
// keys in the JSON, which must be registered before benchmarks run), then
// the google-benchmark sweep. Exit status reflects the gate.
int main(int argc, char** argv) {
  const sspred::bench::Measurement unfused = measure_fan_in_wave(false);
  const sspred::bench::Measurement fused = measure_fan_in_wave(true);
  const double unfused_s = unfused.mean;
  const double fused_s = fused.mean;
  // The GATE compares fastest kept samples — the pre-migration best-of
  // semantics, least exposed to scheduler interference on small CI
  // runners — while the reported numbers and CIs describe the trimmed
  // means (the honest throughput estimate).
  const double ratio = unfused.min / fused.min;
  const bool gate_met = ratio >= kFusedFloor;
  // Only optimized builds assert: debug/sanitizer timings say nothing
  // about the engine (the JSON still records which build produced them).
  const bool pass = gate_met || !sspred::bench::optimized_build();

  benchmark::AddCustomContext("build_type", sspred::bench::build_type());
  benchmark::AddCustomContext(
      "fused_gate", "wave of " + std::to_string(kFanIn) +
                        " distinct-bindings requests, fused vs unfused");
  benchmark::AddCustomContext("fused_gate_floor", fmt2(kFusedFloor));
  benchmark::AddCustomContext("fused_gate_unfused_rps",
                              fmt2(double(kFanIn) / unfused_s));
  benchmark::AddCustomContext("fused_gate_fused_rps",
                              fmt2(double(kFanIn) / fused_s));
  benchmark::AddCustomContext("fused_gate_ratio", fmt2(ratio));
  benchmark::AddCustomContext("fused_gate_unfused_ci_rel",
                              fmt2(unfused.ci_halfwidth / unfused_s));
  benchmark::AddCustomContext("fused_gate_fused_ci_rel",
                              fmt2(fused.ci_halfwidth / fused_s));
  benchmark::AddCustomContext(
      "fused_gate_measurement",
      "unfused " + unfused.summary(1e3, "ms") + "; fused " +
          fused.summary(1e3, "ms"));
  benchmark::AddCustomContext("fused_gate_pass", pass ? "true" : "false");

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf(
      "\nfused gate: %zu distinct-bindings requests/wave, "
      "fused %.0f req/s vs unfused %.0f req/s -> %.2fx (floor %.1fx)\n",
      kFanIn, double(kFanIn) / fused_s, double(kFanIn) / unfused_s, ratio,
      kFusedFloor);
  if (!sspred::bench::optimized_build()) {
    std::printf("unoptimized build: reporting only, floor not asserted\n");
  }
  std::printf("=> %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
