// Ablation A10: adaptive rebalancing vs static decomposition.
//
// Every k iterations the ranks gather measured per-row compute times,
// derive a capacity-balanced layout and migrate the grid (the full
// transfer cost goes through the fabric; small layout wobbles skip the
// migration). On the heterogeneous Platform 1 this recovers most of the
// statically-balanced performance without knowing the machines in advance.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "predict/decomposition_advisor.hpp"
#include "sor/distributed.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;
}

int main() {
  bench::banner("Ablation A10", "adaptive rebalancing of the SOR strips");

  const auto spec = cluster::platform1();
  sor::SorConfig base;
  base.n = 600;
  base.iterations = 40;
  base.real_numerics = false;

  support::Table t({"strategy", "total (s)", "vs static uniform",
                    "migrations"});

  sim::Engine e1;
  cluster::Platform p1(e1, spec, 81);
  const double t_static = sor::run_distributed_sor(e1, p1, base).total_time;
  t.add_row({"static uniform", support::fmt(t_static, 1), "1.00x", "-"});

  // Oracle: statically balanced using the true loads.
  sor::SorConfig oracle = base;
  const std::vector<stoch::StochasticValue> true_loads{
      stoch::StochasticValue(0.48, 0.05), stoch::StochasticValue(0.92, 0.03),
      stoch::StochasticValue(0.92, 0.03), stoch::StochasticValue(0.92, 0.03)};
  oracle.rows_per_rank = predict::recommend_rows(
      spec, base.n, true_loads, predict::BalanceStrategy::kMeanCapacity);
  sim::Engine e2;
  cluster::Platform p2(e2, spec, 81);
  const double t_oracle = sor::run_distributed_sor(e2, p2, oracle).total_time;
  t.add_row({"static balanced (oracle loads)", support::fmt(t_oracle, 1),
             support::fmt(t_oracle / t_static, 2) + "x", "-"});

  for (const std::size_t interval : {5, 10, 20}) {
    sor::SorConfig cfg = base;
    cfg.rebalance_interval = interval;
    sim::Engine engine;
    cluster::Platform platform(engine, spec, 81);
    const auto result = sor::run_distributed_sor(engine, platform, cfg);
    std::size_t migrations = 0;
    for (std::size_t i = 0; i < result.rebalances.size(); ++i) {
      if (i == 0 ||
          result.rebalances[i].rows != result.rebalances[i - 1].rows) {
        ++migrations;
      }
    }
    t.add_row({"adaptive (every " + std::to_string(interval) + " iters)",
               support::fmt(result.total_time, 1),
               support::fmt(result.total_time / t_static, 2) + "x",
               std::to_string(migrations)});
  }
  std::cout << "\nplatform1 (sparc2-a at load 0.48, quiet others), 600x600, "
               "40 iterations\n\n"
            << t.render();

  // Show the layout trajectory for the every-10 case.
  bench::section("layout trajectory (adaptive, every 10 iterations)");
  sor::SorConfig cfg = base;
  cfg.rebalance_interval = 10;
  sim::Engine engine;
  cluster::Platform platform(engine, spec, 81);
  const auto result = sor::run_distributed_sor(engine, platform, cfg);
  std::printf("  start: 150/150/150/150 (uniform)\n");
  for (const auto& ev : result.rebalances) {
    std::printf("  t=%6.1f s: %zu/%zu/%zu/%zu (rebalance took %.2f s)\n",
                ev.at, ev.rows[0], ev.rows[1], ev.rows[2], ev.rows[3],
                ev.duration);
  }

  bench::section("reading");
  std::cout
      << "  * Adaptive rebalancing discovers at run time what the oracle "
         "knows in\n    advance, paying one grid migration for it.\n"
      << "  * The migration-threshold keeps later rounds from thrashing "
         "the network\n    over one-row wobbles.\n";
  return 0;
}
