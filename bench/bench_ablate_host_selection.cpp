// Ablation A9: application-level host selection over stochastic
// predictions (the paper's AppLeS context).
//
// More hosts is not always faster: a loaded slow machine drags the
// Max-composed SOR model. This bench ranks every host subset of Platform 1
// by three metrics, then validates the ranking by actually running the
// top plan and the all-hosts plan.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "predict/host_selection.hpp"
#include "sor/distributed.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;

std::string hosts_str(const predict::CandidatePlan& p,
                      const cluster::PlatformSpec& spec) {
  std::string s;
  for (std::size_t h : p.hosts) {
    if (!s.empty()) s += "+";
    s += spec.hosts[h].machine.name;
  }
  return s;
}
}  // namespace

int main() {
  bench::banner("Ablation A9",
                "host selection by stochastic prediction (AppLeS-style)");

  const auto spec = cluster::platform1();
  sor::SorConfig cfg;
  cfg.n = 1000;
  cfg.iterations = 15;
  cfg.real_numerics = false;
  const std::vector<stoch::StochasticValue> loads{
      stoch::StochasticValue(0.48, 0.05), stoch::StochasticValue(0.92, 0.03),
      stoch::StochasticValue(0.92, 0.03), stoch::StochasticValue(0.92, 0.03)};
  const stoch::StochasticValue bwavail(0.525, 0.12);

  const auto plans = predict::rank_host_subsets(
      spec, cfg, loads, bwavail, predict::PlanMetric::kExpectedTime);

  bench::section("plan ranking (expected time; top 6 of 15 subsets)");
  support::Table t({"rank", "hosts", "prediction (s)", "score"});
  for (std::size_t i = 0; i < std::min<std::size_t>(6, plans.size()); ++i) {
    t.add_row({std::to_string(i + 1), hosts_str(plans[i], spec),
               plans[i].predicted.to_string(1),
               support::fmt(plans[i].score, 1)});
  }
  // And the all-hosts plan for contrast.
  for (const auto& p : plans) {
    if (p.hosts.size() == spec.hosts.size()) {
      t.add_row({"(all hosts)", hosts_str(p, spec), p.predicted.to_string(1),
                 support::fmt(p.score, 1)});
      break;
    }
  }
  std::cout << t.render();

  bench::section("validation: run the top plan vs all hosts");
  const auto& best = plans.front();
  sor::SorConfig best_cfg = cfg;
  best_cfg.rows_per_rank.assign(best.rows.begin(), best.rows.end());
  sim::Engine e1;
  cluster::Platform p1(e1, best.subset_spec(spec), 71);
  const double t_best = sor::run_distributed_sor(e1, p1, best_cfg).total_time;
  sim::Engine e2;
  cluster::Platform p2(e2, spec, 71);
  const double t_all = sor::run_distributed_sor(e2, p2, cfg).total_time;
  bench::compare_line("best plan " + hosts_str(best, spec),
                      best.predicted.to_string(1) + " s predicted",
                      support::fmt(t_best, 1) + " s actual");
  bench::compare_line("all four hosts (uniform strips)", "slower",
                      support::fmt(t_all, 1) + " s actual");
  std::printf("  dropping the loaded host is a %.2fx win\n", t_all / t_best);

  bench::section("metric sensitivity");
  for (const auto metric :
       {predict::PlanMetric::kExpectedTime, predict::PlanMetric::kP95Time,
        predict::PlanMetric::kUpperBound}) {
    const auto pick =
        predict::select_hosts(spec, cfg, loads, bwavail, metric);
    const char* name = metric == predict::PlanMetric::kExpectedTime
                           ? "expected time"
                           : metric == predict::PlanMetric::kP95Time
                                 ? "p95 time     "
                                 : "upper bound  ";
    std::printf("  %s -> %s (%s s)\n", name, hosts_str(pick, spec).c_str(),
                pick.predicted.to_string(1).c_str());
  }
  std::cout << "\nThe scheduler's choice is metric-driven exactly as the "
               "paper's §1.2\ndiscussion anticipates — only possible with "
               "stochastic predictions.\n";
  return 0;
}
