// Ledger-arbitrated model selection demo (src/learn/): a learned
// predictor bank overtaking a stale structural model under unmodeled
// drift, with the arbiter flipping the serving source under hysteresis.
//
// Setup: a closed predict->observe loop against a learning-enabled
// PredictionService. Requests bind FIXED (stale) load parameters, so the
// structural prediction never moves; ground truth is synthesized from
// the structural prediction itself plus a regime factor:
//
//   * drift trace — factor 1.0 (structural calibrated) for the first
//     segment, then an unmodeled 1.5x slowdown. The RLS bank tracks the
//     drifted stream and the arbiter flips the serving source within a
//     bounded number of post-drift observations;
//   * mixed-regime trace — the factor alternates faster than either
//     pure candidate can be trusted across a rolling window; the
//     moment-matched blended candidate hedges both regimes and wins the
//     rolling-CRPS arbitration.
//
// Claims checked (process exits non-zero if any fails):
//   1. no flip before the drift point;
//   2. post-drift flip within kFlipBound observations;
//   3. served (learned) rolling CRPS strictly better than the stale
//      structural candidate after the flip;
//   4. steady-state coverage of the served intervals restored to >= 90%;
//   5. blended beats both pure candidates on the mixed-regime trace;
//   6. the whole loop is bit-identical when re-run (fixed seed).
//
// Numbers are recorded in BENCH_model_selection.json.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/platform.hpp"
#include "learn/arbiter.hpp"
#include "learn/bank.hpp"
#include "serve/service.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace sspred;

constexpr std::uint64_t kSeed = 20260808;
constexpr std::size_t kDriftAt = 160;    // trial index of the regime shift
constexpr std::size_t kDriftTrials = 420;
constexpr std::size_t kFlipBound = 96;   // post-drift observations allowed
                                         // before the flip (CI-regressed)
constexpr std::size_t kSteadyBurnin = 128;  // post-drift trials before the
                                            // coverage claim is scored
constexpr double kDriftFactor = 1.5;
constexpr std::size_t kMixedTrials = 420;
constexpr std::size_t kMixedPeriod = 8;  // regime block length, trials

struct LoopResult {
  std::size_t flip_trial = 0;  ///< 1-based; 0 => never flipped
  std::uint64_t flips_before_drift = 0;
  double coverage_steady = 0.0;
  std::vector<double> served_means;
  learn::ModelArbitration table;
};

serve::ModelSpec sor_spec() {
  serve::ModelSpec spec;
  spec.app = serve::ModelSpec::App::kSor;
  spec.platform = cluster::dedicated_platform(2);
  spec.config.n = 250;
  spec.config.iterations = 8;
  return spec;
}

serve::PredictRequest stale_request() {
  serve::PredictRequest request;
  request.model_id = "sor";
  // Stale bindings: the loads the model was parameterized with, never
  // refreshed — the production hazard the learned bank exists for.
  request.loads = {stoch::StochasticValue(0.85, 0.06),
                   stoch::StochasticValue(0.85, 0.06)};
  return request;
}

/// One closed loop: `factor(i)` maps the trial index to the unmodeled
/// runtime multiplier; observed = factor * structural_mean + noise.
template <typename FactorFn>
LoopResult run_loop(std::size_t trials, double noise_sd_fraction,
                    FactorFn factor,
                    std::shared_ptr<learn::PredictorBank> bank = nullptr) {
  serve::ServiceOptions options;
  options.workers = 1;
  options.enable_learning = true;
  options.bank = std::move(bank);
  serve::PredictionService service(options);
  service.register_model("sor", sor_spec());

  support::Rng rng(kSeed);
  LoopResult r;
  std::size_t steady_n = 0, steady_hits = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    auto result = service.submit(stale_request()).get();
    if (!result.ok()) {
      std::fprintf(stderr, "predict failed: %s\n", result.error.c_str());
      std::exit(1);
    }
    r.served_means.push_back(result.value.mean());
    // Ground truth: the structural model was right about the shape; the
    // regime factor is what it cannot see. Noise rides on the
    // structural spread so segment-1 coverage is honestly ~nominal.
    const double structural_mean = result.value.mean();
    const double base =
        i == 0 ? structural_mean
               : r.served_means.front();  // fixed reference, not feedback
    const double observed = factor(i) * base +
                            rng.normal(0.0, noise_sd_fraction * base);
    if (i + 1 > kDriftAt + kSteadyBurnin) {
      ++steady_n;
      if (result.value.contains(observed)) ++steady_hits;
    }
    service.report_observation(result.request_id, observed);
    if (i + 1 == kDriftAt) {
      r.flips_before_drift = service.arbiter()->flips_total();
    }
    if (r.flip_trial == 0 &&
        service.arbiter()->source("sor") != learn::Source::kStructural) {
      r.flip_trial = i + 1;
    }
  }
  service.drain();
  r.coverage_steady = steady_n ? double(steady_hits) / double(steady_n) : 0.0;
  const auto table = service.arbiter()->table();
  if (table.size() == 1) r.table = table[0];
  return r;
}

LoopResult run_drift_loop() {
  return run_loop(kDriftTrials, 0.02, [](std::size_t i) {
    return i < kDriftAt ? 1.0 : kDriftFactor;
  });
}

LoopResult run_mixed_loop() {
  // A fast-forgetting bank chases each regime with a lag comparable to
  // the block length, so the learned candidate is wrong exactly when
  // structural is right (and vice versa): the anti-correlated-errors
  // regime the moment-matched blend hedges.
  learn::BankOptions bank_options;
  bank_options.rls.forgetting = 0.7;
  return run_loop(
      kMixedTrials, 0.02,
      [](std::size_t i) {
        return (i / kMixedPeriod) % 2 == 0 ? 1.0 : kDriftFactor;
      },
      std::make_shared<learn::PredictorBank>(bank_options));
}

void emit_json(const LoopResult& drift, const LoopResult& mixed,
               bool deterministic, bool pass) {
  std::ofstream out("BENCH_model_selection.json");
  out.precision(6);
  const std::size_t flip_delay =
      drift.flip_trial > kDriftAt ? drift.flip_trial - kDriftAt : 0;
  out << "{\n"
      << "  \"artifact\": \"bench_model_selection\",\n"
      << "  \"build_type\": \"" << bench::build_type() << "\",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << ",\n"
      << "  \"drift\": {\n"
      << "    \"trials\": " << kDriftTrials << ",\n"
      << "    \"drift_at\": " << kDriftAt << ",\n"
      << "    \"drift_factor\": " << kDriftFactor << ",\n"
      << "    \"flip_trial\": " << drift.flip_trial << ",\n"
      << "    \"flip_delay\": " << flip_delay << ",\n"
      << "    \"flip_bound\": " << kFlipBound << ",\n"
      << "    \"flips_before_drift\": " << drift.flips_before_drift << ",\n"
      << "    \"rolling_crps_structural\": "
      << drift.table.structural.rolling_crps << ",\n"
      << "    \"rolling_crps_learned\": " << drift.table.learned.rolling_crps
      << ",\n"
      << "    \"coverage_steady_state\": " << drift.coverage_steady << "\n"
      << "  },\n"
      << "  \"mixed\": {\n"
      << "    \"trials\": " << kMixedTrials << ",\n"
      << "    \"period\": " << kMixedPeriod << ",\n"
      << "    \"rolling_crps_structural\": "
      << mixed.table.structural.rolling_crps << ",\n"
      << "    \"rolling_crps_learned\": " << mixed.table.learned.rolling_crps
      << ",\n"
      << "    \"rolling_crps_blended\": " << mixed.table.blended.rolling_crps
      << ",\n"
      << "    \"serving\": \"" << learn::source_name(mixed.table.serving)
      << "\"\n"
      << "  },\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false") << "\n"
      << "}\n";
}

}  // namespace

int main() {
  bench::banner("learned-predictor model selection",
                "graybox RLS bank vs stale structural model: "
                "ledger-arbitrated serving-source flip (src/learn/)");

  bench::section("drift trace (unmodeled 1.5x slowdown at trial 160)");
  const LoopResult drift = run_drift_loop();
  support::Table t({"candidate", "rolling CRPS", "rolling coverage"});
  t.add_row({"structural (stale)",
             support::fmt(drift.table.structural.rolling_crps, 4),
             support::fmt_pct(drift.table.structural.rolling_coverage)});
  t.add_row({"learned",
             support::fmt(drift.table.learned.rolling_crps, 4),
             support::fmt_pct(drift.table.learned.rolling_coverage)});
  t.add_row({"blended",
             support::fmt(drift.table.blended.rolling_crps, 4),
             support::fmt_pct(drift.table.blended.rolling_coverage)});
  std::printf("%s", t.render().c_str());
  std::printf("  serving source: %s (flip at trial %zu, drift at %zu)\n",
              learn::source_name(drift.table.serving), drift.flip_trial,
              kDriftAt);
  std::printf("  steady-state served coverage: %.1f%%\n",
              100.0 * drift.coverage_steady);

  bench::section("mixed-regime trace (factor alternates every " +
                 std::to_string(kMixedPeriod) + " trials)");
  const LoopResult mixed = run_mixed_loop();
  support::Table m({"candidate", "rolling CRPS"});
  m.add_row({"structural",
             support::fmt(mixed.table.structural.rolling_crps, 4)});
  m.add_row({"learned", support::fmt(mixed.table.learned.rolling_crps, 4)});
  m.add_row({"blended", support::fmt(mixed.table.blended.rolling_crps, 4)});
  std::printf("%s", m.render().c_str());
  std::printf("  serving source: %s\n",
              learn::source_name(mixed.table.serving));

  bench::section("determinism (drift loop re-run)");
  const LoopResult rerun = run_drift_loop();
  const bool deterministic =
      rerun.flip_trial == drift.flip_trial &&
      rerun.served_means == drift.served_means &&
      rerun.table.learned.rolling_crps == drift.table.learned.rolling_crps &&
      rerun.table.blend_weight == drift.table.blend_weight;
  std::printf("  re-run identical: %s\n", deterministic ? "yes" : "NO");

  const bool quiet_pre_drift = drift.flips_before_drift == 0;
  const bool flipped = drift.flip_trial > kDriftAt &&
                       drift.flip_trial <= kDriftAt + kFlipBound;
  const bool served_beats_stale = drift.table.learned.rolling_crps <
                                  drift.table.structural.rolling_crps;
  const bool coverage_restored = drift.coverage_steady >= 0.90;
  const bool blended_wins =
      mixed.table.blended.rolling_crps <
          mixed.table.structural.rolling_crps &&
      mixed.table.blended.rolling_crps < mixed.table.learned.rolling_crps;
  const bool pass = quiet_pre_drift && flipped && served_beats_stale &&
                    coverage_restored && blended_wins && deterministic;

  bench::section("verdict");
  std::printf("  quiet before drift:           %s\n",
              quiet_pre_drift ? "yes" : "NO");
  std::printf("  flipped within %3zu obs:       %s (trial %zu)\n", kFlipBound,
              flipped ? "yes" : "NO", drift.flip_trial);
  std::printf("  served CRPS beats stale:      %s\n",
              served_beats_stale ? "yes" : "NO");
  std::printf("  coverage restored >= 90%%:     %s (%.1f%%)\n",
              coverage_restored ? "yes" : "NO",
              100.0 * drift.coverage_steady);
  std::printf("  blended wins mixed regime:    %s\n",
              blended_wins ? "yes" : "NO");
  std::printf("  deterministic re-run:         %s\n",
              deterministic ? "yes" : "NO");
  std::printf("  => %s (BENCH_model_selection.json written)\n",
              pass ? "PASS" : "FAIL");

  emit_json(drift, mixed, deterministic, pass);
  return pass ? 0 : 1;
}
