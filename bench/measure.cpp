#include "measure.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "stats/descriptive.hpp"

namespace sspred::bench {

namespace {

/// Warm-up length: the maximal leading run of samples above the Tukey
/// upper fence (q3 + 1.5 * iqr) of the second half of the vector,
/// capped at half the samples. Timing warm-up shows up as an initial
/// run of slow samples (cold caches, unramped clocks); for stationary
/// data the fence sits above everything and the trim is zero. Purely a
/// function of the sample values — no clocks, no state.
std::size_t warmup_length(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 8) return 0;
  std::vector<double> tail(xs.begin() + static_cast<std::ptrdiff_t>(n / 2),
                           xs.end());
  std::sort(tail.begin(), tail.end());
  const double q1 = stats::quantile_sorted(tail, 0.25);
  const double q3 = stats::quantile_sorted(tail, 0.75);
  const double fence = q3 + 1.5 * (q3 - q1);
  std::size_t cut = 0;
  while (cut < n / 2 && xs[cut] > fence) ++cut;
  return cut;
}

}  // namespace

Measurement analyze(std::span<const double> samples,
                    const MeasureOptions& options) {
  Measurement m;
  if (samples.size() < 2) {
    m.samples = samples.size();
    m.mean = samples.empty() ? 0.0 : samples[0];
    m.min = m.mean;
    m.ci_halfwidth = std::numeric_limits<double>::infinity();
    return m;
  }
  m.warmup_discarded = warmup_length(samples);
  const std::span<const double> kept = samples.subspan(m.warmup_discarded);
  const stats::Summary s = stats::summarize(kept);
  m.mean = s.mean;
  m.sd = s.sd;
  m.min = s.min;
  m.samples = kept.size();
  // Successive timed reps are rarely independent (frequency scaling,
  // cache state, neighbours on the machine): a positive lag-1
  // autocorrelation rho shrinks the information content to
  // n * (1 - rho) / (1 + rho) effective samples, widening the honest CI.
  m.effective_samples = static_cast<double>(kept.size());
  if (kept.size() > 2) {
    const double rho =
        std::clamp(stats::autocorrelation(kept, 1), -0.99, 0.99);
    m.lag1_autocorr = rho;
    if (rho > 0.0) {
      m.effective_samples =
          std::max(2.0, static_cast<double>(kept.size()) * (1.0 - rho) /
                            (1.0 + rho));
    }
  }
  m.ci_halfwidth =
      options.confidence_z * m.sd / std::sqrt(m.effective_samples);
  m.converged = m.ci_halfwidth <= options.rel_precision * std::abs(m.mean);
  return m;
}

Measurement measure_until(const std::function<double()>& once,
                          const MeasureOptions& options) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(options.max_seconds);
  std::vector<double> samples;
  samples.reserve(options.max_samples);
  Measurement m;
  while (samples.size() < options.max_samples) {
    samples.push_back(once());
    if (samples.size() < std::max<std::size_t>(options.min_samples, 2)) {
      continue;
    }
    m = analyze(samples, options);
    if (m.converged) return m;
    if (std::chrono::steady_clock::now() >= deadline) return m;
  }
  return analyze(samples, options);
}

std::string Measurement::summary(double scale, const std::string& unit) const {
  char buf[160];
  const double rel =
      mean != 0.0 ? 100.0 * ci_halfwidth / std::abs(mean) : 0.0;
  std::snprintf(buf, sizeof(buf),
                "%.3f%s ±%.1f%% (n=%zu, warmup %zu, ess %.1f%s)",
                mean * scale, unit.c_str(), rel, samples, warmup_discarded,
                effective_samples, converged ? "" : ", NOT converged");
  return buf;
}

}  // namespace sspred::bench
