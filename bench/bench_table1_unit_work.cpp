// Regenerates paper Table 1: execution times for a unit of work in
// dedicated and production modes on two machines.
//
// Machine A is slow but quiet (few users, load barely moves); machine B is
// fast but busy (many users, wildly varying load). A 24-hour mean capacity
// measurement makes them look identical (12 s/unit); the stochastic values
// reveal that B's unit time swings ±30% while A's swings ±5%.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "machine/load_trace.hpp"
#include "machine/machine.hpp"
#include "stats/descriptive.hpp"
#include "support/table.hpp"

namespace {

using namespace sspred;

/// Availability process whose UNIT TIMES centre on `mean_unit` seconds
/// with a two-sigma swing of ±rel_spread, for a machine whose dedicated
/// unit time is `dedicated_unit`.
///
/// Per-second jitter averages out over a 10-12 s unit of work, so the
/// swing must come from *modal* load changes with dwells much longer than
/// one unit — users arriving and leaving over the day (paper §2.1.2).
/// Three modes at unit times {mean·(1-r), mean, mean·(1+r)} with weights
/// {1/8, 3/4, 1/8} give exactly a 2sd halfwidth of mean·r.
stats::ModalProcessSpec availability(double dedicated_unit, double mean_unit,
                                     double rel_spread) {
  stats::ModalProcessSpec spec;
  const double r = rel_spread / std::sqrt(2.0 * 0.125) / 2.0;
  const std::vector<std::pair<double, double>> modes{
      {mean_unit * (1.0 - r), 0.125},
      {mean_unit, 0.75},
      {mean_unit * (1.0 + r), 0.125},
  };
  for (const auto& [unit_time, weight] : modes) {
    stats::ModeState mode;
    mode.shape.center = dedicated_unit / unit_time;
    mode.shape.sd = 0.004;        // negligible within-mode jitter
    mode.mean_dwell = 1800.0;     // half-hour user sessions
    mode.weight = weight;
    spec.modes.push_back(mode);
  }
  spec.lo = 0.05;
  spec.hi = 1.0;
  return spec;
}

/// Measures unit execution times over a simulated day.
std::vector<double> measure_unit_times(const machine::Machine& m,
                                       double dedicated_unit_seconds,
                                       std::size_t samples) {
  std::vector<double> times;
  times.reserve(samples);
  const double day = 24.0 * 3600.0;
  for (std::size_t k = 0; k < samples; ++k) {
    const double start = day * static_cast<double>(k) /
                         static_cast<double>(samples);
    times.push_back(m.finish_time(start, dedicated_unit_seconds) - start);
  }
  return times;
}

}  // namespace

int main() {
  bench::banner("Table 1",
                "execution times for a unit of work, dedicated vs production");

  // Dedicated unit times straight from the paper: A = 10 s, B = 5 s.
  constexpr double kUnitA = 10.0;
  constexpr double kUnitB = 5.0;

  // Production: both average 12 s/unit => A runs at 10/12 availability
  // (quiet, ±5% unit-time swing), B at 5/12 (busy, ±30% swing).
  const std::size_t day_samples = 2'000;
  machine::MachineSpec spec_a;
  spec_a.name = "A";
  spec_a.bm_seconds_per_element = 1.0;  // one element == one unit of work
  machine::MachineSpec spec_b = spec_a;
  spec_b.name = "B";

  const auto trace_len = static_cast<std::size_t>(24.0 * 3600.0) + 64;
  machine::Machine a(spec_a, machine::LoadTrace::generate(
                                 availability(kUnitA, 12.0, 0.05), trace_len,
                                 1.0, 1001));
  machine::Machine b(spec_b, machine::LoadTrace::generate(
                                 availability(kUnitB, 12.0, 0.30), trace_len,
                                 1.0, 1002));

  const auto times_a = measure_unit_times(a, kUnitA, day_samples);
  const auto times_b = measure_unit_times(b, kUnitB, day_samples);
  const auto sum_a = stats::summarize(times_a);
  const auto sum_b = stats::summarize(times_b);
  const auto sv_a = stoch::StochasticValue::from_sample(times_a);
  const auto sv_b = stoch::StochasticValue::from_sample(times_b);

  support::Table table({"", "Machine A", "Machine B"});
  table.add_row({"Dedicated", support::fmt(kUnitA, 0) + " sec",
                 support::fmt(kUnitB, 0) + " sec"});
  table.add_row({"Production (point)",
                 support::fmt(sum_a.mean, 1) + " sec",
                 support::fmt(sum_b.mean, 1) + " sec"});
  table.add_row({"Production (stochastic)",
                 support::fmt(sv_a.mean(), 1) + " sec ± " +
                     support::fmt_pct(sv_a.relative(), 0),
                 support::fmt(sv_b.mean(), 1) + " sec ± " +
                     support::fmt_pct(sv_b.relative(), 0)});
  std::cout << "\n" << table.render();

  bench::section("shape check vs paper");
  bench::compare_line("A production mean", "12 sec",
                      support::fmt(sum_a.mean, 2) + " sec");
  bench::compare_line("B production mean", "12 sec",
                      support::fmt(sum_b.mean, 2) + " sec");
  bench::compare_line("A relative swing", "±5%",
                      "±" + support::fmt_pct(sv_a.relative(), 1));
  bench::compare_line("B relative swing", "±30%",
                      "±" + support::fmt_pct(sv_b.relative(), 1));
  bench::compare_line("B unit-time range", "8.4 .. 15.6 sec",
                      support::fmt(sv_b.lower(), 1) + " .. " +
                          support::fmt(sv_b.upper(), 1) + " sec");
  std::cout << "\nEqual means hide radically different behaviour: the "
               "stochastic row restores it.\n";
  return 0;
}
