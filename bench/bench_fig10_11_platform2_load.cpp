// Regenerates paper Figures 10-11 (Platform 2, §3.2): the 4-modal load
// histogram and the bursty time trace.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "cluster/platform.hpp"
#include "machine/load_trace.hpp"
#include "stats/descriptive.hpp"
#include "stats/gmm.hpp"
#include "stats/kde.hpp"
#include "support/ascii_plot.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;
}

int main() {
  bench::banner("Figures 10-11", "Platform 2: 4-modal bursty CPU load");

  const auto spec = cluster::platform2_load();
  const machine::LoadTrace trace =
      machine::LoadTrace::generate(spec, 20'000, 1.0, 23);
  const std::vector<double> xs(trace.samples().begin(),
                               trace.samples().end());

  bench::section("Figure 10 — load histogram");
  stats::Histogram hist(0.0, 1.0, 25);
  hist.add_all(xs);
  support::PlotOptions hopts;
  hopts.x_label = "CPU load (availability fraction)";
  std::cout << support::render_histogram(hist.edges(),
                                         hist.counts_as_double(), hopts);

  bench::section("Figure 11 — bursty time trace (first 200 s)");
  const std::vector<double> window(xs.begin(), xs.begin() + 200);
  bench::print_series(window, "load on workstation", "availability");

  bench::section("burstiness metrics");
  const auto s = stats::summarize(xs);
  std::printf("  mean %.3f, sd %.3f, lag-1 autocorrelation %.2f\n", s.mean,
              s.sd, stats::autocorrelation(xs, 1));
  std::size_t switches = 0;
  for (std::size_t i = 1; i < window.size(); ++i) {
    if (std::abs(window[i] - window[i - 1]) > 0.15) ++switches;
  }
  bench::compare_line("mode switches in 200 s window", "frequent (bursty)",
                      std::to_string(switches));

  bench::section("mode count via KDE density peaks");
  const stats::Kde kde(xs);
  const auto peaks = kde.peaks(512, 0.08);
  bench::compare_line("number of modes", "4", std::to_string(peaks.size()));

  bench::section("mixture fit at k = 4");
  const auto fit = stats::fit_gmm(xs, 4);
  support::Table t({"mode", "mean", "sd", "weight"});
  for (std::size_t i = 0; i < fit.components.size(); ++i) {
    const auto& c = fit.components[i];
    t.add_row({std::to_string(i + 1), support::fmt(c.mean, 3),
               support::fmt(c.sd, 3), support::fmt(c.weight, 3)});
  }
  std::cout << t.render();
  return 0;
}
