// Ablation A11: strip vs 2-D block decomposition.
//
// Strips move O(n·P) boundary bytes per phase; a pr x pc block grid moves
// O(n·(pr+pc)). The bench sweeps host counts and grid sizes, validates
// the block structural model, and shows where blocks start paying off.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "predict/sor_model.hpp"
#include "sor/block.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;
}

int main() {
  bench::banner("Ablation A11", "strip vs 2-D block decomposition");

  support::Table t({"hosts", "grid", "strips (s)", "blocks (s)",
                    "block model", "speedup"});

  struct Case {
    std::size_t hosts, pr, pc, n;
  };
  const std::vector<Case> cases{
      {4, 2, 2, 256}, {4, 2, 2, 1024}, {8, 2, 4, 256},
      {8, 2, 4, 1024}, {16, 4, 4, 512},
  };
  for (const auto& c : cases) {
    sor::SorConfig strips;
    strips.n = c.n;
    strips.iterations = 10;
    strips.real_numerics = false;
    sim::Engine e1;
    cluster::Platform p1(e1, cluster::dedicated_platform(c.hosts), 91);
    const double t_strips =
        sor::run_distributed_sor(e1, p1, strips).total_time;

    sor::BlockConfig blocks;
    blocks.n = c.n;
    blocks.iterations = 10;
    blocks.pr = c.pr;
    blocks.pc = c.pc;
    blocks.real_numerics = false;
    sim::Engine e2;
    cluster::Platform p2(e2, cluster::dedicated_platform(c.hosts), 91);
    const double t_blocks =
        sor::run_distributed_block_sor(e2, p2, blocks).total_time;

    const predict::BlockStructuralModel model(
        cluster::dedicated_platform(c.hosts), c.n, 10, c.pr, c.pc);
    const std::vector<stoch::StochasticValue> loads(
        c.hosts, stoch::StochasticValue(1.0));
    const double predicted =
        model.predict_point(model.make_env(loads, {1.0}));

    t.add_row({std::to_string(c.hosts) + " (" + std::to_string(c.pr) + "x" +
                   std::to_string(c.pc) + ")",
               std::to_string(c.n) + "x" + std::to_string(c.n),
               support::fmt(t_strips, 2), support::fmt(t_blocks, 2),
               support::fmt(predicted, 2),
               support::fmt(t_strips / t_blocks, 2) + "x"});
  }
  std::cout << "\ndedicated hosts, shared 10 Mbit segment, 10 iterations\n\n"
            << t.render();

  bench::section("reading");
  std::cout
      << "  * With few hosts strips and blocks tie (same cuts); as P grows "
         "the block\n    grid moves ~ (pr+pc-2)/(P-1) of the strip boundary "
         "bytes and wins on\n    comm-bound configurations.\n"
      << "  * The block structural model (O(n·(pr+pc)) comm term) tracks "
         "the runs,\n    so a scheduler can pick the decomposition shape "
         "from predictions alone.\n";
  return 0;
}
