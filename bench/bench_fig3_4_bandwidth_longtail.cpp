// Regenerates paper Figures 3-4: the long-tailed distribution of ethernet
// bandwidth between two workstations, its normal approximation, and the
// coverage penalty of assuming normality (§2.1.1: ~91% of values inside
// the ±2sd range instead of the ~95% a true normal would give).
//
// Bandwidth samples come from real probe transfers through the shared-
// ethernet fluid model under long-tailed cross-traffic.
#include <cstdio>
#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "support/table.hpp"
#include "cluster/platform.hpp"
#include "net/ethernet.hpp"
#include "sim/engine.hpp"
#include "stats/descriptive.hpp"
#include "stats/normality.hpp"
#include "stoch/stochastic_value.hpp"
#include "support/units.hpp"

namespace {
using namespace sspred;
}

int main() {
  bench::banner("Figures 3-4",
                "long-tailed ethernet bandwidth vs its normal approximation");

  // Probe transfers between two workstations on the production segment.
  sim::Engine engine;
  net::EthernetSpec spec;
  spec.availability = cluster::production_ethernet_availability();
  net::SharedEthernet ethernet(engine, spec, 31);

  constexpr std::size_t kProbes = 1'200;
  constexpr support::Bytes kProbeBytes = 64.0 * 1024.0;
  std::vector<double> bandwidth_mbits;
  bandwidth_mbits.reserve(kProbes);

  double probe_start = 0.0;
  std::function<void()> on_done = [&] {
    const double elapsed = engine.now() - probe_start;
    bandwidth_mbits.push_back(
        support::to_mbits_per_sec(kProbeBytes / elapsed));
    if (bandwidth_mbits.size() < kProbes) {
      // Space probes out so cross-traffic decorrelates between samples.
      engine.schedule_in(3.0, [&] {
        probe_start = engine.now();
        ethernet.start_transfer(kProbeBytes, on_done);
      });
    }
  };
  ethernet.start_transfer(kProbeBytes, on_done);
  engine.run();

  const auto s = stats::summarize(bandwidth_mbits);
  const auto sv = stoch::StochasticValue::from_sample(bandwidth_mbits);
  // The paper's "5.25 ± 0.8" is a normal fitted to the histogram's bulk:
  // a robust (median/IQR) fit, insensitive to the long tail. The full-
  // sample sd is inflated by the tail, which would hide the coverage gap.
  const double robust_sd =
      (stats::quantile(bandwidth_mbits, 0.75) -
       stats::quantile(bandwidth_mbits, 0.25)) /
      1.349;
  const stoch::StochasticValue robust_sv = stoch::StochasticValue::from_mean_sd(
      stats::median(bandwidth_mbits), robust_sd);

  bench::section("Figure 3 — bandwidth histogram with normal PDF");
  bench::print_histogram_with_normal(bandwidth_mbits, 16,
                                     "probe bandwidth",
                                     "bandwidth (Mbits/sec)");

  bench::section("Figure 4 — bandwidth CDF with normal CDF");
  bench::print_cdf_with_normal(bandwidth_mbits, "bandwidth CDF",
                               "bandwidth (Mbits/sec)");

  bench::section("the §2.1.1 coverage argument");
  std::printf("  bulk-fit stochastic value: %s Mbits/sec\n",
              robust_sv.to_string(2).c_str());
  std::printf("  full-sample stochastic value: %s Mbits/sec (tail-inflated)\n",
              sv.to_string(2).c_str());
  bench::compare_line("mean bandwidth", "5.25 Mbit/s",
                      support::fmt(s.mean, 2) + " Mbit/s");
  const double within_bulk = stats::fraction_within(
      bandwidth_mbits, robust_sv.lower(), robust_sv.upper());
  bench::compare_line("coverage of bulk-fit normal ± 2sd", "~91% (not 95%)",
                      support::fmt_pct(within_bulk, 1));
  const double within =
      stats::fraction_within(bandwidth_mbits, sv.lower(), sv.upper());
  bench::compare_line("coverage of full-sample ± 2sd",
                      "higher (sd absorbs the tail)",
                      support::fmt_pct(within, 1));
  bench::compare_line("skewness (long tail)", "negative",
                      support::fmt(s.skewness, 2));
  const auto ad = stats::anderson_darling_normal(bandwidth_mbits);
  bench::compare_line("normality formally rejected?", "yes (long-tailed)",
                      ad.reject_at_05 ? "yes" : "no");
  std::cout << "\nNormal is an acceptable stand-in only when the consumer "
               "tolerates the\nmissing tail mass — exactly the paper's "
               "caveat.\n";
  return 0;
}
