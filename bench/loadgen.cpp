// Closed-loop load generator for the layered serving stack — the
// frontend-layer counterpart of bench_serve_throughput.
//
// Every request travels through the wire codec (encode -> FrameBuffer ->
// decode) before it reaches PredictionService::submit, and every result
// travels back the same way, so the measured path is the full stack:
// frontend codec -> facade routing -> shard admission -> fused execution.
// Two transports carry the bytes: `inproc` (frames handed between
// functions — codec cost without syscalls) and `socket` (a loopback
// AF_UNIX socket pair per client with a real server thread on the other
// end). Two arrival models drive it: closed-loop (each client keeps
// exactly one request outstanding; sustained req/s is the service rate)
// and open-loop (clients send on a fixed-rate clock regardless of
// completions; reports the service-side latency distribution under
// offered load).
//
// Self-check (the ISSUE-7 acceptance bar): on the high-fan-in workload —
// many closed-loop clients spread across four model families, every
// request carrying distinct bindings — four shards with one worker each
// must sustain >= 1.8x the req/s of one shard with four workers (equal
// total worker count). The win is horizontal: per-shard queues, rings,
// epoch locks, and staging scans replace one contended set, and each
// shard's worker runs a single family's program hot. The gate runs
// before the recorded sweep, lands its numbers in
// BENCH_sharded_serve.json, and exits non-zero on failure. The floor is
// only asserted where it is measurable: optimized builds on >= 4
// hardware threads (on fewer cores the configurations serialize onto the
// same core and wall-clock converges to total work, which is equal by
// construction — the run still records the measured ratio).
//
// --smoke runs the CI configuration: 2 shards, 2 clients, loopback
// socket transport, correctness-checked (every request answered, zero
// rejections), no timing assertions.
//
// --nodes N switches to CLUSTER mode (src/dserve/): N ServingNode
// replicas behind a ClusterFrontend, with --replicas R-way placement and
// a --faults plan injected mid-stream. The run demonstrates the dserve
// acceptance bar — healthy cluster bit-exact vs a single-node service,
// zero accepted requests lost across a node crash, epoch convergence
// after the partition heals — always asserted; the throughput rows are
// report-only (like the sharded gate, timing claims are meaningless on
// starved cores, but correctness never is). Results land in
// BENCH_cluster_serve.json. `--smoke --nodes 3` is the CI cluster check:
// 3 nodes, one injected crash + restart.
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <future>
#include <latch>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/platform.hpp"
#include "dserve/fault.hpp"
#include "dserve/frontend.hpp"
#include "serve/epoch.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace {

using namespace sspred;
using Clock = std::chrono::steady_clock;

struct GenConfig {
  std::size_t shards = 4;
  std::size_t workers_total = 4;  ///< split evenly across shards
  std::size_t clients = 128;
  std::size_t requests = 40;  ///< per client
  std::size_t families = 4;
  std::size_t hosts = 8;
  std::size_t iterations = 30;
  std::size_t model_n = 600;
  std::size_t queue_capacity = 4096;  ///< per shard
  std::size_t max_batch = 16;         ///< per-sweep lane/coalesce cap
  bool socket_transport = false;
  bool open_loop = false;
  double open_rate = 500.0;  ///< req/s per client (open loop)
};

struct RunStats {
  double seconds = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  // Service-side shed attribution (per-reason counters, rolled up across
  // shards) — any client-observed rejection must be accounted to exactly
  // one of these.
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_stopped = 0;
  std::uint64_t rejected_shard_unavailable = 0;
  std::vector<double> latencies;  ///< seconds, sorted by run_once

  [[nodiscard]] double rps() const {
    return seconds > 0.0 ? double(ok) / seconds : 0.0;
  }
  /// p in [0,1] over the sorted latency sample (0 when empty).
  [[nodiscard]] double percentile(double p) const {
    if (latencies.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * double(latencies.size() - 1) + 0.5);
    return latencies[std::min(idx, latencies.size() - 1)];
  }
};

std::string family_id(std::size_t f) { return "family" + std::to_string(f); }

serve::ModelSpec family_spec(const GenConfig& cfg, std::size_t f) {
  serve::ModelSpec spec;
  spec.app = serve::ModelSpec::App::kSor;
  spec.platform = cluster::dedicated_platform(cfg.hosts);
  // Distinct problem size per family: four genuinely different compiled
  // programs, so routing by structure key is doing real work.
  spec.config.n = cfg.model_n + 37 * f;
  spec.config.iterations = cfg.iterations;
  return spec;
}

/// Distinct bindings per (client, sequence): nothing across clients is
/// coalescable, so merged work is the fused sweep's alone.
serve::PredictRequest make_request(const GenConfig& cfg, std::size_t client,
                                   std::size_t seq) {
  serve::PredictRequest request;
  request.model_id = family_id(client % cfg.families);
  request.loads.reserve(cfg.hosts);
  for (std::size_t h = 0; h < cfg.hosts; ++h) {
    request.loads.push_back(stoch::StochasticValue(
        0.35 + 0.0003 * double((client * 131 + seq) % 1024) +
            0.03 * double(h),
        0.08));
  }
  return request;
}

void write_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) { std::perror("loadgen: write"); std::exit(1); }
    off += static_cast<std::size_t>(n);
  }
}

void account(const serve::DecodedResponse& response, std::uint64_t want_tag,
             double latency_s, RunStats& out) {
  if (response.client_tag != want_tag) {
    ++out.errors;
    return;
  }
  switch (response.result.status) {
    case serve::PredictResult::Status::kOk:
      ++out.ok;
      out.latencies.push_back(latency_s);
      break;
    case serve::PredictResult::Status::kRejected:
      ++out.rejected;
      break;
    case serve::PredictResult::Status::kError:
      ++out.errors;
      break;
  }
}

/// One in-process frontend round trip: the request is encoded, framed,
/// decoded, served, and the result encoded and decoded back — the codec
/// sits on the hot path exactly as it would behind a socket.
serve::DecodedResponse roundtrip_inproc(serve::PredictionService& service,
                                        const serve::PredictRequest& request,
                                        std::uint64_t tag) {
  const auto wire = serve::encode_request(request, tag);
  serve::FrameBuffer frames;
  frames.feed(wire.data(), wire.size());
  auto frame = frames.take_frame();
  auto decoded = serve::decode_request(frame->data(), frame->size());
  const auto result =
      service.submit(std::move(decoded.request)).get();
  const auto reply = serve::encode_response(result, decoded.client_tag);
  serve::FrameBuffer reply_frames;
  reply_frames.feed(reply.data(), reply.size());
  auto reply_frame = reply_frames.take_frame();
  return serve::decode_response(reply_frame->data(), reply_frame->size());
}

void run_client_inproc(serve::PredictionService& service,
                       const GenConfig& cfg, std::size_t client,
                       RunStats& out) {
  for (std::size_t seq = 0; seq < cfg.requests; ++seq) {
    const auto request = make_request(cfg, client, seq);
    const std::uint64_t tag = (std::uint64_t(client) << 32) | seq;
    const auto start = Clock::now();
    const auto response = roundtrip_inproc(service, request, tag);
    const std::chrono::duration<double> dt = Clock::now() - start;
    account(response, tag, dt.count(), out);
  }
}

/// Open loop: send on a fixed-rate clock without waiting; latency is the
/// service-side submit->completion stamp (the client never blocks, so
/// there is no meaningful client-side round-trip time per request).
void run_client_open(serve::PredictionService& service, const GenConfig& cfg,
                     std::size_t client, RunStats& out) {
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / cfg.open_rate));
  std::vector<std::pair<std::uint64_t, std::future<serve::PredictResult>>>
      pending;
  pending.reserve(cfg.requests);
  auto next = Clock::now();
  for (std::size_t seq = 0; seq < cfg.requests; ++seq) {
    std::this_thread::sleep_until(next);
    next += interval;
    const auto request = make_request(cfg, client, seq);
    const std::uint64_t tag = (std::uint64_t(client) << 32) | seq;
    const auto wire = serve::encode_request(request, tag);
    serve::FrameBuffer frames;
    frames.feed(wire.data(), wire.size());
    auto frame = frames.take_frame();
    auto decoded = serve::decode_request(frame->data(), frame->size());
    pending.emplace_back(tag, service.submit(std::move(decoded.request)));
  }
  for (auto& [tag, future] : pending) {
    const auto result = future.get();
    const auto reply = serve::encode_response(result, tag);
    serve::FrameBuffer frames;
    frames.feed(reply.data(), reply.size());
    auto frame = frames.take_frame();
    const auto response =
        serve::decode_response(frame->data(), frame->size());
    account(response, tag, response.result.latency_seconds, out);
  }
}

/// Server half of one loopback connection: reassemble frames from
/// whatever read() returns, serve each request, write the response.
void serve_connection(serve::PredictionService& service, int fd,
                      std::size_t expected) {
  serve::FrameBuffer frames;
  std::uint8_t chunk[4096];
  std::size_t served = 0;
  while (served < expected) {
    const ssize_t n = read(fd, chunk, sizeof chunk);
    if (n <= 0) break;  // client hung up early (it accounts the miss)
    frames.feed(chunk, static_cast<std::size_t>(n));
    while (auto frame = frames.take_frame()) {
      auto decoded = serve::decode_request(frame->data(), frame->size());
      const auto result =
          service.submit(std::move(decoded.request)).get();
      write_all(fd, serve::encode_response(result, decoded.client_tag));
      ++served;
    }
  }
  close(fd);
}

void run_client_socket(const GenConfig& cfg, std::size_t client, int fd,
                       RunStats& out) {
  serve::FrameBuffer frames;
  std::uint8_t chunk[4096];
  for (std::size_t seq = 0; seq < cfg.requests; ++seq) {
    const auto request = make_request(cfg, client, seq);
    const std::uint64_t tag = (std::uint64_t(client) << 32) | seq;
    const auto start = Clock::now();
    write_all(fd, serve::encode_request(request, tag));
    std::optional<std::vector<std::uint8_t>> frame;
    while (!(frame = frames.take_frame())) {
      const ssize_t n = read(fd, chunk, sizeof chunk);
      if (n <= 0) { std::perror("loadgen: read"); std::exit(1); }
      frames.feed(chunk, static_cast<std::size_t>(n));
    }
    const auto response =
        serve::decode_response(frame->data(), frame->size());
    const std::chrono::duration<double> dt = Clock::now() - start;
    account(response, tag, dt.count(), out);
  }
  close(fd);
}

/// Builds the service, registers one model per family, warms every
/// family's compiled program, then releases all clients at once and
/// times until the last one finishes.
RunStats run_once(const GenConfig& cfg) {
  serve::ServiceOptions options;
  options.shards = cfg.shards;
  options.workers = std::max<std::size_t>(1, cfg.workers_total / cfg.shards);
  options.queue_capacity = cfg.queue_capacity;
  options.max_batch = cfg.max_batch;
  serve::PredictionService service(options);
  for (std::size_t f = 0; f < cfg.families; ++f) {
    service.register_model(family_id(f), family_spec(cfg, f));
  }
  for (std::size_t f = 0; f < cfg.families; ++f) {
    const auto warm = roundtrip_inproc(
        service, make_request(cfg, f, 0), 0);  // populate program caches
    if (!warm.result.ok()) {
      std::fprintf(stderr, "loadgen: warmup failed: %s\n",
                   warm.result.error.c_str());
      std::exit(1);
    }
  }

  std::vector<RunStats> per_client(cfg.clients);
  std::vector<std::thread> servers;
  std::vector<int> client_fds(cfg.clients, -1);
  if (cfg.socket_transport) {
    for (std::size_t c = 0; c < cfg.clients; ++c) {
      int fds[2];
      if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        std::perror("loadgen: socketpair");
        std::exit(1);
      }
      client_fds[c] = fds[1];
      servers.emplace_back(
          [&service, fd = fds[0], expected = cfg.requests] {
            serve_connection(service, fd, expected);
          });
    }
  }

  std::latch start(static_cast<std::ptrdiff_t>(cfg.clients) + 1);
  std::vector<std::thread> clients;
  clients.reserve(cfg.clients);
  for (std::size_t c = 0; c < cfg.clients; ++c) {
    clients.emplace_back([&, c] {
      start.arrive_and_wait();
      if (cfg.socket_transport) {
        run_client_socket(cfg, c, client_fds[c], per_client[c]);
      } else if (cfg.open_loop) {
        run_client_open(service, cfg, c, per_client[c]);
      } else {
        run_client_inproc(service, cfg, c, per_client[c]);
      }
    });
  }
  start.arrive_and_wait();
  const auto t0 = Clock::now();
  for (auto& t : clients) t.join();
  const std::chrono::duration<double> wall = Clock::now() - t0;
  for (auto& t : servers) t.join();

  if (std::getenv("LOADGEN_DEBUG")) {
    const auto& occ = service.metrics().histogram("fused_batch_occupancy");
    std::fprintf(stderr,
                 "    [debug] shards=%zu fused=%llu coalesced=%llu "
                 "occupancy_mean=%.1f sweeps=%llu\n",
                 cfg.shards,
                 (unsigned long long)service.metrics()
                     .counter("requests_fused").value(),
                 (unsigned long long)service.metrics()
                     .counter("requests_coalesced").value(),
                 occ.count() > 0 ? occ.mean() : 0.0,
                 (unsigned long long)occ.count());
  }

  RunStats total;
  total.seconds = wall.count();
  total.rejected_queue_full =
      service.metrics().counter("rejected_queue_full").value();
  total.rejected_stopped =
      service.metrics().counter("rejected_stopped").value();
  total.rejected_shard_unavailable =
      service.metrics().counter("rejected_shard_unavailable").value();
  for (auto& s : per_client) {
    total.ok += s.ok;
    total.rejected += s.rejected;
    total.errors += s.errors;
    total.latencies.insert(total.latencies.end(), s.latencies.begin(),
                           s.latencies.end());
  }
  std::sort(total.latencies.begin(), total.latencies.end());
  return total;
}

/// Best sustained req/s over `reps` fresh runs (sheds scheduler noise);
/// any rejected or failed request is fatal — the gate compares goodput
/// of fully-served workloads only.
RunStats best_of(const GenConfig& cfg, std::size_t reps,
                 const char* label) {
  RunStats best;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    RunStats stats = run_once(cfg);
    if (stats.rejected != 0 || stats.errors != 0 ||
        stats.ok != std::uint64_t(cfg.clients) * cfg.requests) {
      // Attribute the sheds to their SPECIFIC reason: the workload is
      // sized to fit the queues, so any rejection is a bug and the
      // per-reason counters say exactly which layer shed it.
      std::fprintf(stderr,
                   "loadgen: %s run incomplete: ok=%llu rejected=%llu "
                   "(queue_full=%llu stopped=%llu shard_unavailable=%llu) "
                   "errors=%llu (want %llu ok)\n",
                   label, (unsigned long long)stats.ok,
                   (unsigned long long)stats.rejected,
                   (unsigned long long)stats.rejected_queue_full,
                   (unsigned long long)stats.rejected_stopped,
                   (unsigned long long)stats.rejected_shard_unavailable,
                   (unsigned long long)stats.errors,
                   (unsigned long long)(cfg.clients * cfg.requests));
      std::exit(1);
    }
    if (stats.rejected != stats.rejected_queue_full +
                              stats.rejected_stopped +
                              stats.rejected_shard_unavailable) {
      std::fprintf(stderr,
                   "loadgen: %s shed accounting leak: %llu rejections, "
                   "%llu attributed\n",
                   label, (unsigned long long)stats.rejected,
                   (unsigned long long)(stats.rejected_queue_full +
                                        stats.rejected_stopped +
                                        stats.rejected_shard_unavailable));
      std::exit(1);
    }
    if (best.seconds == 0.0 || stats.rps() > best.rps()) {
      best = std::move(stats);
    }
  }
  return best;
}

void print_row(const char* name, const GenConfig& cfg,
               const RunStats& stats) {
  std::printf(
      "  %-26s shards=%zu workers=%zu clients=%zu  %8.0f req/s  "
      "p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
      name, cfg.shards, std::max<std::size_t>(1, cfg.workers_total / cfg.shards),
      cfg.clients, stats.rps(), stats.percentile(0.50) * 1e3,
      stats.percentile(0.95) * 1e3, stats.percentile(0.99) * 1e3);
}

struct JsonRow {
  std::string name;
  GenConfig cfg;
  RunStats stats;
};

void write_json(const char* path, double rps_one, double rps_sharded,
                double ratio, double floor, bool gate_met, bool asserted,
                const std::vector<JsonRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) { std::perror("loadgen: fopen"); std::exit(1); }
  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"build_type\": \"%s\",\n", bench::build_type());
  std::fprintf(f, "    \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f,
               "    \"sharded_gate\": \"closed-loop high fan-in, 4 model "
               "families, distinct bindings, equal total workers\",\n");
  std::fprintf(f, "    \"sharded_gate_floor\": %.2f,\n", floor);
  std::fprintf(f, "    \"sharded_gate_one_shard_rps\": %.1f,\n", rps_one);
  std::fprintf(f, "    \"sharded_gate_four_shard_rps\": %.1f,\n",
               rps_sharded);
  std::fprintf(f, "    \"sharded_gate_ratio\": %.3f,\n", ratio);
  std::fprintf(f, "    \"sharded_gate_met\": %s,\n",
               gate_met ? "true" : "false");
  std::fprintf(f, "    \"sharded_gate_asserted\": %s\n",
               asserted ? "true" : "false");
  std::fprintf(f, "  },\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [name, cfg, stats] = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shards\": %zu, "
                 "\"workers_per_shard\": %zu, \"clients\": %zu, "
                 "\"requests\": %llu, \"rps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 name.c_str(), cfg.shards,
                 std::max<std::size_t>(1, cfg.workers_total / cfg.shards),
                 cfg.clients, (unsigned long long)stats.ok, stats.rps(),
                 stats.percentile(0.50) * 1e3, stats.percentile(0.95) * 1e3,
                 stats.percentile(0.99) * 1e3,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// --- Cluster mode (src/dserve/) ---------------------------------------

struct ClusterGenConfig {
  GenConfig base;
  std::size_t nodes = 3;
  std::size_t replicas = 2;
  std::string fault_spec;  ///< empty: derive crash+restart of a primary
};

dserve::ClusterOptions cluster_options(const ClusterGenConfig& cfg) {
  dserve::ClusterOptions options;
  options.nodes = cfg.nodes;
  options.replicas = cfg.replicas;
  options.node_options.shards = cfg.base.shards;
  options.node_options.workers =
      std::max<std::size_t>(1, cfg.base.workers_total / cfg.base.shards);
  options.node_options.queue_capacity = cfg.base.queue_capacity;
  options.node_options.max_batch = cfg.base.max_batch;
  // Demonstrate intra-node work stealing under skewed family load.
  options.node_options.steal_threshold = 2;
  return options;
}

void register_cluster_models(dserve::ClusterFrontend& cluster,
                             const GenConfig& cfg) {
  for (std::size_t f = 0; f < cfg.families; ++f) {
    cluster.register_model(family_id(f), family_spec(cfg, f));
  }
}

/// Fixed single-threaded request stream: the determinism harness. The
/// frontend's step counter IS the request index + 1, which is what lets
/// a step-keyed fault plan reproduce the same failure history per run.
std::vector<serve::PredictResult> stream_cluster(
    dserve::ClusterFrontend& cluster, const GenConfig& cfg,
    std::size_t total) {
  std::vector<serve::PredictResult> results;
  results.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    results.push_back(
        cluster.predict(make_request(cfg, i % cfg.clients, i / cfg.clients))
            .result);
  }
  return results;
}

/// Concurrent closed-loop clients against the cluster frontend
/// (throughput row; report-only).
RunStats run_cluster_once(const ClusterGenConfig& cfg) {
  dserve::ClusterFrontend cluster(cluster_options(cfg));
  register_cluster_models(cluster, cfg.base);
  for (std::size_t f = 0; f < cfg.base.families; ++f) {
    const auto warm = cluster.predict(make_request(cfg.base, f, 0));
    if (!warm.result.ok()) {
      std::fprintf(stderr, "loadgen: cluster warmup failed: %s\n",
                   warm.result.error.c_str());
      std::exit(1);
    }
  }
  std::vector<RunStats> per_client(cfg.base.clients);
  std::latch start(static_cast<std::ptrdiff_t>(cfg.base.clients) + 1);
  std::vector<std::thread> clients;
  clients.reserve(cfg.base.clients);
  for (std::size_t c = 0; c < cfg.base.clients; ++c) {
    clients.emplace_back([&, c] {
      start.arrive_and_wait();
      for (std::size_t seq = 0; seq < cfg.base.requests; ++seq) {
        const auto t0 = Clock::now();
        const auto served =
            cluster.predict(make_request(cfg.base, c, seq)).result;
        const std::chrono::duration<double> dt = Clock::now() - t0;
        auto& out = per_client[c];
        if (served.ok()) {
          ++out.ok;
          out.latencies.push_back(dt.count());
        } else if (served.status == serve::PredictResult::Status::kRejected) {
          ++out.rejected;
        } else {
          ++out.errors;
        }
      }
    });
  }
  start.arrive_and_wait();
  const auto t0 = Clock::now();
  for (auto& t : clients) t.join();
  const std::chrono::duration<double> wall = Clock::now() - t0;

  RunStats total;
  total.seconds = wall.count();
  for (auto& s : per_client) {
    total.ok += s.ok;
    total.rejected += s.rejected;
    total.errors += s.errors;
    total.latencies.insert(total.latencies.end(), s.latencies.begin(),
                           s.latencies.end());
  }
  std::sort(total.latencies.begin(), total.latencies.end());
  return total;
}

/// Counters the fault run reports into BENCH_cluster_serve.json.
struct ClusterSummary {
  std::uint64_t failovers = 0;
  std::uint64_t requests_retried = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t requests_stolen = 0;
  std::uint64_t faults_injected = 0;
  std::string fault_plan;
  bool bit_exact = false;
  std::uint64_t lost_requests = 0;
  bool epoch_converged = false;
};

void write_cluster_json(const char* path, const ClusterGenConfig& cfg,
                        const ClusterSummary& summary, bool pass,
                        const std::vector<JsonRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) { std::perror("loadgen: fopen"); std::exit(1); }
  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"build_type\": \"%s\",\n", bench::build_type());
  std::fprintf(f, "    \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "    \"nodes\": %zu,\n", cfg.nodes);
  std::fprintf(f, "    \"replicas\": %zu,\n", cfg.replicas);
  std::fprintf(f, "    \"fault_plan\": \"%s\",\n",
               summary.fault_plan.c_str());
  std::fprintf(f, "    \"cluster_bit_exact\": %s,\n",
               summary.bit_exact ? "true" : "false");
  std::fprintf(f, "    \"cluster_lost_requests\": %llu,\n",
               (unsigned long long)summary.lost_requests);
  std::fprintf(f, "    \"cluster_epoch_converged\": %s,\n",
               summary.epoch_converged ? "true" : "false");
  std::fprintf(f, "    \"failovers\": %llu,\n",
               (unsigned long long)summary.failovers);
  std::fprintf(f, "    \"requests_retried\": %llu,\n",
               (unsigned long long)summary.requests_retried);
  std::fprintf(f, "    \"rebalances\": %llu,\n",
               (unsigned long long)summary.rebalances);
  std::fprintf(f, "    \"requests_stolen\": %llu,\n",
               (unsigned long long)summary.requests_stolen);
  std::fprintf(f, "    \"faults_injected\": %llu,\n",
               (unsigned long long)summary.faults_injected);
  std::fprintf(f, "    \"cluster_gate_met\": %s,\n", pass ? "true" : "false");
  std::fprintf(f, "    \"throughput_asserted\": false\n");
  std::fprintf(f, "  },\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [name, row_cfg, stats] = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"clients\": %zu, "
                 "\"requests\": %llu, \"rps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 name.c_str(), row_cfg.clients,
                 (unsigned long long)stats.ok, stats.rps(),
                 stats.percentile(0.50) * 1e3, stats.percentile(0.95) * 1e3,
                 stats.percentile(0.99) * 1e3,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Cluster mode driver: correctness gates (always asserted), then the
/// report-only throughput row, then BENCH_cluster_serve.json.
int run_cluster(const ClusterGenConfig& cfg, const char* json_path) {
  bench::banner("multi-node serving tier",
                "replicated nodes, failover, rebalancing, fault injection");
  const GenConfig& base = cfg.base;
  const std::size_t total = base.clients * base.requests;

  std::map<std::string, stoch::StochasticValue> bindings;
  for (std::size_t h = 0; h < base.hosts; ++h) {
    bindings.emplace("cpu/host" + std::to_string(h),
                     stoch::StochasticValue(0.5 + 0.02 * double(h), 0.1));
  }
  const auto epoch =
      std::make_shared<const serve::BindingsEpoch>(1, bindings);

  // --- Gate 1: healthy cluster bit-exact vs single-node service --------
  dserve::ClusterFrontend healthy(cluster_options(cfg));
  register_cluster_models(healthy, base);
  healthy.publish_epoch(epoch);
  serve::PredictionService single(cluster_options(cfg).node_options);
  for (std::size_t f = 0; f < base.families; ++f) {
    single.register_model(family_id(f), family_spec(base, f));
  }
  single.publish_epoch(epoch);
  const auto healthy_results = stream_cluster(healthy, base, total);
  ClusterSummary summary;
  summary.bit_exact = true;
  for (std::size_t i = 0; i < total; ++i) {
    const auto expected =
        single
            .submit(make_request(base, i % base.clients, i / base.clients))
            .get();
    const auto& got = healthy_results[i];
    if (!expected.ok() || !got.ok() || got.value != expected.value ||
        got.point != expected.point) {
      std::fprintf(stderr,
                   "loadgen: cluster bit-exactness broke at request %zu: "
                   "%s vs %s\n",
                   i, got.ok() ? "ok" : got.error.c_str(),
                   expected.ok() ? "ok" : expected.error.c_str());
      summary.bit_exact = false;
      break;
    }
  }

  // --- Gate 2: fault run — zero lost accepted requests -----------------
  // Default plan: crash a primary a third of the way in, restart it at
  // two thirds. Placement is deterministic, so the healthy cluster's
  // ring picks the victim for the fault run too.
  std::string spec = cfg.fault_spec;
  if (spec.empty()) {
    const std::size_t victim = healthy.replica_set(family_id(0)).front();
    spec = "crash@" + std::to_string(std::max<std::size_t>(2, total / 3)) +
           ":" + std::to_string(victim) + ",restart@" +
           std::to_string(std::max<std::size_t>(3, 2 * total / 3)) + ":" +
           std::to_string(victim);
  }
  summary.fault_plan = spec;
  dserve::ClusterFrontend faulted(cluster_options(cfg),
                                  dserve::FaultPlan::parse(spec));
  register_cluster_models(faulted, base);
  faulted.publish_epoch(epoch);
  const auto faulted_results = stream_cluster(faulted, base, total);
  for (std::size_t i = 0; i < total; ++i) {
    const auto& got = faulted_results[i];
    if (!got.ok()) {
      ++summary.lost_requests;
    } else if (got.value != healthy_results[i].value) {
      summary.bit_exact = false;
    }
  }

  // --- Gate 3: epoch convergence after the heal ------------------------
  (void)faulted.heartbeat_tick();  // detects the restart's version skew
  summary.epoch_converged = true;
  for (std::size_t n = 0; n < faulted.nodes(); ++n) {
    if (faulted.node(n).epoch_version() != epoch->version()) {
      summary.epoch_converged = false;
    }
  }
  summary.failovers =
      faulted.metrics().counter("failovers_total").value();
  summary.requests_retried =
      faulted.metrics().counter("requests_retried").value();
  summary.rebalances =
      faulted.metrics().counter("rebalances_total").value();
  summary.faults_injected =
      faulted.metrics().counter("faults_injected").value();
  summary.requests_stolen = faulted.requests_stolen();

  // --- Throughput rows (report-only) -----------------------------------
  std::vector<JsonRow> rows;
  const RunStats concurrent = run_cluster_once(cfg);
  rows.push_back({"cluster_closed_loop/" + std::to_string(cfg.nodes) +
                      "node",
                  base, concurrent});

  const bool pass = summary.bit_exact && summary.lost_requests == 0 &&
                    summary.epoch_converged;
  write_cluster_json(json_path, cfg, summary, pass, rows);

  std::printf(
      "\n  healthy %zu-node cluster vs single node: %s over %zu requests\n"
      "  fault run [%s]: %llu lost, %llu failovers, %llu retried\n"
      "  heal: rebalances=%llu epoch_converged=%s  steals=%llu\n",
      cfg.nodes, summary.bit_exact ? "bit-exact" : "MISMATCH", total,
      summary.fault_plan.c_str(),
      (unsigned long long)summary.lost_requests,
      (unsigned long long)summary.failovers,
      (unsigned long long)summary.requests_retried,
      (unsigned long long)summary.rebalances,
      summary.epoch_converged ? "true" : "false",
      (unsigned long long)summary.requests_stolen);
  std::printf(
      "  concurrent throughput (report-only): %.0f req/s, p99 %.2fms\n",
      concurrent.rps(), concurrent.percentile(0.99) * 1e3);
  std::printf("=> %s (results in %s)\n", pass ? "PASS" : "FAIL", json_path);
  return pass ? 0 : 1;
}

int run_cluster_smoke(ClusterGenConfig cfg) {
  // CI configuration: 3 nodes, small models, one crash + restart.
  cfg.nodes = cfg.nodes == 0 ? 3 : cfg.nodes;
  cfg.base.shards = 2;
  cfg.base.workers_total = 4;
  cfg.base.clients = 4;
  cfg.base.requests = 12;
  cfg.base.families = 3;
  cfg.base.hosts = 4;
  cfg.base.model_n = 150;
  cfg.base.iterations = 5;
  return run_cluster(cfg, "BENCH_cluster_serve.json");
}

int run_smoke() {
  GenConfig cfg;
  cfg.shards = 2;
  cfg.workers_total = 2;
  cfg.clients = 2;
  cfg.requests = 25;
  cfg.families = 2;
  cfg.model_n = 150;
  cfg.socket_transport = true;
  const RunStats stats = run_once(cfg);
  const bool pass = stats.ok == cfg.clients * cfg.requests &&
                    stats.rejected == 0 && stats.errors == 0;
  std::printf(
      "loadgen smoke: %llu/%llu served over loopback sockets "
      "(2 shards, 2 clients), p99 %.2fms => %s\n",
      (unsigned long long)stats.ok,
      (unsigned long long)(cfg.clients * cfg.requests),
      stats.percentile(0.99) * 1e3, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  GenConfig base;
  const char* json_path = "BENCH_sharded_serve.json";
  double floor = 1.8;
  std::size_t reps = 3;
  bool smoke = false;
  std::size_t nodes = 0;
  std::size_t replicas = 2;
  std::string faults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "loadgen: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") smoke = true;
    else if (arg == "--clients") base.clients = std::stoul(next());
    else if (arg == "--requests") base.requests = std::stoul(next());
    else if (arg == "--shards") base.shards = std::stoul(next());
    else if (arg == "--workers") base.workers_total = std::stoul(next());
    else if (arg == "--families") base.families = std::stoul(next());
    else if (arg == "--model-n") base.model_n = std::stoul(next());
    else if (arg == "--hosts") base.hosts = std::stoul(next());
    else if (arg == "--max-batch") base.max_batch = std::stoul(next());
    else if (arg == "--iterations") base.iterations = std::stoul(next());
    else if (arg == "--reps") reps = std::stoul(next());
    else if (arg == "--floor") floor = std::stod(next());
    else if (arg == "--json") json_path = next();
    else if (arg == "--nodes") nodes = std::stoul(next());
    else if (arg == "--replicas") replicas = std::stoul(next());
    else if (arg == "--faults") faults = next();
    else {
      std::fprintf(stderr,
                   "usage: loadgen [--smoke] [--clients N] [--requests N] "
                   "[--shards S] [--workers W] [--families F] [--model-n N] "
                   "[--reps R] [--floor X] [--json PATH] "
                   "[--nodes N [--replicas R] [--faults PLAN]]\n");
      return 2;
    }
  }
  if (nodes > 0) {
    ClusterGenConfig cluster_cfg;
    cluster_cfg.base = base;
    cluster_cfg.nodes = nodes;
    cluster_cfg.replicas = replicas;
    cluster_cfg.fault_spec = faults;
    if (smoke) return run_cluster_smoke(cluster_cfg);
    if (std::string(json_path) == "BENCH_sharded_serve.json") {
      json_path = "BENCH_cluster_serve.json";
    }
    // The cluster stream drives the full wire path per node; keep the
    // default single-threaded gate stream to a tractable size.
    cluster_cfg.base.clients = std::min<std::size_t>(base.clients, 16);
    cluster_cfg.base.requests = std::min<std::size_t>(base.requests, 25);
    return run_cluster(cluster_cfg, json_path);
  }
  if (smoke) return run_smoke();

  bench::banner("sharded serving stack",
                "closed-loop load generator through the wire frontend");

  // --- The gate: 1 shard x 4 workers vs 4 shards x 1 worker ------------
  GenConfig one = base;
  one.shards = 1;
  GenConfig four = base;
  four.shards = 4;
  const RunStats one_stats = best_of(one, reps, "one-shard");
  const RunStats four_stats = best_of(four, reps, "four-shard");
  const double ratio =
      one_stats.rps() > 0.0 ? four_stats.rps() / one_stats.rps() : 0.0;
  const bool gate_met = ratio >= floor;
  // The floor claims horizontal scaling, so it is only asserted where
  // that is measurable: optimized builds with enough hardware threads to
  // actually run the four shards concurrently. Elsewhere (debug or
  // sanitizer builds, single-core containers) the run records the
  // measured ratio without asserting.
  const unsigned cores = std::thread::hardware_concurrency();
  const bool asserted = bench::optimized_build() && cores >= 4;
  const bool pass = gate_met || !asserted;

  std::vector<JsonRow> rows;
  rows.push_back({"closed_loop/1shard", one, one_stats});
  rows.push_back({"closed_loop/4shard", four, four_stats});

  // --- Recorded sweep: socket transport and open-loop rows -------------
  GenConfig socket_cfg = base;
  socket_cfg.socket_transport = true;
  socket_cfg.clients = std::min<std::size_t>(base.clients, 8);
  socket_cfg.requests = std::min<std::size_t>(base.requests, 50);
  rows.push_back(
      {"closed_loop/4shard_socket", socket_cfg, run_once(socket_cfg)});

  GenConfig open_cfg = base;
  open_cfg.open_loop = true;
  open_cfg.clients = std::min<std::size_t>(base.clients, 8);
  open_cfg.requests = std::min<std::size_t>(base.requests, 50);
  open_cfg.open_rate = 200.0;
  rows.push_back({"open_loop/4shard", open_cfg, run_once(open_cfg)});

  std::printf("\n");
  for (const auto& row : rows) print_row(row.name.c_str(), row.cfg, row.stats);
  write_json(json_path, one_stats.rps(), four_stats.rps(), ratio, floor,
             gate_met, asserted, rows);

  std::printf(
      "\nsharded gate: %zu closed-loop clients, %zu families, "
      "4x1 workers %.0f req/s vs 1x4 workers %.0f req/s -> %.2fx "
      "(floor %.1fx)\n",
      base.clients, base.families, four_stats.rps(), one_stats.rps(), ratio,
      floor);
  if (!asserted) {
    if (!bench::optimized_build()) {
      std::printf("unoptimized build: reporting only, floor not asserted\n");
    } else {
      std::printf(
          "%u hardware thread(s): shards serialize onto the same core, "
          "reporting only, floor not asserted\n",
          cores);
    }
  }
  std::printf("=> %s (results in %s)\n", pass ? "PASS" : "FAIL", json_path);
  return pass ? 0 : 1;
}
