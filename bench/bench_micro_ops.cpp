// M1 microbenchmarks (google-benchmark): throughput of the core
// primitives — stochastic arithmetic, Clark max, normal quantiles, GMM
// fitting, DES event processing, channel round-trips, load-trace
// integration and the SOR sweep kernel.
#include <benchmark/benchmark.h>

#include <vector>

#include "cluster/platform.hpp"
#include "machine/load_trace.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sor/serial.hpp"
#include "stats/distributions.hpp"
#include "stats/gmm.hpp"
#include "stoch/arithmetic.hpp"
#include "stoch/group_ops.hpp"
#include "support/rng.hpp"

namespace {

using namespace sspred;

void BM_StochasticAddUnrelated(benchmark::State& state) {
  const stoch::StochasticValue x(10.0, 2.0);
  const stoch::StochasticValue y(5.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stoch::add(x, y, stoch::Dependence::kUnrelated));
  }
}
BENCHMARK(BM_StochasticAddUnrelated);

void BM_StochasticMulRelated(benchmark::State& state) {
  const stoch::StochasticValue x(10.0, 2.0);
  const stoch::StochasticValue y(5.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stoch::mul(x, y, stoch::Dependence::kRelated));
  }
}
BENCHMARK(BM_StochasticMulRelated);

void BM_StochasticDiv(benchmark::State& state) {
  const stoch::StochasticValue x(10.0, 2.0);
  const stoch::StochasticValue y(0.5, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stoch::div(x, y, stoch::Dependence::kUnrelated));
  }
}
BENCHMARK(BM_StochasticDiv);

void BM_ClarkMax(benchmark::State& state) {
  const stoch::StochasticValue x(10.0, 2.0);
  const stoch::StochasticValue y(11.0, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stoch::clark_max(x, y));
  }
}
BENCHMARK(BM_ClarkMax);

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.0001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::normal_quantile(p));
    p += 0.0001;
    if (p >= 1.0) p = 0.0001;
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_GmmFit(benchmark::State& state) {
  support::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 1'000; ++i) {
    xs.push_back(rng.uniform() < 0.5 ? rng.normal(0.3, 0.03)
                                     : rng.normal(0.9, 0.02));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_gmm(xs, 2));
  }
}
BENCHMARK(BM_GmmFit)->Unit(benchmark::kMillisecond);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      eng.schedule_at(static_cast<double>(i % 100), [&counter] { ++counter; });
    }
    eng.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EngineEventThroughput)->Unit(benchmark::kMillisecond);

void BM_ChannelRoundTrips(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Channel<int> ping(eng);
    sim::Channel<int> pong(eng);
    eng.spawn([](sim::Channel<int>& in, sim::Channel<int>& out) -> sim::Process {
      for (int i = 0; i < 1'000; ++i) {
        out.send(co_await in.recv());
      }
    }(ping, pong));
    eng.spawn([](sim::Channel<int>& out, sim::Channel<int>& in) -> sim::Process {
      for (int i = 0; i < 1'000; ++i) {
        out.send(i);
        (void)co_await in.recv();
      }
    }(ping, pong));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_ChannelRoundTrips)->Unit(benchmark::kMillisecond);

void BM_LoadTraceFinishTime(benchmark::State& state) {
  const machine::LoadTrace trace = machine::LoadTrace::generate(
      cluster::platform2_load(), 4'000, 1.0, 3);
  double start = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.finish_time(start, 50.0));
    start += 1.7;
    if (start > 3'000.0) start = 0.0;
  }
}
BENCHMARK(BM_LoadTraceFinishTime);

void BM_SorSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sor::SerialSor solver(n);
  for (auto _ : state) {
    solver.sweep(true);
    solver.sweep(false);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_SorSweep)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
