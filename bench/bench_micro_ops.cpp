// M1 microbenchmarks (google-benchmark): throughput of the core
// primitives — stochastic arithmetic, Clark max, normal quantiles, GMM
// fitting, DES event processing, channel round-trips, load-trace
// integration, the SOR sweep kernel, and tree-vs-compiled structural
// model evaluation (results recorded in BENCH_compiled_ir.json).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "cluster/platform.hpp"
#include "machine/load_trace.hpp"
#include "model/compile.hpp"
#include "model/expr.hpp"
#include "predict/sor_model.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sor/serial.hpp"
#include "stats/distributions.hpp"
#include "stats/gmm.hpp"
#include "stoch/arithmetic.hpp"
#include "stoch/group_ops.hpp"
#include "support/rng.hpp"

namespace {

using namespace sspred;

void BM_StochasticAddUnrelated(benchmark::State& state) {
  const stoch::StochasticValue x(10.0, 2.0);
  const stoch::StochasticValue y(5.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stoch::add(x, y, stoch::Dependence::kUnrelated));
  }
}
BENCHMARK(BM_StochasticAddUnrelated);

void BM_StochasticMulRelated(benchmark::State& state) {
  const stoch::StochasticValue x(10.0, 2.0);
  const stoch::StochasticValue y(5.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stoch::mul(x, y, stoch::Dependence::kRelated));
  }
}
BENCHMARK(BM_StochasticMulRelated);

void BM_StochasticDiv(benchmark::State& state) {
  const stoch::StochasticValue x(10.0, 2.0);
  const stoch::StochasticValue y(0.5, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stoch::div(x, y, stoch::Dependence::kUnrelated));
  }
}
BENCHMARK(BM_StochasticDiv);

void BM_ClarkMax(benchmark::State& state) {
  const stoch::StochasticValue x(10.0, 2.0);
  const stoch::StochasticValue y(11.0, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stoch::clark_max(x, y));
  }
}
BENCHMARK(BM_ClarkMax);

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.0001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::normal_quantile(p));
    p += 0.0001;
    if (p >= 1.0) p = 0.0001;
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_GmmFit(benchmark::State& state) {
  support::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 1'000; ++i) {
    xs.push_back(rng.uniform() < 0.5 ? rng.normal(0.3, 0.03)
                                     : rng.normal(0.9, 0.02));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_gmm(xs, 2));
  }
}
BENCHMARK(BM_GmmFit)->Unit(benchmark::kMillisecond);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      eng.schedule_at(static_cast<double>(i % 100), [&counter] { ++counter; });
    }
    eng.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EngineEventThroughput)->Unit(benchmark::kMillisecond);

void BM_ChannelRoundTrips(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Channel<int> ping(eng);
    sim::Channel<int> pong(eng);
    eng.spawn([](sim::Channel<int>& in, sim::Channel<int>& out) -> sim::Process {
      for (int i = 0; i < 1'000; ++i) {
        out.send(co_await in.recv());
      }
    }(ping, pong));
    eng.spawn([](sim::Channel<int>& out, sim::Channel<int>& in) -> sim::Process {
      for (int i = 0; i < 1'000; ++i) {
        out.send(i);
        (void)co_await in.recv();
      }
    }(ping, pong));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_ChannelRoundTrips)->Unit(benchmark::kMillisecond);

void BM_LoadTraceFinishTime(benchmark::State& state) {
  const machine::LoadTrace trace = machine::LoadTrace::generate(
      cluster::platform2_load(), 4'000, 1.0, 3);
  double start = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.finish_time(start, 50.0));
    start += 1.7;
    if (start > 3'000.0) start = 0.0;
  }
}
BENCHMARK(BM_LoadTraceFinishTime);

void BM_SorSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sor::SerialSor solver(n);
  for (auto _ : state) {
    solver.sweep(true);
    solver.sweep(false);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_SorSweep)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

// --- Tree vs compiled IR on the Platform-2 SOR structural model. The
// acceptance bar for the compiled path (ISSUE: "compiled >= 3x faster for
// repeated evaluation") is measured by the *Repeated* pair below.

struct SorFixture {
  SorFixture() : model(make_model()) {
    const std::vector<stoch::StochasticValue> loads(
        cluster::platform2().hosts.size(),
        stoch::StochasticValue(0.62, 0.08));
    env = model.make_env(loads, stoch::StochasticValue(0.525, 0.06));
    slots = std::make_unique<model::ir::SlotEnvironment>(
        model.make_slot_env(loads, stoch::StochasticValue(0.525, 0.06)));
  }

  static predict::SorStructuralModel make_model() {
    sor::SorConfig cfg;
    cfg.n = 600;
    cfg.iterations = 20;
    return predict::SorStructuralModel(cluster::platform2(), cfg);
  }

  predict::SorStructuralModel model;
  model::Environment env;
  std::unique_ptr<model::ir::SlotEnvironment> slots;
};

void BM_ModelTreeEvaluateOnce(benchmark::State& state) {
  // Author + evaluate per iteration: what a caller pays for a one-shot
  // tree prediction.
  const SorFixture fx;
  for (auto _ : state) {
    const auto m = SorFixture::make_model();
    benchmark::DoNotOptimize(m.expr()->evaluate(fx.env));
  }
}
BENCHMARK(BM_ModelTreeEvaluateOnce)->Unit(benchmark::kMicrosecond);

void BM_ModelCompileAndEvaluateOnce(benchmark::State& state) {
  // Author + compile + evaluate per iteration: the compiled path's
  // one-shot cost, including compilation itself.
  const SorFixture fx;
  for (auto _ : state) {
    const auto m = SorFixture::make_model();
    benchmark::DoNotOptimize(m.predict(*fx.slots));
  }
}
BENCHMARK(BM_ModelCompileAndEvaluateOnce)->Unit(benchmark::kMicrosecond);

void BM_ModelTreeEvaluateRepeated(benchmark::State& state) {
  // Steady-state tree evaluation: shared_ptr walk + virtual dispatch +
  // string-keyed parameter lookups per evaluation.
  const SorFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.model.expr()->evaluate(fx.env));
  }
}
BENCHMARK(BM_ModelTreeEvaluateRepeated);

void BM_ModelCompiledEvaluateRepeated(benchmark::State& state) {
  // Steady-state compiled evaluation with a reused workspace: one linear
  // walk over the flat node buffer, slot-indexed parameters.
  const SorFixture fx;
  model::ir::EvalWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.model.program().evaluate(*fx.slots, ws));
  }
}
BENCHMARK(BM_ModelCompiledEvaluateRepeated);

void BM_ModelTreeMonteCarlo10k(benchmark::State& state) {
  const SorFixture fx;
  support::Rng rng(17);
  for (auto _ : state) {
    std::vector<double> outcomes;
    outcomes.reserve(10'000);
    model::SampleCache cache;
    for (int t = 0; t < 10'000; ++t) {
      cache.clear();
      outcomes.push_back(fx.model.expr()->sample(fx.env, cache, rng));
    }
    benchmark::DoNotOptimize(stoch::StochasticValue::from_sample(outcomes));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_ModelTreeMonteCarlo10k)->Unit(benchmark::kMillisecond);

void BM_ModelCompiledMonteCarlo10k(benchmark::State& state) {
  const SorFixture fx;
  support::Rng rng(17);
  model::ir::EvalWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.model.program().sample_trials(*fx.slots, rng, 10'000, ws));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_ModelCompiledMonteCarlo10k)->Unit(benchmark::kMillisecond);

void BM_ModelCompiledMonteCarlo10kScalarOrder(benchmark::State& state) {
  // The pre-batching per-trial interpreter order, kept benchmarkable for
  // direct comparison with the blocked default above (bench_mc_engine
  // sweeps the comparison across trial counts and model sizes).
  const SorFixture fx;
  support::Rng rng(17);
  model::ir::EvalWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.model.program().sample_trials(
        *fx.slots, rng, 10'000, ws, model::ir::SampleOrder::kScalarCompat));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_ModelCompiledMonteCarlo10kScalarOrder)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN plus the build-type context key: google-benchmark's own
// `library_build_type` describes the benchmark library, which CI installs
// once; this key records how THIS code was compiled.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("build_type", sspred::bench::build_type());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
